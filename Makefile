# Local verification mirrors .github/workflows/ci.yml exactly: `make ci`
# runs the same four checks plus the benchmark smoke step.

GO ?= go

.PHONY: build test lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# Run every benchmark for one iteration: a compile-and-smoke check.
# For real measurements use: go test -bench=. -benchmem ./...
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build lint test bench
