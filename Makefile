# Local verification mirrors .github/workflows/ci.yml exactly: `make ci`
# runs the same four checks plus the benchmark smoke step.

GO ?= go

# Benchtime for the bench-json artifact: long enough for stable ns/op,
# short enough for CI. Override for local measurement, e.g.
#   make bench-json BENCHTIME=2s
BENCHTIME ?= 0.3s

.PHONY: build test lint bench bench-json smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# Run every benchmark for one iteration: a compile-and-smoke check.
# For real measurements use: go test -bench=. -benchmem ./...
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Run the selection-kernel benchmarks (butterfly vs reference, preprocess
# strategies, greedy selector, sweep parallelism) and emit a
# machine-readable BENCH_selection.json — the artifact CI uploads. Fails if
# the benchmarks stop compiling or running.
# (Two steps, not a pipeline, so a benchmark failure fails the target.)
bench-json:
	$(GO) test -run '^$$' -bench 'Kernel|SweepParallelism|ServiceSelect' -benchmem \
		-benchtime $(BENCHTIME) ./internal/core/ ./internal/service/ . > bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_selection.json
	@rm -f bench.out
	@echo "wrote BENCH_selection.json"

# End-to-end smoke test of the crowdfusiond daemon binary: start it, drive
# one refinement round over HTTP with curl, verify idempotent replay and
# metrics, and shut down cleanly. CI runs this on every push.
smoke:
	$(GO) build -o bin/crowdfusiond ./cmd/crowdfusiond
	./scripts/daemon_smoke.sh ./bin/crowdfusiond

ci: build lint test bench bench-json smoke
