# Local verification mirrors .github/workflows/ci.yml exactly: `make ci`
# runs the same four checks plus the benchmark smoke step.

GO ?= go

# Benchtime for the bench-json artifact: long enough for stable ns/op,
# short enough for CI. Override for local measurement, e.g.
#   make bench-json BENCHTIME=2s
BENCHTIME ?= 0.3s

# Benchmarks the JSON artifact (and therefore the perf ratchet) covers:
# the selection kernel, the sweep scheduler, the serving-path select and
# merge, the weighted merge, and the cross-session batcher.
BENCH_PATTERN ?= Kernel|SweepParallelism|ServiceSelect|ServiceMerge|WeightedMerge|BatchSelect

# Benchmarks bench-diff never fails on: the HTTP and cached-select paths
# are dominated by the net stack and the allocator, the parallelism sweep
# by scheduler jitter, and the /Reference/ oracles exist for differential
# correctness, not speed — their ns/op is trend data, not a gate. The
# production kernels (Butterfly, Fast, PatternCache, BatchSelect, the
# service paths) all stay gated.
BENCH_ALLOW ?= ServiceSelectCached|ServiceSelectHTTP|SweepParallelism|/Reference/

# Whole-suite passes for the JSON artifact and the ratchet. benchdiff
# gates on the minimum ns/op per benchmark across all passes, which
# filters the one-sided noise (preemption, cache pollution) a single
# 0.3s shot is exposed to. The repeats are spread as full-suite passes
# rather than `-count` back-to-back runs on purpose: a multi-second
# contention burst hits every consecutive repeat of one benchmark, but
# has to recur in every pass — minutes apart — to survive the min.
BENCH_REPS ?= 3

# Pinned staticcheck version; CI installs exactly this. Locally, `make
# lint` uses a staticcheck on PATH if present and skips otherwise (the
# sandbox may have no network to install one).
STATICCHECK ?= staticcheck
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test test-cover lint cover bench bench-json bench-diff smoke smoke-restart smoke-cluster smoke-chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Race detector + coverage in ONE pass (atomic covermode is the race-safe
# one anyway), so CI never runs the suite twice. Prints the total so the
# trend is visible straight from CI logs; coverage.out is a CI artifact.
test-cover:
	$(GO) test -race -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not on PATH; skipping (CI runs it pinned at $(STATICCHECK_VERSION))"; \
	fi
	$(GO) mod tidy -diff

cover: test-cover

# Run every benchmark for one iteration: a compile-and-smoke check.
# For real measurements use: go test -bench=. -benchmem ./...
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Run the selection-kernel benchmarks (butterfly vs reference, preprocess
# strategies, greedy selector, sweep parallelism) and emit a
# machine-readable BENCH_selection.json — the artifact CI uploads. Fails if
# the benchmarks stop compiling or running.
# (Two steps, not a pipeline, so a benchmark failure fails the target.)
bench-json:
	@rm -f bench.out
	@for i in $$(seq $(BENCH_REPS)); do \
		echo "bench pass $$i/$(BENCH_REPS)"; \
		$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem \
			-benchtime $(BENCHTIME) ./internal/core/ ./internal/service/ . >> bench.out || exit 1; \
	done
	$(GO) run ./cmd/benchjson < bench.out > BENCH_selection.json
	@rm -f bench.out
	@echo "wrote BENCH_selection.json"

# Perf ratchet: run the benchmarks fresh, diff against the committed
# baseline, and fail on any >10% ns/op regression (or a baseline
# benchmark that vanished). The baseline is BENCH_selection.json at HEAD;
# if the working copy is ahead of HEAD (e.g. you just refreshed it), the
# on-disk file is used instead. -lenient-cpu keeps the gate honest across
# machines: a committed baseline measured on different hardware warns
# rather than fails. To refresh the baseline after a deliberate change:
#   make bench-json && git add BENCH_selection.json
bench-diff:
	@rm -f bench.out
	@for i in $$(seq $(BENCH_REPS)); do \
		echo "bench pass $$i/$(BENCH_REPS)"; \
		$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem \
			-benchtime $(BENCHTIME) ./internal/core/ ./internal/service/ . >> bench.out || exit 1; \
	done
	$(GO) run ./cmd/benchjson < bench.out > BENCH_fresh.json
	@rm -f bench.out
	@git show HEAD:BENCH_selection.json > BENCH_baseline.json 2>/dev/null \
		|| cp BENCH_selection.json BENCH_baseline.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_fresh.json \
		-allow '$(BENCH_ALLOW)' -lenient-cpu -out BENCH_diff.txt

# End-to-end smoke test of the crowdfusiond daemon binary: start it, drive
# one refinement round over HTTP with curl, verify idempotent replay and
# metrics, and shut down cleanly. CI runs this on every push.
smoke:
	$(GO) build -o bin/crowdfusiond ./cmd/crowdfusiond
	./scripts/daemon_smoke.sh ./bin/crowdfusiond

# Crash-recovery smoke: merge an answer set, SIGKILL the daemon, restart
# it over the same -data-dir, and assert the recovered posterior, version
# and budget are bit-identical (and that replaying the merged answer set
# still doesn't double-spend). CI runs this on every push.
smoke-restart:
	$(GO) build -o bin/crowdfusiond ./cmd/crowdfusiond
	./scripts/restart_smoke.sh ./bin/crowdfusiond

# Sharding smoke: boot a 3-node cluster over one shared file store, verify
# not_owner routing, SIGKILL the node owning a mid-refinement session, and
# assert the survivors adopt it by record replay (byte-identical GET,
# idempotent answer replay, loop finishes). CI runs this on every push.
smoke-cluster:
	$(GO) build -o bin/crowdfusiond ./cmd/crowdfusiond
	./scripts/cluster_smoke.sh ./bin/crowdfusiond

# Chaos smoke: boot a 3-node cluster with every node behind a
# fault-injecting TCP proxy, netsplit the owner mid-refinement, and assert
# the lease fence refuses the deposed owner's write (HTTP 421 "fenced"),
# the history never forks, and the healed cluster converges on a posterior
# bit-identical to an unfaulted run — under both a lease steal and a
# clock-skewed expiry takeover. CI runs this on every push.
smoke-chaos:
	$(GO) build -o bin/crowdfusiond ./cmd/crowdfusiond
	$(GO) build -o bin/chaosproxy ./cmd/chaosproxy
	./scripts/chaos_smoke.sh ./bin/crowdfusiond ./bin/chaosproxy

ci: build lint test-cover bench bench-json bench-diff smoke smoke-restart smoke-cluster smoke-chaos
