// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V), plus ablations for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Shapes to expect (absolute numbers are hardware-specific):
//
//   - Table V: OPT grows explosively in k and is skipped past k = 3;
//     Approx grows with k; Prune flattens the growth; Pre cuts a further
//     constant factor; Prune+Pre is fastest.
//   - Figures 2-4: Approx ≈ OPT ≫ Random on final F1 (reported as the
//     custom "F1" metric); higher Pc gives higher utility; smaller k gives
//     better quality per task for Approx.
package crowdfusion

import (
	"fmt"
	"sync"
	"testing"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/fusion"
	"crowdfusion/internal/worlds"
)

// benchData lazily builds the shared benchmark dataset: 60 books and 40
// sources, which yields both >20-fact books (Table V) and a pool of small
// books (Figure 2).
var benchData struct {
	once      sync.Once
	err       error
	dataset   *bookdata.Dataset
	instances []*worlds.Instance
	large     []*worlds.Instance // > 20 facts, for Table V
	small     []*worlds.Instance // 40 smallest, for Figure 2
}

func benchInstances(b *testing.B) ([]*worlds.Instance, []*worlds.Instance, []*worlds.Instance) {
	b.Helper()
	benchData.once.Do(func() {
		cfg := bookdata.DefaultConfig()
		cfg.Books = 60
		cfg.Sources = 40
		cfg.Seed = 1
		d, err := bookdata.Generate(cfg)
		if err != nil {
			benchData.err = err
			return
		}
		truths, err := fusion.NewCRH().Fuse(d.Claims)
		if err != nil {
			benchData.err = err
			return
		}
		ins, err := worlds.BuildAll(d, truths, worlds.DefaultOptions())
		if err != nil {
			benchData.err = err
			return
		}
		benchData.dataset = d
		benchData.instances = ins
		wantLarge := make(map[string]bool)
		for _, isbn := range d.BooksWithAtLeast(21) {
			wantLarge[isbn] = true
		}
		wantSmall := make(map[string]bool)
		for _, isbn := range d.SmallestBooks(40) {
			wantSmall[isbn] = true
		}
		for _, in := range ins {
			if wantLarge[in.ISBN] {
				benchData.large = append(benchData.large, in)
			}
			if wantSmall[in.ISBN] {
				benchData.small = append(benchData.small, in)
			}
		}
	})
	if benchData.err != nil {
		b.Fatal(benchData.err)
	}
	return benchData.instances, benchData.large, benchData.small
}

// --- Table V: one-round selection time of the five approaches ----------

func BenchmarkTable5(b *testing.B) {
	_, large, _ := benchInstances(b)
	if len(large) == 0 {
		b.Fatal("no large books generated")
	}
	selectors := []struct {
		name string
		kind eval.SelectorKind
		maxK int
	}{
		{"OPT", eval.SelOPT, 3}, // the paper's OPT never finished k = 4
		{"Approx", eval.SelApprox, 10},
		{"ApproxPrune", eval.SelApproxPrune, 10},
		{"ApproxPre", eval.SelApproxPre, 10},
		{"ApproxPrunePre", eval.SelApproxFull, 10},
	}
	for _, sc := range selectors {
		for k := 1; k <= sc.maxK; k++ {
			b.Run(fmt.Sprintf("%s/k=%d", sc.name, k), func(b *testing.B) {
				sel, err := eval.NewSelector(sc.kind, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					in := large[i%len(large)]
					if _, err := sel.Select(in.Joint, k, 0.8); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable5DenseRegime reruns the selection-time comparison in the
// paper's own support regime: a dense 2^n-world joint built from
// independent marginals (the paper's |O| = 2^n is what made its absolute
// times so large). n is kept at 12 so the bench stays laptop-sized.
func BenchmarkTable5DenseRegime(b *testing.B) {
	const n = 12
	marginals := make([]float64, n)
	for i := range marginals {
		marginals[i] = 0.3 + 0.4*float64(i)/float64(n-1)
	}
	j, err := dist.Independent(marginals)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		for _, sc := range []struct {
			name string
			sel  core.Selector
		}{
			{"Approx", core.NewGreedy()},
			{"ApproxPrune", core.NewGreedyPrune()},
			{"ApproxPre", core.NewGreedyPre()},
			{"ApproxPrunePre", core.NewGreedyPrunePre()},
		} {
			b.Run(fmt.Sprintf("%s/k=%d", sc.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sc.sel.Select(j, k, 0.8); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 2: OPT vs Approx vs Random quality at k = 2, B = 10 --------

func BenchmarkFig2(b *testing.B) {
	_, _, small := benchInstances(b)
	for _, pc := range []float64{0.7, 0.8, 0.9} {
		for _, kind := range []eval.SelectorKind{eval.SelOPT, eval.SelApprox, eval.SelRandom} {
			b.Run(fmt.Sprintf("pc=%.1f/%s", pc, kind), func(b *testing.B) {
				var lastF1 float64
				for i := 0; i < b.N; i++ {
					res, err := eval.RunSweep(eval.SweepConfig{
						Instances: small,
						Selector:  kind,
						K:         2,
						Budget:    10,
						Pc:        pc,
						Seed:      int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					lastF1 = res.Final.F1()
				}
				b.ReportMetric(lastF1, "F1")
			})
		}
	}
}

// --- Figure 3: k-setting sweep ------------------------------------------

func BenchmarkFig3(b *testing.B) {
	ins, _, _ := benchInstances(b)
	for k := 1; k <= 6; k++ {
		for _, kind := range []eval.SelectorKind{eval.SelApproxPrune, eval.SelRandom} {
			b.Run(fmt.Sprintf("k=%d/%s", k, kind), func(b *testing.B) {
				var lastF1 float64
				for i := 0; i < b.N; i++ {
					res, err := eval.RunSweep(eval.SweepConfig{
						Instances: ins,
						Selector:  kind,
						K:         k,
						Budget:    30,
						Pc:        0.8,
						Seed:      int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					lastF1 = res.Final.F1()
				}
				b.ReportMetric(lastF1, "F1")
			})
		}
	}
}

// --- Figure 4: Pc-setting sweep ------------------------------------------

func BenchmarkFig4(b *testing.B) {
	ins, _, _ := benchInstances(b)
	for _, pc := range []float64{0.7, 0.8, 0.9} {
		for _, kind := range []eval.SelectorKind{eval.SelApproxPrune, eval.SelRandom} {
			b.Run(fmt.Sprintf("pc=%.1f/%s", pc, kind), func(b *testing.B) {
				var lastF1, lastU float64
				for i := 0; i < b.N; i++ {
					res, err := eval.RunSweep(eval.SweepConfig{
						Instances: ins,
						Selector:  kind,
						K:         3,
						Budget:    30,
						Pc:        pc,
						Seed:      int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					lastF1 = res.Final.F1()
					lastU = res.Trace[len(res.Trace)-1].Utility
				}
				b.ReportMetric(lastF1, "F1")
				b.ReportMetric(lastU, "utility")
			})
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationPruneRule compares the sound lazy prune against the
// literal Theorem 3 rule and no pruning at all, at the k where pruning
// pays off.
func BenchmarkAblationPruneRule(b *testing.B) {
	_, large, _ := benchInstances(b)
	if len(large) == 0 {
		b.Skip("no large books")
	}
	selectors := []struct {
		name string
		sel  core.Selector
	}{
		{"NoPrune", core.NewGreedy()},
		{"LazyPrune", core.NewGreedyPrune()},
		{"LiteralPaperRule", &core.GreedySelector{
			Options: core.GreedyOptions{Prune: true, LiteralPaperRule: true}}},
	}
	for _, sc := range selectors {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := large[i%len(large)]
				if _, err := sc.sel.Select(in.Joint, 8, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPreprocess isolates the Section III-F preprocessing
// cost (O(|O|^2)) against the per-evaluation savings it buys.
func BenchmarkAblationPreprocess(b *testing.B) {
	_, large, _ := benchInstances(b)
	if len(large) == 0 {
		b.Skip("no large books")
	}
	in := large[0]
	b.Run("PreprocessOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Preprocess(in.Joint, 0.8); err != nil {
				b.Fatal(err)
			}
		}
	})
	tasks := []int{0, 1, 2, 3, 4, 5}
	b.Run("ExactEntropy/k=6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TaskEntropy(in.Joint, tasks, 0.8); err != nil {
				b.Fatal(err)
			}
		}
	})
	pre, err := core.Preprocess(in.Joint, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("PreprocessedEntropy/k=6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pre.TaskEntropy(tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSupportTruncation measures the cost/quality effect of
// truncating a dense support to its top-M worlds.
func BenchmarkAblationSupportTruncation(b *testing.B) {
	const n = 10
	marginals := make([]float64, n)
	for i := range marginals {
		marginals[i] = 0.35 + 0.3*float64(i)/float64(n-1)
	}
	full, err := dist.Independent(marginals)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{1 << n, 256, 64, 16} {
		j := full.Truncate(m)
		b.Run(fmt.Sprintf("support=%d", j.SupportSize()), func(b *testing.B) {
			sel := core.NewGreedyPrunePre()
			var h float64
			for i := 0; i < b.N; i++ {
				tasks, err := sel.Select(j, 4, 0.8)
				if err != nil {
					b.Fatal(err)
				}
				h, err = core.TaskEntropy(full, tasks, 0.8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(h, "H(T)-on-full")
		})
	}
}

// --- Sweep parallelism ----------------------------------------------------

// BenchmarkSweepParallelism measures the wall-clock effect of stepping
// books across the bounded worker pool: Sequential forces one worker, Auto
// uses every CPU. Results are bit-identical either way (see
// eval.TestSweepParallelismLevelsIdentical); only the wall time may differ,
// by up to the core count on idle multi-core hardware.
func BenchmarkSweepParallelism(b *testing.B) {
	_, _, small := benchInstances(b)
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"Sequential", 1},
		{"Auto", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunSweep(eval.SweepConfig{
					Instances:   small,
					Selector:    eval.SelApproxFull,
					K:           2,
					Budget:      10,
					Pc:          0.8,
					Seed:        1,
					Parallelism: mode.workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Core micro-benchmarks -------------------------------------------------

func BenchmarkMergeAnswers(b *testing.B) {
	_, large, _ := benchInstances(b)
	if len(large) == 0 {
		b.Skip("no large books")
	}
	in := large[0]
	tasks := []int{0, 1, 2}
	answers := []bool{true, false, true}
	for i := 0; i < b.N; i++ {
		if _, err := core.MergeAnswers(in.Joint, tasks, answers, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionInitializers(b *testing.B) {
	d, _, _ := benchDataset(b)
	for _, m := range []fusion.Method{
		fusion.MajorityVote{}, fusion.NewCRH(), fusion.NewTruthFinder(), fusion.NewAccuVote(),
	} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Fuse(d.Claims); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchDataset(b *testing.B) (*bookdata.Dataset, []*worlds.Instance, []*worlds.Instance) {
	b.Helper()
	benchInstances(b)
	return benchData.dataset, benchData.large, benchData.small
}
