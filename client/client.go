// Package client is the Go client for crowdfusiond, the CrowdFusion
// refinement service. It speaks the service's JSON wire format and adds a
// Refine helper that drives a whole select–ask–merge loop against any
// AnswerProvider (a live crowd bridge or the simulated platform).
//
//	c := client.New("http://localhost:8377")
//	info, _ := c.CreateSession(ctx, service.CreateSessionRequest{
//	        Marginals: []float64{0.5, 0.63, 0.58, 0.49},
//	        Pc:        0.8, K: 2, Budget: 6,
//	})
//	final, _ := c.Refine(ctx, info.ID, crowdProvider)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"crowdfusion/internal/service"
)

// Re-exported wire types, so callers need not import the internal package.
type (
	// CreateSessionRequest configures a new refinement session.
	CreateSessionRequest = service.CreateSessionRequest
	// SessionInfo is the client-visible session state.
	SessionInfo = service.SessionInfo
	// SelectResponse is one selected task batch.
	SelectResponse = service.SelectResponse
	// AnswersRequest submits crowd judgments for a selected batch.
	AnswersRequest = service.AnswersRequest
	// AnswersResponse is the refined state after a merge.
	AnswersResponse = service.AnswersResponse
	// WireJoint is the wire form of a joint distribution.
	WireJoint = service.WireJoint
	// RoundInfo is one merged round of a session trace.
	RoundInfo = service.RoundInfo
)

// AnswerProvider supplies crowd answers for a batch of tasks — the same
// contract as core.Engine's provider, so crowd.Simulator and
// platform.Platform plug in directly.
type AnswerProvider interface {
	Answers(tasks []int) []bool
}

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	// Code is the service's machine-readable failure class (the
	// service.Code* constants, e.g. "expired" when the session's state was
	// evicted from a volatile store), or empty for generic errors.
	Code string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("crowdfusiond: %s (HTTP %d, %s)", e.Message, e.StatusCode, e.Code)
	}
	return fmt.Sprintf("crowdfusiond: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Client talks to one crowdfusiond instance. The zero value is not usable;
// construct with New. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, test servers).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8377").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 2 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one JSON request and decodes the response into out (when
// non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var apiErr service.ErrorResponse
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg, Code: apiErr.Code}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// CreateSession creates a refinement session and returns its initial state.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", &req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetSession returns the current session state; withRounds includes the
// per-round trace.
func (c *Client) GetSession(ctx context.Context, id string, withRounds bool) (*SessionInfo, error) {
	path := "/v1/sessions/" + id
	if withRounds {
		path += "?rounds=true"
	}
	var info SessionInfo
	if err := c.do(ctx, http.MethodGet, path, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteSession removes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Select asks for the next task batch. k > 0 overrides the session's
// per-round task count for this batch.
func (c *Client) Select(ctx context.Context, id string, k int) (*SelectResponse, error) {
	var resp SelectResponse
	req := service.SelectRequest{K: k}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/select", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitAnswers merges an answered batch. version should be the Version
// from the SelectResponse the batch came from; it makes retries idempotent
// and stale submissions detectable (HTTP 409).
func (c *Client) SubmitAnswers(ctx context.Context, id string, tasks []int, answers []bool, version int) (*AnswersResponse, error) {
	var resp AnswersResponse
	req := AnswersRequest{Tasks: tasks, Answers: answers, Version: &version}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/answers", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Refine drives the full select–ask–merge loop: select a batch, obtain the
// crowd's answers from the provider, submit them, and repeat until the
// service reports the session done (budget exhausted or nothing uncertain
// left). It returns the final session state.
func (c *Client) Refine(ctx context.Context, id string, crowd AnswerProvider) (*SessionInfo, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sel, err := c.Select(ctx, id, 0)
		if err != nil {
			return nil, err
		}
		if sel.Done || len(sel.Tasks) == 0 {
			break
		}
		answers := crowd.Answers(sel.Tasks)
		if _, err := c.SubmitAnswers(ctx, id, sel.Tasks, answers, sel.Version); err != nil {
			return nil, err
		}
	}
	return c.GetSession(ctx, id, false)
}
