// Package client is the Go client for crowdfusiond, the CrowdFusion
// refinement service. It speaks the service's JSON wire format and adds a
// Refine helper that drives a whole select–ask–merge loop against any
// AnswerProvider (a live crowd bridge or the simulated platform).
//
//	c := client.New("http://localhost:8377")
//	info, _ := c.CreateSession(ctx, service.CreateSessionRequest{
//	        Marginals: []float64{0.5, 0.63, 0.58, 0.49},
//	        Pc:        0.8, K: 2, Budget: 6,
//	})
//	final, _ := c.Refine(ctx, info.ID, crowdProvider)
//
// # Routing
//
// Pointed at a sharded deployment with NewCluster, the client is
// ring-aware: it computes the same rendezvous placement the daemons use
// and sends each session's requests straight to the owner. When its view
// is stale it follows the service's machine-readable redirects (HTTP 421,
// code "not_owner", owner address in the envelope), and when a node stops
// answering it marks the node down for a while and walks the session's
// rendezvous rank order — the same order sessions re-home along — so
// failover needs no coordination: the client and the surviving daemons
// independently agree on where each session went.
//
// # Backpressure
//
// The service sheds load with 503 + Retry-After when its compute gate is
// saturated. The client honors that: requests are retried with bounded
// exponential backoff plus jitter, never sooner than the server asked.
// 503s without Retry-After (e.g. the session cap) are returned immediately
// — they are decisions, not congestion.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crowdfusion/internal/cluster"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/service"
	"crowdfusion/internal/trace"
)

// Re-exported wire types, so callers need not import the internal package.
type (
	// CreateSessionRequest configures a new refinement session.
	CreateSessionRequest = service.CreateSessionRequest
	// SessionInfo is the client-visible session state.
	SessionInfo = service.SessionInfo
	// SelectResponse is one selected task batch.
	SelectResponse = service.SelectResponse
	// AnswersRequest submits crowd judgments for a selected batch.
	AnswersRequest = service.AnswersRequest
	// AnswersResponse is the refined state after a merge.
	AnswersResponse = service.AnswersResponse
	// WireJoint is the wire form of a joint distribution.
	WireJoint = service.WireJoint
	// RoundInfo is one merged round of a session trace.
	RoundInfo = service.RoundInfo
	// SessionEvent is one frame of a session's live event stream (Watch).
	SessionEvent = service.SessionEvent
	// PendingInfo describes a partially answered batch in flight.
	PendingInfo = service.PendingInfo
	// AnswerEvent is one judgment inside a pending batch.
	AnswerEvent = service.AnswerEvent
	// SessionSummary is one row of a session listing.
	SessionSummary = service.SessionSummary
	// ListSessionsResponse is one page of a session listing.
	ListSessionsResponse = service.ListSessionsResponse
	// Judgment is one attributed crowd judgment: a task, an answer, and
	// the worker (and optionally source platform) it came from.
	Judgment = service.Judgment
	// CalibrationResponse is a session's calibration report plus its
	// per-worker accuracy estimates.
	CalibrationResponse = service.CalibrationResponse
	// CalibrationBinInfo is one reliability-diagram bin.
	CalibrationBinInfo = service.CalibrationBinInfo
	// WorkerInfo is one worker's per-session accuracy estimate.
	WorkerInfo = service.WorkerInfo
	// WorkersResponse is the per-node worker fleet view.
	WorkersResponse = service.WorkersResponse
	// WorkerFleetInfo is one worker's aggregate across sessions.
	WorkerFleetInfo = service.WorkerFleetInfo
)

// Worker model names accepted by CreateSessionRequest.WorkerModel.
const (
	WorkerModelFixed      = service.WorkerModelFixed
	WorkerModelEM         = service.WorkerModelEM
	WorkerModelDawidSkene = service.WorkerModelDawidSkene
)

// Event types delivered by Watch, re-exported for consumers switching on
// SessionEvent.Type.
const (
	EventSnapshot = service.EventSnapshot
	EventSelect   = service.EventSelect
	EventPartial  = service.EventPartial
	EventMerge    = service.EventMerge
	EventRefit    = service.EventRefit
	EventDone     = service.EventDone
	EventExpire   = service.EventExpire
	EventDeleted  = service.EventDeleted
	EventRedirect = service.EventRedirect
	EventReset    = service.EventReset
	EventError    = service.EventError
)

// Machine-readable failure codes surfaced in APIError.Code.
const (
	CodeNotFound            = service.CodeNotFound
	CodeExpired             = service.CodeExpired
	CodeVersionConflict     = service.CodeVersionConflict
	CodeBudgetExhausted     = service.CodeBudgetExhausted
	CodeTooManySessions     = service.CodeTooManySessions
	CodeStoreFailure        = service.CodeStoreFailure
	CodeNotOwner            = service.CodeNotOwner
	CodeFenced              = service.CodeFenced
	CodeMethodNotAllowed    = service.CodeMethodNotAllowed
	CodeNoPendingBatch      = service.CodeNoPendingBatch
	CodeNotInBatch          = service.CodeNotInBatch
	CodeAnswerConflict      = service.CodeAnswerConflict
	CodeTooManySubscribers  = service.CodeTooManySubscribers
	CodeUnknownWorkerModel  = service.CodeUnknownWorkerModel
	CodeDuplicateTask       = service.CodeDuplicateTask
	CodeAttributionConflict = service.CodeAttributionConflict
)

// AnswerProvider supplies crowd answers for a batch of tasks — the same
// contract as core.Engine's provider, so crowd.Simulator and
// platform.Platform plug in directly.
type AnswerProvider interface {
	Answers(tasks []int) []bool
}

// ContextAnswerProvider is the context-aware upgrade of AnswerProvider.
// Refine detects it and threads its own context through, so a provider
// waiting on live crowd workers can abort when the refinement loop is
// cancelled instead of blocking the loop past its deadline.
type ContextAnswerProvider interface {
	AnswersContext(ctx context.Context, tasks []int) ([]bool, error)
}

// JudgmentProvider is the attributed upgrade of AnswerProvider: instead of
// bare booleans it returns one Judgment per task naming the worker who
// produced it. Refine detects it (taking precedence over the other
// provider shapes) and submits through the judgments form, so sessions
// running an em or dawid-skene worker model learn per-worker accuracy from
// the loop's own traffic. platform.Platform's Attributed view implements
// it by drawing each round's workers from its crowd pool.
type JudgmentProvider interface {
	JudgmentsContext(ctx context.Context, tasks []int) ([]Judgment, error)
}

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	// Code is the service's machine-readable failure class (the
	// service.Code* constants, e.g. "expired" when the session's state was
	// evicted from a volatile store, or "not_owner" when another node
	// serves the session), or empty for generic errors.
	Code string
	// Owner accompanies Codes "not_owner" and "fenced": the address of the
	// node that serves the session (for fenced, the current write-lease
	// holder). The routing layer follows it automatically.
	Owner string
	// Throttled reports that the response carried a Retry-After header —
	// the service's congestion signal, as opposed to a 503 that is a
	// decision (e.g. the session cap). The retry layer backs off and
	// retries throttled responses automatically.
	Throttled bool
	// RetryAfter is the parsed Retry-After value (zero when absent or 0).
	RetryAfter time.Duration
	// RequestID is the server-side request identifier for the failed
	// exchange (the envelope's request_id field, falling back to the
	// X-Request-Id response header). Quote it when reporting a failure —
	// it is the join key into the server's access log and /debug/traces.
	RequestID string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("crowdfusiond: %s (HTTP %d, %s)", e.Message, e.StatusCode, e.Code)
	}
	return fmt.Sprintf("crowdfusiond: %s (HTTP %d)", e.Message, e.StatusCode)
}

// downTTL is how long a node that failed at the transport level is skipped
// before the client probes it again. Long enough to stop hammering a dead
// node on every request, short enough that a restarted node is picked back
// up about as fast as the daemons' own ring re-admits it.
const downTTL = 3 * time.Second

// Client talks to a crowdfusiond deployment — one node (New) or a sharded
// fleet (NewCluster). The zero value is not usable; construct with New or
// NewCluster. Safe for concurrent use.
type Client struct {
	peers []string // normalized base URLs, rendezvous-hashed for routing
	http  *http.Client

	// tracer mints the spans whose traceparent headers stitch client
	// attempts and server hops into one distributed trace. The default is
	// recorder-less — IDs flow, nothing is kept; WithTracer swaps in a
	// recording tracer.
	tracer *trace.Tracer

	// 503+Retry-After backoff policy.
	maxRetries  int
	backoffBase time.Duration
	backoffCap  time.Duration

	// rr spreads session creation across nodes.
	rr atomic.Uint64

	// downUntil is the transport-failure cache: nodes are skipped while
	// their entry is in the future. This is the client's "view of the
	// topology"; it refreshes by expiry, by a successful response, and by
	// not_owner redirects that point somewhere livelier.
	mu        sync.Mutex
	downUntil map[string]time.Time
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, test servers).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithTracer substitutes the client's tracer. Pass trace.New("client",
// trace.NewRecorder("client")) to keep spans in process (inspect them with
// the recorder's Snapshot); the default recorder-less tracer still
// propagates trace context on every request but records nothing.
func WithTracer(t *trace.Tracer) Option {
	return func(c *Client) {
		if t != nil {
			c.tracer = t
		}
	}
}

// WithBackoff tunes the 503+Retry-After retry policy: at most maxRetries
// retries, exponential from base up to cap, with jitter. maxRetries 0
// disables retrying (the 503 is returned to the caller); base and cap
// zero keep the defaults (4 retries, 100ms base, 2s cap).
func WithBackoff(maxRetries int, base, cap time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = maxRetries
		if base > 0 {
			c.backoffBase = base
		}
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// New builds a client for a single-node service at baseURL (e.g.
// "http://localhost:8377").
func New(baseURL string, opts ...Option) *Client {
	c, err := NewCluster([]string{baseURL}, opts...)
	if err != nil {
		// Preserve New's historical can't-fail signature: a malformed URL
		// surfaces on the first request instead.
		c = &Client{peers: []string{baseURL}}
		c.defaults()
		for _, o := range opts {
			o(c)
		}
	}
	return c
}

// NewCluster builds a ring-aware client for a sharded deployment. peers
// must list every daemon's advertised address — the same -peers list the
// daemons run with — because client and servers compute placement from the
// same normalized strings.
func NewCluster(peers []string, opts ...Option) (*Client, error) {
	if len(peers) == 0 {
		return nil, errors.New("client: at least one peer address is required")
	}
	normalized, err := cluster.NormalizeList(peers)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{peers: normalized}
	c.defaults()
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

func (c *Client) defaults() {
	c.http = &http.Client{Timeout: 2 * time.Minute}
	c.tracer = trace.New("client", nil)
	c.maxRetries = 4
	c.backoffBase = 100 * time.Millisecond
	c.backoffCap = 2 * time.Second
	c.downUntil = make(map[string]time.Time)
}

// Peers returns the client's normalized view of the deployment.
func (c *Client) Peers() []string { return append([]string(nil), c.peers...) }

// markDown records a transport-level failure; the node is skipped until
// the entry expires.
func (c *Client) markDown(node string) {
	c.mu.Lock()
	c.downUntil[node] = time.Now().Add(downTTL)
	c.mu.Unlock()
}

// markUp clears a node's down entry after a successful exchange.
func (c *Client) markUp(node string) {
	c.mu.Lock()
	if len(c.downUntil) > 0 {
		delete(c.downUntil, node)
	}
	c.mu.Unlock()
}

// pick chooses the next node to try: the redirect hint when usable,
// otherwise the first candidate not currently marked down, otherwise the
// top candidate regardless (when everything looks down, the best guess is
// still the owner).
func (c *Client) pick(order []string, hint string) string {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if hint != "" && c.downUntil[hint].Before(now) {
		return hint
	}
	for _, p := range order {
		if c.downUntil[p].Before(now) {
			return p
		}
	}
	return order[0]
}

// backoffDelay computes the nth retry delay: exponential from base, capped,
// with jitter over the upper half so synchronized clients spread out, and
// never below the server's Retry-After floor.
func (c *Client) backoffDelay(n int, floor time.Duration) time.Duration {
	d := c.backoffBase
	for i := 1; i < n && d < c.backoffCap; i++ {
		d *= 2
	}
	if d > c.backoffCap {
		d = c.backoffCap
	}
	d = d/2 + rand.N(d/2+1)
	if floor > 0 && d < floor {
		d = floor
	}
	return d
}

// permanentError marks client-side failures (request encoding, response
// decoding) that no other node can fix — and that may follow a request the
// server already applied, so retrying elsewhere would duplicate side
// effects rather than recover from them. The routing layer returns them
// immediately instead of treating them as node death.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// sleepCtx waits d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doNode issues one JSON request against one node and decodes the response
// into out (when non-nil). Transport errors come back unwrapped inside the
// fmt error; service errors come back as *APIError.
func (c *Client) doNode(ctx context.Context, node, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return &permanentError{fmt.Errorf("client: encoding request: %w", err)}
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, node+path, rd)
	if err != nil {
		return &permanentError{fmt.Errorf("client: building request: %w", err)}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sp := trace.SpanFromContext(ctx); sp != nil {
		req.Header.Set("traceparent", sp.Context().Traceparent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s%s: %w", method, node, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	c.markUp(node)
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// The server already processed the request (2xx); this failure is
		// ours, so it must not be mistaken for node death and replayed.
		return &permanentError{fmt.Errorf("client: decoding response: %w", err)}
	}
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError, reading the
// service's JSON envelope when one is present. It does not close the body.
func decodeAPIError(resp *http.Response) *APIError {
	var envelope service.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	throttled := false
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		throttled = true
		retryAfter = time.Duration(secs) * time.Second
	}
	requestID := envelope.RequestID
	if requestID == "" {
		requestID = resp.Header.Get("X-Request-Id")
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Message:    msg,
		Code:       envelope.Code,
		Owner:      envelope.Owner,
		Throttled:  throttled,
		RetryAfter: retryAfter,
		RequestID:  requestID,
	}
}

// route drives one logical request to completion across the candidate
// order: follow not_owner and fenced redirects, fail over past dead nodes
// along the rendezvous rank (pausing between full cycles so daemon-side
// failure detection can catch up), and absorb saturation 503s with
// backoff. Any other error belongs to the caller.
func (c *Client) route(ctx context.Context, order []string, method, path string, body, out any) (rerr error) {
	// One span covers the logical request (joining any trace already on
	// ctx, e.g. Refine's root span), and each network attempt gets a child
	// span — so a redirect-then-retry shows up as two attempts under one
	// request, and the traceparent each server hop continues from is the
	// attempt that actually reached it.
	ctx, rsp := c.tracer.Start(ctx, "client "+method+" "+path)
	defer func() { rsp.SetError(rerr); rsp.End() }()
	// Enough attempts to redirect or fail over across the fleet a few
	// times with backoff in between; routing that hasn't settled by then
	// reports the last error rather than retrying forever.
	attempts := 4*len(order) + c.maxRetries + 4
	var lastErr error
	hint := ""   // owner address from a not_owner redirect
	cycles := 0  // unproductive passes, drives the failover backoff
	retries := 0 // 503+Retry-After retries, bounded by maxRetries
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		node := c.pick(order, hint)
		hint = ""
		attemptCtx, asp := c.tracer.Start(ctx, "client.attempt")
		asp.SetAttr("node", node)
		err := c.doNode(attemptCtx, node, method, path, body, out)
		if err != nil {
			var ae *APIError
			if errors.As(err, &ae) {
				asp.SetAttr("status", ae.StatusCode)
				if ae.Code != "" {
					asp.SetAttr("code", ae.Code)
				}
			}
			asp.SetError(err)
		}
		asp.End()
		if err == nil {
			return nil
		}
		lastErr = err
		var perm *permanentError
		if errors.As(err, &perm) {
			return err
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			if len(order) == 1 {
				// Single node, nothing to fail over to: surface transport
				// errors immediately (New's historical behavior).
				return err
			}
			c.markDown(node)
			cycles++
			if err := sleepCtx(ctx, c.backoffDelay(cycles, 0)); err != nil {
				return err
			}
			continue
		}
		switch {
		case apiErr.Code == service.CodeNotOwner && apiErr.Owner != "",
			apiErr.Code == service.CodeFenced:
			// Stale view: jump to the claimed owner. If redirects chase
			// each other (rings mid-convergence), pause each full lap so
			// the daemons' failure detectors can settle. A fenced answer
			// is the same situation proved differently — the node's write
			// lease was superseded — and is safe to retry elsewhere
			// because the fenced write was never applied; without an
			// owner hint it re-resolves along the rendezvous rank.
			if owner, err := cluster.Normalize(apiErr.Owner); err == nil && apiErr.Owner != "" {
				hint = owner
			} else {
				// No usable owner in the envelope: demote the bouncing node
				// so pick advances to the next peer in rank order instead of
				// retrying the same refusal.
				c.markDown(node)
			}
			cycles++
			if cycles%(len(order)+1) == 0 {
				if err := sleepCtx(ctx, c.backoffDelay(cycles/(len(order)+1), 0)); err != nil {
					return err
				}
			}
		case apiErr.StatusCode == http.StatusServiceUnavailable && apiErr.Throttled:
			// Saturation backpressure: retry the same node, never sooner
			// than it asked, with bounded exponential backoff + jitter.
			retries++
			if retries > c.maxRetries {
				return err
			}
			if err := sleepCtx(ctx, c.backoffDelay(retries, apiErr.RetryAfter)); err != nil {
				return err
			}
			hint = node
		default:
			return err
		}
	}
	return lastErr
}

// routed sends one session-addressed request along the session's
// rendezvous rank order — owner first, then the peers it would re-home to.
func (c *Client) routed(ctx context.Context, sessionID, method, path string, body, out any) error {
	return c.route(ctx, cluster.RankOrder(c.peers, sessionID), method, path, body, out)
}

// CreateSession creates a refinement session and returns its initial
// state. Any node can create (each mints IDs it owns), so creates are
// spread round-robin across the fleet.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (*SessionInfo, error) {
	start := int(c.rr.Add(1)-1) % len(c.peers)
	order := make([]string, 0, len(c.peers))
	order = append(order, c.peers[start:]...)
	order = append(order, c.peers[:start]...)
	var info SessionInfo
	if err := c.route(ctx, order, http.MethodPost, "/v1/sessions", &req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetSession returns the current session state; withRounds includes the
// per-round trace.
func (c *Client) GetSession(ctx context.Context, id string, withRounds bool) (*SessionInfo, error) {
	path := "/v1/sessions/" + id
	if withRounds {
		path += "?rounds=true"
	}
	var info SessionInfo
	if err := c.routed(ctx, id, http.MethodGet, path, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteSession removes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.routed(ctx, id, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Select asks for the next task batch. k > 0 overrides the session's
// per-round task count for this batch.
func (c *Client) Select(ctx context.Context, id string, k int) (*SelectResponse, error) {
	var resp SelectResponse
	req := service.SelectRequest{K: k}
	if err := c.routed(ctx, id, http.MethodPost, "/v1/sessions/"+id+"/select", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitAnswers merges an answered batch. version should be the Version
// from the SelectResponse the batch came from; it makes retries idempotent
// and stale submissions detectable (HTTP 409). Idempotency is what makes
// the routing layer's failover safe here: a merge resubmitted to a
// session's new owner after a node death replays, it never double-spends.
func (c *Client) SubmitAnswers(ctx context.Context, id string, tasks []int, answers []bool, version int) (*AnswersResponse, error) {
	var resp AnswersResponse
	req := AnswersRequest{Tasks: tasks, Answers: answers, Version: &version}
	if err := c.routed(ctx, id, http.MethodPost, "/v1/sessions/"+id+"/answers", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitAnswer submits a single judgment against the session's pending
// batch — the incremental counterpart of SubmitAnswers. The service
// journals the partial durably and returns the provisional posterior
// (Partial true, Version unchanged); the judgment that completes its batch
// commits the whole round exactly as one batched SubmitAnswers would, bit
// for bit, and the response reports Merged true. Resubmitting an
// already-journaled judgment replays idempotently, so the routing layer's
// failover is as safe here as for full batches.
//
// An optional trailing worker ID attributes the judgment: the service
// records it as an observation for the session's worker-accuracy model
// (and enforces that retries keep the same attribution). Omitted, the
// legacy unattributed form is sent unchanged.
func (c *Client) SubmitAnswer(ctx context.Context, id string, task int, answer bool, version int, worker ...string) (*AnswersResponse, error) {
	req := AnswersRequest{Version: &version, Partial: true}
	if len(worker) > 0 && worker[0] != "" {
		req.Judgments = []Judgment{{Task: task, Answer: answer, Worker: worker[0]}}
	} else {
		req.Tasks, req.Answers = []int{task}, []bool{answer}
	}
	var resp AnswersResponse
	if err := c.routed(ctx, id, http.MethodPost, "/v1/sessions/"+id+"/answers", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitJudgments merges a batch of attributed judgments — the canonical
// form of SubmitAnswers. version should be the Version from the
// SelectResponse the batch answers; partial journals the judgments against
// the pending batch instead of requiring full coverage. Retries are
// idempotent like SubmitAnswers, with one extra guarantee: a retry that
// re-attributes a committed judgment to a different worker is refused with
// code attribution_conflict rather than silently replayed.
func (c *Client) SubmitJudgments(ctx context.Context, id string, judgments []Judgment, version int, partial bool) (*AnswersResponse, error) {
	var resp AnswersResponse
	req := AnswersRequest{Judgments: judgments, Version: &version, Partial: partial}
	if err := c.routed(ctx, id, http.MethodPost, "/v1/sessions/"+id+"/answers", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Calibration fetches the session's calibration report: reliability bins
// for the posterior's marginals plus per-worker accuracy, bias, support,
// and Wilson bounds. bins <= 0 uses the server default (10).
func (c *Client) Calibration(ctx context.Context, id string, bins int) (*CalibrationResponse, error) {
	path := "/v1/sessions/" + id + "/calibration"
	if bins > 0 {
		path += "?bins=" + strconv.Itoa(bins)
	}
	var resp CalibrationResponse
	if err := c.routed(ctx, id, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Workers returns the worker fleet view. Each node reports the workers its
// resident sessions have observed; against a fleet every peer is asked and
// the rows merged (support-weighted accuracy, pooled counts), so a down
// node makes the call fail rather than silently shrink the roster.
func (c *Client) Workers(ctx context.Context) (*WorkersResponse, error) {
	type agg struct {
		sessions, support, correct int
		weighted                   float64
	}
	aggs := make(map[string]*agg)
	sessions := 0
	for _, p := range c.peers {
		var page WorkersResponse
		if err := c.route(ctx, []string{p}, http.MethodGet, "/v1/workers", nil, &page); err != nil {
			return nil, err
		}
		sessions += page.Sessions
		for _, wi := range page.Workers {
			a := aggs[wi.Worker]
			if a == nil {
				a = &agg{}
				aggs[wi.Worker] = a
			}
			a.sessions += wi.Sessions
			a.support += wi.Support
			a.correct += wi.Correct
			a.weighted += float64(wi.Support) * wi.Accuracy
		}
	}
	resp := &WorkersResponse{Workers: make([]WorkerFleetInfo, 0, len(aggs)), Sessions: sessions}
	for w, a := range aggs {
		fi := WorkerFleetInfo{Worker: w, Sessions: a.sessions, Support: a.support, Correct: a.correct}
		if a.support > 0 {
			fi.Accuracy = a.weighted / float64(a.support)
		}
		fi.WilsonLo, fi.WilsonHi = crowd.WilsonInterval(a.correct, a.support)
		resp.Workers = append(resp.Workers, fi)
	}
	sort.Slice(resp.Workers, func(i, j int) bool { return resp.Workers[i].Worker < resp.Workers[j].Worker })
	return resp, nil
}

// ListSessions returns one page of the deployment's sessions in ID order,
// resuming after the `after` cursor; limit <= 0 means the server default
// (100). Against a fleet every peer is asked for its owned sessions and the
// pages are merged, so a down node makes the listing fail rather than
// silently shrink.
func (c *Client) ListSessions(ctx context.Context, after string, limit int) (*ListSessionsResponse, error) {
	path := "/v1/sessions"
	q := url.Values{}
	if after != "" {
		q.Set("after", after)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	} else {
		limit = 100
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	all := []SessionSummary{}
	more := false
	for _, p := range c.peers {
		var page ListSessionsResponse
		if err := c.route(ctx, []string{p}, http.MethodGet, path, nil, &page); err != nil {
			return nil, err
		}
		all = append(all, page.Sessions...)
		if page.NextAfter != "" {
			more = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if len(all) > limit {
		all = all[:limit]
		more = true
	}
	resp := &ListSessionsResponse{Sessions: all}
	if more && len(all) > 0 {
		resp.NextAfter = all[len(all)-1].ID
	}
	return resp, nil
}

// Refine drives the full select–ask–merge loop: select a batch, obtain the
// crowd's answers from the provider, submit them, and repeat until the
// service reports the session done (budget exhausted or nothing uncertain
// left). It returns the final session state. A provider that also
// implements ContextAnswerProvider gets the loop's context and may abort
// the refinement by returning an error.
//
// The whole loop runs under one root span ("client.refine"), so every
// select, submit, retry, and redirect it makes — and every server-side
// span those requests produce — shares a single trace ID.
func (c *Client) Refine(ctx context.Context, id string, crowd AnswerProvider) (info *SessionInfo, err error) {
	ctx, sp := c.tracer.Start(ctx, "client.refine")
	sp.SetAttr("session", id)
	rounds := 0
	defer func() {
		sp.SetAttr("rounds", rounds)
		sp.SetError(err)
		sp.End()
	}()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sel, err := c.Select(ctx, id, 0)
		if err != nil {
			return nil, err
		}
		if sel.Done || len(sel.Tasks) == 0 {
			break
		}
		if jp, ok := crowd.(JudgmentProvider); ok {
			judgments, err := jp.JudgmentsContext(ctx, sel.Tasks)
			if err != nil {
				return nil, fmt.Errorf("client: judgment provider: %w", err)
			}
			if _, err := c.SubmitJudgments(ctx, id, judgments, sel.Version, false); err != nil {
				return nil, err
			}
			rounds++
			continue
		}
		var answers []bool
		if cp, ok := crowd.(ContextAnswerProvider); ok {
			answers, err = cp.AnswersContext(ctx, sel.Tasks)
			if err != nil {
				return nil, fmt.Errorf("client: answer provider: %w", err)
			}
		} else {
			answers = crowd.Answers(sel.Tasks)
		}
		if _, err := c.SubmitAnswers(ctx, id, sel.Tasks, answers, sel.Version); err != nil {
			return nil, err
		}
		rounds++
	}
	return c.GetSession(ctx, id, false)
}
