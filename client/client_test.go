package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"crowdfusion/client"
	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/platform"
	"crowdfusion/internal/service"
	"crowdfusion/internal/store"
)

// newTestService starts the in-process daemon stack on httptest and returns
// a client pointed at it.
func newTestService(t *testing.T) *client.Client {
	t.Helper()
	svc := service.NewServer(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

// newPlatform builds a deterministic simulated crowd platform. Two
// platforms built from the same arguments answer identical task sequences
// identically (answers derive from the seed and task sequence numbers
// only), which is what lets the HTTP loop be compared against the
// in-process engine bit for bit.
func newPlatform(t *testing.T, truth dist.World, seed int64) *platform.Platform {
	t.Helper()
	pool, err := crowd.RandomPool(12, 0.7, 0.95, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := platform.New(platform.Config{
		Truth:      truth,
		Pool:       pool,
		Redundancy: 3,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRefineOverHTTPMatchesEngine is the acceptance end-to-end: the full
// select–ask–merge loop over HTTP against the in-process daemon, crowd
// answers from the simulated platform, must reproduce exactly the
// posterior the in-process core.Engine computes from the same prior,
// selector, accuracy, budget and crowd seed.
func TestRefineOverHTTPMatchesEngine(t *testing.T) {
	marginals := []float64{0.5, 0.63, 0.58, 0.49, 0.71}
	truth := dist.World(0b10110)
	const (
		pc     = 0.8
		k      = 2
		budget = 10
		seed   = 42
	)

	prior, err := dist.Independent(marginals)
	if err != nil {
		t.Fatal(err)
	}
	eng := &core.Engine{
		Prior:    prior,
		Selector: core.NewGreedyPrunePre(),
		Crowd:    newPlatform(t, truth, seed),
		Pc:       pc,
		K:        k,
		Budget:   budget,
	}
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	c := newTestService(t)
	ctx := context.Background()
	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: marginals,
		Selector:  "Approx+Prune+Pre",
		Pc:        pc,
		K:         k,
		Budget:    budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Refine(ctx, info.ID, newPlatform(t, truth, seed))
	if err != nil {
		t.Fatal(err)
	}

	if final.Spent != want.Cost {
		t.Fatalf("HTTP loop spent %d tasks, engine %d", final.Spent, want.Cost)
	}
	wantM := want.Final.Marginals()
	if len(final.Marginals) != len(wantM) {
		t.Fatalf("marginal count %d != %d", len(final.Marginals), len(wantM))
	}
	for i := range wantM {
		// encoding/json emits the shortest round-tripping representation,
		// so the posterior survives the wire exactly.
		if final.Marginals[i] != wantM[i] {
			t.Fatalf("marginal %d: HTTP %v != engine %v", i, final.Marginals[i], wantM[i])
		}
	}
	if final.Entropy != want.Final.Entropy() {
		t.Fatalf("entropy: HTTP %v != engine %v", final.Entropy, want.Final.Entropy())
	}

	// The per-round traces must agree task for task and answer for answer.
	withRounds, err := c.GetSession(ctx, info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(withRounds.Rounds) != len(want.Rounds) {
		t.Fatalf("HTTP %d rounds, engine %d", len(withRounds.Rounds), len(want.Rounds))
	}
	for i, r := range want.Rounds {
		got := withRounds.Rounds[i]
		if !reflect.DeepEqual(got.Tasks, r.Tasks) || !reflect.DeepEqual(got.Answers, r.Answers) {
			t.Fatalf("round %d: HTTP (%v, %v) != engine (%v, %v)",
				i, got.Tasks, got.Answers, r.Tasks, r.Answers)
		}
		if got.CumCost != r.CumCost {
			t.Fatalf("round %d: cum cost %d != %d", i, got.CumCost, r.CumCost)
		}
	}

	// The refined judgments should match the engine's too.
	judge := want.Judgments()
	for i, m := range final.Marginals {
		if (m >= 0.5) != judge[i] {
			t.Fatalf("judgment %d disagrees with engine", i)
		}
	}
}

// TestRefineFromExplicitJoint drives the loop from a correlated prior sent
// as an explicit wire joint (mutually exclusive author sets), the path
// fusion callers with full joints use.
func TestRefineFromExplicitJoint(t *testing.T) {
	_, prior := dist.RunningExample()
	truth := dist.World(0b0011)

	c := newTestService(t)
	ctx := context.Background()
	jw := service.NewWireJoint(prior)
	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Joint:  &jw,
		Pc:     0.8,
		K:      2,
		Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.SupportSize != prior.SupportSize() || info.N != prior.N() {
		t.Fatalf("prior reshaped: %+v", info)
	}
	sim, err := crowd.NewSimulator(truth, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Refine(ctx, info.ID, sim)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatalf("refine returned before completion: %+v", final)
	}
	if final.Spent == 0 || final.Spent > final.Budget {
		t.Fatalf("spent %d of %d", final.Spent, final.Budget)
	}
	if final.Entropy >= prior.Entropy() {
		t.Fatalf("entropy did not improve: %v -> %v", prior.Entropy(), final.Entropy)
	}
}

func TestClientErrorMapping(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()

	_, err := c.GetSession(ctx, "nope", false)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown session error = %v", err)
	}

	_, err = c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.5}, Pc: 0.1, K: 1, Budget: 2,
	})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("invalid create error = %v", err)
	}
	if apiErr.Message == "" {
		t.Fatal("error envelope message lost")
	}

	// Stale-version submission maps to 409.
	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.5, 0.5}, Pc: 0.8, K: 1, Budget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := c.Select(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAnswers(ctx, info.ID, sel.Tasks, []bool{true}, sel.Version); err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitAnswers(ctx, info.ID, sel.Tasks, []bool{false}, sel.Version)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 409 {
		t.Fatalf("stale submit error = %v", err)
	}
	if apiErr.Code != service.CodeVersionConflict {
		t.Fatalf("stale submit code = %q, want %q", apiErr.Code, service.CodeVersionConflict)
	}
}

// TestRefineSurvivesDaemonRestart is the recovery-aware end-to-end: half
// the refinement loop runs against one daemon stack over a durable file
// store, the stack is torn down with no drain (the crash analogue), a
// fresh stack is built over the same directory, and the same client loop
// finishes against it. The final posterior must match what the in-process
// core.Engine computes in one uninterrupted run — bit for bit — proving
// the restart was invisible to the refinement math. The client itself
// needs no API change: the session ID is the only state it carries.
func TestRefineSurvivesDaemonRestart(t *testing.T) {
	marginals := []float64{0.5, 0.63, 0.58, 0.49, 0.71}
	truth := dist.World(0b10110)
	const (
		pc     = 0.8
		k      = 2
		budget = 10
		seed   = 42
	)

	prior, err := dist.Independent(marginals)
	if err != nil {
		t.Fatal(err)
	}
	eng := &core.Engine{
		Prior:    prior,
		Selector: core.NewGreedyPrunePre(),
		Crowd:    newPlatform(t, truth, seed),
		Pc:       pc,
		K:        k,
		Budget:   budget,
	}
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	openStack := func() (*httptest.Server, *client.Client) {
		fs, err := store.NewFile(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		svc := service.NewServer(service.Config{Store: fs})
		ts := httptest.NewServer(svc.Handler())
		// Stop janitors at test end. Mid-test the first stack is killed
		// by ts.Close() alone — the crash analogue leaves svc un-drained
		// on purpose (httptest.Server.Close and service.Close are both
		// idempotent, so the cleanup double-close is safe).
		t.Cleanup(func() {
			ts.Close()
			svc.Close()
		})
		return ts, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	}

	// The crowd is one platform instance across both daemon lifetimes:
	// worker answers derive from the task sequence, which the restart must
	// not disturb.
	crowdSim := newPlatform(t, truth, seed)
	ctx := context.Background()

	ts1, c1 := openStack()
	info, err := c1.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: marginals,
		Selector:  "Approx+Prune+Pre",
		Pc:        pc,
		K:         k,
		Budget:    budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First half of the loop, by hand (Refine would run to completion).
	spent := 0
	for spent < budget/2 {
		sel, err := c1.Select(ctx, info.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Done || len(sel.Tasks) == 0 {
			break
		}
		merged, err := c1.SubmitAnswers(ctx, info.ID, sel.Tasks, crowdSim.Answers(sel.Tasks), sel.Version)
		if err != nil {
			t.Fatal(err)
		}
		spent = merged.Spent
	}
	if spent == 0 {
		t.Fatal("no rounds completed before the restart")
	}
	// Kill the stack: listener gone, no drain, no flush. Every
	// acknowledged merge must already be durable.
	ts1.Close()

	ts2, c2 := openStack()
	defer ts2.Close()
	final, err := c2.Refine(ctx, info.ID, crowdSim)
	if err != nil {
		t.Fatal(err)
	}

	if final.Spent != want.Cost {
		t.Fatalf("restarted loop spent %d tasks, engine %d", final.Spent, want.Cost)
	}
	wantM := want.Final.Marginals()
	for i := range wantM {
		if final.Marginals[i] != wantM[i] {
			t.Fatalf("marginal %d: restarted loop %v != engine %v", i, final.Marginals[i], wantM[i])
		}
	}
	if final.Entropy != want.Final.Entropy() {
		t.Fatalf("entropy: restarted loop %v != engine %v", final.Entropy, want.Final.Entropy())
	}
	withRounds, err := c2.GetSession(ctx, info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(withRounds.Rounds) != len(want.Rounds) {
		t.Fatalf("restarted loop %d rounds, engine %d", len(withRounds.Rounds), len(want.Rounds))
	}
	for i, r := range want.Rounds {
		got := withRounds.Rounds[i]
		if !reflect.DeepEqual(got.Tasks, r.Tasks) || !reflect.DeepEqual(got.Answers, r.Answers) {
			t.Fatalf("round %d: restarted loop (%v, %v) != engine (%v, %v)",
				i, got.Tasks, got.Answers, r.Tasks, r.Answers)
		}
	}
}

func TestClientDeleteSession(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()
	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.6, 0.4}, Pc: 0.9, K: 1, Budget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := c.GetSession(ctx, info.ID, false); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("get after delete = %v", err)
	}
}
