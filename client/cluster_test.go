package client_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"crowdfusion/client"
	"crowdfusion/internal/cluster"
	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/service"
	"crowdfusion/internal/store"
	"crowdfusion/internal/trace"
)

// testNode is one in-process daemon of a test cluster: its own HTTP
// listener, ring view, and file-store handle — all three nodes share one
// data directory, exactly like a fleet on one network file system.
type testNode struct {
	addr string
	ring *cluster.Ring
	svc  *service.Server
	http *http.Server
	ln   net.Listener
	rec  *trace.Recorder
}

// kill simulates SIGKILL: the listener and connections drop, nothing is
// flushed. The node's durable op log is all that survives — which is the
// point.
func (n *testNode) kill() {
	n.ring.Stop()
	_ = n.http.Close()
}

// startCluster boots size nodes over one shared data dir with fast failure
// detection and returns them with a ring-aware client.
func startCluster(t *testing.T, size int) ([]*testNode, *client.Client) {
	t.Helper()
	dir := t.TempDir()

	listeners := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}

	nodes := make([]*testNode, size)
	for i := range nodes {
		fs, err := store.NewFile(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		ring, err := cluster.New(cluster.Config{
			Self:          addrs[i],
			Peers:         addrs,
			ProbeInterval: 25 * time.Millisecond,
			// Generous probe timeout: under -race a loaded runner can take
			// tens of ms to answer /healthz, and a false suspicion would
			// make a node claim sessions it shouldn't. A killed node still
			// fails fast (connection refused, no timeout involved).
			ProbeTimeout: time.Second,
			SuspectAfter: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder(addrs[i])
		svc := service.NewServer(service.Config{
			Store:   fs,
			Cluster: ring,
			Tracer:  trace.New(addrs[i], rec),
		})
		node := &testNode{
			addr: addrs[i],
			ring: ring,
			svc:  svc,
			http: &http.Server{Handler: svc.Handler()},
			ln:   listeners[i],
			rec:  rec,
		}
		go func() { _ = node.http.Serve(node.ln) }()
		ring.Start()
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ring.Stop()
			_ = n.http.Close()
			// Killed nodes are deliberately NOT svc.Closed: a close would
			// flush a stale snapshot over ops the adopter appended — the
			// exact hazard relinquish-before-retire exists to prevent.
		}
	})

	c, err := client.NewCluster(addrs,
		client.WithBackoff(4, 5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return nodes, c
}

// TestClusterRoutesByOwnership: creates land on self-owned nodes, a
// misrouted raw request answers 421 not_owner with the owner's address,
// and the routing client reads every session wherever it lives.
func TestClusterRoutesByOwnership(t *testing.T) {
	nodes, c := startCluster(t, 3)
	ctx := context.Background()

	ids := make([]string, 6)
	for i := range ids {
		info, err := c.CreateSession(ctx, client.CreateSessionRequest{
			Marginals: []float64{0.5, 0.63, 0.58, 0.49},
			Pc:        0.8, K: 2, Budget: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}

	for _, id := range ids {
		owner := nodes[0].ring.StaticOwner(id)
		// Raw HTTP against a non-owner must get the machine-readable
		// redirect; against the owner, the session. (The client is not
		// used here on purpose: even a single-node client follows
		// not_owner redirects, which would hide the wire contract.)
		for _, n := range nodes {
			resp, err := http.Get(n.addr + "/v1/sessions/" + id)
			if err != nil {
				t.Fatal(err)
			}
			if n.addr == owner {
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("owner %s answered %d for its session %s", n.addr, resp.StatusCode, id)
				}
				resp.Body.Close()
				continue
			}
			if resp.StatusCode != http.StatusMisdirectedRequest {
				t.Fatalf("non-owner %s answered %d for %s, want 421", n.addr, resp.StatusCode, id)
			}
			var envelope service.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if envelope.Code != service.CodeNotOwner || envelope.Owner != owner {
				t.Fatalf("non-owner %s envelope = %+v, want code=not_owner owner=%s",
					n.addr, envelope, owner)
			}
		}
		// The ring-aware client lands everywhere without seeing any of it.
		if _, err := c.GetSession(ctx, id, false); err != nil {
			t.Fatalf("routed GetSession(%s): %v", id, err)
		}
	}

	// A single-node client pinned to the wrong node still reaches the
	// session by following the redirect transparently.
	id := ids[0]
	for _, n := range nodes {
		if n.addr == nodes[0].ring.StaticOwner(id) {
			continue
		}
		single := client.New(n.addr, client.WithBackoff(0, time.Millisecond, time.Millisecond))
		if _, err := single.GetSession(ctx, id, false); err != nil {
			t.Fatalf("single-node client on %s did not follow the redirect: %v", n.addr, err)
		}
		break
	}
}

// TestClusterFailoverMidLoop is the acceptance end-to-end: the full
// select→answer loop through the ring-aware client against a 3-node
// cluster reproduces core.Engine's posterior bit for bit, with the
// session's owner SIGKILLed mid-loop. The surviving nodes adopt the
// session via record replay with identical posterior/version/budget, the
// pre-kill answer set replays idempotently (no double-spent crowd budget),
// and the loop finishes on the adopter.
func TestClusterFailoverMidLoop(t *testing.T) {
	marginals := []float64{0.5, 0.63, 0.58, 0.49, 0.71}
	truth := dist.World(0b10110)
	const (
		pc     = 0.8
		k      = 2
		budget = 10
		seed   = 42
	)

	// The in-process reference: same prior, selector, accuracy, budget,
	// and crowd seed, no network, no failover.
	prior, err := dist.Independent(marginals)
	if err != nil {
		t.Fatal(err)
	}
	eng := &core.Engine{
		Prior:    prior,
		Selector: core.NewGreedyPrunePre(),
		Crowd:    newPlatform(t, truth, seed),
		Pc:       pc,
		K:        k,
		Budget:   budget,
	}
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	nodes, c := startCluster(t, 3)
	ctx := context.Background()
	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: marginals,
		Selector:  "Approx+Prune+Pre",
		Pc:        pc,
		K:         k,
		Budget:    budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID

	// Drive one full round against the original owner, then kill it.
	crowdAnswers := newPlatform(t, truth, seed)
	sel, err := c.Select(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	answers := crowdAnswers.Answers(sel.Tasks)
	if _, err := c.SubmitAnswers(ctx, id, sel.Tasks, answers, sel.Version); err != nil {
		t.Fatal(err)
	}
	before, err := c.GetSession(ctx, id, true)
	if err != nil {
		t.Fatal(err)
	}

	ownerAddr := nodes[0].ring.StaticOwner(id)
	var owner *testNode
	for _, n := range nodes {
		if n.addr == ownerAddr {
			owner = n
		}
	}
	if owner == nil {
		t.Fatalf("no node serves %s", ownerAddr)
	}
	owner.kill()

	// The surviving nodes adopt the session by replaying its op log from
	// the shared store: state must come back bit-identical — not close,
	// identical, because replay runs the same conditioning arithmetic.
	after, err := c.GetSession(ctx, id, true)
	if err != nil {
		t.Fatalf("get after owner death: %v", err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("re-homed session diverged:\n got %+v\nwant %+v", after, before)
	}

	// Replaying the pre-kill answer set against the adopter is recognized,
	// not re-applied: no double-spent crowd budget across failover.
	replay, err := c.SubmitAnswers(ctx, id, sel.Tasks, answers, sel.Version)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Merged || replay.Spent != before.Spent {
		t.Fatalf("replay across failover: merged=%v spent=%d, want merged=false spent=%d",
			replay.Merged, replay.Spent, before.Spent)
	}

	// Finish the loop on the survivors and hold the result to the
	// engine's bits.
	final, err := c.Refine(ctx, id, crowdAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if final.Spent != want.Cost {
		t.Fatalf("cluster loop spent %d tasks, engine %d", final.Spent, want.Cost)
	}
	wantM := want.Final.Marginals()
	for i := range wantM {
		if final.Marginals[i] != wantM[i] {
			t.Fatalf("marginal %d: cluster %v != engine %v", i, final.Marginals[i], wantM[i])
		}
	}
	if final.Entropy != want.Final.Entropy() {
		t.Fatalf("entropy: cluster %v != engine %v", final.Entropy, want.Final.Entropy())
	}
	if final.Version != len(want.Rounds) {
		t.Fatalf("version %d != engine rounds %d", final.Version, len(want.Rounds))
	}

	// The whole post-kill history must live on surviving nodes: the dead
	// owner cannot be the one answering.
	for _, n := range nodes {
		if n != owner && n.ring.Owner(id) == ownerAddr {
			t.Fatalf("survivor %s still routes %s to the dead node", n.addr, id)
		}
	}
}
