package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crowdfusion/client"
	"crowdfusion/internal/service"
)

// flakyHandler answers 503+Retry-After for the first fail requests to each
// path, then delegates to ok.
type flakyHandler struct {
	fail int32
	seen atomic.Int32
	ok   http.Handler
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.fail {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: "service: saturated, retry later"})
		return
	}
	h.ok.ServeHTTP(w, r)
}

// TestRetryOn503WithRetryAfter: the backpressure 503 is absorbed with
// bounded backoff — the caller sees only the eventual success.
func TestRetryOn503WithRetryAfter(t *testing.T) {
	svc := service.NewServer(service.Config{})
	defer svc.Close()
	flaky := &flakyHandler{fail: 2, ok: svc.Handler()}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := client.New(ts.URL,
		client.WithHTTPClient(ts.Client()),
		client.WithBackoff(4, time.Millisecond, 5*time.Millisecond))
	info, err := c.CreateSession(context.Background(), client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.63}, Pc: 0.8, K: 1, Budget: 2,
	})
	if err != nil {
		t.Fatalf("create through flaky server: %v", err)
	}
	if info.ID == "" {
		t.Fatal("no session id")
	}
	if got := flaky.seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejected + 1 served)", got)
	}
}

// TestRetryGivesUpAfterBudget: a server that never stops shedding load
// eventually surfaces the 503 instead of retrying forever.
func TestRetryGivesUpAfterBudget(t *testing.T) {
	flaky := &flakyHandler{fail: 1 << 30, ok: http.NotFoundHandler()}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	const retries = 3
	c := client.New(ts.URL,
		client.WithHTTPClient(ts.Client()),
		client.WithBackoff(retries, time.Millisecond, 2*time.Millisecond))
	_, err := c.Select(context.Background(), "0123456789abcdef0123456789abcdef", 0)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want surfaced 503", err)
	}
	if !apiErr.Throttled {
		t.Fatalf("Retry-After presence not parsed: %+v", apiErr)
	}
	if got := flaky.seen.Load(); got != retries+1 {
		t.Fatalf("server saw %d requests, want %d (1 + %d retries)", got, retries+1, retries)
	}
}

// TestNoRetryWithoutRetryAfter: 503s that are decisions, not congestion
// (the session cap's too_many_sessions), return immediately.
func TestNoRetryWithoutRetryAfter(t *testing.T) {
	var seen atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{
			Error: "service: session limit reached", Code: service.CodeTooManySessions,
		})
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()),
		client.WithBackoff(4, time.Millisecond, 2*time.Millisecond))
	_, err := c.CreateSession(context.Background(), client.CreateSessionRequest{
		Marginals: []float64{0.5}, Pc: 0.8, K: 1, Budget: 1,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != service.CodeTooManySessions {
		t.Fatalf("err = %v, want too_many_sessions", err)
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry)", got)
	}
}

// TestRetryHonorsContext: cancellation interrupts the backoff sleep.
func TestRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	start := time.Now()
	_, err := c.Select(ctx, "0123456789abcdef0123456789abcdef", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored the context deadline")
	}
}

// TestFollowsNotOwnerRedirect: a misrouted request is transparently
// re-sent to the owner named in the 421 envelope.
func TestFollowsNotOwnerRedirect(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.SessionInfo{ID: id, Version: 7})
	}))
	defer owner.Close()
	var bounced atomic.Int32
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bounced.Add(1)
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{
			Error: "not mine", Code: service.CodeNotOwner, Owner: owner.URL,
		})
	}))
	defer wrong.Close()

	// Both peers in the ring; whichever the rank order tries first, the
	// wrong one bounces with the owner's address and the call still lands.
	c, err := client.NewCluster([]string{wrong.URL, owner.URL},
		client.WithBackoff(2, time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.GetSession(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 7 {
		t.Fatalf("info = %+v, want version 7 from the owner", info)
	}
}

// TestFollowsFencedRedirect: a write bounced with 421 "fenced" lands on
// the lease holder named in the envelope, even when the holder is itself
// flaky — and exactly one merge is applied, because the fenced write was
// never applied and the 503 retry is idempotent.
func TestFollowsFencedRedirect(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	var merges atomic.Int32
	holder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Flaky on first contact: shed load once, then serve the merge.
		if merges.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: "service: saturated, retry later"})
			return
		}
		_ = json.NewEncoder(w).Encode(service.AnswersResponse{
			SessionInfo: service.SessionInfo{ID: id, Version: 2}, Merged: true,
		})
	}))
	defer holder.Close()
	var fenced atomic.Int32
	deposed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fenced.Add(1)
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{
			Error: "service: write fenced", Code: service.CodeFenced, Owner: holder.URL,
		})
	}))
	defer deposed.Close()

	// Single-base client pointed at the deposed node: the fenced envelope
	// alone must carry the request to the holder.
	c := client.New(deposed.URL,
		client.WithBackoff(3, time.Millisecond, 2*time.Millisecond))
	resp, err := c.SubmitAnswers(context.Background(), id, []int{0}, []bool{true}, 1)
	if err != nil {
		t.Fatalf("submit through fenced node: %v", err)
	}
	if !resp.Merged || resp.Version != 2 {
		t.Fatalf("resp = %+v, want merged at version 2 from the holder", resp)
	}
	if got := fenced.Load(); got != 1 {
		t.Fatalf("deposed node saw %d requests, want 1 (no blind retry against a fence)", got)
	}
	if got := merges.Load(); got != 2 {
		t.Fatalf("holder saw %d requests, want 2 (1 shed + 1 merged)", got)
	}
}

// TestFencedWithoutOwnerReResolves: a fenced envelope with no owner hint
// (the deposed node could not learn the new holder) still recovers — the
// client re-resolves along the rendezvous rank until a peer serves it.
func TestFencedWithoutOwnerReResolves(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.SessionInfo{ID: id, Version: 5})
	}))
	defer good.Close()
	fencedSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{
			Error: "service: lease superseded", Code: service.CodeFenced,
		})
	}))
	defer fencedSrv.Close()

	c, err := client.NewCluster([]string{fencedSrv.URL, good.URL},
		client.WithBackoff(2, time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.GetSession(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 5 {
		t.Fatalf("info = %+v, want version 5 from the surviving peer", info)
	}
}

// TestFailsOverPastDeadNode: with the ranked-first node unreachable, the
// request lands on the next peer without caller involvement.
func TestFailsOverPastDeadNode(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(service.SessionInfo{ID: id, Version: 3})
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	c, err := client.NewCluster([]string{deadURL, alive.URL},
		client.WithBackoff(2, time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.GetSession(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 {
		t.Fatalf("info = %+v, want version 3 from the surviving node", info)
	}
}
