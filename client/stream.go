package client

// stream.go — the client side of the session event stream: Watch opens an
// SSE connection to the session's owner and turns it into a channel of
// SessionEvent, reconnecting across node failures, ownership moves, and
// drop-and-mark resets. Resume uses Last-Event-ID against the same node,
// so a short disconnect replays exactly the missed tail; a reconnect to a
// different node (whose feed has its own sequence) starts from a fresh
// snapshot instead — sequences are per-feed, never comparable across
// owners.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"crowdfusion/internal/cluster"
	"crowdfusion/internal/service"
	"crowdfusion/internal/trace"
)

// errWatchTerminal ends the watch loop after a terminal event (deleted,
// expire) was delivered to the consumer.
var errWatchTerminal = errors.New("client: watch ended by a terminal event")

// watchState carries resume position and routing hints across reconnects.
type watchState struct {
	lastSeq uint64
	hasLast bool
	node    string // node the sequence belongs to; resume only against it
	hint    string // owner address from a redirect event
}

// Watch subscribes to a session's live event stream. The returned channel
// delivers every state transition (snapshot, select, partial, merge, done,
// …) in commit order and closes when the session is deleted, its state
// expires, or ctx ends. Transient failures — node death, ownership moves,
// a dropped-subscriber reset — are handled inside: the client reconnects
// along the session's rendezvous rank order and resumes. A failure no
// reconnect can fix is delivered as a final event with Type EventError and
// the message in Error, then the channel closes.
//
// The consumer should keep draining: a consumer that stalls long enough
// fills the server-side buffer, gets dropped, and resumes from a snapshot
// or replay after the reset — events between its drop point and the resume
// may then be compressed into that snapshot.
func (c *Client) Watch(ctx context.Context, id string) (<-chan SessionEvent, error) {
	// One span spans the whole watch, including every reconnect: the
	// server stamps each stream-opening snapshot event with the trace ID
	// it sees in the traceparent header, so a consumer can tie any frame
	// (and any resume) back to the Watch call that started it.
	ctx, sp := c.tracer.Start(ctx, "client.watch")
	sp.SetAttr("session", id)
	st := &watchState{}
	body, node, err := c.openStream(ctx, id, st)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	st.node = node
	out := make(chan SessionEvent, 16)
	go func() {
		defer sp.End()
		c.watchLoop(ctx, id, body, st, out)
	}()
	return out, nil
}

// watchLoop consumes one stream after another until a terminal condition.
func (c *Client) watchLoop(ctx context.Context, id string, body io.ReadCloser, st *watchState, out chan SessionEvent) {
	defer close(out)
	for {
		err := c.consumeStream(ctx, body, out, st)
		body.Close()
		if errors.Is(err, errWatchTerminal) || ctx.Err() != nil {
			return
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			c.emitWatchError(ctx, out, id, err)
			return
		}
		// Stream ended without a terminal event: server shutdown, network
		// failure, a redirect goodbye, or a fell-behind reset. Reconnect and
		// resume.
		nb, node, err := c.openStream(ctx, id, st)
		if err != nil {
			if ctx.Err() == nil {
				c.emitWatchError(ctx, out, id, err)
			}
			return
		}
		body, st.node = nb, node
	}
}

// emitWatchError synthesizes the terminal error event (best effort — the
// consumer may already be gone).
func (c *Client) emitWatchError(ctx context.Context, out chan<- SessionEvent, id string, err error) {
	ev := SessionEvent{
		Type:        service.EventError,
		SessionInfo: SessionInfo{ID: id},
		Error:       err.Error(),
	}
	select {
	case out <- ev:
	case <-ctx.Done():
	}
}

// consumeStream parses SSE frames from body and delivers them. Returns
// errWatchTerminal after a terminal event, nil on EOF (reconnect), a
// permanentError on malformed frames, or ctx.Err().
func (c *Client) consumeStream(ctx context.Context, body io.Reader, out chan<- SessionEvent, st *watchState) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var seq uint64
	var typ string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			// Frame boundary: dispatch what accumulated.
			if typ == "" && len(data) == 0 {
				continue
			}
			var ev SessionEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return &permanentError{fmt.Errorf("client: decoding event %q: %w", typ, err)}
			}
			if ev.Type == "" {
				ev.Type = typ
			}
			// The SSE id persists per spec; the seq inside the payload is
			// authoritative when present, the id line covers synthetic frames.
			if ev.Seq == 0 {
				ev.Seq = seq
			}
			st.lastSeq, st.hasLast = seq, true
			typ, data = "", nil
			select {
			case out <- ev:
			case <-ctx.Done():
				return ctx.Err()
			}
			switch ev.Type {
			case service.EventDeleted, service.EventExpire:
				return errWatchTerminal
			case service.EventRedirect:
				// Ownership moved: reconnect straight to the claimed owner.
				if ev.Owner != "" {
					if owner, err := cluster.Normalize(ev.Owner); err == nil {
						st.hint = owner
					}
				}
				return nil
			}
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue // keepalive comment
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			if n, err := strconv.ParseUint(value, 10, 64); err == nil {
				seq = n
			}
		case "event":
			typ = value
		case "data":
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, value...)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err()
}

// streamClient derives an http.Client without an overall timeout from the
// configured one — a response deadline would kill long-lived streams; the
// stream's lifetime is bound by ctx instead.
func (c *Client) streamClient() *http.Client {
	return &http.Client{
		Transport:     c.http.Transport,
		CheckRedirect: c.http.CheckRedirect,
		Jar:           c.http.Jar,
	}
}

// openStream connects one event stream, walking the session's rendezvous
// rank order the same way route does: follow not_owner redirects, skip
// dead nodes, absorb saturation with backoff. Last-Event-ID is sent only
// when reconnecting to the node the sequence came from.
func (c *Client) openStream(ctx context.Context, id string, st *watchState) (io.ReadCloser, string, error) {
	order := cluster.RankOrder(c.peers, id)
	attempts := 4*len(order) + c.maxRetries + 4
	var lastErr error
	hint := st.hint
	st.hint = ""
	cycles, retries := 0, 0
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		node := c.pick(order, hint)
		hint = ""
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/sessions/"+id+"/events", nil)
		if err != nil {
			return nil, "", &permanentError{fmt.Errorf("client: building request: %w", err)}
		}
		req.Header.Set("Accept", "text/event-stream")
		if sp := trace.SpanFromContext(ctx); sp != nil {
			req.Header.Set("traceparent", sp.Context().Traceparent())
		}
		if st.hasLast && node == st.node {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(st.lastSeq, 10))
		}
		resp, err := c.streamClient().Do(req)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, "", err
			}
			lastErr = fmt.Errorf("client: GET %s/v1/sessions/%s/events: %w", node, id, err)
			if len(order) == 1 {
				return nil, "", lastErr
			}
			c.markDown(node)
			cycles++
			if err := sleepCtx(ctx, c.backoffDelay(cycles, 0)); err != nil {
				return nil, "", err
			}
			continue
		}
		if resp.StatusCode == http.StatusOK {
			c.markUp(node)
			return resp.Body, node, nil
		}
		apiErr := decodeAPIError(resp)
		resp.Body.Close()
		lastErr = apiErr
		switch {
		case apiErr.Code == service.CodeNotOwner && apiErr.Owner != "":
			if owner, err := cluster.Normalize(apiErr.Owner); err == nil {
				hint = owner
			}
			cycles++
			if cycles%(len(order)+1) == 0 {
				if err := sleepCtx(ctx, c.backoffDelay(cycles/(len(order)+1), 0)); err != nil {
					return nil, "", err
				}
			}
		case (apiErr.StatusCode == http.StatusServiceUnavailable && apiErr.Throttled) ||
			apiErr.StatusCode == http.StatusTooManyRequests:
			// Saturation or the subscriber cap: back off and retry the same
			// node, bounded like route's 503 handling.
			retries++
			if retries > c.maxRetries {
				return nil, "", apiErr
			}
			if err := sleepCtx(ctx, c.backoffDelay(retries, apiErr.RetryAfter)); err != nil {
				return nil, "", err
			}
			hint = node
		default:
			return nil, "", apiErr
		}
	}
	return nil, "", lastErr
}
