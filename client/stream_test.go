package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"crowdfusion/client"
)

// nextEvent pulls one event off a Watch channel or fails the test.
func nextEvent(t *testing.T, ch <-chan client.SessionEvent) client.SessionEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed while an event was expected")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no event within 5s")
	}
	panic("unreachable")
}

// waitForEvent drains the channel until an event of the wanted type arrives.
// Interleaved events of other types (snapshots after a reconnect, keepalive
// partials) are tolerated — order within a type is asserted by the callers
// that need it.
func waitForEvent(t *testing.T, ch <-chan client.SessionEvent, typ string) client.SessionEvent {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("watch channel closed while waiting for %q", typ)
			}
			if ev.Type == client.EventError {
				t.Fatalf("watch error while waiting for %q: %s", typ, ev.Error)
			}
			if ev.Type == typ {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %q event within 10s", typ)
		}
	}
}

// TestWatchDeliversTransitions: Watch opens with a snapshot and then relays
// every state transition — select, each journaled partial, the committing
// merge — in order, and ends cleanly when the session is deleted.
func TestWatchDeliversTransitions(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49},
		Pc:        0.8, K: 2, Budget: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Watch(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	snap := nextEvent(t, ch)
	if snap.Type != client.EventSnapshot || snap.ID != info.ID || snap.Version != 0 {
		t.Fatalf("opening event = %+v, want version-0 snapshot", snap)
	}

	sel, err := c.Select(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	evSel := nextEvent(t, ch)
	if evSel.Type != client.EventSelect || len(evSel.Tasks) != len(sel.Tasks) {
		t.Fatalf("select event = %+v", evSel)
	}
	if evSel.Seq != snap.Seq+1 {
		t.Fatalf("select seq %d, want %d", evSel.Seq, snap.Seq+1)
	}

	// Answer the batch one judgment at a time: every partial is a stream
	// event carrying the provisional posterior, and the last one commits.
	lastSeq := evSel.Seq
	for i, task := range sel.Tasks {
		resp, err := c.SubmitAnswer(ctx, info.ID, task, task%2 == 0, sel.Version)
		if err != nil {
			t.Fatal(err)
		}
		wantType := client.EventPartial
		if i == len(sel.Tasks)-1 {
			if !resp.Merged {
				t.Fatalf("final judgment did not commit: %+v", resp)
			}
			wantType = client.EventMerge
		} else if resp.Merged || !resp.Partial {
			t.Fatalf("judgment %d response = %+v, want uncommitted partial", i, resp)
		}
		ev := nextEvent(t, ch)
		if ev.Type != wantType || ev.Seq != lastSeq+1 {
			t.Fatalf("judgment %d event = type %q seq %d, want %q seq %d",
				i, ev.Type, ev.Seq, wantType, lastSeq+1)
		}
		if resp.Entropy != ev.Entropy || resp.Version != ev.Version {
			t.Fatalf("judgment %d event state (v%d, H=%v) != response (v%d, H=%v)",
				i, ev.Version, ev.Entropy, resp.Version, resp.Entropy)
		}
		lastSeq = ev.Seq
	}

	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if ev := waitForEvent(t, ch, client.EventDeleted); ev.Seq <= lastSeq {
		t.Fatalf("deleted event seq %d did not advance past %d", ev.Seq, lastSeq)
	}
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("event after deletion: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch channel not closed after deletion")
	}
}

// TestWatchUnknownSessionFailsFast: the first stream is opened synchronously
// so a bad session ID surfaces as an error return, not a dead channel.
func TestWatchUnknownSessionFailsFast(t *testing.T) {
	c := newTestService(t)
	_, err := c.Watch(context.Background(), "no-such-session")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 || apiErr.Code != client.CodeNotFound {
		t.Fatalf("watch on unknown session = %v", err)
	}
}

// TestSubmitAnswerMatchesBatched: driving a round through SubmitAnswer one
// judgment at a time lands on exactly the posterior SubmitAnswers reaches in
// one request — the wire-level face of the incremental-merge bit-identity
// guarantee.
func TestSubmitAnswerMatchesBatched(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()

	req := client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49, 0.71},
		Selector:  "Approx+Prune+Pre",
		Pc:        0.8, K: 3, Budget: 9,
	}
	one, err := c.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := c.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	var incr, bulk *client.AnswersResponse
	for round := 0; round < 3; round++ {
		selA, err := c.Select(ctx, one.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		selB, err := c.Select(ctx, batched.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if selA.Done || selB.Done {
			break
		}
		answers := make([]bool, len(selA.Tasks))
		for i, task := range selA.Tasks {
			answers[i] = task%2 == 0
			if incr, err = c.SubmitAnswer(ctx, one.ID, task, answers[i], selA.Version); err != nil {
				t.Fatal(err)
			}
		}
		if bulk, err = c.SubmitAnswers(ctx, batched.ID, selB.Tasks, answers, selB.Version); err != nil {
			t.Fatal(err)
		}
	}
	if incr == nil || bulk == nil {
		t.Fatal("no rounds completed")
	}
	if incr.Entropy != bulk.Entropy || incr.Version != bulk.Version || incr.Spent != bulk.Spent {
		t.Fatalf("incremental (v%d, H=%v, spent %d) != batched (v%d, H=%v, spent %d)",
			incr.Version, incr.Entropy, incr.Spent, bulk.Version, bulk.Entropy, bulk.Spent)
	}
	for i := range incr.Marginals {
		if incr.Marginals[i] != bulk.Marginals[i] {
			t.Fatalf("marginal %d: incremental %v != batched %v", i, incr.Marginals[i], bulk.Marginals[i])
		}
	}
}

// TestClientListSessions: pagination walks every session exactly once in ID
// order.
func TestClientListSessions(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()

	want := make(map[string]bool)
	for i := 0; i < 5; i++ {
		info, err := c.CreateSession(ctx, client.CreateSessionRequest{
			Marginals: []float64{0.6, 0.4}, Pc: 0.9, K: 1, Budget: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[info.ID] = true
	}

	var got []string
	after := ""
	for {
		page, err := c.ListSessions(ctx, after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Sessions) > 2 {
			t.Fatalf("page of %d rows exceeds limit 2", len(page.Sessions))
		}
		for _, s := range page.Sessions {
			got = append(got, s.ID)
		}
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if len(got) != len(want) {
		t.Fatalf("paginated %d sessions, created %d: %v", len(got), len(want), got)
	}
	seen := make(map[string]bool)
	for i, id := range got {
		if !want[id] || seen[id] {
			t.Fatalf("row %d (%s): unknown or duplicated session", i, id)
		}
		seen[id] = true
		if i > 0 && got[i-1] >= id {
			t.Fatalf("rows out of order: %q before %q", got[i-1], id)
		}
	}
}

// TestWatchResubscribesAcrossFailover: a Watch stream attached to a
// session's owner survives that owner's death — the client re-subscribes on
// the adopting node (opening with a fresh snapshot, since stream sequence
// numbers are per-owner) and keeps relaying transitions.
func TestWatchResubscribesAcrossFailover(t *testing.T) {
	nodes, c := startCluster(t, 3)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49},
		Selector:  "Approx+Prune+Pre",
		Pc:        0.8, K: 2, Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Watch(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, ch); ev.Type != client.EventSnapshot {
		t.Fatalf("opening event = %+v", ev)
	}

	ownerAddr := nodes[0].ring.StaticOwner(info.ID)
	for _, n := range nodes {
		if n.addr == ownerAddr {
			n.kill()
		}
	}

	// The dropped stream re-subscribes on the adopting node, which opens
	// with a fresh snapshot. Wait for it before driving the next round so
	// the merge is a live delta, not state baked into the snapshot.
	if ev := waitForEvent(t, ch, client.EventSnapshot); ev.ID != info.ID {
		t.Fatalf("re-subscribe snapshot = %+v", ev)
	}

	// Drive a round on the adopter; the re-subscribed stream must relay it.
	sel, err := c.Select(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	answers := make([]bool, len(sel.Tasks))
	for i, task := range sel.Tasks {
		answers[i] = task%2 == 0
	}
	merged, err := c.SubmitAnswers(ctx, info.ID, sel.Tasks, answers, sel.Version)
	if err != nil {
		t.Fatal(err)
	}
	ev := waitForEvent(t, ch, client.EventMerge)
	if ev.Version != merged.Version || ev.Entropy != merged.Entropy {
		t.Fatalf("relayed merge (v%d, H=%v) != response (v%d, H=%v)",
			ev.Version, ev.Entropy, merged.Version, merged.Entropy)
	}

	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	waitForEvent(t, ch, client.EventDeleted)
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("event after deletion: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch channel not closed after deletion")
	}
}
