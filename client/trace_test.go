package client_test

// trace_test.go — end-to-end tracing acceptance: one logical client
// operation against a sharded fleet produces ONE trace whose spans cover
// the client's attempts (including the redirected one), both server hops,
// and the owner's select/merge/persist work; and Watch streams carry the
// originating trace id across reconnects.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"crowdfusion/client"
	"crowdfusion/internal/trace"
)

// parityCrowd is a deterministic AnswerProvider: true for even task IDs.
type parityCrowd struct{}

func (parityCrowd) Answers(tasks []int) []bool {
	out := make([]bool, len(tasks))
	for i, task := range tasks {
		out[i] = task%2 == 0
	}
	return out
}

// attrValue extracts one attribute from a recorded span.
func attrValue(sd trace.SpanData, key string) (any, bool) {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// TestRefineOneTraceAcrossRedirect is the tracing acceptance test: a
// client pinned to a NON-owner node drives a full Refine round. Every
// request first hits the wrong node (421 not_owner), the client follows
// the redirect, and the whole affair — client retry, the misrouted hop,
// the owner hop, the select, the merge, the durable append — must share a
// single trace ID, reconstructible from the client's and both nodes'
// recorders.
func TestRefineOneTraceAcrossRedirect(t *testing.T) {
	nodes, c := startCluster(t, 3)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49},
		Pc:        0.8, K: 2, Budget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ownerAddr := nodes[0].ring.StaticOwner(info.ID)
	var owner, other *testNode
	for _, n := range nodes {
		if n.addr == ownerAddr {
			owner = n
		} else if other == nil {
			other = n
		}
	}
	if owner == nil || other == nil {
		t.Fatalf("could not split fleet into owner %s and another node", ownerAddr)
	}

	rec := trace.NewRecorder("client")
	pinned := client.New(other.addr,
		client.WithTracer(trace.New("client", rec)),
		client.WithBackoff(4, time.Millisecond, 10*time.Millisecond))
	final, err := pinned.Refine(ctx, info.ID, parityCrowd{})
	if err != nil {
		t.Fatal(err)
	}
	if final.Spent != 2 {
		t.Fatalf("refine spent %d, want the full budget of 2", final.Spent)
	}

	// The client recorder holds the root: one trace rooted at client.refine.
	snap := rec.Snapshot()
	var traceID string
	var clientSpans []trace.SpanData
	for _, td := range append(snap.Recent, snap.Slowest...) {
		for _, sd := range td.Spans {
			if sd.Name == "client.refine" {
				traceID = td.TraceID
				clientSpans = td.Spans
			}
		}
	}
	if traceID == "" {
		t.Fatal("no client.refine span recorded")
	}

	// The client retried inside the trace: at least one attempt bounced
	// with 421 and at least one more attempt carried on past it.
	attempts, redirected := 0, 0
	for _, sd := range clientSpans {
		if sd.Name != "client.attempt" {
			continue
		}
		attempts++
		if v, ok := attrValue(sd, "status"); ok && fmt.Sprint(v) == "421" {
			redirected++
		}
	}
	if redirected == 0 {
		t.Fatalf("no 421 attempt in the client trace (%d attempts) — the redirect never happened", attempts)
	}
	if attempts <= redirected {
		t.Fatalf("%d attempts, all %d redirected — no successful retry in the trace", attempts, redirected)
	}

	// Hop one: the misrouted node saw the same trace and answered 421.
	otherTD, ok := other.rec.Trace(traceID)
	if !ok {
		t.Fatalf("misrouted node %s has no spans for trace %s", other.addr, traceID)
	}
	sawBounce := false
	for _, sd := range otherTD.Spans {
		if v, okAttr := attrValue(sd, "status"); okAttr && fmt.Sprint(v) == "421" {
			sawBounce = true
		}
	}
	if !sawBounce {
		t.Fatalf("misrouted node %s recorded no 421 hop in trace %s: %+v", other.addr, traceID, otherTD.Spans)
	}

	// Hop two: the owner served the round under the same trace — request
	// spans plus the select, the merge, and the fsynced op-log append.
	ownerTD, ok := owner.rec.Trace(traceID)
	if !ok {
		t.Fatalf("owner %s has no spans for trace %s", owner.addr, traceID)
	}
	names := make(map[string]int)
	for _, sd := range ownerTD.Spans {
		names[sd.Name]++
	}
	for _, want := range []string{"session.select", "session.merge", "persist.append"} {
		if names[want] == 0 {
			t.Fatalf("owner trace %s missing %q span; recorded: %v", traceID, want, names)
		}
	}
}

// TestAPIErrorCarriesRequestID: a failed call surfaces the server's
// request ID on the APIError, so a caller can quote it against the
// server's access log and /debug/traces.
func TestAPIErrorCarriesRequestID(t *testing.T) {
	_, c := startCluster(t, 3)
	_, err := c.GetSession(context.Background(), "no-such-session", false)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.StatusCode != 404 {
		t.Fatalf("status %d, want 404", apiErr.StatusCode)
	}
	if apiErr.RequestID == "" {
		t.Fatalf("APIError carries no request ID: %+v", apiErr)
	}
}

// TestWatchTraceIDAcrossReconnect: the stream-opening snapshot event
// carries the Watch call's trace id, and a resume after the owner dies —
// a reconnect to the adopting node, opening with a fresh snapshot — keeps
// the SAME trace id, because every reconnect runs under the original
// Watch span.
func TestWatchTraceIDAcrossReconnect(t *testing.T) {
	nodes, c := startCluster(t, 3)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49},
		Pc:        0.8, K: 2, Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Watch(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	first := nextEvent(t, ch)
	if first.Type != client.EventSnapshot {
		t.Fatalf("opening event = %+v, want snapshot", first)
	}
	if first.TraceID == "" {
		t.Fatal("opening snapshot carries no trace id")
	}

	ownerAddr := nodes[0].ring.StaticOwner(info.ID)
	for _, n := range nodes {
		if n.addr == ownerAddr {
			n.kill()
		}
	}

	resumed := waitForEvent(t, ch, client.EventSnapshot)
	if resumed.TraceID != first.TraceID {
		t.Fatalf("resumed snapshot trace id %q != original %q — the reconnect lost its trace",
			resumed.TraceID, first.TraceID)
	}
}
