package client_test

import (
	"context"
	"errors"
	"testing"

	"crowdfusion/client"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/platform"
)

// emCreateReq builds an em-model session over n facts with room for many
// attributed rounds.
func emCreateReq(n int) client.CreateSessionRequest {
	marg := make([]float64, n)
	for i := range marg {
		marg[i] = 0.5
	}
	return client.CreateSessionRequest{
		Marginals:   marg,
		Pc:          0.8,
		K:           2,
		Budget:      1 << 20,
		Seed:        5,
		WorkerModel: client.WorkerModelEM,
	}
}

// TestSubmitJudgmentsCalibrationWorkers drives attributed rounds through
// the client and reads them back through the two new surfaces: the
// per-session calibration report and the per-node worker fleet view.
func TestSubmitJudgmentsCalibrationWorkers(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()
	info, err := c.CreateSession(ctx, emCreateReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if info.WorkerModel != client.WorkerModelEM {
		t.Fatalf("created session reports model %q", info.WorkerModel)
	}

	// Two consistent workers answer a fixed pattern; w-bad answers the
	// same tasks with every judgment flipped, so the 2-vs-1 consensus
	// pins the truth and exposes the contrarian.
	rounds := []string{"w-good", "w-good2", "w-bad", "w-good"}
	for r, worker := range rounds {
		js := make([]client.Judgment, 4)
		for f := 0; f < 4; f++ {
			ans := f%2 == 0
			if worker == "w-bad" {
				ans = !ans
			}
			js[f] = client.Judgment{Task: f, Answer: ans, Worker: worker, Source: "test"}
		}
		resp, err := c.SubmitJudgments(ctx, info.ID, js, r, false)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if !resp.Merged || resp.Version != r+1 {
			t.Fatalf("round %d: %+v", r, resp)
		}
	}

	cal, err := c.Calibration(ctx, info.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cal.WorkerModel != client.WorkerModelEM || cal.Refits == 0 || cal.Observations != 16 {
		t.Fatalf("calibration = %+v", cal)
	}
	if len(cal.Workers) != 3 {
		t.Fatalf("calibration workers = %+v", cal.Workers)
	}
	// Sorted by worker ID, with support counting each one's judgments.
	for i, want := range []struct {
		worker  string
		support int
	}{{"w-bad", 4}, {"w-good", 8}, {"w-good2", 4}} {
		w := cal.Workers[i]
		if w.Worker != want.worker || w.Support != want.support {
			t.Fatalf("worker row %d = %+v, want %+v", i, w, want)
		}
		if w.WilsonLo < 0 || w.WilsonHi > 1 || w.WilsonLo > w.WilsonHi {
			t.Fatalf("worker %s Wilson bounds [%v, %v]", w.Worker, w.WilsonLo, w.WilsonHi)
		}
	}
	// The contrarian is estimated below the consistent workers.
	if cal.Workers[0].Accuracy >= cal.Workers[1].Accuracy {
		t.Fatalf("contrarian %.3f not below consistent %.3f",
			cal.Workers[0].Accuracy, cal.Workers[1].Accuracy)
	}
	if len(cal.Bins) == 0 || cal.Total == 0 {
		t.Fatalf("calibration bins missing: %+v", cal)
	}

	fleet, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Workers) != 3 || fleet.Sessions == 0 {
		t.Fatalf("fleet = %+v", fleet)
	}
	if fleet.Workers[0].Worker != "w-bad" || fleet.Workers[0].Support != 4 {
		t.Fatalf("fleet rows = %+v", fleet.Workers)
	}
}

// TestSubmitAnswerAttributedPartial exercises worker attribution on the
// incremental path: each judgment journals with its worker, a retry that
// keeps the attribution replays idempotently, and one that re-attributes
// is refused with the typed code.
func TestSubmitAnswerAttributedPartial(t *testing.T) {
	c := newTestService(t)
	ctx := context.Background()
	info, err := c.CreateSession(ctx, emCreateReq(4))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := c.Select(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Tasks) < 2 {
		t.Fatalf("selected %v", sel.Tasks)
	}
	first := sel.Tasks[0]
	resp, err := c.SubmitAnswer(ctx, info.ID, first, true, sel.Version, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || resp.Merged {
		t.Fatalf("first judgment: %+v", resp)
	}
	// Idempotent retry with the same attribution.
	resp, err = c.SubmitAnswer(ctx, info.ID, first, true, sel.Version, "w1")
	if err != nil || resp.Merged {
		t.Fatalf("retry: %+v, %v", resp, err)
	}
	// Re-attributed retry: typed refusal.
	_, err = c.SubmitAnswer(ctx, info.ID, first, true, sel.Version, "w2")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeAttributionConflict {
		t.Fatalf("re-attributed retry: %v", err)
	}
	// The remaining judgments complete the batch and commit the round.
	for i, task := range sel.Tasks[1:] {
		resp, err = c.SubmitAnswer(ctx, info.ID, task, false, sel.Version, "w2")
		if err != nil {
			t.Fatal(err)
		}
		if last := i == len(sel.Tasks)-2; resp.Merged != last {
			t.Fatalf("judgment %d: %+v", i, resp)
		}
	}
	if resp.Version != sel.Version+1 {
		t.Fatalf("commit did not advance version: %+v", resp)
	}

	cal, err := c.Calibration(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Workers) != 2 || cal.Observations != len(sel.Tasks) {
		t.Fatalf("calibration after partial round = %+v", cal)
	}
}

// TestRefineAttributedHeterogeneous is the e2e satellite: a Refine loop
// fed by the simulated platform's attributed view exercises heterogeneous
// per-worker accuracy end to end — judgments drawn from a crowd.Pool,
// submitted through the judgments form, estimated by the session's em
// model, and visible in the calibration report.
func TestRefineAttributedHeterogeneous(t *testing.T) {
	truth := dist.World(0b10110)
	pool, err := crowd.NewPool([]crowd.Worker{
		{ID: "sharp-1", Accuracy: 0.92},
		{ID: "sharp-2", Accuracy: 0.9},
		{ID: "sloppy", Accuracy: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := platform.New(platform.Config{Truth: truth, Pool: pool, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}

	c := newTestService(t)
	ctx := context.Background()
	info, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Marginals:   []float64{0.5, 0.63, 0.58, 0.49, 0.71},
		Pc:          0.8,
		K:           2,
		Budget:      12,
		WorkerModel: client.WorkerModelEM,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Refine(ctx, info.ID, p.Attributed())
	if err != nil {
		t.Fatal(err)
	}
	if final.Spent == 0 {
		t.Fatalf("loop spent nothing: %+v", final)
	}
	cal, err := c.Calibration(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Observations != final.Spent || len(cal.Workers) == 0 {
		t.Fatalf("calibration = %+v after spending %d", cal, final.Spent)
	}
	// Every judgment the platform logged is attributed to a pool worker.
	seen := make(map[string]bool)
	for _, a := range p.Log() {
		seen[a.Worker] = true
	}
	for _, w := range cal.Workers {
		if !seen[w.Worker] {
			t.Fatalf("calibration names %q, not in the platform log", w.Worker)
		}
	}
}
