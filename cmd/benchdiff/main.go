// Command benchdiff compares two benchjson documents — a committed
// baseline and a fresh run — and fails (exit 1) when any benchmark's
// ns/op regressed beyond the threshold, or when a baseline benchmark
// vanished from the fresh run. This is the perf ratchet: CI runs
// `make bench-diff`, so a change that slows the selection kernel or the
// serving path past the noise floor cannot land silently.
//
//	benchdiff -baseline BENCH_selection.json -current BENCH_fresh.json \
//	    -threshold 0.10 -allow 'Reference|HTTP' -lenient-cpu -out BENCH_diff.txt
//
// Two defenses keep the gate from flaking on shared machines. First,
// both documents are reduced to the minimum ns/op per benchmark — the
// Makefile runs the suite several times over and min-vs-min filters
// the one-sided noise (preemption, cache pollution) a single shot is
// exposed to.
// Second, the run-wide drift — the median delta across all measured
// benchmarks, i.e. the uniform shift the machine's thermal/contention
// state applies to everything — is divided out before gating, so only a
// benchmark that moved against the pack can fail.
//
// Benchmarks matching the -allow regex still appear in the report but
// only ever warn — the escape hatch for entries dominated by scheduler or
// I/O noise. -lenient-cpu downgrades every failure to a warning when the
// two documents were measured on different CPU models: a committed
// baseline crosses machines, and cross-machine ns/op is trend data, not a
// gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Result mirrors cmd/benchjson's per-benchmark measurement; only the
// fields the diff consumes are declared.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report mirrors cmd/benchjson's document shape.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Finding is one comparison outcome, ordered worst-first in the report.
type Finding struct {
	Name    string
	Base    float64 // baseline ns/op
	Cur     float64 // current ns/op, 0 when missing
	Delta   float64 // (cur-base)/base, +0.25 = 25% slower
	Adj     float64 // Delta with the run-wide drift divided out; what the gate uses
	Missing bool    // in the baseline, absent from the current run
	Fails   bool    // counts against the exit status
	Allowed bool    // matched the allowlist: warn, never fail
	Lenient bool    // downgraded by a CPU mismatch
}

// key identifies a benchmark across documents: package-qualified name, so
// same-named benchmarks in different packages never collide.
func key(r Result) string {
	if r.Package == "" {
		return r.Name
	}
	return r.Package + "." + r.Name
}

// minNs collapses a report to the minimum ns/op per benchmark, in first-
// appearance order. The suite is run several times over and the gate
// compares minima: the minimum is the least noise-contaminated sample a
// run produced (scheduler preemption and cache pollution only ever slow
// an iteration down), so min-vs-min is far stabler than any single shot.
func minNs(r *Report) (order []string, min map[string]float64) {
	min = make(map[string]float64, len(r.Results))
	for _, res := range r.Results {
		if res.NsPerOp <= 0 {
			continue // nothing to ratchet against
		}
		k := key(res)
		if prev, ok := min[k]; !ok {
			order = append(order, k)
			min[k] = res.NsPerOp
		} else if res.NsPerOp < prev {
			min[k] = res.NsPerOp
		}
	}
	return order, min
}

// driftFloor is the measured-entry count below which drift correction is
// skipped: a median over a handful of benchmarks is itself noise.
const driftFloor = 8

// drift estimates the run-wide multiplicative shift between the two
// documents as the median delta across measured entries. A committed
// baseline is compared against runs made later, on a machine in a
// different thermal/contention state; that state shifts EVERY benchmark
// by roughly the same factor, and gating raw deltas against it flakes.
// A genuine regression moves one benchmark against the pack, so the
// gate divides the pack's shift out first. The tradeoff is explicit: a
// change that slows most of the suite at once reads as drift — the
// report still shows every raw delta, so it is visible, just not
// gating.
func drift(fs []Finding) (float64, bool) {
	var ds []float64
	for _, f := range fs {
		if !f.Missing {
			ds = append(ds, f.Delta)
		}
	}
	if len(ds) < driftFloor {
		return 0, false
	}
	sort.Float64s(ds)
	m := ds[len(ds)/2]
	if len(ds)%2 == 0 {
		m = (ds[len(ds)/2-1] + ds[len(ds)/2]) / 2
	}
	return m, true
}

// compare diffs current against baseline, minimum ns/op per benchmark on
// both sides, drift-corrected. allow may be nil (empty allowlist);
// lenient downgrades every failure to a warning. The returned shift is
// the drift the gate divided out (0 when too few entries to estimate).
func compare(baseline, current *Report, threshold float64, allow *regexp.Regexp, lenient bool) (findings []Finding, shift float64) {
	baseOrder, base := minNs(baseline)
	_, cur := minNs(current)
	var out []Finding
	for _, name := range baseOrder {
		f := Finding{Name: name, Base: base[name]}
		f.Allowed = allow != nil && allow.MatchString(f.Name)
		c, ok := cur[name]
		if !ok {
			f.Missing = true
		} else {
			f.Cur = c
			f.Delta = (c - f.Base) / f.Base
		}
		out = append(out, f)
	}
	shift, _ = drift(out)
	for i := range out {
		f := &out[i]
		if f.Missing {
			f.Fails = !f.Allowed
		} else {
			f.Adj = (1+f.Delta)/(1+shift) - 1
			f.Fails = f.Adj > threshold && !f.Allowed
		}
		if f.Fails && lenient {
			f.Fails = false
			f.Lenient = true
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Missing != out[j].Missing {
			return out[i].Missing
		}
		if out[i].Adj != out[j].Adj {
			return out[i].Adj > out[j].Adj
		}
		return out[i].Name < out[j].Name
	})
	return out, shift
}

// render writes the human-readable report and returns whether any finding
// fails the gate.
func render(w io.Writer, findings []Finding, threshold, shift float64, cpuMismatch bool) bool {
	failed := false
	if cpuMismatch {
		fmt.Fprintf(w, "note: baseline and current were measured on different CPUs\n")
	}
	if shift != 0 {
		fmt.Fprintf(w, "note: run-wide drift %+.1f%% (median delta) divided out before gating\n", 100*shift)
	}
	for _, f := range findings {
		status := "ok"
		switch {
		case f.Fails:
			status = "FAIL"
			failed = true
		case f.Missing, f.Adj > threshold:
			status = "warn"
		}
		if f.Missing {
			fmt.Fprintf(w, "%-4s %-70s %12.0f ns/op -> MISSING\n", status, f.Name, f.Base)
			continue
		}
		fmt.Fprintf(w, "%-4s %-70s %12.0f ns/op -> %12.0f ns/op  %+6.1f%% (%+6.1f%% adj)\n",
			status, f.Name, f.Base, f.Cur, 100*f.Delta, 100*f.Adj)
	}
	return failed
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_selection.json", "committed baseline benchjson document")
	currentPath := fs.String("current", "BENCH_fresh.json", "fresh benchjson document to gate")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op regression that fails the gate")
	allowExpr := fs.String("allow", "", "regex of benchmark names that warn instead of failing")
	lenientCPU := fs.Bool("lenient-cpu", false, "downgrade failures to warnings when the CPU models differ")
	outPath := fs.String("out", "", "also write the report to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var allow *regexp.Regexp
	if *allowExpr != "" {
		var err error
		if allow, err = regexp.Compile(*allowExpr); err != nil {
			fmt.Fprintln(stderr, "benchdiff: bad -allow:", err)
			return 2
		}
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cpuMismatch := baseline.CPU != current.CPU
	lenient := *lenientCPU && cpuMismatch
	findings, shift := compare(baseline, current, *threshold, allow, lenient)

	var report strings.Builder
	failed := render(&report, findings, *threshold, shift, cpuMismatch)
	fmt.Fprint(stdout, report.String())
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
	}
	if failed {
		fmt.Fprintf(stderr, "benchdiff: ns/op regression beyond %.0f%% (see report)\n", *threshold*100)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
