package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func report(cpu string, results ...Result) *Report {
	return &Report{Goos: "linux", Goarch: "amd64", CPU: cpu, Results: results}
}

func TestCompareFailsSyntheticRegression(t *testing.T) {
	base := report("cpuA",
		Result{Name: "BenchmarkFast", Package: "p", NsPerOp: 1000},
		Result{Name: "BenchmarkSlow", Package: "p", NsPerOp: 2000},
	)
	cur := report("cpuA",
		Result{Name: "BenchmarkFast", Package: "p", NsPerOp: 1050}, // +5%: within threshold
		Result{Name: "BenchmarkSlow", Package: "p", NsPerOp: 2400}, // +20%: regression
	)
	findings, shift := compare(base, cur, 0.10, nil, false)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	if shift != 0 {
		t.Fatalf("drift estimated from %d entries (floor is %d)", len(findings), driftFloor)
	}
	// Worst first: the regression leads.
	if findings[0].Name != "p.BenchmarkSlow" || !findings[0].Fails {
		t.Fatalf("regression not flagged: %+v", findings[0])
	}
	if findings[1].Fails {
		t.Fatalf("within-threshold delta flagged: %+v", findings[1])
	}
	var sb strings.Builder
	if failed := render(&sb, findings, 0.10, shift, false); !failed {
		t.Fatal("render reported no failure for a >10%% regression")
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Fatalf("report lacks FAIL line:\n%s", sb.String())
	}
}

// TestCompareTakesMinOfRepeats: with repeated suite passes each
// benchmark appears several times per document; the gate must compare
// minima, so one noisy repeat on either side cannot fail (or mask) a
// regression.
func TestCompareTakesMinOfRepeats(t *testing.T) {
	base := report("cpuA",
		Result{Name: "BenchmarkHot", Package: "p", NsPerOp: 1000},
		Result{Name: "BenchmarkHot", Package: "p", NsPerOp: 1400}, // noisy repeat
	)
	cur := report("cpuA",
		Result{Name: "BenchmarkHot", Package: "p", NsPerOp: 1300}, // noisy repeat
		Result{Name: "BenchmarkHot", Package: "p", NsPerOp: 1050},
	)
	findings, _ := compare(base, cur, 0.10, nil, false)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (repeats collapsed)", len(findings))
	}
	f := findings[0]
	if f.Base != 1000 || f.Cur != 1050 || f.Fails {
		t.Fatalf("min-of-repeats not applied: %+v", f)
	}
	// And a genuine regression of the minimum still fails.
	cur.Results[1].NsPerOp = 1200
	if fs, _ := compare(base, cur, 0.10, nil, false); !fs[0].Fails {
		t.Fatalf("regressed minimum passed the gate: %+v", f)
	}
}

// TestCompareDriftNormalization: a machine-state shift moves every
// benchmark by roughly the same factor; the gate must divide that out,
// failing only entries that moved against the pack.
func TestCompareDriftNormalization(t *testing.T) {
	var baseR, curR []Result
	for i := 0; i < 10; i++ {
		name := "Benchmark" + strconv.Itoa(i)
		baseR = append(baseR, Result{Name: name, Package: "p", NsPerOp: 1000})
		curR = append(curR, Result{Name: name, Package: "p", NsPerOp: 1120}) // +12% everywhere
	}
	findings, shift := compare(report("cpuA", baseR...), report("cpuA", curR...), 0.10, nil, false)
	if shift < 0.11 || shift > 0.13 {
		t.Fatalf("drift = %v, want ~0.12", shift)
	}
	for _, f := range findings {
		if f.Fails {
			t.Fatalf("uniform +12%% drift failed the gate: %+v", f)
		}
	}
	// One benchmark moving +30% against the same +12% pack still fails.
	curR[3].NsPerOp = 1300
	findings, _ = compare(report("cpuA", baseR...), report("cpuA", curR...), 0.10, nil, false)
	if findings[0].Name != "p.Benchmark3" || !findings[0].Fails {
		t.Fatalf("against-the-pack regression passed: %+v", findings[0])
	}
	for _, f := range findings[1:] {
		if f.Fails {
			t.Fatalf("pack member failed the gate: %+v", f)
		}
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report("cpuA", Result{Name: "BenchmarkGone", NsPerOp: 500})
	cur := report("cpuA")
	findings, _ := compare(base, cur, 0.10, nil, false)
	if len(findings) != 1 || !findings[0].Missing || !findings[0].Fails {
		t.Fatalf("missing benchmark not flagged: %+v", findings)
	}
}

func TestCompareAllowlistWarnsOnly(t *testing.T) {
	base := report("cpuA",
		Result{Name: "BenchmarkNoisy", NsPerOp: 100},
		Result{Name: "BenchmarkGone", NsPerOp: 100},
	)
	cur := report("cpuA", Result{Name: "BenchmarkNoisy", NsPerOp: 500})
	findings, _ := compare(base, cur, 0.10, regexp.MustCompile("Noisy|Gone"), false)
	for _, f := range findings {
		if f.Fails {
			t.Fatalf("allowlisted benchmark failed the gate: %+v", f)
		}
	}
}

func TestCompareLenientCPUDowngrades(t *testing.T) {
	base := report("cpuA", Result{Name: "BenchmarkHot", NsPerOp: 100})
	cur := report("cpuB", Result{Name: "BenchmarkHot", NsPerOp: 300})
	findings, _ := compare(base, cur, 0.10, nil, true)
	if findings[0].Fails || !findings[0].Lenient {
		t.Fatalf("lenient mode did not downgrade: %+v", findings[0])
	}
}

// TestRunEndToEnd drives the CLI through run(): a synthetic >10%
// regression must exit 1 in strict mode and 0 with -lenient-cpu across
// differing CPUs.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, cpu string, ns float64) string {
		path := filepath.Join(dir, name)
		data := `{"goos":"linux","goarch":"amd64","cpu":"` + cpu + `","results":[` +
			`{"name":"BenchmarkX","package":"p","iterations":10,"ns_per_op":` +
			strconv.FormatFloat(ns, 'g', -1, 64) + `}]}`
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", "cpuA", 1000)
	cur := write("cur.json", "cpuA", 1500)
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, "-current", cur}, &out, &errOut); code != 1 {
		t.Fatalf("strict run exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	curB := write("curB.json", "cpuB", 1500)
	out.Reset()
	if code := run([]string{"-baseline", base, "-current", curB, "-lenient-cpu"}, &out, &errOut); code != 0 {
		t.Fatalf("lenient run exit = %d, want 0\n%s", code, out.String())
	}
	outFile := filepath.Join(dir, "diff.txt")
	if code := run([]string{"-baseline", base, "-current", cur, "-threshold", "0.60", "-out", outFile}, &out, &errOut); code != 0 {
		t.Fatalf("raised-threshold run exit = %d, want 0", code)
	}
	if _, err := os.Stat(outFile); err != nil {
		t.Fatalf("-out report not written: %v", err)
	}
}
