// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document on stdout, for machine-readable benchmark
// artifacts (`make bench-json` → BENCH_selection.json, uploaded by CI).
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) become typed fields;
// any custom b.ReportMetric units land in the "metrics" map. Lines that
// are not benchmark results (headers, PASS/ok, test logs) set context
// (goos/goarch/cpu/pkg) or are ignored, so the tool can be fed the raw
// output of `go test -bench ./...` across multiple packages.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	report := &Report{Results: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if !ok {
				continue
			}
			r.Package = pkg
			report.Results = append(report.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseResult parses one result line:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   2 allocs/op   0.95 F1
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go appends to benchmark names.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters}
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerS = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return r, true
}
