package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: crowdfusion/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTaskEntropyKernel/Butterfly/dense/k=8-4         	    4096	    245574 ns/op	    2264 B/op	       4 allocs/op
BenchmarkFig2/pc=0.7/OPT-4   	      10	 123456 ns/op	         0.9512 F1
PASS
ok  	crowdfusion/internal/core	1.677s
pkg: crowdfusion
BenchmarkSweepParallelism/Auto 	       7	 28721884 ns/op
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" {
		t.Errorf("platform not captured: %q/%q", report.Goos, report.Goarch)
	}
	if len(report.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(report.Results))
	}

	r := report.Results[0]
	if r.Name != "BenchmarkTaskEntropyKernel/Butterfly/dense/k=8" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", r.Name)
	}
	if r.Package != "crowdfusion/internal/core" {
		t.Errorf("package = %q", r.Package)
	}
	if r.Iterations != 4096 || r.NsPerOp != 245574 || r.BytesPerOp != 2264 || r.AllocsPerOp != 4 {
		t.Errorf("standard units misparsed: %+v", r)
	}

	if f1 := report.Results[1].Metrics["F1"]; f1 != 0.9512 {
		t.Errorf("custom metric F1 = %v, want 0.9512", f1)
	}

	last := report.Results[2]
	if last.Name != "BenchmarkSweepParallelism/Auto" || last.Package != "crowdfusion" {
		t.Errorf("multi-package context not tracked: %+v", last)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noisy := "Benchmark\nBenchmarkX notanumber\nrandom text\n"
	report, err := parse(bufio.NewScanner(strings.NewReader(noisy)))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 0 {
		t.Fatalf("noise produced %d results", len(report.Results))
	}
}
