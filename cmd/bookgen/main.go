// Command bookgen generates a synthetic Book dataset (the substitute for
// the paper's lunadong.com benchmark) and writes it as JSON.
//
// Usage:
//
//	bookgen -books 100 -sources 40 -seed 1 -out books.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"crowdfusion/internal/bookdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bookgen: ")

	cfg := bookdata.DefaultConfig()
	flag.IntVar(&cfg.Books, "books", cfg.Books, "number of books")
	flag.IntVar(&cfg.Sources, "sources", cfg.Sources, "number of bookstore sources")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generation seed")
	flag.Float64Var(&cfg.Coverage, "coverage", cfg.Coverage, "probability a source claims a book")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	d, err := bookdata.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := d.Save(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if err := d.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"generated %d books, %d sources, %d statements, %d claims (gold claim rate %.3f)\n",
		len(d.Books), len(d.Sources), d.StatementCount(), len(d.Claims), d.GoldRate())
}
