// Command chaosproxy fronts one crowdfusiond node with a fault-injectable
// TCP proxy for chaos testing. The node advertises the proxy address to
// its peers (-self/-peers point at proxies, not nodes), so partitioning
// the proxy makes the node unreachable WITHOUT stopping it — the deposed
// owner keeps running, keeps believing it owns its sessions, and keeps
// trying to write, which is exactly the dual-writer scenario the lease
// fence must refuse.
//
// Usage:
//
//	chaosproxy -listen 127.0.0.1:9101 -target 127.0.0.1:8101 -ctl 127.0.0.1:9201
//
// The control API:
//
//	POST /partition      refuse new connections, sever established ones
//	POST /heal           forward again
//	POST /delay?d=50ms   add per-chunk latency both ways (d=0 clears)
//	GET  /status         {"partitioned":bool,"delay":"50ms"}
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdfusion/internal/chaos"
)

// newListener binds the control address, so ":0" reports its real port in
// the log the way the daemon does — smoke scripts parse it.
func newListener(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("chaosproxy: ")

	var (
		listen = flag.String("listen", "127.0.0.1:0", "address peers dial (the advertised address)")
		target = flag.String("target", "", "the real node address to forward to (required)")
		ctl    = flag.String("ctl", "127.0.0.1:0", "control API listen address")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("-target is required")
	}

	p, err := chaos.NewProxy(*listen, *target)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	log.Printf("forwarding %s -> %s", p.Addr(), *target)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /partition", func(w http.ResponseWriter, _ *http.Request) {
		p.Partition()
		log.Printf("partitioned")
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /heal", func(w http.ResponseWriter, _ *http.Request) {
		p.Heal()
		log.Printf("healed")
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /delay", func(w http.ResponseWriter, r *http.Request) {
		d, err := time.ParseDuration(r.URL.Query().Get("d"))
		if err != nil || d < 0 {
			http.Error(w, "bad ?d= duration", http.StatusBadRequest)
			return
		}
		p.SetDelay(d)
		log.Printf("delay %v", d)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"listen":      p.Addr(),
			"target":      *target,
			"partitioned": p.Partitioned(),
			"delay":       p.Delay().String(),
		})
	})

	ctlSrv := &http.Server{Addr: *ctl, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() {
		ln, err := newListener(*ctl)
		if err != nil {
			errc <- err
			return
		}
		log.Printf("control API on %s", ln.Addr())
		errc <- ctlSrv.Serve(ln)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sigc:
	case err := <-errc:
		log.Fatalf("control API: %v", err)
	}
}
