// Command crowdfusion runs the end-to-end CrowdFusion pipeline: generate
// (or load) a Book dataset, initialize with a machine-only fusion method,
// refine with a simulated crowd under a budget, and report quality before
// and after, with the Section V-D residual-error breakdown.
//
// Usage:
//
//	crowdfusion -books 100 -pc 0.8 -k 3 -budget 60 -selector Approx+Prune
//	crowdfusion -in books.json -fusion TruthFinder -difficulty
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/core"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/fusion"
	"crowdfusion/internal/worlds"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crowdfusion: ")

	var (
		in         = flag.String("in", "", "dataset JSON (generated if empty)")
		books      = flag.Int("books", 100, "books to generate when -in is empty")
		sources    = flag.Int("sources", 40, "sources to generate when -in is empty")
		seed       = flag.Int64("seed", 1, "seed for generation and simulation")
		fusionName = flag.String("fusion", "CRH", "initializer: MajorityVote|CRH|TruthFinder|AccuVote")
		selector   = flag.String("selector", "Approx+Prune", "task selector: OPT|Approx|Approx+Prune|Approx+Pre|Approx+Prune+Pre|Random")
		pc         = flag.Float64("pc", 0.8, "crowd accuracy in [0.5, 1]")
		k          = flag.Int("k", 3, "tasks per round per book")
		budget     = flag.Int("budget", 60, "task budget per book")
		difficulty = flag.Bool("difficulty", false, "simulate Section V-D statement difficulty")
	)
	flag.Parse()

	// Reject impossible configurations here, with the flag named, instead
	// of letting them surface rounds later as an opaque selection error.
	if err := validateFlags(*pc, *k, *budget); err != nil {
		log.Fatal(err)
	}

	d, err := loadOrGenerate(*in, *books, *sources, *seed)
	if err != nil {
		log.Fatal(err)
	}
	method, err := fusionByName(*fusionName)
	if err != nil {
		log.Fatal(err)
	}
	truths, err := method.Fuse(d.Claims)
	if err != nil {
		log.Fatal(err)
	}
	instances, err := worlds.BuildAll(d, truths, worlds.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	priorU, prior, err := eval.PriorQuality(instances)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eval.RunSweep(eval.SweepConfig{
		Instances:     instances,
		Selector:      eval.SelectorKind(*selector),
		K:             *k,
		Budget:        *budget,
		Pc:            *pc,
		UseDifficulty: *difficulty,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d books, %d statements, %d claims (gold rate %.3f)\n",
		len(d.Books), d.StatementCount(), len(d.Claims), d.GoldRate())
	fmt.Printf("initializer: %s   selector: %s   Pc=%.2f k=%d budget=%d/book\n\n",
		method.Name(), *selector, *pc, *k, *budget)
	fmt.Printf("%-22s %10s %10s %10s %12s\n", "", "precision", "recall", "F1", "utility")
	fmt.Printf("%-22s %10.4f %10.4f %10.4f %12.2f\n",
		"machine-only prior", prior.Precision(), prior.Recall(), prior.F1(), priorU)
	last := res.Trace[len(res.Trace)-1]
	fmt.Printf("%-22s %10.4f %10.4f %10.4f %12.2f   (cost %d tasks)\n\n",
		"after CrowdFusion", res.Final.Precision(), res.Final.Recall(), res.Final.F1(),
		last.Utility, last.Cost)

	breakdown, err := eval.AnalyzeErrors(instances, res.Joints)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("residual errors by statement class (Section V-D):")
	if err := eval.RenderErrorBreakdown(os.Stdout, breakdown); err != nil {
		log.Fatal(err)
	}
}

// validateFlags enforces the documented invariants at flag-parse time:
// selection and merging assume a better-than-coin-flip crowd (pc ∈
// [0.5, 1], the invariant the core kernel's channel weights rely on), and
// a round cannot ask more tasks than the whole budget allows.
func validateFlags(pc float64, k, budget int) error {
	if pc < 0.5 || pc > 1 || math.IsNaN(pc) {
		return fmt.Errorf("-pc %v outside [0.5, 1]: the crowd model needs a better-than-coin-flip accuracy", pc)
	}
	if k <= 0 {
		return fmt.Errorf("-k %d must be positive", k)
	}
	if k > core.MaxTasksPerRound {
		return fmt.Errorf("-k %d exceeds the per-round limit %d (selection cost grows as 2^k)",
			k, core.MaxTasksPerRound)
	}
	if budget <= 0 {
		return fmt.Errorf("-budget %d must be positive", budget)
	}
	if k > budget {
		return fmt.Errorf("-k %d exceeds -budget %d: one round would overspend the whole budget", k, budget)
	}
	return nil
}

func loadOrGenerate(path string, books, sources int, seed int64) (*bookdata.Dataset, error) {
	if path != "" {
		return bookdata.LoadFile(path)
	}
	cfg := bookdata.DefaultConfig()
	cfg.Books = books
	cfg.Sources = sources
	cfg.Seed = seed
	return bookdata.Generate(cfg)
}

func fusionByName(name string) (fusion.Method, error) {
	switch name {
	case "MajorityVote":
		return fusion.MajorityVote{}, nil
	case "CRH":
		return fusion.NewCRH(), nil
	case "TruthFinder":
		return fusion.NewTruthFinder(), nil
	case "AccuVote":
		return fusion.NewAccuVote(), nil
	default:
		return nil, fmt.Errorf("unknown fusion method %q", name)
	}
}
