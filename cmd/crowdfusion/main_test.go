package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	good := []struct {
		pc        float64
		k, budget int
	}{
		{0.5, 1, 1},
		{0.8, 3, 60},
		{1.0, 10, 10},
	}
	for _, c := range good {
		if err := validateFlags(c.pc, c.k, c.budget); err != nil {
			t.Errorf("validateFlags(%v, %d, %d) = %v, want nil", c.pc, c.k, c.budget, err)
		}
	}

	bad := []struct {
		name      string
		pc        float64
		k, budget int
		wantFlag  string
	}{
		{"pc below coin flip", 0.49, 3, 60, "-pc"},
		{"pc above one", 1.01, 3, 60, "-pc"},
		{"pc NaN", math.NaN(), 3, 60, "-pc"},
		{"k zero", 0.8, 0, 60, "-k"},
		{"k negative", 0.8, -1, 60, "-k"},
		{"budget zero", 0.8, 1, 0, "-budget"},
		{"k beyond budget", 0.8, 15, 10, "-k"},
		{"k beyond round limit", 0.8, 25, 100, "-k"},
	}
	for _, c := range bad {
		err := validateFlags(c.pc, c.k, c.budget)
		if err == nil {
			t.Errorf("%s: validateFlags(%v, %d, %d) accepted", c.name, c.pc, c.k, c.budget)
			continue
		}
		// The error must name the offending flag so the fix is obvious
		// from the command line.
		if !strings.Contains(err.Error(), c.wantFlag) {
			t.Errorf("%s: error %q does not name flag %s", c.name, err, c.wantFlag)
		}
	}
}

func TestFusionByName(t *testing.T) {
	for _, name := range []string{"MajorityVote", "CRH", "TruthFinder", "AccuVote"} {
		m, err := fusionByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("fusionByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := fusionByName("Oracle"); err == nil {
		t.Error("unknown fusion method accepted")
	}
}
