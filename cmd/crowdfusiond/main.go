// Command crowdfusiond serves the CrowdFusion refinement loop over
// HTTP/JSON: clients create sessions from fused marginals or an explicit
// joint, pull entropy-maximizing task batches, post crowd answers, and
// read refined posteriors. See the README's "Serving" section for the
// API and a curl quickstart.
//
// Usage:
//
//	crowdfusiond -addr :8377 -session-ttl 30m -max-sessions 100000
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests (including merges) drain, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdfusion/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("crowdfusiond: ")

	var (
		addr        = flag.String("addr", ":8377", "listen address")
		ttl         = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime before eviction (0 disables)")
		maxSessions = flag.Int("max-sessions", 100_000, "live session cap (0 = unlimited)")
		maxConc     = flag.Int("max-concurrent", 0, "concurrent select/merge requests (0 = one per hardware thread)")
		queueWait   = flag.Duration("queue-timeout", 5*time.Second, "how long a request may wait for a compute slot before 503")
		reqTimeout  = flag.Duration("request-timeout", 60*time.Second, "whole-request timeout")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		seed        = flag.Int64("seed", 1, "seed for Random selectors")
	)
	flag.Parse()

	cfg := service.Config{
		TTL:            *ttl,
		MaxSessions:    *maxSessions,
		MaxConcurrent:  *maxConc,
		QueueTimeout:   *queueWait,
		RequestTimeout: *reqTimeout,
		Seed:           *seed,
	}
	if *ttl == 0 {
		cfg.TTL = -1 // Config treats 0 as "default"; negative disables.
	}
	svc := service.NewServer(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	// Stop accepting, drain in-flight HTTP requests, then drain any
	// compute the HTTP layer already timed out on, so every accepted
	// merge completes before exit.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	svc.Close()
	log.Printf("drained, exiting")
}
