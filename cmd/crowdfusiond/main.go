// Command crowdfusiond serves the CrowdFusion refinement loop over
// HTTP/JSON: clients create sessions from fused marginals or an explicit
// joint, pull entropy-maximizing task batches, post crowd answers, and
// read refined posteriors. See the README's "Serving" section for the
// API and a curl quickstart.
//
// Usage:
//
//	crowdfusiond -addr :8377 -session-ttl 30m -max-sessions 100000
//	crowdfusiond -store file -data-dir /var/lib/crowdfusion
//
// With -store file, sessions are durable: every acknowledged merge is
// fsynced to an append-only op log before the response is written, and a
// restarted daemon recovers each session bit-identically by replaying its
// log (lazily, on first touch). With the default -store memory, a restart
// loses all sessions — PR 3's behavior.
//
// # Sharding
//
// A fleet of daemons splits the session space with -peers and -self:
//
//	crowdfusiond -addr :8377 -self 10.0.0.1:8377 \
//	    -peers 10.0.0.1:8377,10.0.0.2:8377,10.0.0.3:8377 \
//	    -store file -data-dir /mnt/shared/crowdfusion
//
// Every node (and the ring-aware client) computes the same rendezvous
// placement over the -peers list, so each session has exactly one serving
// node; misrouted requests answer HTTP 421 with code "not_owner" and the
// owner's address. Nodes probe each other's /healthz every -heartbeat;
// when one dies, its sessions deterministically re-home onto the
// survivors, which rebuild them from the shared -data-dir by replaying
// their op logs — the same path as crash recovery. Cluster mode therefore
// requires -store file on storage all nodes share.
//
// # Fenced ownership
//
// Placement alone cannot close the dual-writer window: a partitioned node
// that everyone else believes dead keeps serving its resident sessions
// until its next probe round. Leases close it for real. With -lease, the
// owner of a session holds a TTL'd write lease with a monotonic fencing
// epoch, renewed every -lease-renew; every write is stamped with the
// epoch, and the store refuses a deposed owner's write with HTTP 421 code
// "fenced" + the new holder's address. Cluster mode defaults to
// -lease 10s; single-node mode defaults to off (one process, one writer).
// -clock-skew shifts this node's clock (lease arithmetic included) for
// chaos testing — see scripts/chaos_smoke.sh.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests (including merges) drain, live sessions
// are flushed to a durable store, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crowdfusion/internal/cluster"
	"crowdfusion/internal/service"
	"crowdfusion/internal/store"
	"crowdfusion/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8377", "listen address (use :0 for an ephemeral port; the bound address is logged)")
		ttl         = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime before eviction (0 disables)")
		maxSessions = flag.Int("max-sessions", 100_000, "live session cap (0 = unlimited)")
		maxConc     = flag.Int("max-concurrent", 0, "concurrent select/merge requests (0 = one per hardware thread)")
		queueWait   = flag.Duration("queue-timeout", 5*time.Second, "how long a request may wait for a compute slot before 503")
		reqTimeout  = flag.Duration("request-timeout", 60*time.Second, "whole-request timeout")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		seed        = flag.Int64("seed", 1, "seed for Random selectors")
		storeKind   = flag.String("store", "memory", "session store: memory (volatile) or file (durable)")
		dataDir     = flag.String("data-dir", "", "data directory for -store file")
		compactOps  = flag.Int("store-compact", 0, "ops per session before its log is compacted into the snapshot (0 = default)")
		peersFlag   = flag.String("peers", "", "comma-separated cluster peer addresses (host:port or URL); enables shard-aware serving")
		selfAddr    = flag.String("self", "", "this node's advertised address within -peers; required in cluster mode")
		heartbeat   = flag.Duration("heartbeat", time.Second, "peer liveness probe interval in cluster mode")
		maxSubs     = flag.Int("max-subscribers", 0, "event-stream subscribers per session (0 = default)")
		leaseTTL    = flag.Duration("lease", 0, "session write-lease TTL with fencing epochs (0 = off; cluster mode defaults to 10s)")
		leaseRenew  = flag.Duration("lease-renew", 0, "lease heartbeat interval (0 = lease/3)")
		clockSkew   = flag.Duration("clock-skew", 0, "shift this node's clock by the given offset (chaos testing; affects lease expiry arithmetic)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		anonWorker  = flag.String("anon-worker", "", "worker ID credited for unattributed legacy submissions (default \"anon\")")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/traces and /debug/pprof on this address (empty = off)")
	)
	flag.Parse()
	leaseSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "lease" {
			leaseSet = true
		}
	})

	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "crowdfusiond: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(logHandler)
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	// cluster.Ring and store.File keep their printf-style hook; adapt.
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }

	// Spans are always recorded in-process (bounded memory); -debug-addr
	// decides whether anything serves them.
	nodeName := *selfAddr
	if nodeName == "" {
		nodeName = "local"
	}
	recorder := trace.NewRecorder(nodeName)
	tracer := trace.New(nodeName, recorder)

	// Cluster topology first: store wiring depends on whether this node is
	// part of a fleet.
	var ring *cluster.Ring
	if *peersFlag != "" {
		if *selfAddr == "" {
			fatalf("-peers requires -self (this node's advertised address)")
		}
		if *storeKind != "file" {
			fatalf("-peers requires -store file on storage shared by all nodes: failover adopts sessions by replaying their records from the shared store")
		}
		var err error
		ring, err = cluster.New(cluster.Config{
			Self:          *selfAddr,
			Peers:         strings.Split(*peersFlag, ","),
			ProbeInterval: *heartbeat,
			Logf:          logf,
		})
		if err != nil {
			fatalf("building cluster ring: %v", err)
		}
	} else if *selfAddr != "" {
		fatalf("-self is only meaningful with -peers")
	}

	var sessions store.SessionStore
	switch *storeKind {
	case "memory":
		if *dataDir != "" {
			fatalf("-data-dir is only meaningful with -store file")
		}
		sessions = store.NewMemory()
	case "file":
		if *dataDir == "" {
			fatalf("-store file requires -data-dir")
		}
		fileStore, err := store.NewFile(*dataDir, *compactOps)
		if err != nil {
			fatalf("opening session store: %v", err)
		}
		fileStore.Logf = logf
		if ring == nil {
			// One writer per data dir: a second daemon sharing it would
			// corrupt session logs. The kernel drops the lock on process
			// death, so crash-restart needs no cleanup.
			if err := fileStore.Lock(); err != nil {
				fatalf("locking session store: %v", err)
			}
		}
		// Recovery scan: count what survived the last run. Sessions load
		// lazily on first touch; the scan only proves the directory is
		// readable and tells the operator what is there. In cluster mode it
		// also reports how the ring partitions the on-disk sessions, so a
		// misconfigured -peers list is visible at boot, not at first 421.
		ids, err := fileStore.List()
		if err != nil {
			fatalf("scanning session store: %v", err)
		}
		if ring != nil {
			owned := 0
			for _, id := range ids {
				if ring.StaticOwner(id) == ring.Self() {
					owned++
				}
			}
			logger.Info(fmt.Sprintf("store: %d session(s) on disk in %s; this node owns %d of them (loaded lazily on first touch)",
				len(ids), *dataDir, owned))
		} else {
			logger.Info(fmt.Sprintf("store: %d session(s) on disk in %s (loaded lazily on first touch)", len(ids), *dataDir))
		}
		sessions = fileStore
	default:
		fatalf("unknown -store %q (want memory or file)", *storeKind)
	}

	// Leases default on in cluster mode: that is where a second writer can
	// exist. An explicit -lease 0 keeps them off (flag.Visit distinguishes
	// "unset" from "set to zero").
	if ring != nil && !leaseSet {
		*leaseTTL = 10 * time.Second
	}

	cfg := service.Config{
		TTL:            *ttl,
		MaxSessions:    *maxSessions,
		MaxConcurrent:  *maxConc,
		QueueTimeout:   *queueWait,
		RequestTimeout: *reqTimeout,
		Seed:           *seed,
		Store:          sessions,
		MaxSubscribers: *maxSubs,
		Cluster:        ring,
		Logger:         logger,
		Tracer:         tracer,
		LeaseTTL:       *leaseTTL,
		LeaseRenew:     *leaseRenew,
		AnonWorker:     *anonWorker,
	}
	if *ttl == 0 {
		cfg.TTL = -1 // Config treats 0 as "default"; negative disables.
	}
	if *clockSkew != 0 {
		skew := *clockSkew
		cfg.Clock = func() time.Time { return time.Now().Add(skew) }
		logger.Info("chaos: clock skewed", "skew", skew)
	}
	if *leaseTTL > 0 {
		logger.Info("leases enabled: fencing epochs on every write", "ttl", *leaseTTL)
	}
	svc := service.NewServer(cfg)

	// The ops surface lives on its own listener so production traffic and
	// profiling/trace dumps can be firewalled apart. pprof handlers are
	// wired explicitly (never on the serving mux, and without relying on
	// the DefaultServeMux side-effect registration).
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen %s: %v", *debugAddr, err)
		}
		dmux := http.NewServeMux()
		dmux.Handle("/debug/traces", trace.Handler(recorder))
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		defer dbgSrv.Close()
		go func() {
			logger.Info(fmt.Sprintf("debug listening on %s", dln.Addr()))
			if err := dbgSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug serve failed", "err", err)
			}
		}()
	}

	// Bind before serving so -addr :0 can report the actual port — the
	// contract multi-daemon test scripts rely on instead of hardcoding.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Event streams are long-lived by design; Shutdown would wait on them
	// forever. Ending them when Shutdown begins lets the graceful drain
	// handle only request-response work (subscribers reconnect elsewhere).
	httpSrv.RegisterOnShutdown(svc.StopStreams)

	errc := make(chan error, 1)
	go func() {
		logger.Info(fmt.Sprintf("listening on %s", ln.Addr()))
		errc <- httpSrv.Serve(ln)
	}()
	if ring != nil {
		ring.Start()
		logger.Info("cluster up", "self", ring.Self(), "peers", ring.Size(), "heartbeat", *heartbeat)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String())
	case err := <-errc:
		fatalf("serve: %v", err)
	}

	// Stop accepting, drain in-flight HTTP requests, then drain any
	// compute the HTTP layer already timed out on, so every accepted
	// merge completes before exit. The ring prober stops first so a
	// topology flap cannot trigger relinquishments mid-drain.
	if ring != nil {
		ring.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	svc.Close()
	logger.Info("drained, exiting")
}
