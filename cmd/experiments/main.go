// Command experiments regenerates every table and figure of the
// CrowdFusion paper's evaluation (Section V) on the synthetic Book dataset:
//
//	experiments -exp tables1-4   # the running example (Tables I-IV)
//	experiments -exp table5      # one-round selection times of 5 approaches
//	experiments -exp fig2        # OPT vs Approx vs Random (k=2, B=10)
//	experiments -exp fig3        # k = 1..6 sweeps
//	experiments -exp fig4        # Pc = 0.7/0.8/0.9 sweeps
//	experiments -exp errors      # Section V-D residual-error taxonomy
//	experiments -exp query       # Section IV facts-of-interest extension
//	experiments -exp allocation  # Section V-D global-budget extension
//	experiments -exp calibration # reliability of the posterior marginals
//	experiments -exp all
//
// Sizes are scaled down by default so everything finishes in minutes; use
// -books/-sources/-budget/-repeats to approach the paper's scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/fusion"
	"crowdfusion/internal/worlds"
)

type options struct {
	books   int
	sources int
	seed    int64
	budget  int
	pc      float64
	csvDir  string
	repeats int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var opt options
	exp := flag.String("exp", "all", "tables1-4|table5|fig2|fig3|fig4|errors|query|allocation|calibration|all")
	flag.IntVar(&opt.books, "books", 100, "books in the generated dataset")
	flag.IntVar(&opt.sources, "sources", 40, "sources in the generated dataset")
	flag.Int64Var(&opt.seed, "seed", 1, "seed for data generation and crowd simulation")
	flag.IntVar(&opt.budget, "budget", 60, "per-book budget (paper: 60)")
	flag.Float64Var(&opt.pc, "pc", 0.8, "crowd accuracy for single-Pc experiments")
	flag.StringVar(&opt.csvDir, "csv", "", "directory to also write CSV outputs into")
	flag.IntVar(&opt.repeats, "repeats", 1, "timing repetitions (Table V)")
	flag.Parse()

	runners := map[string]func(options) error{
		"tables1-4":   runTables14,
		"table5":      runTable5,
		"fig2":        runFig2,
		"fig3":        runFig3,
		"fig4":        runFig4,
		"errors":      runErrors,
		"query":       runQuery,
		"allocation":  runAllocation,
		"calibration": runCalibration,
	}
	names := []string{"tables1-4", "table5", "fig2", "fig3", "fig4", "errors",
		"query", "allocation", "calibration"}
	if *exp != "all" {
		r, ok := runners[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q", *exp)
		}
		if err := r(opt); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, name := range names {
		if err := runners[name](opt); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}
}

// instances generates the dataset and builds per-book instances with the
// paper's modified-CRH initializer.
func instances(opt options) (*bookdata.Dataset, []*worlds.Instance, error) {
	cfg := bookdata.DefaultConfig()
	cfg.Books = opt.books
	cfg.Sources = opt.sources
	cfg.Seed = opt.seed
	d, err := bookdata.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	truths, err := fusion.NewCRH().Fuse(d.Claims)
	if err != nil {
		return nil, nil, err
	}
	ins, err := worlds.BuildAll(d, truths, worlds.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return d, ins, nil
}

func subset(ins []*worlds.Instance, isbns []string) []*worlds.Instance {
	want := make(map[string]bool, len(isbns))
	for _, i := range isbns {
		want[i] = true
	}
	var out []*worlds.Instance
	for _, in := range ins {
		if want[in.ISBN] {
			out = append(out, in)
		}
	}
	return out
}

func csvFile(opt options, name string) (io.WriteCloser, error) {
	if opt.csvDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(opt.csvDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(opt.csvDir, name))
}

// runTables14 prints the running example: Tables I-IV plus the greedy
// walkthrough of Section III-D.
func runTables14(options) error {
	facts, j := dist.RunningExample()

	fmt.Println("== Table I: facts with uncertainty ==")
	for i, f := range facts {
		m, err := j.Marginal(i)
		if err != nil {
			return err
		}
		fmt.Printf("  %s  %-45s P = %.2f\n", f.ID, f.String(), m)
	}

	fmt.Println("\n== Table II: output joint distribution ==")
	fmt.Println("  oid   f1 f2 f3 f4   P(o)")
	for i, w := range j.Worlds() {
		fmt.Printf("  o%-3d  %s   %.2f\n", i+1, w.FormatJudgments(4), j.Probs()[i])
	}

	fmt.Println("\n== Table III: fact entropy vs task entropy (Pc = 0.8) ==")
	fmt.Println("  T         H(facts)  H(T)")
	pairs := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for _, p := range pairs {
		fh, err := j.FactEntropy(p)
		if err != nil {
			return err
		}
		th, err := core.TaskEntropy(j, p, 0.8)
		if err != nil {
			return err
		}
		fmt.Printf("  {f%d,f%d}   %.3f     %.3f\n", p[0]+1, p[1]+1, fh, th)
	}

	fmt.Println("\n== Table IV: answer joint distribution (all facts asked, Pc = 0.8) ==")
	pre, err := core.Preprocess(j, 0.8)
	if err != nil {
		return err
	}
	fmt.Println("  aid   f1 f2 f3 f4   P(a)")
	for i, w := range j.Worlds() {
		fmt.Printf("  a%-3d  %s   %.3f\n", i+1, w.FormatJudgments(4), pre.AnswerProb(i))
	}

	fmt.Println("\n== Greedy walkthrough (k = 2, Pc = 0.8) ==")
	sel := core.NewGreedy()
	tasks, err := sel.Select(j, 2, 0.8)
	if err != nil {
		return err
	}
	h, err := core.TaskEntropy(j, tasks, 0.8)
	if err != nil {
		return err
	}
	fmt.Printf("  selected tasks: f%d and f%d with H(T) = %.3f\n", tasks[0]+1, tasks[1]+1, h)

	fmt.Println("\n== Update example (ask f1, crowd answers yes, Pc = 0.8) ==")
	pe, err := j.AnswerSetProb([]int{0}, []bool{true}, 0.8)
	if err != nil {
		return err
	}
	post, err := j.Condition([]int{0}, []bool{true}, 0.8)
	if err != nil {
		return err
	}
	fmt.Printf("  P(e) = %.3f   P(o1|e) = %.3f   P(o9|e) = %.3f\n",
		pe, post.Prob(0), post.Prob(dist.World(0).Set(0, true)))
	return nil
}

// runTable5 measures one-round selection times of the five approaches on
// books with more than 20 facts, k = 1..10 (OPT to 3).
func runTable5(opt options) error {
	d, ins, err := instances(opt)
	if err != nil {
		return err
	}
	large := subset(ins, d.BooksWithAtLeast(21))
	if len(large) == 0 {
		return fmt.Errorf("no books with > 20 facts; increase -sources")
	}
	fmt.Printf("== Table V: one-round selection time (s), %d books with > 20 facts ==\n", len(large))
	res, err := eval.RunTimings(eval.TimingConfig{
		Instances: large,
		Ks:        []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Selectors: []eval.SelectorKind{eval.SelOPT, eval.SelApprox, eval.SelApproxPrune,
			eval.SelApproxPre, eval.SelApproxFull},
		Pc:      opt.pc,
		MaxOptK: 3,
		Repeats: opt.repeats,
	})
	if err != nil {
		return err
	}
	if err := eval.RenderTimings(os.Stdout, res); err != nil {
		return err
	}
	if w, err := csvFile(opt, "table5.csv"); err != nil {
		return err
	} else if w != nil {
		defer w.Close()
		return eval.WriteTimingsCSV(w, res)
	}
	return nil
}

// runFig2 compares OPT, Approx and Random at k = 2, B = 10 on the 40 books
// with the fewest statements, for Pc in {0.7, 0.8, 0.9}.
func runFig2(opt options) error {
	d, ins, err := instances(opt)
	if err != nil {
		return err
	}
	nSmall := 40
	if nSmall > len(ins) {
		nSmall = len(ins)
	}
	small := subset(ins, d.SmallestBooks(nSmall))
	fmt.Printf("== Figure 2: OPT vs Approx vs Random (k=2, B=10, %d smallest books) ==\n", len(small))
	curves := make(map[string][]eval.TracePoint)
	for _, pc := range []float64{0.7, 0.8, 0.9} {
		for _, kind := range []eval.SelectorKind{eval.SelOPT, eval.SelApprox, eval.SelRandom} {
			res, err := eval.RunSweep(eval.SweepConfig{
				Instances: small,
				Selector:  kind,
				K:         2,
				Budget:    10,
				Pc:        pc,
				Seed:      opt.seed,
			})
			if err != nil {
				return err
			}
			label := fmt.Sprintf("pc=%.1f/%s", pc, kind)
			curves[label] = res.Trace
			last := res.Trace[len(res.Trace)-1]
			fmt.Printf("  %-22s final: cost=%-5d F1=%.4f utility=%.2f\n",
				label, last.Cost, last.F1, last.Utility)
		}
	}
	return writeCurves(opt, "fig2.csv", curves)
}

// runFig3 sweeps k = 1..6 for Approx and Random at each Pc.
func runFig3(opt options) error {
	_, ins, err := instances(opt)
	if err != nil {
		return err
	}
	fmt.Printf("== Figure 3: k settings (B=%d, %d books) ==\n", opt.budget, len(ins))
	curves := make(map[string][]eval.TracePoint)
	for _, pc := range []float64{0.7, 0.8, 0.9} {
		for k := 1; k <= 6; k++ {
			for _, kind := range []eval.SelectorKind{eval.SelApproxPrune, eval.SelRandom} {
				res, err := eval.RunSweep(eval.SweepConfig{
					Instances: ins,
					Selector:  kind,
					K:         k,
					Budget:    opt.budget,
					Pc:        pc,
					Seed:      opt.seed,
				})
				if err != nil {
					return err
				}
				label := fmt.Sprintf("pc=%.1f/k=%d/%s", pc, k, kind)
				curves[label] = res.Trace
				last := res.Trace[len(res.Trace)-1]
				fmt.Printf("  %-30s final: cost=%-6d F1=%.4f utility=%.2f\n",
					label, last.Cost, last.F1, last.Utility)
			}
		}
	}
	return writeCurves(opt, "fig3.csv", curves)
}

// runFig4 sweeps Pc in {0.7, 0.8, 0.9} at fixed k = 3.
func runFig4(opt options) error {
	_, ins, err := instances(opt)
	if err != nil {
		return err
	}
	fmt.Printf("== Figure 4: Pc settings (k=3, B=%d, %d books) ==\n", opt.budget, len(ins))
	curves := make(map[string][]eval.TracePoint)
	for _, pc := range []float64{0.7, 0.8, 0.9} {
		for _, kind := range []eval.SelectorKind{eval.SelApproxPrune, eval.SelRandom} {
			res, err := eval.RunSweep(eval.SweepConfig{
				Instances: ins,
				Selector:  kind,
				K:         3,
				Budget:    opt.budget,
				Pc:        pc,
				Seed:      opt.seed,
			})
			if err != nil {
				return err
			}
			label := fmt.Sprintf("pc=%.1f/%s", pc, kind)
			curves[label] = res.Trace
			last := res.Trace[len(res.Trace)-1]
			fmt.Printf("  %-22s final: cost=%-6d F1=%.4f utility=%.2f\n",
				label, last.Cost, last.F1, last.Utility)
		}
	}
	return writeCurves(opt, "fig4.csv", curves)
}

// runErrors reproduces the Section V-D analysis: refine with statement
// difficulty switched on, then break residual errors down by class.
func runErrors(opt options) error {
	_, ins, err := instances(opt)
	if err != nil {
		return err
	}
	fmt.Printf("== Section V-D: residual errors by statement class (%d books) ==\n", len(ins))
	res, err := eval.RunSweep(eval.SweepConfig{
		Instances:     ins,
		Selector:      eval.SelApproxPrune,
		K:             3,
		Budget:        opt.budget,
		Pc:            opt.pc,
		UseDifficulty: true,
		Seed:          opt.seed,
	})
	if err != nil {
		return err
	}
	breakdown, err := eval.AnalyzeErrors(ins, res.Joints)
	if err != nil {
		return err
	}
	fmt.Printf("final F1 with difficulty-aware crowd: %.4f\n", res.Final.F1())
	return eval.RenderErrorBreakdown(os.Stdout, breakdown)
}

// runQuery demonstrates the Section IV extension: when only a fraction of
// facts matter, the query-based selector reaches the same FOI quality with
// fewer tasks than the general selector.
func runQuery(opt options) error {
	_, ins, err := instances(opt)
	if err != nil {
		return err
	}
	fmt.Printf("== Section IV: query-based CrowdFusion (FOI = 30%% of facts, %d books) ==\n", len(ins))
	results := make(map[bool]*eval.QuerySweepResult)
	for _, useQuery := range []bool{false, true} {
		res, err := eval.RunQuerySweep(eval.QuerySweepConfig{
			Instances:        ins,
			FOIFraction:      0.3,
			UseQuerySelector: useQuery,
			K:                2,
			Budget:           opt.budget,
			Pc:               opt.pc,
			Seed:             opt.seed,
		})
		if err != nil {
			return err
		}
		results[useQuery] = res
	}
	// The Section IV advantage lives in the early-budget region: print
	// the first rounds side by side, then the finals.
	fmt.Printf("  %-8s %14s %14s\n", "round", "Approx FOI-F1", "Query FOI-F1")
	maxRounds := len(results[false].Trace)
	if l := len(results[true].Trace); l < maxRounds {
		maxRounds = l
	}
	if maxRounds > 6 {
		maxRounds = 6
	}
	for r := 0; r < maxRounds; r++ {
		fmt.Printf("  %-8d %14.4f %14.4f\n",
			r+1, results[false].Trace[r].F1, results[true].Trace[r].F1)
	}
	for _, useQuery := range []bool{false, true} {
		name := "Approx"
		if useQuery {
			name = "Query"
		}
		res := results[useQuery]
		last := res.Trace[len(res.Trace)-1]
		fmt.Printf("  final %-8s cost=%-6d FOI-F1=%.4f FOI-utility=%.2f\n",
			name, last.Cost, res.Final.F1(), last.Utility)
	}
	return nil
}

// runAllocation compares the paper's fixed per-book budget against the
// Section V-D suggestion of distributing a global budget across books.
func runAllocation(opt options) error {
	_, ins, err := instances(opt)
	if err != nil {
		return err
	}
	perBook := opt.budget / 4
	if perBook < 1 {
		perBook = 1
	}
	total := perBook * len(ins)
	fmt.Printf("== Section V-D extension: global budget allocation (%d tasks total, %d books) ==\n",
		total, len(ins))
	uniform, err := eval.RunSweep(eval.SweepConfig{
		Instances: ins,
		Selector:  eval.SelApproxPrune,
		K:         1,
		Budget:    perBook,
		Pc:        opt.pc,
		Seed:      opt.seed,
	})
	if err != nil {
		return err
	}
	global, err := eval.RunAllocation(eval.AllocationConfig{
		Instances:   ins,
		TotalBudget: total,
		Pc:          opt.pc,
		Seed:        opt.seed,
	})
	if err != nil {
		return err
	}
	uLast := uniform.Trace[len(uniform.Trace)-1]
	fmt.Printf("  %-22s cost=%-6d F1=%.4f utility=%.2f\n",
		"uniform per-book", uLast.Cost, uniform.Final.F1(), uLast.Utility)
	fmt.Printf("  %-22s cost=%-6d F1=%.4f utility=%.2f\n",
		"global allocation", global.Cost, global.Final.F1(), global.Utility)
	min, max := global.PerBook[0], global.PerBook[0]
	for _, c := range global.PerBook {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	fmt.Printf("  per-book spread under global allocation: min=%d max=%d (uniform: %d each)\n",
		min, max, perBook)
	return nil
}

// runCalibration reports whether the refined marginals are honest
// probabilities: a reliability table before and after crowd refinement.
func runCalibration(opt options) error {
	_, ins, err := instances(opt)
	if err != nil {
		return err
	}
	priorJoints := make([]*dist.Joint, len(ins))
	for i, in := range ins {
		priorJoints[i] = in.Joint
	}
	before, err := eval.CalibrationReport(ins, priorJoints, 10)
	if err != nil {
		return err
	}
	res, err := eval.RunSweep(eval.SweepConfig{
		Instances: ins,
		Selector:  eval.SelApproxPrune,
		K:         3,
		Budget:    opt.budget,
		Pc:        opt.pc,
		Seed:      opt.seed,
	})
	if err != nil {
		return err
	}
	after, err := eval.CalibrationReport(ins, res.Joints, 10)
	if err != nil {
		return err
	}
	fmt.Printf("== Calibration of posterior marginals (%d books) ==\n", len(ins))
	fmt.Println("machine-only prior:")
	if err := eval.RenderCalibration(os.Stdout, before); err != nil {
		return err
	}
	fmt.Println("\nafter CrowdFusion:")
	return eval.RenderCalibration(os.Stdout, after)
}

func writeCurves(opt options, name string, curves map[string][]eval.TracePoint) error {
	w, err := csvFile(opt, name)
	if err != nil {
		return err
	}
	if w == nil {
		return nil
	}
	defer w.Close()
	return eval.WriteTraceCSV(w, curves)
}
