// Package crowdfusion is a reproduction of "CrowdFusion: A Crowdsourced
// Approach on Data Fusion Refinement" (Chen, Chen and Zhang, ICDE 2017): a
// machine-crowd hybrid system that refines the output of any
// probability-based data-fusion method by asking a noisy crowd a budgeted
// set of true/false fact-judgment tasks, selected to maximize the entropy
// of the crowd-answer distribution.
//
// The package is a facade over the internal implementation:
//
//   - data model: facts, possible worlds and sparse joint distributions
//     (internal/dist);
//   - crowd model: Bernoulli workers with accuracy Pc, pools, accuracy
//     estimation (internal/crowd);
//   - task selection: brute-force OPT, the greedy (1-1/e) approximation
//     with pruning and preprocessing accelerations, a random baseline, and
//     the query-based variant (internal/core);
//   - machine-only fusion initializers: majority vote, modified CRH,
//     TruthFinder, AccuVote (internal/fusion);
//   - a synthetic Book dataset and a gMission-style platform simulator
//     (internal/bookdata, internal/platform);
//   - the full evaluation harness for the paper's tables and figures
//     (internal/eval).
//
// Beyond the library, cmd/crowdfusiond serves refinement sessions over
// HTTP/JSON (see the README's "Serving" section) and the client package
// drives it from Go.
//
// Quickstart:
//
//	joint, _ := crowdfusion.IndependentJoint([]float64{0.5, 0.63, 0.58, 0.49})
//	sel := crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{Prune: true})
//	tasks, _ := sel.Select(joint, 2, 0.8)       // which facts to ask
//	post, _ := crowdfusion.MergeAnswers(joint, tasks, answers, 0.8)
//
// or run the whole loop with Engine. See examples/ for complete programs.
package crowdfusion

import (
	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/fusion"
	"crowdfusion/internal/platform"
	"crowdfusion/internal/worlds"
)

// Data model (internal/dist).
type (
	// Fact is one {subject, predicate, object} triple with a prior
	// correctness probability.
	Fact = dist.Fact
	// World is a complete truth assignment over the facts, encoded as a
	// bitmask (one of the paper's "possible outputs").
	World = dist.World
	// Joint is a probability distribution over worlds with an explicit
	// sparse support.
	Joint = dist.Joint
)

// NewJoint builds a sparse joint distribution over n facts; duplicate
// worlds are merged and probabilities normalized.
func NewJoint(n int, worlds []World, probs []float64) (*Joint, error) {
	return dist.New(n, worlds, probs)
}

// DenseJoint builds a distribution over the full 2^n world cube with
// probabilities given in world order.
func DenseJoint(n int, probs []float64) (*Joint, error) { return dist.Dense(n, probs) }

// UniformJoint builds the uniform prior over all 2^n worlds.
func UniformJoint(n int) (*Joint, error) { return dist.Uniform(n) }

// IndependentJoint builds the product distribution from per-fact marginal
// probabilities — the natural bridge from fusion methods that output only
// marginals.
func IndependentJoint(marginals []float64) (*Joint, error) { return dist.Independent(marginals) }

// Selection and refinement (internal/core).
type (
	// Selector chooses which facts to ask the crowd.
	Selector = core.Selector
	// GreedyOptions configures the approximation selector (pruning,
	// preprocessing).
	GreedyOptions = core.GreedyOptions
	// Engine runs the select-ask-merge loop of the paper's Figure 1.
	Engine = core.Engine
	// Result is an engine run's outcome: posterior joint and trace.
	Result = core.Result
	// RoundStats is one round of an engine trace.
	RoundStats = core.RoundStats
	// AnswerProvider supplies crowd answers; satisfied by the simulator
	// and the platform.
	AnswerProvider = core.AnswerProvider
	// QuerySelector is the Section IV facts-of-interest variant.
	QuerySelector = core.QueryGreedySelector
	// Preprocessed is the precomputed answer joint distribution used by
	// the accelerated selector (Section III-F).
	Preprocessed = core.Preprocessed
)

// NewOptSelector returns the exact brute-force selector (exponential in k).
func NewOptSelector() Selector { return core.OptSelector{} }

// NewGreedySelector returns the (1-1/e) greedy selector with the given
// options.
func NewGreedySelector(opts GreedyOptions) Selector {
	return &core.GreedySelector{Options: opts}
}

// NewRandomSelector returns the random baseline, seeded deterministically.
func NewRandomSelector(seed int64) Selector { return core.NewRandom(seed) }

// NewQuerySelector returns the query-based greedy selector for the given
// facts of interest.
func NewQuerySelector(factsOfInterest []int) *QuerySelector {
	return &core.QueryGreedySelector{FOI: factsOfInterest}
}

// TaskEntropy returns H(T), the entropy of the crowd-answer distribution
// for the given task set — the selection objective of the paper.
func TaskEntropy(j *Joint, tasks []int, pc float64) (float64, error) {
	return core.TaskEntropy(j, tasks, pc)
}

// UtilityGain returns ΔQ = H(T) - |T|·H(Crowd), the expected utility
// improvement of asking the task set.
func UtilityGain(j *Joint, tasks []int, pc float64) (float64, error) {
	return core.UtilityGain(j, tasks, pc)
}

// MergeAnswers performs the Bayesian update of the output distribution
// given crowd answers (Equation 3).
func MergeAnswers(j *Joint, tasks []int, answers []bool, pc float64) (*Joint, error) {
	return core.MergeAnswers(j, tasks, answers, pc)
}

// Preprocess computes the answer joint distribution (Section III-F) for
// repeated accelerated evaluations.
func Preprocess(j *Joint, pc float64) (*Preprocessed, error) { return core.Preprocess(j, pc) }

// Crowd model (internal/crowd, internal/platform).
type (
	// CrowdModel is the shared-accuracy crowd of Definition 2.
	CrowdModel = crowd.Model
	// CrowdSimulator produces answers against a hidden ground truth.
	CrowdSimulator = crowd.Simulator
	// Worker is one crowd member with individual accuracy.
	Worker = crowd.Worker
	// WorkerPool is a set of workers tasks are assigned to.
	WorkerPool = crowd.Pool
	// Platform is the gMission-style round-based platform simulator.
	Platform = platform.Platform
	// PlatformConfig configures the platform simulator.
	PlatformConfig = platform.Config
)

// NewCrowdSimulator builds a deterministic simulated crowd with the given
// hidden truth and accuracy.
func NewCrowdSimulator(truth World, pc float64, seed int64) (*CrowdSimulator, error) {
	return crowd.NewSimulator(truth, pc, seed)
}

// NewWorkerPool builds a pool of size workers with accuracies drawn
// uniformly from [lo, hi].
func NewWorkerPool(size int, lo, hi float64, seed int64) (*WorkerPool, error) {
	return crowd.RandomPool(size, lo, hi, seed)
}

// NewPlatform starts a simulated crowdsourcing platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return platform.New(cfg) }

// EstimateCrowdAccuracy estimates Pc from gold sample tasks, the paper's
// recommended pre-test.
func EstimateCrowdAccuracy(gold, answers []bool) (float64, error) {
	return crowd.EstimatePc(gold, answers)
}

// EM estimation of per-worker accuracy without gold labels (Dawid-Skene
// style), from a redundant answer log.
type (
	// CrowdAnswer is one recorded worker judgment.
	CrowdAnswer = crowd.Answer
	// EMEstimate holds per-worker accuracies and per-task posteriors.
	EMEstimate = crowd.EMEstimate
	// EMOptions tunes the estimator.
	EMOptions = crowd.EMOptions
)

// EstimateWorkerAccuracies runs EM over a redundant answer log, returning
// per-worker accuracy estimates and per-task truth posteriors with no gold
// labels required.
func EstimateWorkerAccuracies(answers []CrowdAnswer, opts EMOptions) (*EMEstimate, error) {
	return crowd.EstimateEM(answers, opts)
}

// ConfusionEstimate is the asymmetric (sensitivity/specificity) worker
// model — full Dawid-Skene.
type ConfusionEstimate = crowd.ConfusionEstimate

// EstimateWorkerConfusion runs the full Dawid-Skene EM: per-worker
// sensitivity and specificity, catching answer-biased workers the
// symmetric model cannot represent.
func EstimateWorkerConfusion(answers []CrowdAnswer, opts EMOptions) (*ConfusionEstimate, error) {
	return crowd.EstimateDawidSkene(answers, opts)
}

// Machine-only fusion (internal/fusion).
type (
	// Claim is one source's assertion about an object.
	Claim = fusion.Claim
	// Truth is a fused (object, value, confidence) triple.
	Truth = fusion.Truth
	// FusionMethod is a machine-only fusion algorithm.
	FusionMethod = fusion.Method
)

// Fusion initializers.
func NewMajorityVote() FusionMethod { return fusion.MajorityVote{} }
func NewCRH() FusionMethod          { return fusion.NewCRH() }
func NewTruthFinder() FusionMethod  { return fusion.NewTruthFinder() }
func NewAccuVote() FusionMethod     { return fusion.NewAccuVote() }

// NewSemiSupervised returns the semi-supervised truth-discovery baseline
// (Yin & Tan 2011 style): labels maps (object, value) pairs to expert
// judgments that anchor the iteration.
func NewSemiSupervised(labels map[[2]string]bool) FusionMethod {
	return fusion.NewSemiSupervised(labels)
}

// Book dataset and instances (internal/bookdata, internal/worlds).
type (
	// BookDataset is the synthetic Book benchmark.
	BookDataset = bookdata.Dataset
	// BookConfig parameterizes dataset generation.
	BookConfig = bookdata.Config
	// Instance is one book's CrowdFusion problem (facts, prior joint,
	// gold labels).
	Instance = worlds.Instance
	// WorldOptions tunes joint construction from claims.
	WorldOptions = worlds.Options
)

// DefaultBookConfig mirrors the paper's dataset scale (100 books).
func DefaultBookConfig() BookConfig { return bookdata.DefaultConfig() }

// GenerateBooks builds a deterministic synthetic Book dataset.
func GenerateBooks(cfg BookConfig) (*BookDataset, error) { return bookdata.Generate(cfg) }

// DefaultWorldOptions returns the default joint-construction options.
func DefaultWorldOptions() WorldOptions { return worlds.DefaultOptions() }

// BuildInstances converts a dataset plus fused confidences into per-book
// CrowdFusion instances.
func BuildInstances(d *BookDataset, truths []Truth, opts WorldOptions) ([]*Instance, error) {
	return worlds.BuildAll(d, truths, opts)
}

// Evaluation (internal/eval).
type (
	// Metrics is a confusion matrix with precision/recall/F1.
	Metrics = eval.Metrics
	// SweepConfig configures a quality-vs-budget run (Figures 2-4).
	SweepConfig = eval.SweepConfig
	// SweepResult is a quality curve.
	SweepResult = eval.SweepResult
	// TracePoint is one point of a quality curve.
	TracePoint = eval.TracePoint
	// TimingConfig configures the Table V selection-time sweep.
	TimingConfig = eval.TimingConfig
	// TimingResult is the Table V grid.
	TimingResult = eval.TimingResult
	// SelectorKind names the selection strategies in experiment configs.
	SelectorKind = eval.SelectorKind
	// ErrorBreakdown is the Section V-D residual-error taxonomy.
	ErrorBreakdown = eval.ErrorBreakdown
)

// Selector kinds for experiment configs.
const (
	SelOPT         = eval.SelOPT
	SelApprox      = eval.SelApprox
	SelApproxPrune = eval.SelApproxPrune
	SelApproxPre   = eval.SelApproxPre
	SelApproxFull  = eval.SelApproxFull
	SelRandom      = eval.SelRandom
)

// RunSweep executes a quality-vs-budget experiment.
func RunSweep(cfg SweepConfig) (*SweepResult, error) { return eval.RunSweep(cfg) }

// RunTimings executes the Table V selection-time experiment.
func RunTimings(cfg TimingConfig) (*TimingResult, error) { return eval.RunTimings(cfg) }

// Extensions beyond the paper's per-book protocol.
type (
	// AllocationConfig configures corpus-wide budget allocation (the
	// Section V-D suggestion).
	AllocationConfig = eval.AllocationConfig
	// AllocationResult reports where the global budget went.
	AllocationResult = eval.AllocationResult
	// QuerySweepConfig configures the Section IV facts-of-interest
	// comparison.
	QuerySweepConfig = eval.QuerySweepConfig
	// QuerySweepResult is the FOI-restricted quality curve.
	QuerySweepResult = eval.QuerySweepResult
)

// RunAllocation distributes one global budget across all instances,
// always funding the single task with the highest net utility gain.
func RunAllocation(cfg AllocationConfig) (*AllocationResult, error) {
	return eval.RunAllocation(cfg)
}

// RunQuerySweep refines instances while scoring only sampled facts of
// interest, comparing the Section IV selector against the general one.
func RunQuerySweep(cfg QuerySweepConfig) (*QuerySweepResult, error) {
	return eval.RunQuerySweep(cfg)
}

// Calibration is a reliability report over posterior marginals.
type Calibration = eval.Calibration

// CalibrationReport bins posterior marginals against gold labels and
// reports expected calibration error and Brier score.
func CalibrationReport(instances []*Instance, joints []*Joint, nBins int) (*Calibration, error) {
	return eval.CalibrationReport(instances, joints, nBins)
}

// Round-size policies (Section V-C2's latency/quality trade-off) and
// cost-aware selection (heterogeneous task prices).
type (
	// KPolicy decides the next round's task count; see FixedK,
	// EntropyAdaptiveK and HalvingK in internal/core.
	KPolicy = core.KPolicy
	// EntropyAdaptiveK shrinks rounds as the posterior sharpens.
	EntropyAdaptiveK = core.EntropyAdaptiveK
	// HalvingK halves the round size on a fixed schedule.
	HalvingK = core.HalvingK
	// FixedK posts the same number of tasks every round.
	FixedK = core.FixedK
	// CostSelector maximizes H(T) under a heterogeneous-cost budget.
	CostSelector = core.CostSelector
)

// NewCostSelector builds a selector for facts with per-task prices
// (missing entries cost 1).
func NewCostSelector(costs map[int]float64) *CostSelector {
	return core.NewCostSelector(costs)
}

// ScoreJudgments compares judgments against gold labels.
func ScoreJudgments(judgments, gold []bool) (Metrics, error) { return eval.Score(judgments, gold) }

// PriorQuality scores the machine-only prior across instances.
func PriorQuality(instances []*Instance) (float64, Metrics, error) {
	return eval.PriorQuality(instances)
}

// Pipeline bundles the full end-to-end flow: generate (or accept) a
// dataset, fuse with a machine-only method, build instances, and refine
// with the crowd under a budget.
type Pipeline struct {
	Dataset  *BookDataset
	Fusion   FusionMethod
	Options  WorldOptions
	Selector SelectorKind
	K        int
	Budget   int
	Pc       float64
	// UseDifficulty routes Section V-D statement difficulty into the
	// simulated crowd.
	UseDifficulty bool
	Seed          int64
}

// PipelineResult reports the machine-only baseline and the refined result.
type PipelineResult struct {
	Instances []*Instance
	Prior     Metrics
	PriorU    float64
	Sweep     *SweepResult
}

// Run executes the pipeline.
func (p Pipeline) Run() (*PipelineResult, error) {
	truths, err := p.Fusion.Fuse(p.Dataset.Claims)
	if err != nil {
		return nil, err
	}
	instances, err := worlds.BuildAll(p.Dataset, truths, p.Options)
	if err != nil {
		return nil, err
	}
	priorU, prior, err := eval.PriorQuality(instances)
	if err != nil {
		return nil, err
	}
	sweep, err := eval.RunSweep(eval.SweepConfig{
		Instances:     instances,
		Selector:      p.Selector,
		K:             p.K,
		Budget:        p.Budget,
		Pc:            p.Pc,
		UseDifficulty: p.UseDifficulty,
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Instances: instances,
		Prior:     prior,
		PriorU:    priorU,
		Sweep:     sweep,
	}, nil
}
