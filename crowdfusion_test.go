package crowdfusion

import (
	"math"
	"testing"
)

// TestFacadeRunningExample drives the paper's running example end to end
// through the public API only.
func TestFacadeRunningExample(t *testing.T) {
	probs := []float64{
		0.03, 0.04, 0.09, 0.06, 0.07, 0.04, 0.11, 0.07,
		0.06, 0.04, 0.01, 0.09, 0.04, 0.05, 0.09, 0.11,
	}
	// Dense ordering: world w has bit 0 = f1 ... bit 3 = f4. The
	// probabilities above are Table II re-indexed to that order (the
	// paper lists rows with f4 as the fastest-changing judgment).
	j, err := DenseJoint(4, probs)
	if err != nil {
		t.Fatal(err)
	}
	m := j.Marginals()
	want := []float64{0.5, 0.63, 0.58, 0.49}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-9 {
			t.Fatalf("marginal %d = %v, want %v (re-indexing wrong)", i, m[i], want[i])
		}
	}

	sel := NewGreedySelector(GreedyOptions{Prune: true})
	tasks, err := sel.Select(j, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0] != 0 || tasks[1] != 3 {
		t.Fatalf("selection = %v, want [0 3]", tasks)
	}
	h, err := TaskEntropy(j, tasks, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1.997) > 1e-3 {
		t.Errorf("H(T) = %v, want 1.997", h)
	}
	gain, err := UtilityGain(j, tasks, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("utility gain %v should be positive", gain)
	}

	post, err := MergeAnswers(j, []int{0}, []bool{true}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := post.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm-0.8) > 1e-9 {
		t.Errorf("posterior P(f1) = %v, want 0.8", pm)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := UniformJoint(3); err != nil {
		t.Error(err)
	}
	if _, err := IndependentJoint([]float64{0.4, 0.6}); err != nil {
		t.Error(err)
	}
	if _, err := NewJoint(2, []World{0, 3}, []float64{0.5, 0.5}); err != nil {
		t.Error(err)
	}
	if NewOptSelector().Name() != "OPT" {
		t.Error("OPT selector name")
	}
	if NewRandomSelector(1).Name() != "Random" {
		t.Error("random selector name")
	}
	if NewQuerySelector([]int{0}).Name() != "QueryApprox" {
		t.Error("query selector name")
	}
	for _, m := range []FusionMethod{NewMajorityVote(), NewCRH(), NewTruthFinder(), NewAccuVote()} {
		if m.Name() == "" {
			t.Error("fusion method without name")
		}
	}
}

func TestFacadeEngineWithSimulator(t *testing.T) {
	j, err := IndependentJoint([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var truth World
	truth = truth.Set(0, true).Set(2, true)
	sim, err := NewCrowdSimulator(truth, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{
		Prior:    j,
		Selector: NewGreedySelector(GreedyOptions{Prune: true, Preprocess: true}),
		Crowd:    sim,
		Pc:       0.95,
		K:        2,
		Budget:   12,
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	judgments := res.Judgments()
	correct := 0
	for i, v := range judgments {
		if v == truth.Has(i) {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("only %d/3 facts correct with a 0.95 crowd", correct)
	}
}

func TestFacadePcEstimation(t *testing.T) {
	gold := []bool{true, false, true, false, true, true, false, false}
	est, err := EstimateCrowdAccuracy(gold, gold)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0.8 {
		t.Errorf("perfect answers estimated at %v", est)
	}
}

// TestFacadePipeline runs the full generate-fuse-refine pipeline through
// the facade.
func TestFacadePipeline(t *testing.T) {
	cfg := DefaultBookConfig()
	cfg.Books = 6
	cfg.Sources = 10
	cfg.Seed = 11
	d, err := GenerateBooks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pipeline{
		Dataset:  d,
		Fusion:   NewCRH(),
		Options:  DefaultWorldOptions(),
		Selector: SelApproxPrune,
		K:        2,
		Budget:   16,
		Pc:       0.9,
		Seed:     5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 6 {
		t.Fatalf("instances = %d", len(res.Instances))
	}
	if res.Sweep.Final.F1() < res.Prior.F1() {
		t.Errorf("pipeline F1 %v below prior %v", res.Sweep.Final.F1(), res.Prior.F1())
	}
	if res.PriorU >= 0 {
		t.Errorf("prior utility %v should be negative", res.PriorU)
	}
}

func TestFacadePlatform(t *testing.T) {
	pool, err := NewWorkerPool(10, 0.85, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	var truth World
	truth = truth.Set(1, true)
	p, err := NewPlatform(PlatformConfig{Truth: truth, Pool: pool, Seed: 2, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	ans := p.Answers([]int{0, 1})
	if len(ans) != 2 {
		t.Fatalf("answers = %v", ans)
	}
	var _ AnswerProvider = p
}

func TestFacadeScoreAndSweep(t *testing.T) {
	m, err := ScoreJudgments([]bool{true, false}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 1 || m.FN != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if _, err := Preprocess(nil, 0.3); err == nil {
		t.Error("bad accuracy accepted by Preprocess")
	}
}
