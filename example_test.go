package crowdfusion_test

import (
	"fmt"

	"crowdfusion"
)

// The paper's running example: select the two most informative questions
// about four facts for a crowd with accuracy 0.8.
func ExampleNewGreedySelector() {
	joint, err := crowdfusion.DenseJoint(4, []float64{
		0.03, 0.04, 0.09, 0.06, 0.07, 0.04, 0.11, 0.07,
		0.06, 0.04, 0.01, 0.09, 0.04, 0.05, 0.09, 0.11,
	})
	if err != nil {
		panic(err)
	}
	selector := crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{Prune: true})
	tasks, err := selector.Select(joint, 2, 0.8)
	if err != nil {
		panic(err)
	}
	h, err := crowdfusion.TaskEntropy(joint, tasks, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ask f%d and f%d (H(T) = %.3f bits)\n", tasks[0]+1, tasks[1]+1, h)
	// Output: ask f1 and f4 (H(T) = 1.997 bits)
}

// Merging a crowd answer updates the output distribution with Bayes' rule
// (the paper's Section III-A example).
func ExampleMergeAnswers() {
	joint, err := crowdfusion.DenseJoint(4, []float64{
		0.03, 0.04, 0.09, 0.06, 0.07, 0.04, 0.11, 0.07,
		0.06, 0.04, 0.01, 0.09, 0.04, 0.05, 0.09, 0.11,
	})
	if err != nil {
		panic(err)
	}
	// The crowd answers "yes" to "Is Hong Kong in Asia?" (fact 0).
	posterior, err := crowdfusion.MergeAnswers(joint, []int{0}, []bool{true}, 0.8)
	if err != nil {
		panic(err)
	}
	p, err := posterior.Marginal(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(f1) after a yes: %.2f\n", p)
	// Output: P(f1) after a yes: 0.80
}

// A complete refinement loop against a simulated crowd.
func ExampleEngine() {
	prior, err := crowdfusion.IndependentJoint([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		panic(err)
	}
	var truth crowdfusion.World
	truth = truth.Set(0, true).Set(2, true)
	sim, err := crowdfusion.NewCrowdSimulator(truth, 0.99, 7)
	if err != nil {
		panic(err)
	}
	engine := crowdfusion.Engine{
		Prior:    prior,
		Selector: crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{Prune: true}),
		Crowd:    sim,
		Pc:       0.99,
		K:        2,
		Budget:   12,
	}
	result, err := engine.Run()
	if err != nil {
		panic(err)
	}
	judgments := result.Judgments()
	correct := 0
	for i, v := range judgments {
		if v == truth.Has(i) {
			correct++
		}
	}
	fmt.Printf("%d/4 facts judged correctly\n", correct)
	// Output: 4/4 facts judged correctly
}

// Machine-only fusion scores claims before the crowd is involved.
func ExampleFusionMethod() {
	claims := []crowdfusion.Claim{
		{Source: "storeA", Object: "book1", Value: "Ada Lovelace"},
		{Source: "storeB", Object: "book1", Value: "Ada Lovelace"},
		{Source: "storeC", Object: "book1", Value: "Ada Byron"},
	}
	truths, err := crowdfusion.NewMajorityVote().Fuse(claims)
	if err != nil {
		panic(err)
	}
	for _, t := range truths {
		fmt.Printf("%s: %.2f\n", t.Value, t.Confidence)
	}
	// Output:
	// Ada Byron: 0.33
	// Ada Lovelace: 0.67
}
