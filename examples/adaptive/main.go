// Adaptive: estimating the crowd's real accuracy before refining, as the
// paper recommends in Section V-C3 ("if possible, in real applications, we
// should estimate the reliability by a pre-test with groundtruth"). A
// worker pool with unknown accuracy answers a small set of gold tasks
// through the platform simulator; the estimated Pc then drives the engine,
// and the example shows what mis-estimating Pc costs.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"crowdfusion"
)

func main() {
	log.SetFlags(0)

	// A pool of 30 workers whose true accuracies are unknown to us
	// (drawn in [0.78, 0.94]; the mean effective accuracy is ~0.86, the
	// figure the paper measured on gMission).
	pool, err := crowdfusion.NewWorkerPool(30, 0.78, 0.94, 21)
	if err != nil {
		log.Fatal(err)
	}

	// A 10-fact instance: gold truth for the first 6 facts is known and
	// used as the pre-test; the engine then refines the rest.
	var truth crowdfusion.World
	for _, f := range []int{0, 2, 3, 5, 7, 8} {
		truth = truth.Set(f, true)
	}
	platform, err := crowdfusion.NewPlatform(crowdfusion.PlatformConfig{
		Truth: truth,
		Pool:  pool,
		Seed:  5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pre-test: post 200 gold judgments (facts 0..5 repeatedly).
	goldFacts := make([]int, 200)
	gold := make([]bool, 200)
	for i := range goldFacts {
		goldFacts[i] = i % 6
		gold[i] = truth.Has(i % 6)
	}
	answers := platform.Answers(goldFacts)
	estimated, err := crowdfusion.EstimateCrowdAccuracy(gold, answers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-test on %d gold tasks: estimated Pc = %.3f (pool mean %.3f)\n\n",
		len(goldFacts), estimated, pool.MeanAccuracy())

	// Refine a fresh uncertain prior with the estimated Pc, and compare
	// against deliberately wrong assumptions — the Figure 4 discussion:
	// underestimating slows the procedure down, Pc = 1 freezes errors.
	marginals := []float64{0.5, 0.45, 0.55, 0.6, 0.4, 0.5, 0.35, 0.65, 0.5, 0.45}
	prior, err := crowdfusion.IndependentJoint(marginals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8s %8s %8s\n", "assumed Pc", "cost", "correct", "utility")
	for _, assumed := range []float64{0.55, estimated, 0.99} {
		// Fresh platform per run so answer streams are comparable.
		pf, err := crowdfusion.NewPlatform(crowdfusion.PlatformConfig{
			Truth: truth,
			Pool:  pool,
			Seed:  99,
		})
		if err != nil {
			log.Fatal(err)
		}
		engine := crowdfusion.Engine{
			Prior:    prior,
			Selector: crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{Prune: true}),
			Crowd:    pf,
			Pc:       assumed,
			K:        2,
			Budget:   30,
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for i, v := range res.Judgments() {
			if v == truth.Has(i) {
				correct++
			}
		}
		label := fmt.Sprintf("Pc=%.3f", assumed)
		if assumed == estimated {
			label += " (estimated)"
		}
		fmt.Printf("%-28s %8d %7d/%d %8.2f\n",
			label, res.Cost, correct, len(marginals), -res.Final.Entropy())
	}
	fmt.Println("\nunderestimating Pc wastes budget re-confirming answers;")
	fmt.Println("overestimating locks in early mistakes — the estimated value balances both.")
}
