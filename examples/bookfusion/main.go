// Bookfusion: the full CrowdFusion pipeline on the synthetic Book dataset —
// the workload of the paper's empirical study. Web sources claim author
// lists for books, a machine-only fusion method (modified CRH) produces
// prior confidences, and a simulated crowd refines them under a budget.
// The example compares all four machine-only initializers and shows how
// much the crowd improves each.
//
//	go run ./examples/bookfusion
package main

import (
	"fmt"
	"log"

	"crowdfusion"
)

func main() {
	log.SetFlags(0)

	cfg := crowdfusion.DefaultBookConfig()
	cfg.Books = 40
	cfg.Sources = 25
	cfg.Seed = 7
	dataset, err := crowdfusion.GenerateBooks(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d books, %d statements, %d claims (%.0f%% of claims correct)\n\n",
		len(dataset.Books), dataset.StatementCount(), len(dataset.Claims),
		100*dataset.GoldRate())

	initializers := []crowdfusion.FusionMethod{
		crowdfusion.NewMajorityVote(),
		crowdfusion.NewCRH(),
		crowdfusion.NewTruthFinder(),
		crowdfusion.NewAccuVote(),
	}
	fmt.Printf("%-14s %12s %12s %14s\n", "initializer", "prior F1", "refined F1", "crowd tasks")
	for _, method := range initializers {
		res, err := crowdfusion.Pipeline{
			Dataset:  dataset,
			Fusion:   method,
			Options:  crowdfusion.DefaultWorldOptions(),
			Selector: crowdfusion.SelApproxPrune,
			K:        2,
			Budget:   20,
			Pc:       0.85,
			Seed:     11,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		last := res.Sweep.Trace[len(res.Sweep.Trace)-1]
		fmt.Printf("%-14s %12.4f %12.4f %14d\n",
			method.Name(), res.Prior.F1(), res.Sweep.Final.F1(), last.Cost)
	}

	fmt.Println("\nquality vs budget for the CRH initializer (Pc = 0.85, k = 2):")
	res, err := crowdfusion.Pipeline{
		Dataset:  dataset,
		Fusion:   crowdfusion.NewCRH(),
		Options:  crowdfusion.DefaultWorldOptions(),
		Selector: crowdfusion.SelApproxPrune,
		K:        2,
		Budget:   20,
		Pc:       0.85,
		Seed:     11,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %6s %10s %10s\n", "cost", "F1", "utility")
	fmt.Printf("  %6d %10.4f %10.2f   (machine-only prior)\n", 0, res.Prior.F1(), res.PriorU)
	for _, p := range res.Sweep.Trace {
		fmt.Printf("  %6d %10.4f %10.2f\n", p.Cost, p.F1, p.Utility)
	}
}
