// Querybased: the Section IV scenario — a user cares only about a subset
// of facts (the facts of interest, FOI), but correlated facts outside the
// FOI are still worth asking. The example mirrors the paper's motivating
// case: a user studying population and major ethnic group does not care
// about the continent, yet the continent fact is correlated with both and
// the query-based selector exploits that.
//
//	go run ./examples/querybased
package main

import (
	"fmt"
	"log"

	"crowdfusion"
)

func main() {
	log.SetFlags(0)

	// Three facts about a region: f0 = "is in Asia" (continent),
	// f1 = "population >= 500k", f2 = "majority ethnic group Chinese".
	// The joint encodes strong correlation: Asian regions in this prior
	// tend to be populous and majority-Chinese.
	worlds := []crowdfusion.World{
		0b000, // not Asia, small, not Chinese
		0b001, // Asia only
		0b011, // Asia and populous
		0b111, // Asia, populous, Chinese
		0b110, // populous and Chinese, not Asia
	}
	joint, err := crowdfusion.NewJoint(3, worlds, []float64{0.25, 0.1, 0.15, 0.4, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prior marginals:")
	names := []string{"continent=Asia", "population>=500k", "ethnic=Chinese"}
	for i, p := range joint.Marginals() {
		fmt.Printf("  P(%s) = %.2f\n", names[i], p)
	}

	// The user only cares about population and ethnic group.
	foi := []int{1, 2}
	const pc = 0.8

	// Compare: general selector vs query-based selector, one task each.
	general := crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{})
	gTasks, err := general.Select(joint, 1, pc)
	if err != nil {
		log.Fatal(err)
	}
	query := crowdfusion.NewQuerySelector(foi)
	qTasks, err := query.Select(joint, 1, pc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeneral selector asks:      %s\n", names[gTasks[0]])
	fmt.Printf("query-based selector asks:  %s\n", names[qTasks[0]])

	// The continent fact can be the best question even though the user
	// does not care about it — because it informs the FOI.
	for _, f := range []int{0, 1, 2} {
		post, err := crowdfusion.MergeAnswers(joint, []int{f}, []bool{true}, pc)
		if err != nil {
			log.Fatal(err)
		}
		hPrior, err := joint.FactEntropy(foi)
		if err != nil {
			log.Fatal(err)
		}
		hPost, err := post.FactEntropy(foi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  asking %-18s cuts FOI entropy %.3f -> %.3f (given a yes)\n",
			names[f], hPrior, hPost)
	}

	// Full refinement loop against a simulated crowd, query-driven.
	truth := crowdfusion.World(0b111)
	sim, err := crowdfusion.NewCrowdSimulator(truth, pc, 3)
	if err != nil {
		log.Fatal(err)
	}
	engine := crowdfusion.Engine{
		Prior:    joint,
		Selector: query,
		Crowd:    sim,
		Pc:       pc,
		K:        1,
		Budget:   6,
	}
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d query-driven questions:\n", res.Cost)
	for i, p := range res.Final.Marginals() {
		fmt.Printf("  P(%s) = %.3f (truth: %v)\n", names[i], p, truth.Has(i))
	}
}
