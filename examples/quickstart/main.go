// Quickstart: the CrowdFusion paper's running example through the public
// API — four uncertain facts about Hong Kong, a crowd with accuracy 0.8,
// and a budget of two questions per round.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crowdfusion"
)

func main() {
	log.SetFlags(0)

	// The Table II joint distribution over four facts, in dense world
	// order (bit 0 = f1 "Hong Kong is in Asia", bit 1 = f2 "population
	// >= 500,000", bit 2 = f3 "major ethnic group Chinese", bit 3 = f4
	// "Hong Kong is in Europe").
	joint, err := crowdfusion.DenseJoint(4, []float64{
		0.03, 0.04, 0.09, 0.06, 0.07, 0.04, 0.11, 0.07,
		0.06, 0.04, 0.01, 0.09, 0.04, 0.05, 0.09, 0.11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("prior marginals (Table I):")
	for i, p := range joint.Marginals() {
		fmt.Printf("  P(f%d) = %.2f\n", i+1, p)
	}
	fmt.Printf("prior utility Q = -H = %.3f bits\n\n", joint.Utility())

	// Select the two most informative questions for a crowd with
	// accuracy 0.8 — the paper's greedy walkthrough picks f1 and f4.
	const pc = 0.8
	selector := crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{Prune: true})
	tasks, err := selector.Select(joint, 2, pc)
	if err != nil {
		log.Fatal(err)
	}
	h, err := crowdfusion.TaskEntropy(joint, tasks, pc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected tasks: f%d and f%d (H(T) = %.3f bits)\n", tasks[0]+1, tasks[1]+1, h)

	// Simulate a crowd whose hidden truth is: Hong Kong is in Asia, has
	// more than 500k people, is majority Chinese, and is not in Europe.
	var truth crowdfusion.World
	truth = truth.Set(0, true).Set(1, true).Set(2, true)
	sim, err := crowdfusion.NewCrowdSimulator(truth, pc, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Run the full select-ask-merge loop with a budget of 8 questions.
	engine := crowdfusion.Engine{
		Prior:    joint,
		Selector: selector,
		Crowd:    sim,
		Pc:       pc,
		K:        2,
		Budget:   8,
	}
	result, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nasked %d questions over %d rounds:\n", result.Cost, len(result.Rounds))
	for _, r := range result.Rounds {
		fmt.Printf("  round %d: asked %v got %v -> utility %.3f\n",
			r.Round, r.Tasks, r.Answers, r.Utility)
	}

	fmt.Println("\nposterior marginals and judgments:")
	judgments := result.Judgments()
	for i, p := range result.Final.Marginals() {
		mark := "false"
		if judgments[i] {
			mark = "true"
		}
		correct := ""
		if judgments[i] == truth.Has(i) {
			correct = "  (correct)"
		}
		fmt.Printf("  P(f%d) = %.3f -> %s%s\n", i+1, p, mark, correct)
	}
}
