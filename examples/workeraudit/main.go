// Workeraudit: operating a crowdsourcing platform the way the paper's
// deployment section implies — tasks are posted with redundancy, individual
// worker answers are logged, and the log is audited with EM (Dawid-Skene
// style) to estimate each worker's accuracy without any gold labels. The
// estimated pool accuracy then drives a CrowdFusion engine.
//
//	go run ./examples/workeraudit
package main

import (
	"fmt"
	"log"
	"sort"

	"crowdfusion"
)

func main() {
	log.SetFlags(0)

	// A pool with a wide quality spread: some near-experts, some barely
	// better than coin flips.
	pool, err := crowdfusion.NewWorkerPool(16, 0.55, 0.97, 13)
	if err != nil {
		log.Fatal(err)
	}

	// Hidden ground truth over 12 facts.
	var truth crowdfusion.World
	for _, f := range []int{0, 1, 4, 6, 9, 10} {
		truth = truth.Set(f, true)
	}
	platform, err := crowdfusion.NewPlatform(crowdfusion.PlatformConfig{
		Truth:      truth,
		Pool:       pool,
		Seed:       29,
		Redundancy: 5, // five workers per task, majority aggregated
	})
	if err != nil {
		log.Fatal(err)
	}

	// Post a calibration batch: every fact 40 times.
	var batch []int
	for round := 0; round < 40; round++ {
		for f := 0; f < 12; f++ {
			batch = append(batch, f)
		}
	}
	platform.Answers(batch)

	// Audit the raw answer log with EM — no gold labels used.
	estimate, err := crowdfusion.EstimateWorkerAccuracies(platform.Log(), crowdfusion.EMOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("worker audit (EM estimate vs true accuracy):")
	workers := pool.Workers()
	sort.Slice(workers, func(i, j int) bool { return workers[i].Accuracy > workers[j].Accuracy })
	for _, w := range workers {
		est, ok := estimate.WorkerAccuracy[w.ID]
		if !ok {
			continue
		}
		fmt.Printf("  %-6s true=%.3f estimated=%.3f\n", w.ID, w.Accuracy, est)
	}
	fmt.Printf("estimated pool accuracy: %.3f (true mean %.3f)\n\n",
		estimate.PoolAccuracy(), pool.MeanAccuracy())

	// Drive the engine with the audited accuracy. Majority-of-5 boosts
	// the effective per-task accuracy above the raw pool mean.
	prior, err := crowdfusion.IndependentJoint([]float64{
		0.5, 0.55, 0.45, 0.5, 0.6, 0.4, 0.55, 0.5, 0.45, 0.6, 0.5, 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine := crowdfusion.Engine{
		Prior:    prior,
		Selector: crowdfusion.NewGreedySelector(crowdfusion.GreedyOptions{Prune: true}),
		Crowd:    platform,
		Pc:       estimate.PoolAccuracy(),
		K:        3,
		Budget:   36,
	}
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, v := range res.Judgments() {
		if v == truth.Has(i) {
			correct++
		}
	}
	fmt.Printf("refinement with audited Pc: %d/%d facts correct after %d tasks\n",
		correct, prior.N(), res.Cost)

	// Platform-side statistics for the operations dashboard.
	fmt.Println("\nbusiest workers:")
	stats := platform.Stats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Answered > stats[j].Answered })
	for i, s := range stats {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-6s answered=%-5d empirical accuracy=%.3f\n",
			s.Worker, s.Answered, s.Accuracy())
	}
}
