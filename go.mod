module crowdfusion

go 1.24
