package crowdfusion

import (
	"math"
	"testing"
)

// Integration tests exercising complete cross-module flows through the
// public API, the way a downstream user would compose the system.

// TestIntegrationFullPipelineAllInitializers: dataset -> each fusion
// method -> instances -> budgeted crowd refinement -> scoring. The crowd
// must improve (or at least not damage) every initializer's F1.
func TestIntegrationFullPipelineAllInitializers(t *testing.T) {
	cfg := DefaultBookConfig()
	cfg.Books = 15
	cfg.Sources = 15
	cfg.Seed = 3
	d, err := GenerateBooks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []FusionMethod{
		NewMajorityVote(), NewCRH(), NewTruthFinder(), NewAccuVote(),
	} {
		t.Run(method.Name(), func(t *testing.T) {
			res, err := Pipeline{
				Dataset:  d,
				Fusion:   method,
				Options:  DefaultWorldOptions(),
				Selector: SelApproxPrune,
				K:        2,
				Budget:   20,
				Pc:       0.9,
				Seed:     7,
			}.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Sweep.Final.F1() < res.Prior.F1()-1e-9 {
				t.Errorf("%s: crowd refinement hurt F1: %.4f -> %.4f",
					method.Name(), res.Prior.F1(), res.Sweep.Final.F1())
			}
			if res.Sweep.Final.F1() < 0.85 {
				t.Errorf("%s: final F1 %.4f below 0.85 with a 0.9 crowd",
					method.Name(), res.Sweep.Final.F1())
			}
		})
	}
}

// TestIntegrationPlatformToEM: post tasks through the platform with
// redundancy, audit the log with EM, and verify the audited accuracy is
// close to the pool's true mean.
func TestIntegrationPlatformToEM(t *testing.T) {
	pool, err := NewWorkerPool(12, 0.65, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	var truth World
	for f := 0; f < 10; f += 2 {
		truth = truth.Set(f, true)
	}
	p, err := NewPlatform(PlatformConfig{Truth: truth, Pool: pool, Seed: 11, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	var batch []int
	for round := 0; round < 60; round++ {
		for f := 0; f < 10; f++ {
			batch = append(batch, f)
		}
	}
	p.Answers(batch)
	est, err := EstimateWorkerAccuracies(p.Log(), EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.PoolAccuracy()-pool.MeanAccuracy()) > 0.06 {
		t.Errorf("EM pool accuracy %.3f vs true %.3f", est.PoolAccuracy(), pool.MeanAccuracy())
	}
	// And the per-task posteriors recover the hidden truth.
	for f := 0; f < 10; f++ {
		if (est.TaskPosterior[f] >= 0.5) != truth.Has(f) {
			t.Errorf("EM posterior wrong for fact %d: %v", f, est.TaskPosterior[f])
		}
	}
}

// TestIntegrationGlobalAllocationBeatsWaste: a corpus mixing tiny certain
// books with one large uncertain book; global allocation must route budget
// to the big book.
func TestIntegrationGlobalAllocation(t *testing.T) {
	cfg := DefaultBookConfig()
	cfg.Books = 12
	cfg.Sources = 20
	cfg.Seed = 9
	d, err := GenerateBooks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truths, err := NewCRH().Fuse(d.Claims)
	if err != nil {
		t.Fatal(err)
	}
	instances, err := BuildInstances(d, truths, DefaultWorldOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAllocation(AllocationConfig{
		Instances:   instances,
		TotalBudget: 72,
		Pc:          0.85,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == 0 || res.Cost > 72 {
		t.Fatalf("cost = %d", res.Cost)
	}
	// Larger books (more facts) should receive more budget on average.
	var smallCost, largeCost, smallN, largeN int
	for i, in := range instances {
		if in.N() >= 10 {
			largeCost += res.PerBook[i]
			largeN++
		} else {
			smallCost += res.PerBook[i]
			smallN++
		}
	}
	if smallN > 0 && largeN > 0 {
		avgSmall := float64(smallCost) / float64(smallN)
		avgLarge := float64(largeCost) / float64(largeN)
		if avgLarge <= avgSmall {
			t.Errorf("large books got %.1f tasks/book, small books %.1f", avgLarge, avgSmall)
		}
	}
}

// TestIntegrationQueryNeedsFewerTasks: through the facade, the Section IV
// selector reaches its final FOI quality in fewer rounds than the general
// selector on the same corpus.
func TestIntegrationQueryNeedsFewerTasks(t *testing.T) {
	cfg := DefaultBookConfig()
	cfg.Books = 10
	cfg.Sources = 12
	cfg.Seed = 15
	d, err := GenerateBooks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truths, err := NewCRH().Fuse(d.Claims)
	if err != nil {
		t.Fatal(err)
	}
	instances, err := BuildInstances(d, truths, DefaultWorldOptions())
	if err != nil {
		t.Fatal(err)
	}
	roundsTo := func(useQuery bool, target float64) int {
		res, err := RunQuerySweep(QuerySweepConfig{
			Instances:        instances,
			FOIFraction:      0.3,
			UseQuerySelector: useQuery,
			K:                2,
			Budget:           20,
			Pc:               0.9,
			Seed:             17,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Trace {
			if p.F1 >= target {
				return p.Round
			}
		}
		return 1 << 30
	}
	const target = 0.95
	q, g := roundsTo(true, target), roundsTo(false, target)
	if q > g {
		t.Errorf("query selector needed %d rounds to reach F1 %.2f, general needed %d",
			q, target, g)
	}
}

// TestIntegrationSemiSupervisedBaseline: labeling a handful of statements
// improves the machine-only prior, the comparison the paper draws against
// expert supervision.
func TestIntegrationSemiSupervised(t *testing.T) {
	cfg := DefaultBookConfig()
	cfg.Books = 12
	cfg.Sources = 14
	cfg.Seed = 19
	d, err := GenerateBooks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Label every statement of the first three books with its gold flag.
	labels := make(map[[2]string]bool)
	for i, b := range d.Books {
		if i >= 3 {
			break
		}
		for _, s := range d.Statements[b.ISBN] {
			labels[[2]string{b.ISBN, s.Text}] = s.Gold
		}
	}
	scoreOf := func(m FusionMethod) float64 {
		truths, err := m.Fuse(d.Claims)
		if err != nil {
			t.Fatal(err)
		}
		instances, err := BuildInstances(d, truths, DefaultWorldOptions())
		if err != nil {
			t.Fatal(err)
		}
		_, metrics, err := PriorQuality(instances)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.F1()
	}
	plain := scoreOf(NewTruthFinder())
	semi := scoreOf(NewSemiSupervised(labels))
	if semi < plain-1e-9 {
		t.Errorf("supervision hurt the prior: %.4f -> %.4f", plain, semi)
	}
}

// TestIntegrationDeterministicEndToEnd: the entire pipeline is
// reproducible bit-for-bit under a fixed seed.
func TestIntegrationDeterministicEndToEnd(t *testing.T) {
	run := func() (float64, int) {
		cfg := DefaultBookConfig()
		cfg.Books = 8
		cfg.Sources = 10
		cfg.Seed = 23
		d, err := GenerateBooks(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Pipeline{
			Dataset:  d,
			Fusion:   NewCRH(),
			Options:  DefaultWorldOptions(),
			Selector: SelApproxFull,
			K:        3,
			Budget:   15,
			Pc:       0.8,
			Seed:     29,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		last := res.Sweep.Trace[len(res.Sweep.Trace)-1]
		return res.Sweep.Final.F1(), last.Cost
	}
	f1a, costA := run()
	f1b, costB := run()
	if f1a != f1b || costA != costB {
		t.Errorf("pipeline not deterministic: (%v, %d) vs (%v, %d)", f1a, costA, f1b, costB)
	}
}
