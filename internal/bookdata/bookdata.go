// Package bookdata generates a synthetic substitute for the Book dataset
// used in the CrowdFusion paper's evaluation (the lunadong.com data-fusion
// benchmark): books with gold author lists, online bookstores (sources)
// claiming author-list statements with realistic error types, and gold
// labels per statement.
//
// The generator reproduces the structural properties the paper's
// experiments rely on:
//
//   - roughly half of all raw claims are incorrect (Section V-A reports
//     "only around 50% of Web data facts is correct");
//   - a book can have several true statements (order and format variants of
//     the same author list);
//   - sources are reliable in some domains and poor in others (the
//     eCampus.com textbook/non-textbook example from the introduction);
//   - hard statement classes — wrong order, additional organization info,
//     misspellings — match the error taxonomy of Section V-D, including
//     their depressed crowd accuracy.
package bookdata

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/fusion"
)

// Domain labels for books; sources have per-domain reliability.
const (
	DomainTextbook    = "textbook"
	DomainNonTextbook = "non-textbook"
)

// Author is a single author identity.
type Author struct {
	First string `json:"first"`
	Last  string `json:"last"`
}

// Key returns the canonical form of the author identity: case-insensitive
// "first last".
func (a Author) Key() string {
	return strings.ToLower(a.First) + " " + strings.ToLower(a.Last)
}

// Book is one entity with a gold author list.
type Book struct {
	ISBN    string   `json:"isbn"`
	Title   string   `json:"title"`
	Domain  string   `json:"domain"`
	Authors []Author `json:"authors"`
}

// CanonicalKey returns the canonical author-set key of the gold list.
func (b Book) CanonicalKey() string {
	keys := make([]string, len(b.Authors))
	for i, a := range b.Authors {
		keys[i] = a.Key()
	}
	return CanonicalizeKeys(keys)
}

// Statement is one distinct author-list assertion about a book. Its fact
// triple, in the paper's formulation, is {book, complete full name author
// list, statement}.
type Statement struct {
	ID    string           `json:"id"`
	ISBN  string           `json:"isbn"`
	Text  string           `json:"text"`  // rendered author list
	Names []string         `json:"names"` // individual rendered author names
	Class crowd.ErrorClass `json:"class"` // difficulty class (Section V-D)
	Gold  bool             `json:"gold"`  // true iff the canonical set matches the cover
}

// CanonicalKey returns the canonical author-set key of the statement's
// rendered names. Order and format differences disappear; misspellings and
// appended organizations do not.
func (s Statement) CanonicalKey() string {
	return CanonicalizeKeys(append([]string(nil), s.Names...))
}

// CanonicalizeKeys lowercases, sorts and joins name keys; two author lists
// with the same canonical key denote the same set of people.
func CanonicalizeKeys(keys []string) string {
	for i := range keys {
		keys[i] = strings.ToLower(strings.TrimSpace(keys[i]))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// Source is one online bookstore with per-domain reliability: the
// probability that a claim it emits in that domain is a faithful rendering
// of the cover author list.
type Source struct {
	Name        string             `json:"name"`
	Reliability map[string]float64 `json:"reliability"`
}

// Dataset bundles everything the experiments need.
type Dataset struct {
	Books      []Book                 `json:"books"`
	Sources    []Source               `json:"sources"`
	Statements map[string][]Statement `json:"statements"` // per ISBN, sorted by ID
	Claims     []fusion.Claim         `json:"claims"`     // source assertions (Value = statement text)
}

var errUnknownISBN = errors.New("bookdata: unknown ISBN")

// BookByISBN returns the book with the given ISBN.
func (d *Dataset) BookByISBN(isbn string) (Book, error) {
	for _, b := range d.Books {
		if b.ISBN == isbn {
			return b, nil
		}
	}
	return Book{}, fmt.Errorf("%w: %s", errUnknownISBN, isbn)
}

// StatementCount returns the total number of distinct statements.
func (d *Dataset) StatementCount() int {
	n := 0
	for _, ss := range d.Statements {
		n += len(ss)
	}
	return n
}

// GoldRate returns the fraction of claims whose statement is gold-true —
// the "about 50% of raw web data is correct" statistic.
func (d *Dataset) GoldRate() float64 {
	if len(d.Claims) == 0 {
		return 0
	}
	gold := make(map[string]bool)
	for _, ss := range d.Statements {
		for _, s := range ss {
			gold[s.ISBN+"\x00"+s.Text] = s.Gold
		}
	}
	correct := 0
	for _, c := range d.Claims {
		if gold[c.Object+"\x00"+c.Value] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Claims))
}

// SmallestBooks returns the ISBNs of the n books with the fewest
// statements (ties by ISBN), matching the paper's Figure 2 setup of the 40
// books "which contains the least number of statements".
func (d *Dataset) SmallestBooks(n int) []string {
	type bc struct {
		isbn  string
		count int
	}
	all := make([]bc, 0, len(d.Books))
	for _, b := range d.Books {
		all = append(all, bc{b.ISBN, len(d.Statements[b.ISBN])})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count < all[j].count
		}
		return all[i].isbn < all[j].isbn
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].isbn
	}
	return out
}

// BooksWithAtLeast returns the ISBNs of books with at least minStatements
// distinct statements, matching Table V's focus on "books with facts more
// than 20".
func (d *Dataset) BooksWithAtLeast(minStatements int) []string {
	var out []string
	for _, b := range d.Books {
		if len(d.Statements[b.ISBN]) >= minStatements {
			out = append(out, b.ISBN)
		}
	}
	sort.Strings(out)
	return out
}

// GoldJudgments returns the gold true/false labels of a book's statements,
// in statement order — the ground truth for F1 scoring and for the
// simulated crowd.
func (d *Dataset) GoldJudgments(isbn string) []bool {
	ss := d.Statements[isbn]
	out := make([]bool, len(ss))
	for i, s := range ss {
		out[i] = s.Gold
	}
	return out
}
