package bookdata

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"crowdfusion/internal/crowd"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Books = 30
	cfg.Sources = 25
	cfg.Seed = 42
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Books = 0 },
		func(c *Config) { c.Sources = 0 },
		func(c *Config) { c.Coverage = 0 },
		func(c *Config) { c.Coverage = 1.5 },
		func(c *Config) { c.MinAuthors = 0 },
		func(c *Config) { c.MaxAuthors = 0 },
		func(c *Config) { c.TextbookShare = -1 },
		func(c *Config) { c.ReliabilityLo = 0.9; c.ReliabilityHi = 0.1 },
		func(c *Config) { c.WeakDomainFactor = 2 },
		func(c *Config) { c.ReorderRate = -0.1 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Books) != 30 {
		t.Fatalf("books = %d", len(d.Books))
	}
	if len(d.Sources) != 25 {
		t.Fatalf("sources = %d", len(d.Sources))
	}
	if len(d.Claims) == 0 {
		t.Fatal("no claims generated")
	}
	for _, b := range d.Books {
		ss := d.Statements[b.ISBN]
		if len(ss) == 0 {
			t.Errorf("book %s has no statements", b.ISBN)
		}
		goldSeen := false
		ids := make(map[string]bool)
		for _, s := range ss {
			if s.ISBN != b.ISBN {
				t.Errorf("statement %s attached to wrong book", s.ID)
			}
			if ids[s.ID] {
				t.Errorf("duplicate statement ID %s", s.ID)
			}
			ids[s.ID] = true
			if s.Gold {
				goldSeen = true
			}
			if s.Text == "" || len(s.Names) == 0 {
				t.Errorf("statement %s empty", s.ID)
			}
		}
		if !goldSeen {
			t.Errorf("book %s has no gold-true statement", b.ISBN)
		}
		if b.Domain != DomainTextbook && b.Domain != DomainNonTextbook {
			t.Errorf("book %s has unknown domain %q", b.ISBN, b.Domain)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Claims) != len(b.Claims) {
		t.Fatalf("claim counts differ: %d vs %d", len(a.Claims), len(b.Claims))
	}
	for i := range a.Claims {
		if a.Claims[i] != b.Claims[i] {
			t.Fatalf("claims diverge at %d: %+v vs %+v", i, a.Claims[i], b.Claims[i])
		}
	}
	// A different seed must give different data.
	cfg := testConfig()
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Claims) == len(c.Claims)
	if same {
		for i := range a.Claims {
			if a.Claims[i] != c.Claims[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

// TestGoldRateNearHalf: the paper reports roughly 50% of raw web claims
// are correct; the default generator must land in that neighborhood.
func TestGoldRateNearHalf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Books = 60
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := d.GoldRate()
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("gold claim rate = %v, want ~0.5", rate)
	}
}

// TestGoldConsistency: a statement is gold-true iff its canonical author
// set equals the book's — including order and format variants.
func TestGoldConsistency(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for isbn, ss := range d.Statements {
		b, err := d.BookByISBN(isbn)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ss {
			want := s.CanonicalKey() == b.CanonicalKey()
			if s.Gold != want {
				t.Errorf("statement %s gold=%v, canonical says %v", s.ID, s.Gold, want)
			}
		}
	}
}

// TestErrorClassesPresent: the generator must produce all four Section V-D
// statement classes at reasonable rates.
func TestErrorClassesPresent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Books = 60
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[crowd.ErrorClass]int)
	for _, ss := range d.Statements {
		for _, s := range ss {
			counts[s.Class]++
		}
	}
	for _, class := range crowd.ErrorClasses {
		if counts[class] == 0 {
			t.Errorf("no statements of class %v generated", class)
		}
	}
	// Wrong-order statements must be gold-true; misspellings and
	// additional-info must be gold-false.
	for _, ss := range d.Statements {
		for _, s := range ss {
			switch s.Class {
			case crowd.WrongOrder:
				if !s.Gold {
					t.Errorf("wrong-order statement %s is gold-false", s.ID)
				}
			case crowd.Misspelling, crowd.AdditionalInfo:
				if s.Gold {
					t.Errorf("%v statement %s is gold-true: %q", s.Class, s.ID, s.Text)
				}
			}
		}
	}
}

// TestLargeBooksExist: Table V needs books with more than 20 statements.
func TestLargeBooksExist(t *testing.T) {
	cfg := DefaultConfig()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.BooksWithAtLeast(21)) == 0 {
		max := 0
		for _, ss := range d.Statements {
			if len(ss) > max {
				max = len(ss)
			}
		}
		t.Errorf("no books with > 20 statements (max %d); Table V cannot run", max)
	}
}

func TestSmallestBooks(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := d.SmallestBooks(5)
	if len(small) != 5 {
		t.Fatalf("SmallestBooks returned %d", len(small))
	}
	// They must be sorted by statement count.
	for i := 1; i < len(small); i++ {
		if len(d.Statements[small[i-1]]) > len(d.Statements[small[i]]) {
			t.Error("SmallestBooks not ordered by count")
		}
	}
	// Every other book has at least as many statements as the largest of
	// the smallest.
	limit := len(d.Statements[small[len(small)-1]])
	chosen := make(map[string]bool)
	for _, isbn := range small {
		chosen[isbn] = true
	}
	for _, b := range d.Books {
		if !chosen[b.ISBN] && len(d.Statements[b.ISBN]) < limit {
			t.Errorf("book %s (%d statements) smaller than selected %d",
				b.ISBN, len(d.Statements[b.ISBN]), limit)
		}
	}
	// Requesting more than available returns everything.
	if got := d.SmallestBooks(1000); len(got) != len(d.Books) {
		t.Errorf("SmallestBooks(1000) = %d", len(got))
	}
}

func TestGoldJudgments(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	isbn := d.Books[0].ISBN
	gj := d.GoldJudgments(isbn)
	ss := d.Statements[isbn]
	if len(gj) != len(ss) {
		t.Fatalf("judgment count %d != statement count %d", len(gj), len(ss))
	}
	for i := range gj {
		if gj[i] != ss[i].Gold {
			t.Errorf("judgment %d mismatch", i)
		}
	}
}

func TestCanonicalization(t *testing.T) {
	a := CanonicalizeKeys([]string{"Kathy Baxter", "Catherine Courage"})
	b := CanonicalizeKeys([]string{"catherine courage", "KATHY BAXTER"})
	if a != b {
		t.Errorf("order/case changed canonical key: %q vs %q", a, b)
	}
	c := CanonicalizeKeys([]string{"Kathy Baxter"})
	if a == c {
		t.Error("different author sets share a canonical key")
	}
}

func TestMisspellChangesName(t *testing.T) {
	for pick := 0; pick < 3; pick++ {
		for pos := 0; pos < 6; pos++ {
			name := "Loshin"
			got := misspell(name, pick, pos)
			if got == name {
				t.Errorf("misspell(%q, %d, %d) unchanged", name, pick, pos)
			}
		}
	}
	if got := misspell("X", 0, 0); got == "X" {
		t.Error("single-letter name not perturbed")
	}
}

func TestRenderFormats(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At least two distinct formats must appear among gold-true
	// statements of some book (the multi-truth property).
	multiTrue := false
	for _, ss := range d.Statements {
		goldCount := 0
		for _, s := range ss {
			if s.Gold {
				goldCount++
			}
		}
		if goldCount >= 2 {
			multiTrue = true
			break
		}
	}
	if !multiTrue {
		t.Error("no book has multiple gold-true statements; format variants missing")
	}
}

func TestBookByISBN(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.BookByISBN(d.Books[3].ISBN)
	if err != nil || b.ISBN != d.Books[3].ISBN {
		t.Errorf("BookByISBN failed: %v %v", b, err)
	}
	if _, err := d.BookByISBN("nope"); err == nil {
		t.Error("unknown ISBN accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Books) != len(d.Books) || len(got.Claims) != len(d.Claims) {
		t.Fatalf("round trip changed shape: %d/%d books, %d/%d claims",
			len(got.Books), len(d.Books), len(got.Claims), len(d.Claims))
	}
	if got.StatementCount() != d.StatementCount() {
		t.Errorf("round trip changed statements: %d vs %d",
			got.StatementCount(), d.StatementCount())
	}
	// Spot-check a statement survives with class and gold intact.
	isbn := d.Books[0].ISBN
	if got.Statements[isbn][0].Gold != d.Statements[isbn][0].Gold {
		t.Error("gold flag lost in round trip")
	}
	if _, err := Load(strings.NewReader("{invalid")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/books.json"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatementCount() != d.StatementCount() {
		t.Error("file round trip changed statement count")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestDomainReliabilitySkew: sources must be measurably better in their
// strong domain, echoing the eCampus.com observation.
func TestDomainReliabilitySkew(t *testing.T) {
	d, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Sources {
		tb, ntb := s.Reliability[DomainTextbook], s.Reliability[DomainNonTextbook]
		if math.Abs(tb-ntb) < 1e-9 {
			t.Errorf("source %s has flat reliability %v", s.Name, tb)
		}
		if tb < 0 || tb > 1 || ntb < 0 || ntb > 1 {
			t.Errorf("source %s reliability out of range: %v %v", s.Name, tb, ntb)
		}
	}
}
