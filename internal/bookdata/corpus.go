package bookdata

// Embedded name/title corpora for the synthetic Book dataset. The real
// dataset (lunadong.com) contains bookstore claims about computer-science
// books; the corpora below skew the generated titles the same way.

var firstNames = []string{
	"Ada", "Alan", "Alice", "Andrew", "Barbara", "Bjarne", "Brian", "Carol",
	"Catherine", "Charles", "Claude", "Dana", "David", "Dennis", "Donald",
	"Dorothy", "Edsger", "Edward", "Elaine", "Eleanor", "Eric", "Frances",
	"Grace", "Guido", "Harold", "Hector", "Irene", "James", "Jane",
	"Jeffrey", "Jennifer", "John", "Judith", "Julia", "Karen", "Kathleen",
	"Kenneth", "Kurt", "Laura", "Leslie", "Linda", "Margaret", "Martin",
	"Mary", "Maurice", "Michael", "Nancy", "Niklaus", "Patricia", "Paul",
	"Peter", "Rachel", "Raymond", "Richard", "Robert", "Ronald", "Ruth",
	"Sandra", "Sarah", "Stephen", "Susan", "Thomas", "Tony", "Virginia",
	"Walter", "William",
}

var lastNames = []string{
	"Abrahams", "Adams", "Aho", "Allen", "Anderson", "Backus", "Baxter",
	"Bell", "Bentley", "Bloch", "Brooks", "Carter", "Clark", "Cocke",
	"Codd", "Cook", "Courage", "Davis", "Dean", "Diffie", "Dijkstra",
	"Edwards", "Evans", "Fisher", "Floyd", "Foster", "Garcia", "Gray",
	"Hamilton", "Harris", "Hartmanis", "Hennessy", "Hoare", "Hopcroft",
	"Hopper", "Howard", "Hughes", "Iverson", "Jackson", "Johnson", "Karp",
	"Kay", "Kernighan", "Knuth", "Lamport", "Lampson", "Lee", "Lewis",
	"Liskov", "Loshin", "Martin", "McCarthy", "Miller", "Milner", "Mitchell",
	"Moore", "Morgan", "Murphy", "Naur", "Nelson", "Newell", "Nygaard",
	"Parker", "Patterson", "Perlis", "Peterson", "Phillips", "Rabin",
	"Reynolds", "Ritchie", "Rivest", "Roberts", "Robinson", "Rogers",
	"Scollard", "Scott", "Shamir", "Simon", "Smith", "Stearns", "Stroustrup",
	"Sutherland", "Tarjan", "Taylor", "Thompson", "Turner", "Walker",
	"Wilkes", "Wilkinson", "Williams", "Wilson", "Wirth", "Wright", "Young",
}

var organizations = []string{
	"SAN JOSE STATE UNIVERSITY, USA", "MIT PRESS", "STANFORD UNIVERSITY",
	"CARNEGIE MELLON UNIVERSITY", "BELL LABS", "IBM RESEARCH",
	"UNIVERSITY OF CAMBRIDGE", "ETH ZURICH", "HKUST",
	"OXFORD UNIVERSITY PRESS",
}

var titleHeads = []string{
	"Introduction to", "Principles of", "Foundations of", "Advanced",
	"Practical", "The Art of", "A Guide to", "Essentials of",
	"Understanding", "Modern", "Effective", "Mastering",
}

var titleTopics = []string{
	"Data Fusion", "Database Systems", "Crowdsourcing", "Information Theory",
	"Distributed Computing", "Query Processing", "Truth Discovery",
	"Data Integration", "Machine Learning", "Web Data Management",
	"Operating Systems", "Compiler Design", "Computer Networks",
	"Probabilistic Databases", "Entity Resolution", "Data Cleaning",
	"Algorithm Design", "Programming Languages", "Software Engineering",
	"Human Computation",
}

// misspell deterministically perturbs a name: it duplicates, drops, or
// substitutes one letter, driven by the given picks. The result is always
// different from the input for names of length >= 2.
func misspell(name string, pick, pos int) string {
	if len(name) < 2 {
		return name + "e"
	}
	i := 1 + pos%(len(name)-1)
	switch pick % 3 {
	case 0: // duplicate a letter: Loshin -> Losshin
		return name[:i] + string(name[i-1]) + name[i:]
	case 1: // drop a letter: Loshin -> Lohin
		return name[:i] + name[i+1:]
	default: // shift a letter: Loshin -> Losgin
		c := name[i]
		if c == 'z' {
			c = 'a'
		} else {
			c++
		}
		return name[:i] + string(c) + name[i+1:]
	}
}
