package bookdata

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/fusion"
)

// Config parameterizes dataset generation. The zero value is not valid;
// use DefaultConfig and adjust.
type Config struct {
	Books   int   // number of books (the paper uses 100)
	Sources int   // number of bookstore sources
	Seed    int64 // RNG seed; identical configs generate identical datasets

	// Coverage is the probability that a source emits a claim for a
	// given book.
	Coverage float64
	// MinAuthors and MaxAuthors bound the gold author-list length.
	MinAuthors, MaxAuthors int
	// TextbookShare is the fraction of books in the textbook domain.
	TextbookShare float64
	// ReliabilityLo/Hi bound source reliability (probability a claim
	// faithfully renders the cover list) in its strong domain; the weak
	// domain gets a fraction of it, echoing the paper's eCampus.com
	// observation (55% on textbooks, 0% elsewhere).
	ReliabilityLo, ReliabilityHi float64
	// WeakDomainFactor scales reliability in a source's weak domain.
	WeakDomainFactor float64
	// ReorderRate is the probability a faithful claim permutes the
	// author order (gold-true but hard for the crowd: WrongOrder).
	ReorderRate float64
}

// DefaultConfig mirrors the paper's dataset scale: 100 books, enough
// sources that large books exceed 20 distinct statements, and an overall
// gold-claim rate of roughly one half.
func DefaultConfig() Config {
	return Config{
		Books:            100,
		Sources:          40,
		Seed:             1,
		Coverage:         0.6,
		MinAuthors:       1,
		MaxAuthors:       4,
		TextbookShare:    0.4,
		ReliabilityLo:    0.45,
		ReliabilityHi:    0.75,
		WeakDomainFactor: 0.35,
		ReorderRate:      0.3,
	}
}

func (c Config) validate() error {
	switch {
	case c.Books <= 0:
		return errors.New("bookdata: Books must be positive")
	case c.Sources <= 0:
		return errors.New("bookdata: Sources must be positive")
	case c.Coverage <= 0 || c.Coverage > 1:
		return errors.New("bookdata: Coverage must be in (0, 1]")
	case c.MinAuthors < 1 || c.MaxAuthors < c.MinAuthors:
		return errors.New("bookdata: author bounds invalid")
	case c.TextbookShare < 0 || c.TextbookShare > 1:
		return errors.New("bookdata: TextbookShare must be in [0, 1]")
	case c.ReliabilityLo < 0 || c.ReliabilityHi > 1 || c.ReliabilityLo > c.ReliabilityHi:
		return errors.New("bookdata: reliability bounds invalid")
	case c.WeakDomainFactor < 0 || c.WeakDomainFactor > 1:
		return errors.New("bookdata: WeakDomainFactor must be in [0, 1]")
	case c.ReorderRate < 0 || c.ReorderRate > 1:
		return errors.New("bookdata: ReorderRate must be in [0, 1]")
	}
	return nil
}

// Generate builds a deterministic synthetic dataset.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Statements: make(map[string][]Statement)}

	// Books with gold author lists.
	for i := 0; i < cfg.Books; i++ {
		nAuthors := cfg.MinAuthors + rng.Intn(cfg.MaxAuthors-cfg.MinAuthors+1)
		authors := make([]Author, nAuthors)
		used := make(map[string]bool)
		for a := 0; a < nAuthors; a++ {
			for {
				au := Author{
					First: firstNames[rng.Intn(len(firstNames))],
					Last:  lastNames[rng.Intn(len(lastNames))],
				}
				if !used[au.Key()] {
					used[au.Key()] = true
					authors[a] = au
					break
				}
			}
		}
		domain := DomainNonTextbook
		if rng.Float64() < cfg.TextbookShare {
			domain = DomainTextbook
		}
		d.Books = append(d.Books, Book{
			ISBN: fmt.Sprintf("978%07d", i),
			Title: fmt.Sprintf("%s %s",
				titleHeads[rng.Intn(len(titleHeads))],
				titleTopics[rng.Intn(len(titleTopics))]),
			Domain:  domain,
			Authors: authors,
		})
	}

	// Sources with per-domain reliability; every source is strong in one
	// domain and weak in the other.
	for s := 0; s < cfg.Sources; s++ {
		strong := cfg.ReliabilityLo + rng.Float64()*(cfg.ReliabilityHi-cfg.ReliabilityLo)
		weak := strong * cfg.WeakDomainFactor
		rel := map[string]float64{}
		if s%2 == 0 {
			rel[DomainTextbook], rel[DomainNonTextbook] = strong, weak
		} else {
			rel[DomainTextbook], rel[DomainNonTextbook] = weak, strong
		}
		d.Sources = append(d.Sources, Source{
			Name:        fmt.Sprintf("store%02d.example", s),
			Reliability: rel,
		})
	}

	// Claims: each covered (source, book) pair emits one statement.
	type stmtKey struct{ isbn, text string }
	stmtIndex := make(map[stmtKey]int) // position within d.Statements[isbn]
	addStatement := func(b Book, names []string, class crowd.ErrorClass) Statement {
		text := renderList(names, rng)
		key := stmtKey{b.ISBN, text}
		if idx, ok := stmtIndex[key]; ok {
			return d.Statements[b.ISBN][idx]
		}
		s := Statement{
			ID:    fmt.Sprintf("%s#%03d", b.ISBN, len(d.Statements[b.ISBN])),
			ISBN:  b.ISBN,
			Text:  text,
			Names: names,
			Class: class,
			Gold:  CanonicalizeKeys(append([]string(nil), names...)) == b.CanonicalKey(),
		}
		stmtIndex[key] = len(d.Statements[b.ISBN])
		d.Statements[b.ISBN] = append(d.Statements[b.ISBN], s)
		return s
	}

	for _, b := range d.Books {
		goldSeen := false
		for _, src := range d.Sources {
			if rng.Float64() >= cfg.Coverage {
				continue
			}
			names, class := makeClaimNames(b, src, cfg, rng)
			s := addStatement(b, names, class)
			if s.Gold {
				goldSeen = true
			}
			d.Claims = append(d.Claims, fusion.Claim{
				Source: src.Name,
				Object: b.ISBN,
				Value:  s.Text,
			})
		}
		if !goldSeen {
			// Guarantee at least one faithful statement per book (the
			// real dataset's gold standard always has one); attribute
			// it to a random source.
			names := coverNames(b)
			s := addStatement(b, names, crowd.Easy)
			src := d.Sources[rng.Intn(len(d.Sources))]
			d.Claims = append(d.Claims, fusion.Claim{
				Source: src.Name,
				Object: b.ISBN,
				Value:  s.Text,
			})
		}
	}

	sort.Slice(d.Claims, func(i, j int) bool {
		a, b := d.Claims[i], d.Claims[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Value < b.Value
	})
	return d, nil
}

// coverNames renders the gold author list in cover order.
func coverNames(b Book) []string {
	names := make([]string, len(b.Authors))
	for i, a := range b.Authors {
		names[i] = a.First + " " + a.Last
	}
	return names
}

// makeClaimNames produces the author names one source claims for one book,
// with the difficulty class of the produced statement.
func makeClaimNames(b Book, src Source, cfg Config, rng *rand.Rand) ([]string, crowd.ErrorClass) {
	names := coverNames(b)
	if rng.Float64() < src.Reliability[b.Domain] {
		// Faithful claim; possibly in a different order.
		if len(names) >= 2 && rng.Float64() < cfg.ReorderRate {
			perm := rng.Perm(len(names))
			identity := true
			shuffled := make([]string, len(names))
			for i, p := range perm {
				shuffled[i] = names[p]
				if p != i {
					identity = false
				}
			}
			if !identity {
				return shuffled, crowd.WrongOrder
			}
		}
		return names, crowd.Easy
	}
	// Corrupted claim.
	out := append([]string(nil), names...)
	target := rng.Intn(len(out))
	switch roll := rng.Float64(); {
	case roll < 0.30: // misspelling
		parts := strings.SplitN(out[target], " ", 2)
		if len(parts) == 2 {
			parts[1] = misspell(parts[1], rng.Intn(3), rng.Intn(8))
			out[target] = parts[0] + " " + parts[1]
		} else {
			out[target] = misspell(out[target], rng.Intn(3), rng.Intn(8))
		}
		return out, crowd.Misspelling
	case roll < 0.55: // appended organization info
		org := organizations[rng.Intn(len(organizations))]
		out[target] = out[target] + " (" + org + ")"
		return out, crowd.AdditionalInfo
	case roll < 0.80 && len(out) >= 2: // dropped author
		out = append(out[:target], out[target+1:]...)
		return out, crowd.Easy
	default: // substituted author
		out[target] = firstNames[rng.Intn(len(firstNames))] + " " +
			lastNames[rng.Intn(len(lastNames))]
		return out, crowd.Easy
	}
}

// renderList renders author names in one of the formats observed in the
// real dataset: "First Last; ...", "Last, First; ...", "First Last and ..."
// or the uppercase "LAST, FIRST LAST, FIRST" form from the paper's
// wrong-order example.
func renderList(names []string, rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return strings.Join(names, "; ")
	case 1:
		return strings.Join(mapNames(names, lastFirst), "; ")
	case 2:
		return strings.Join(names, " and ")
	default:
		return strings.ToUpper(strings.Join(mapNames(names, lastFirst), " "))
	}
}

func lastFirst(name string) string {
	parts := strings.SplitN(name, " ", 2)
	if len(parts) != 2 {
		return name
	}
	// Keep any appended organization with the first name part.
	return parts[1] + ", " + parts[0]
}

func mapNames(names []string, f func(string) string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = f(n)
	}
	return out
}
