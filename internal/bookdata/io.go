package bookdata

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Save writes the dataset as indented JSON.
func (d *Dataset) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("bookdata: encoding dataset: %w", err)
	}
	return nil
}

// SaveFile writes the dataset to a JSON file.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bookdata: %w", err)
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a dataset from JSON.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("bookdata: decoding dataset: %w", err)
	}
	if d.Statements == nil {
		d.Statements = make(map[string][]Statement)
	}
	return &d, nil
}

// LoadFile reads a dataset from a JSON file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bookdata: %w", err)
	}
	defer f.Close()
	return Load(f)
}
