package bookdata

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
)

// smallDataset generates a compact but fully populated dataset: every
// field the wire format carries (books, sources with per-domain
// reliability, statements with difficulty classes, claims) is exercised.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Books = 8
	cfg.Sources = 5
	cfg.Seed = 3
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Books) == 0 || len(d.Sources) == 0 || len(d.Claims) == 0 || d.StatementCount() == 0 {
		t.Fatalf("generated dataset is degenerate: %d books, %d sources, %d claims, %d statements",
			len(d.Books), len(d.Sources), len(d.Claims), d.StatementCount())
	}
	return d
}

// TestDatasetJSONRoundTrip: Save → Load must reproduce the dataset deep-
// equal, field for field — the encoding/json contract the service wire
// format builds on.
func TestDatasetJSONRoundTrip(t *testing.T) {
	d := smallDataset(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip changed the dataset:\nbefore: %+v\nafter:  %+v", d, back)
	}
}

// TestDatasetJSONRoundTripIsStable: a second encode of the decoded dataset
// must be byte-identical to the first — no field ordering or float
// formatting drift between generations.
func TestDatasetJSONRoundTripIsStable(t *testing.T) {
	d := smallDataset(t)
	var first bytes.Buffer
	if err := d.Save(&first); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-encoding a decoded dataset changed the bytes")
	}
}

// TestDatasetFileRoundTrip covers the SaveFile/LoadFile path.
func TestDatasetFileRoundTrip(t *testing.T) {
	d := smallDataset(t)
	path := filepath.Join(t.TempDir(), "books.json")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatal("file round trip changed the dataset")
	}
}

// TestLoadEmptyStatements: a dataset JSON with no statements map decodes
// to an empty (non-nil) map, so lookups never panic.
func TestLoadEmptyStatements(t *testing.T) {
	back, err := Load(bytes.NewReader([]byte(`{"books":[],"sources":[],"claims":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Statements == nil {
		t.Fatal("nil statements map after load")
	}
}

// TestLoadRejectsGarbage: malformed JSON surfaces a decode error, not a
// zero dataset.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{"books": [{]`))); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestStatementJSONFields: the statement wire names are stable (the
// service and dataset files share them), so renames break loudly here.
func TestStatementJSONFields(t *testing.T) {
	s := Statement{ID: "s1", ISBN: "i1", Text: "a b", Names: []string{"a b"}, Gold: true}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "isbn", "text", "names", "class", "gold"} {
		if _, ok := m[key]; !ok {
			t.Errorf("statement JSON lost field %q (got %v)", key, m)
		}
	}
}
