// Package chaos is the fault-injection toolkit behind the robustness
// suite: a deterministic fault-injecting SessionStore wrapper, a torn-tail
// helper for simulating half-written fsyncs, and an in-process TCP proxy
// (proxy.go) for partitioning and delaying peers. Everything is
// deterministic and explicit — faults fire when the test arms them, never
// randomly — so a chaos run that fails is a chaos run that reproduces.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crowdfusion/internal/store"
)

// ErrInjected is the error every armed fault returns, wrapped with the
// operation it hit. Tests assert on it with errors.Is to distinguish an
// injected fault from a real store failure.
var ErrInjected = errors.New("chaos: injected fault")

// Store wraps a SessionStore with armable faults: the next N appends or
// puts fail with ErrInjected, and every operation can be slowed by a fixed
// latency. Lease operations pass through unfaulted (the lease fence is the
// mechanism under test; the faults model the data path failing around it),
// but they do observe the injected latency — a slow store must not let a
// renewal outrun a steal.
type Store struct {
	inner store.SessionStore

	mu          sync.Mutex
	failAppends int
	failPuts    int
	latency     time.Duration
}

// Wrap builds a fault-injecting wrapper around inner. The wrapper owns
// inner: Close closes it.
func Wrap(inner store.SessionStore) *Store { return &Store{inner: inner} }

// FailAppends arms the next n Append calls to fail with ErrInjected.
func (s *Store) FailAppends(n int) {
	s.mu.Lock()
	s.failAppends = n
	s.mu.Unlock()
}

// FailPuts arms the next n Put calls to fail with ErrInjected.
func (s *Store) FailPuts(n int) {
	s.mu.Lock()
	s.failPuts = n
	s.mu.Unlock()
}

// SetLatency makes every store operation sleep d before running (0 turns
// the delay off).
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// delay applies the configured latency.
func (s *Store) delay() {
	s.mu.Lock()
	d := s.latency
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// take consumes one unit of an armed fault budget.
func take(counter *int) bool {
	if *counter > 0 {
		*counter--
		return true
	}
	return false
}

func (s *Store) Durable() bool { return s.inner.Durable() }

func (s *Store) Put(rec *store.Record) error {
	s.delay()
	s.mu.Lock()
	fail := take(&s.failPuts)
	s.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: put %s", ErrInjected, rec.ID)
	}
	return s.inner.Put(rec)
}

func (s *Store) Append(id string, op store.Op) error {
	s.delay()
	s.mu.Lock()
	fail := take(&s.failAppends)
	s.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: append %s", ErrInjected, id)
	}
	return s.inner.Append(id, op)
}

func (s *Store) Get(id string) (*store.Record, error) {
	s.delay()
	return s.inner.Get(id)
}

func (s *Store) Delete(id string) (bool, error) {
	s.delay()
	return s.inner.Delete(id)
}

func (s *Store) List() ([]string, error) {
	s.delay()
	return s.inner.List()
}

func (s *Store) Close() error { return s.inner.Close() }

func (s *Store) AcquireLease(id, owner string, ttl time.Duration, now time.Time) (store.Lease, error) {
	s.delay()
	return s.inner.AcquireLease(id, owner, ttl, now)
}

func (s *Store) StealLease(id, owner string, ttl time.Duration, now time.Time) (store.Lease, error) {
	s.delay()
	return s.inner.StealLease(id, owner, ttl, now)
}

func (s *Store) RenewLease(id, owner string, epoch uint64, ttl time.Duration, now time.Time) (store.Lease, error) {
	s.delay()
	return s.inner.RenewLease(id, owner, epoch, ttl, now)
}

func (s *Store) ReleaseLease(id, owner string, epoch uint64) error {
	s.delay()
	return s.inner.ReleaseLease(id, owner, epoch)
}

func (s *Store) GetLease(id string) (*store.Lease, error) {
	s.delay()
	return s.inner.GetLease(id)
}

// TearLogTail truncates n bytes off the tail of a session's op log in a
// file-store data dir, simulating a torn write (power loss mid-append).
// The store's CRC-framed log format must detect the damage on the next
// read and recover every intact prefix entry. No-op (with an error) when
// the session has no log.
func TearLogTail(dir, id string, n int64) error {
	path := filepath.Join(dir, id+".log")
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("chaos: tearing log tail: %w", err)
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
