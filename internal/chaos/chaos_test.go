package chaos

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"crowdfusion/internal/store"
)

func testRecord(id string) *store.Record {
	return &store.Record{
		ID:       id,
		Selector: "Approx+Prune+Pre",
		Pc:       0.8,
		K:        2,
		Budget:   8,
		Prior:    store.Prior{Marginals: []float64{0.6, 0.7}},
		Created:  time.Unix(1000, 0).UTC(),
	}
}

func TestStoreFaultInjectionIsDeterministic(t *testing.T) {
	s := Wrap(store.NewMemory())
	defer s.Close()
	if err := s.Put(testRecord("sess-a")); err != nil {
		t.Fatal(err)
	}

	s.FailAppends(2)
	op := store.Op{Kind: store.OpMerge, Version: 0, Tasks: []int{0}, Answers: []bool{true}}
	for i := 0; i < 2; i++ {
		if err := s.Append("sess-a", op); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed append %d = %v, want ErrInjected", i, err)
		}
	}
	// The budget is spent: the third attempt goes through, and the two
	// refused appends left no trace in the history.
	if err := s.Append("sess-a", op); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Get("sess-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != 1 {
		t.Fatalf("injected failures leaked into history: %d ops", len(rec.Ops))
	}

	s.FailPuts(1)
	if err := s.Put(testRecord("sess-b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed put = %v, want ErrInjected", err)
	}
	if err := s.Put(testRecord("sess-b")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreLatencyInjection(t *testing.T) {
	s := Wrap(store.NewMemory())
	defer s.Close()
	if err := s.Put(testRecord("sess-slow")); err != nil {
		t.Fatal(err)
	}
	s.SetLatency(30 * time.Millisecond)
	start := time.Now()
	if _, err := s.Get("sess-slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency not applied: Get took %v", d)
	}
	s.SetLatency(0)
}

// TestTearLogTailRecovers: a torn append (simulated power loss) must cost
// at most the torn entry — the file store detects the damage and serves
// every intact prefix op.
func TestTearLogTailRecovers(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testRecord("sess-torn")); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if err := fs.Append("sess-torn", store.Op{
			Kind: store.OpMerge, Version: v, Tasks: []int{v % 2}, Answers: []bool{true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	if err := TearLogTail(dir, "sess-torn", 3); err != nil {
		t.Fatal(err)
	}
	fs2, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	rec, err := fs2.Get("sess-torn")
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	if len(rec.Ops) != 2 {
		t.Fatalf("torn tail recovery kept %d ops, want the 2 intact ones", len(rec.Ops))
	}
}

// lineEcho is a minimal line-oriented TCP echo backend for proxy tests.
func lineEcho(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// roundTrip sends one line through addr and returns the echoed reply.
func roundTrip(addr string, deadline time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, deadline)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(deadline))
	if _, err := fmt.Fprintf(conn, "ping\n"); err != nil {
		return "", err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return reply, nil
}

func TestProxyPartitionAndHeal(t *testing.T) {
	backend := lineEcho(t)
	p, err := NewProxy("127.0.0.1:0", backend.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if reply, err := roundTrip(p.Addr(), time.Second); err != nil || reply != "ping\n" {
		t.Fatalf("healthy proxy: %q %v", reply, err)
	}

	// A connection alive across the partition moment is severed, and new
	// connections fail until heal.
	held, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	p.Partition()
	if !p.Partitioned() {
		t.Fatal("Partitioned() = false after Partition")
	}
	held.SetDeadline(time.Now().Add(time.Second))
	if _, err := bufio.NewReader(held).ReadString('\n'); err == nil {
		t.Fatal("held connection survived the partition")
	}
	if _, err := roundTrip(p.Addr(), 300*time.Millisecond); err == nil {
		t.Fatal("new connection succeeded through a partition")
	}

	p.Heal()
	if reply, err := roundTrip(p.Addr(), time.Second); err != nil || reply != "ping\n" {
		t.Fatalf("healed proxy: %q %v", reply, err)
	}
}

func TestProxyDelay(t *testing.T) {
	backend := lineEcho(t)
	p, err := NewProxy("127.0.0.1:0", backend.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(40 * time.Millisecond)
	start := time.Now()
	if reply, err := roundTrip(p.Addr(), 2*time.Second); err != nil || reply != "ping\n" {
		t.Fatalf("delayed proxy: %q %v", reply, err)
	}
	// One delay each way at minimum.
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("delay not applied: round trip took %v", d)
	}
}
