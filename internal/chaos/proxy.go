package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a minimal in-process TCP forwarder for chaos tests: a node
// listens behind it (peers dial the proxy address, the proxy forwards to
// the real listener), and the test can partition it — refuse new
// connections and sever established ones — or add per-chunk latency,
// then heal it again. Partitioning the proxy a node advertises makes that
// node unreachable WITHOUT stopping it: the deposed-owner scenario, where
// a process everyone believes dead keeps running and keeps trying to
// write.
type Proxy struct {
	ln     net.Listener
	target string

	mu          sync.Mutex
	partitioned bool
	delay       time.Duration
	conns       map[net.Conn]struct{}
	closed      bool

	wg sync.WaitGroup
}

// NewProxy listens on listen (e.g. "127.0.0.1:0") and forwards every
// connection to target.
func NewProxy(listen, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the fronted node should
// advertise to its peers.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition makes the fronted node unreachable: new connections are
// refused and established ones are severed mid-stream.
func (p *Proxy) Partition() { p.setPartitioned(true) }

// Heal reconnects the fronted node: new connections forward again.
// (Connections severed by Partition stay dead; clients redial.)
func (p *Proxy) Heal() { p.setPartitioned(false) }

// Partitioned reports the current partition state.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

func (p *Proxy) setPartitioned(v bool) {
	p.mu.Lock()
	p.partitioned = v
	var sever []net.Conn
	if v {
		for c := range p.conns {
			sever = append(sever, c)
		}
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// SetDelay adds d of latency before each forwarded chunk in both
// directions (0 turns it off). Applies to connections accepted after the
// call.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Delay returns the configured per-chunk latency.
func (p *Proxy) Delay() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delay
}

// Close stops the listener and severs every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range sever {
		c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse := p.partitioned || p.closed
		delay := p.delay
		p.mu.Unlock()
		if refuse {
			conn.Close()
			continue
		}
		upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		p.track(conn)
		p.track(upstream)
		p.wg.Add(2)
		go p.pipe(upstream, conn, delay)
		go p.pipe(conn, upstream, delay)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// pipe forwards src→dst chunk by chunk, applying the per-chunk delay, and
// closes both ends on EOF or error so the peer notices promptly.
func (p *Proxy) pipe(dst, src net.Conn, delay time.Duration) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if delay > 0 {
				time.Sleep(delay)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				_ = err // severed or reset; nothing to report
			}
			return
		}
	}
}
