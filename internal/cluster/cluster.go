// Package cluster makes session ownership explicit for crowdfusiond.
//
// The refinement loop is embarrassingly partitionable: each session's
// posterior is conditioned independently, so a fleet of daemons can split
// the session space with no cross-node coordination at all — provided every
// node (and every client) agrees, deterministically, on which node owns
// which session. This package is that agreement.
//
// Placement is rendezvous (highest-random-weight) hashing over a static
// peer list: every participant scores each (peer, sessionID) pair with the
// same hash and the highest score wins. Rendezvous hashing needs no virtual
// nodes, no shared state, and has the minimal-disruption property the
// service relies on for rebalancing: when a node leaves, exactly the
// sessions it owned move (spread evenly over the survivors), and when it
// returns, exactly those sessions move back — every other placement is
// untouched, so a topology change rebalances at most ~K/N of K sessions
// across N nodes.
//
// A Ring layers liveness onto the static list: it probes peers (GET
// /healthz by default) and excludes suspects from placement, so when a node
// dies its sessions deterministically re-home onto the surviving peers. The
// new owner rebuilds each adopted session from the shared session store by
// replaying its op log — the same record-replay path as crash recovery —
// which is what makes failover state-preserving rather than state-losing.
//
// Ownership during the detection window is converging, not consistent: for
// roughly one probe interval after a death (or a revival) different
// participants may disagree about the owner. The session layer tolerates
// this — misrouted requests are answered with a machine-readable not_owner
// redirect, relinquished instances flush before retiring, and the shared
// store's version-ordered, stat-fenced appends refuse a divergent second
// writer it can detect — so the window degrades to redirects and retries.
// (A simultaneous-append race narrower than one fsync remains until the
// store grows per-session leases; see ROADMAP.)
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"
)

// Normalize canonicalizes one peer address to the form placement hashes
// and clients dial: a base URL with an http scheme and no trailing slash.
// Bare host:port gets "http://" prepended. Placement hashes the normalized
// string, so every participant must normalize — which is why the Ring and
// the routing client both call this instead of trusting flag spelling.
func Normalize(addr string) (string, error) {
	a := strings.TrimSpace(addr)
	if a == "" {
		return "", errors.New("cluster: empty peer address")
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
		return "", fmt.Errorf("cluster: peer %q: only http/https addresses are supported", addr)
	}
	scheme := "http://"
	if strings.HasPrefix(a, "https://") {
		scheme = "https://"
	}
	host := strings.TrimRight(strings.TrimPrefix(a, scheme), "/")
	if host == "" {
		return "", fmt.Errorf("cluster: peer %q has no host", addr)
	}
	return scheme + host, nil
}

// NormalizeList normalizes, deduplicates, and sorts a peer list.
func NormalizeList(addrs []string) ([]string, error) {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		n, err := Normalize(a)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return slices.Compact(out), nil
}

// score is the rendezvous weight of key on peer: FNV-1a over
// peer + NUL + key, passed through a splitmix64 finalizer so the avalanche
// is good enough for the ~K/N rebalance bound even on structured inputs
// (peer addresses differing in one digit, hex session IDs).
func score(peer, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(peer); i++ {
		h ^= uint64(peer[i])
		h *= prime64
	}
	// Fold in a NUL separator (XOR with 0 is a no-op, the multiply is
	// not), keeping ("ab","c") and ("a","bc") distinct.
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the peer that owns key under rendezvous hashing: the
// highest-scoring peer, ties broken toward the lexicographically smaller
// address so placement is a pure function of (peers, key) everywhere.
// Peers must be non-empty and normalized (see NormalizeList).
func Owner(peers []string, key string) string {
	best, bestScore := "", uint64(0)
	for _, p := range peers {
		s := score(p, key)
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// RankOrder returns the peers ordered by descending rendezvous preference
// for key: element 0 is the owner, element 1 is where the session re-homes
// if the owner dies, and so on. Clients walk this order when routing.
func RankOrder(peers []string, key string) []string {
	type ranked struct {
		peer  string
		score uint64
	}
	rs := make([]ranked, len(peers))
	for i, p := range peers {
		rs[i] = ranked{p, score(p, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].peer < rs[j].peer
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.peer
	}
	return out
}

// Config configures one node's view of the ring.
type Config struct {
	// Self is this node's advertised address (normalized into the peer
	// list; added to it if absent).
	Self string
	// Peers is the static cluster membership, including or excluding Self.
	Peers []string
	// ProbeInterval is how often each peer's liveness is probed
	// (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default ProbeInterval/2).
	ProbeTimeout time.Duration
	// SuspectAfter is how many consecutive probe failures mark a peer dead
	// (default 2; one success marks it alive again).
	SuspectAfter int
	// Probe checks one peer. The default issues GET <addr>/healthz and
	// treats any 2xx as alive.
	Probe func(ctx context.Context, addr string) error
	// OnChange, when set, is called from the prober goroutine after every
	// aliveness transition (the epoch has already advanced). The session
	// layer hooks it to relinquish sessions it no longer owns.
	OnChange func()
	// Logf receives peer up/down transitions. Nil discards them.
	Logf func(format string, args ...any)
}

// Ring is one node's live view of the cluster: the static rendezvous
// membership plus probed peer liveness. Placement queries (Owner, Owns,
// Rank) consult only alive peers, so they answer "who serves this session
// right now"; Static* variants consult the full list and answer "who serves
// it when everyone is up". All methods are safe for concurrent use.
type Ring struct {
	self  string
	peers []string // sorted, deduped, includes self
	cfg   Config

	mu    sync.RWMutex
	down  map[string]bool
	fails map[string]int
	epoch uint64

	stop chan struct{}
	done chan struct{}
}

// New validates and normalizes the configuration and returns a ring with
// every peer presumed alive. Call Start to begin probing (a single-node
// ring never needs to).
func New(cfg Config) (*Ring, error) {
	self, err := Normalize(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: -self: %w", err)
	}
	peers, err := NormalizeList(append(append([]string(nil), cfg.Peers...), cfg.Self))
	if err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.Probe == nil {
		cfg.Probe = httpProbe
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Ring{
		self:  self,
		peers: peers,
		cfg:   cfg,
		down:  make(map[string]bool),
		fails: make(map[string]int),
	}, nil
}

// httpProbe is the default liveness check: GET <addr>/healthz, any 2xx is
// alive. The context carries the probe timeout.
func httpProbe(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("cluster: %s/healthz: HTTP %d", addr, resp.StatusCode)
	}
	return nil
}

// Self returns this node's normalized address.
func (r *Ring) Self() string { return r.self }

// Peers returns the full static membership (sorted; includes self).
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the static cluster size.
func (r *Ring) Size() int { return len(r.peers) }

// Alive returns the peers currently considered alive. Self is always
// alive from its own point of view.
func (r *Ring) Alive() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.aliveLocked()
}

// PeerAlive reports whether addr is currently considered alive. The
// session layer's lease steal policy consults it: a held lease is only
// taken over when its holder looks dead from here, so two nodes with
// disagreeing partition views don't steal a session back and forth.
// Unknown addresses (not in the membership) report dead.
func (r *Ring) PeerAlive(addr string) bool {
	if addr == r.self {
		return true
	}
	known := false
	for _, p := range r.peers {
		if p == addr {
			known = true
			break
		}
	}
	if !known {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return !r.down[addr]
}

func (r *Ring) aliveLocked() []string {
	alive := make([]string, 0, len(r.peers))
	for _, p := range r.peers {
		if p == r.self || !r.down[p] {
			alive = append(alive, p)
		}
	}
	return alive
}

// Epoch returns the topology epoch: it advances on every aliveness
// transition, so a cached placement is valid exactly while the epoch it was
// computed under still reads the same.
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Owner returns the peer that owns key among the currently-alive peers.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Owner(r.aliveLocked(), key)
}

// Owns reports whether this node owns key right now.
func (r *Ring) Owns(key string) bool { return r.Owner(key) == r.self }

// Rank returns the alive peers in rendezvous preference order for key.
func (r *Ring) Rank(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return RankOrder(r.aliveLocked(), key)
}

// StaticOwner returns the owner of key with every peer presumed alive —
// placement as configured, independent of probe state. The daemon's boot
// scan uses it to report which on-disk sessions are this node's.
func (r *Ring) StaticOwner(key string) string { return Owner(r.peers, key) }

// SetOnChange replaces the change callback (see Config.OnChange). The
// session server claims it at construction to hook rebalancing; call
// before Start so no transition is missed.
func (r *Ring) SetOnChange(f func()) {
	r.mu.Lock()
	r.cfg.OnChange = f
	r.mu.Unlock()
}

// Start launches the liveness prober. It is a no-op for a single-node
// ring (there is nobody to probe).
func (r *Ring) Start() {
	if len(r.peers) == 1 || r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.probeLoop(r.stop, r.done)
}

// Stop halts the prober and waits for it to exit.
func (r *Ring) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop = nil
}

// probeLoop probes every peer each interval and applies the transitions.
func (r *Ring) probeLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		r.probeOnce()
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// probeOnce probes all non-self peers concurrently and folds the results
// into the aliveness map, firing OnChange if anything transitioned.
func (r *Ring) probeOnce() {
	type result struct {
		peer string
		err  error
	}
	results := make(chan result, len(r.peers))
	n := 0
	for _, p := range r.peers {
		if p == r.self {
			continue
		}
		n++
		go func(p string) {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
			defer cancel()
			results <- result{p, r.cfg.Probe(ctx, p)}
		}(p)
	}
	// Drain every probe BEFORE taking the lock: /healthz handlers read the
	// ring, so holding the write lock across network waits would make each
	// node's health endpoint stall on its own probe cycle — and the whole
	// cluster would then probe-timeout each other in a ring of stalls.
	settled := make([]result, 0, n)
	for i := 0; i < n; i++ {
		settled = append(settled, <-results)
	}
	changed := false
	r.mu.Lock()
	for _, res := range settled {
		if res.err != nil {
			r.fails[res.peer]++
			if r.fails[res.peer] == r.cfg.SuspectAfter && !r.down[res.peer] {
				r.down[res.peer] = true
				changed = true
				r.cfg.Logf("cluster: peer %s down (%d consecutive probe failures: %v)",
					res.peer, r.fails[res.peer], res.err)
			}
		} else {
			r.fails[res.peer] = 0
			if r.down[res.peer] {
				delete(r.down, res.peer)
				changed = true
				r.cfg.Logf("cluster: peer %s back up", res.peer)
			}
		}
	}
	if changed {
		r.epoch++
	}
	onChange := r.cfg.OnChange
	r.mu.Unlock()
	if changed && onChange != nil {
		onChange()
	}
}
