package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestOwnerGolden pins placement: these exact (id, owner) pairs must hold
// on every platform and every release, because daemons and clients compute
// placement independently and must agree. If this test ever needs new
// goldens, the wire format has broken: every deployed cluster would
// re-home every session on upgrade.
func TestOwnerGolden(t *testing.T) {
	peers := []string{"http://10.0.0.1:8377", "http://10.0.0.2:8377", "http://10.0.0.3:8377"}
	golden := []struct{ id, owner string }{
		{"0123456789abcdef0123456789abcdef", "http://10.0.0.1:8377"},
		{"00000000000000000000000000000000", "http://10.0.0.2:8377"},
		{"ffffffffffffffffffffffffffffffff", "http://10.0.0.3:8377"},
		{"a3f1c2d4e5b6978877665544332211aa", "http://10.0.0.2:8377"},
		{"5e8d3b1f0a2c4e6d8b9f7a5c3e1d0b2f", "http://10.0.0.3:8377"},
		{"deadbeefdeadbeefdeadbeefdeadbeef", "http://10.0.0.3:8377"},
		{"cafebabecafebabecafebabecafebabe", "http://10.0.0.1:8377"},
		{"1111111111111111111111111111111f", "http://10.0.0.3:8377"},
	}
	for _, g := range golden {
		if got := Owner(peers, g.id); got != g.owner {
			t.Errorf("Owner(%s) = %s, want %s", g.id, got, g.owner)
		}
	}
	// Placement is order-independent: peers listed differently, same owner.
	shuffled := []string{peers[2], peers[0], peers[1]}
	for _, g := range golden {
		if got := Owner(shuffled, g.id); got != g.owner {
			t.Errorf("Owner(%s) over shuffled peers = %s, want %s", g.id, got, g.owner)
		}
	}
	wantRank := []string{"http://10.0.0.1:8377", "http://10.0.0.3:8377", "http://10.0.0.2:8377"}
	if got := RankOrder(peers, golden[0].id); !reflect.DeepEqual(got, wantRank) {
		t.Errorf("RankOrder = %v, want %v", got, wantRank)
	}
}

// testIDs generates count deterministic hex session IDs.
func testIDs(count int) []string {
	ids := make([]string, count)
	for i := range ids {
		ids[i] = fmt.Sprintf("%032x", uint64(i+1)*2654435761)
	}
	return ids
}

// TestRemoveNodeMovesOnlyItsSessions is the minimal-disruption property the
// rebalance story rests on: dropping one node from the ring moves exactly
// the sessions that node owned (~K/N of them) and re-homes each to its
// rank-1 peer; every other session keeps its owner. Adding the node back
// restores the original placement exactly.
func TestRemoveNodeMovesOnlyItsSessions(t *testing.T) {
	const nPeers, nIDs = 5, 4000
	peers := make([]string, nPeers)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://node-%d:8377", i)
	}
	ids := testIDs(nIDs)
	before := make(map[string]string, nIDs)
	for _, id := range ids {
		before[id] = Owner(peers, id)
	}

	removed := peers[2]
	survivors := append(append([]string(nil), peers[:2]...), peers[3:]...)
	moved := 0
	for _, id := range ids {
		after := Owner(survivors, id)
		if before[id] != removed {
			if after != before[id] {
				t.Fatalf("session %s moved from %s to %s though its owner survived",
					id, before[id], after)
			}
			continue
		}
		moved++
		if after == removed {
			t.Fatalf("session %s still owned by removed node", id)
		}
		if want := RankOrder(peers, id)[1]; after != want {
			t.Fatalf("session %s re-homed to %s, want its rank-1 peer %s", id, after, want)
		}
	}
	// The removed node owned ~K/N sessions (binomial, so allow 5 sigma).
	mean := float64(nIDs) / float64(nPeers)
	sigma := math.Sqrt(mean * (1 - 1/float64(nPeers)))
	if d := math.Abs(float64(moved) - mean); d > 5*sigma {
		t.Fatalf("topology change moved %d sessions, want ~%.0f (±%.0f)", moved, mean, 5*sigma)
	}
	// Restoring the node restores every placement bit-for-bit.
	for _, id := range ids {
		if got := Owner(peers, id); got != before[id] {
			t.Fatalf("placement not restored for %s: %s != %s", id, got, before[id])
		}
	}
}

// TestOwnerBalance checks placement spreads evenly (each node within 10%
// of its fair share over a large sample).
func TestOwnerBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	counts := make(map[string]int)
	ids := testIDs(8000)
	for _, id := range ids {
		counts[Owner(peers, id)]++
	}
	fair := float64(len(ids)) / float64(len(peers))
	for _, p := range peers {
		if d := math.Abs(float64(counts[p]) - fair); d > 0.1*fair {
			t.Fatalf("unbalanced placement: %v (fair share %.0f)", counts, fair)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{"127.0.0.1:8377", "http://127.0.0.1:8377", false},
		{"http://127.0.0.1:8377/", "http://127.0.0.1:8377", false},
		{"https://fusion.example.com", "https://fusion.example.com", false},
		{"  10.0.0.1:1 ", "http://10.0.0.1:1", false},
		{"", "", true},
		{"ftp://x", "", true},
		{"http://", "", true},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("Normalize(%q) = %q, %v; want %q, err=%v", c.in, got, err, c.want, c.wantErr)
		}
	}
	list, err := NormalizeList([]string{"b:2", "http://a:1", "a:1/"})
	if err != nil || !reflect.DeepEqual(list, []string{"http://a:1", "http://b:2"}) {
		t.Fatalf("NormalizeList = %v, %v", list, err)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Self: "", Peers: []string{"a:1"}}); err == nil {
		t.Fatal("New accepted empty self")
	}
	// Self absent from peers is added.
	r, err := New(Config{Self: "c:3", Peers: []string{"a:1", "b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if !reflect.DeepEqual(r.Peers(), want) {
		t.Fatalf("Peers = %v, want %v", r.Peers(), want)
	}
	if r.Self() != "http://c:3" {
		t.Fatalf("Self = %q", r.Self())
	}
}

// fakeProbe is a controllable liveness oracle for ring tests.
type fakeProbe struct {
	mu   sync.Mutex
	dead map[string]bool
}

func (f *fakeProbe) set(addr string, dead bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = make(map[string]bool)
	}
	f.dead[addr] = dead
}

func (f *fakeProbe) probe(_ context.Context, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[addr] {
		return errors.New("fake: down")
	}
	return nil
}

// TestRingFailoverAndRecovery drives a death and a revival through the
// prober and checks owner movement, epoch advance, and OnChange firing.
func TestRingFailoverAndRecovery(t *testing.T) {
	fp := &fakeProbe{}
	changes := make(chan struct{}, 16)
	r, err := New(Config{
		Self:          "http://a:1",
		Peers:         []string{"http://a:1", "http://b:2", "http://c:3"},
		ProbeInterval: 5 * time.Millisecond,
		SuspectAfter:  2,
		Probe:         fp.probe,
		OnChange:      func() { changes <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	// Find an ID owned by b so the failover is observable from a.
	var id string
	for _, cand := range testIDs(64) {
		if r.Owner(cand) == "http://b:2" {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no test ID owned by b")
	}

	epoch0 := r.Epoch()
	fp.set("http://b:2", true)
	select {
	case <-changes:
	case <-time.After(2 * time.Second):
		t.Fatal("peer death not detected")
	}
	if r.Epoch() == epoch0 {
		t.Fatal("epoch did not advance on death")
	}
	if got := r.Owner(id); got == "http://b:2" {
		t.Fatal("dead peer still owns the session")
	}
	if want := RankOrder(r.Peers(), id)[1]; r.Owner(id) != want {
		t.Fatalf("failover owner = %s, want rank-1 peer %s", r.Owner(id), want)
	}
	if len(r.Alive()) != 2 {
		t.Fatalf("Alive = %v", r.Alive())
	}

	// One successful probe revives the peer and restores placement.
	fp.set("http://b:2", false)
	select {
	case <-changes:
	case <-time.After(2 * time.Second):
		t.Fatal("peer revival not detected")
	}
	if got := r.Owner(id); got != "http://b:2" {
		t.Fatalf("placement not restored after revival: owner = %s", got)
	}
}

// TestRingSingleNode checks the degenerate ring: everything owned by self,
// Start a no-op.
func TestRingSingleNode(t *testing.T) {
	r, err := New(Config{Self: "a:1", Peers: []string{"a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	r.Start() // must not spin up a prober
	defer r.Stop()
	for _, id := range testIDs(8) {
		if !r.Owns(id) {
			t.Fatalf("single node does not own %s", id)
		}
	}
}
