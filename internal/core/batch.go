package core

import (
	"errors"
	"sync"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
	"crowdfusion/internal/parallel"
)

// ErrNilBatchItem is returned for a batch item missing its selector or
// posterior.
var ErrNilBatchItem = errors.New("core: batch item missing selector or joint")

// ChannelPlan is the shared, read-mostly part of a selection configuration:
// everything that depends only on the (pc, k) channel setup and fact
// counts, never on any one session's posterior. A BatchSelector builds one
// plan per (pc, k) group and every member's greedy pass reads it — the BSC
// noise floor H(pc), the butterfly stage plan (k stages, cache-blocked
// below butterflyBlockBits), and the per-Hamming-distance answer-channel
// weight tables, memoized per fact count. Every plan value is a pure
// function of its inputs, so planned and unplanned selections are
// bit-identical; sharing amortizes setup, never changes arithmetic.
type ChannelPlan struct {
	pc     float64
	k      int
	stages int     // butterfly stages an exact k-task evaluation runs
	floor  float64 // info.Binary(pc): per-task crowd-noise entropy

	mu      sync.Mutex
	weights map[int][]float64 // bscWeights(n, pc) memoized by fact count n
}

func newChannelPlan(pc float64, k int) *ChannelPlan {
	return &ChannelPlan{
		pc:      pc,
		k:       k,
		stages:  k,
		floor:   info.Binary(pc),
		weights: make(map[int][]float64),
	}
}

// noiseFloor returns the crowd-noise entropy H(pc). Nil-safe: the
// unbatched path computes it inline from pc.
func (p *ChannelPlan) noiseFloor(pc float64) float64 {
	if p == nil {
		return info.Binary(pc)
	}
	return p.floor
}

// distWeights returns the per-disagreement-count channel weight table
// (bscWeights) for n facts, memoized across the plan's batch group.
// Nil-safe: the unbatched path computes the table inline.
func (p *ChannelPlan) distWeights(n int, pc float64) []float64 {
	if p == nil {
		return bscWeights(n, pc)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.weights[n]
	if !ok {
		w = bscWeights(n, pc)
		p.weights[n] = w
	}
	return w
}

// BatchItem is one session's pending selection: the greedy configuration
// to run, the session's posterior, and its (k, pc) channel parameters.
type BatchItem struct {
	Selector *GreedySelector
	Joint    *dist.Joint
	K        int
	Pc       float64
}

// BatchResult is the outcome of one BatchItem: exactly the tasks or error
// the item's own GreedySelector.Select call would have produced.
type BatchResult struct {
	Tasks []int
	Err   error
}

// BatchSelector runs many sessions' selections as one batch. Items are
// grouped by their (pc, k) configuration; each group's channel setup is
// computed once into a ChannelPlan; and the per-session greedy passes run
// over the bounded worker pool (internal/parallel), which degrades to an
// inline loop when the batch is nested inside another parallel region.
//
// Per item the result is bit-identical to calling that item's
// GreedySelector.Select directly — the differential suite in batch_test.go
// asserts this across pc/k mixes and under the race detector. A zero-value
// BatchSelector is ready to use.
type BatchSelector struct {
	// Workers bounds the parallelism across items (0 = all CPUs).
	Workers int
}

// NewBatchSelector returns a batch selector using all CPUs.
func NewBatchSelector() *BatchSelector { return &BatchSelector{} }

// planKey groups batch items that can share one ChannelPlan.
type planKey struct {
	pc float64
	k  int
}

// SelectBatch selects for every item, returning results in item order.
// Item errors land in the corresponding result slot; the batch itself
// never fails partially.
func (b *BatchSelector) SelectBatch(items []BatchItem) []BatchResult {
	results := make([]BatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	plans := make(map[planKey]*ChannelPlan, 1)
	for _, it := range items {
		key := planKey{pc: it.Pc, k: it.K}
		if _, ok := plans[key]; !ok {
			plans[key] = newChannelPlan(it.Pc, it.K)
		}
	}
	w := parallel.Workers(b.Workers, len(items))
	parallel.For(w, len(items), func(i int) {
		it := items[i]
		if it.Selector == nil || it.Joint == nil {
			results[i] = BatchResult{Err: ErrNilBatchItem}
			return
		}
		plan := plans[planKey{pc: it.Pc, k: it.K}]
		tasks, err := it.Selector.selectPlan(it.Joint, it.K, it.Pc, plan)
		results[i] = BatchResult{Tasks: tasks, Err: err}
	})
	return results
}
