package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// Differential suite for batched cross-session selection and the float32
// stage variant. The batch contract is bit-identity: every member's result
// must be exactly what its own GreedySelector.Select call returns. The
// float32 contract is weaker by design — argmax stability, not
// bit-identity — measured against the float64 path and the reference
// oracles.

// batchItems builds a mixed workload: random joints spread over a few
// (pc, k) groups and all four greedy configurations.
func batchItems(tb testing.TB, rng *rand.Rand, count int) []BatchItem {
	tb.Helper()
	selectors := []*GreedySelector{
		NewGreedy(), NewGreedyPrune(), NewGreedyPre(), NewGreedyPrunePre(),
	}
	pcs := []float64{0.6, 0.75, 0.9}
	ks := []int{1, 2, 3, 5}
	items := make([]BatchItem, 0, count)
	for i := 0; i < count; i++ {
		n := 4 + rng.Intn(9)
		j := randomSparseJoint(tb, rng, n, 1+rng.Intn(1<<uint(min(n, 9))))
		items = append(items, BatchItem{
			Selector: selectors[rng.Intn(len(selectors))],
			Joint:    j,
			K:        ks[rng.Intn(len(ks))],
			Pc:       pcs[rng.Intn(len(pcs))],
		})
	}
	return items
}

// TestBatchSelectorBitIdentical: at any worker count, every batch member's
// tasks equal its own sequential GreedySelector.Select — exactly, not
// within tolerance. CI runs this under -race, which also checks that plan
// sharing across concurrent members is sound.
func TestBatchSelectorBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	items := batchItems(t, rng, 40)
	want := make([][]int, len(items))
	for i, it := range items {
		var err error
		want[i], err = it.Selector.Select(it.Joint, it.K, it.Pc)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 3, 0} {
		b := &BatchSelector{Workers: workers}
		results := b.SelectBatch(items)
		if len(results) != len(items) {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(results), len(items))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, r.Err)
			}
			if !reflect.DeepEqual(r.Tasks, want[i]) {
				t.Fatalf("workers=%d item %d (%s k=%d pc=%v): batched %v != sequential %v",
					workers, i, items[i].Selector.Name(), items[i].K, items[i].Pc,
					r.Tasks, want[i])
			}
		}
	}
}

// TestBatchSelectorConcurrent: many goroutines submitting overlapping
// batches (shared joints, shared selectors) stay bit-identical — the
// -race proof that batching introduces no shared mutable state.
func TestBatchSelectorConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	items := batchItems(t, rng, 12)
	want := make([][]int, len(items))
	for i, it := range items {
		var err error
		want[i], err = it.Selector.Select(it.Joint, it.K, it.Pc)
		if err != nil {
			t.Fatal(err)
		}
	}
	b := NewBatchSelector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, r := range b.SelectBatch(items) {
					if r.Err != nil {
						t.Errorf("item %d: %v", i, r.Err)
						return
					}
					if !reflect.DeepEqual(r.Tasks, want[i]) {
						t.Errorf("item %d: %v != %v", i, r.Tasks, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestBatchSelectorErrors: per-item failures (bad pc, missing selector or
// joint) land in their own result slot without disturbing neighbours.
func TestBatchSelectorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	j := randomSparseJoint(t, rng, 6, 20)
	b := NewBatchSelector()
	items := []BatchItem{
		{Selector: NewGreedy(), Joint: j, K: 2, Pc: 0.8},
		{Selector: NewGreedy(), Joint: j, K: 2, Pc: 0.3}, // invalid accuracy
		{Selector: nil, Joint: j, K: 2, Pc: 0.8},         // missing selector
		{Selector: NewGreedy(), Joint: nil, K: 2, Pc: 0.8},
		{Selector: NewGreedyPrunePre(), Joint: j, K: 3, Pc: 0.8},
	}
	results := b.SelectBatch(items)
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("healthy items failed: %v, %v", results[0].Err, results[4].Err)
	}
	if !errors.Is(results[1].Err, ErrBadAccuracy) {
		t.Errorf("bad pc: err = %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrNilBatchItem) || !errors.Is(results[3].Err, ErrNilBatchItem) {
		t.Errorf("nil item errs = %v, %v", results[2].Err, results[3].Err)
	}
	if got := b.SelectBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

// TestChannelPlanValues: the plan's cached values are bitwise what the
// unbatched path computes inline — the property the bit-identity of
// selectPlan rests on.
func TestChannelPlanValues(t *testing.T) {
	for _, pc := range []float64{0.5, 0.62, 0.8, 0.97, 1} {
		p := newChannelPlan(pc, 4)
		if got, want := p.noiseFloor(pc), (*ChannelPlan)(nil).noiseFloor(pc); got != want {
			t.Errorf("pc=%v: plan floor %v != inline %v", pc, got, want)
		}
		for _, n := range []int{1, 7, 12} {
			got := p.distWeights(n, pc)
			want := bscWeights(n, pc)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pc=%v n=%d: plan weights differ from inline", pc, n)
			}
			// Memoized: the same slice comes back.
			if again := p.distWeights(n, pc); &again[0] != &got[0] {
				t.Errorf("pc=%v n=%d: weights not memoized", pc, n)
			}
		}
	}
}

// float32Band is the entropy noise the float32 stages may introduce: the
// admissibility band for argmax decisions. Empirically the divergence sits
// around 1e-6 bits; the band is two orders looser so the test fails on a
// real precision bug, not on noise.
const float32Band = 1e-4

// TestFloat32StageAccuracy: float32 stage entropies stay within the band
// of the float64 reference oracle over randomized joints, at every depth
// of a simulated selection.
func TestFloat32StageAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(8)
		j := randomSparseJoint(t, rng, n, 1+rng.Intn(1<<uint(min(n, 9))))
		pc := []float64{0.5, 0.7, 0.9, 1}[rng.Intn(4)]
		c := newPatternCache(j, pc, true)
		var selected []int
		inSet := make([]bool, n)
		for depth := 0; depth < min(n, 5); depth++ {
			for f := 0; f < n; f++ {
				if inSet[f] {
					continue
				}
				got := c.entropyWith(f)
				want, err := taskEntropyRef(j, append(append([]int(nil), selected...), f), pc)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > float32Band {
					t.Fatalf("depth=%d f=%d pc=%v: f32 %v vs oracle %v (|Δ|=%.2g)",
						depth, f, pc, got, want, math.Abs(got-want))
				}
			}
			f := rng.Intn(n)
			for inSet[f] {
				f = rng.Intn(n)
			}
			c.pick(f)
			selected = append(selected, f)
			inSet[f] = true
		}
		c.release()
	}
}

// TestFloat32ArgmaxStability: the property that decides whether float32
// stages are admissible for selection ordering. At every depth of a greedy
// walk over randomized joints, whenever the float64 evaluation separates
// the best candidate from the runner-up by more than the float32 noise
// band, the float32 evaluation must rank the same candidate first.
// Within-band near-ties may flip — by definition of the band, either
// choice loses at most float32Band bits of entropy, which is why the
// variant ships flag-gated rather than default-on.
func TestFloat32ArgmaxStability(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	checked, flips := 0, 0
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(9)
		j := randomSparseJoint(t, rng, n, 1+rng.Intn(1<<uint(min(n, 10))))
		pc := []float64{0.55, 0.7, 0.85, 0.95}[rng.Intn(4)]
		c64 := newPatternCache(j, pc, false)
		c32 := newPatternCache(j, pc, true)
		inSet := make([]bool, n)
		for depth := 0; depth < min(n, 5); depth++ {
			best64, second64 := -1, math.Inf(-1)
			var best64H float64 = math.Inf(-1)
			best32 := -1
			best32H := math.Inf(-1)
			for f := 0; f < n; f++ {
				if inSet[f] {
					continue
				}
				h64 := c64.entropyWith(f)
				h32 := c32.entropyWith(f)
				if h64 > best64H {
					second64 = best64H
					best64H, best64 = h64, f
				} else if h64 > second64 {
					second64 = h64
				}
				if h32 > best32H {
					best32H, best32 = h32, f
				}
			}
			if best64 < 0 {
				break
			}
			margin := best64H - second64
			if margin > float32Band {
				checked++
				if best32 != best64 {
					t.Fatalf("trial=%d depth=%d pc=%v: f32 argmax %d != f64 argmax %d with margin %.3g",
						trial, depth, pc, best32, best64, margin)
				}
			} else if best32 != best64 {
				flips++ // near-tie: either choice is within the band
			}
			// Advance both caches along the float64 choice so the walk
			// stays comparable.
			c64.pick(best64)
			c32.pick(best64)
			inSet[best64] = true
		}
		c64.release()
		c32.release()
	}
	if checked == 0 {
		t.Fatal("property test never saw a clear margin; widen the workload")
	}
	t.Logf("argmax checked on %d clear margins, %d near-tie flips tolerated", checked, flips)
}

// TestFloat32SelectionQuality: full flag-gated selections lose at most the
// noise band of exact (float64-measured) entropy versus the float64
// selection — near-tie flips may change the set, never its quality.
func TestFloat32SelectionQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	sel64 := NewGreedy()
	sel32 := &GreedySelector{Options: GreedyOptions{Float32: true}}
	if sel32.Name() != "Approx+F32" {
		t.Fatalf("Name() = %q", sel32.Name())
	}
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(9)
		j := randomSparseJoint(t, rng, n, 1+rng.Intn(1<<uint(min(n, 9))))
		k := 1 + rng.Intn(min(n, 5))
		pc := []float64{0.6, 0.8, 0.95}[rng.Intn(3)]
		got32, err := sel32.Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		got64, err := sel64.Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(got32, got64) {
			continue
		}
		h32, err := TaskEntropy(j, got32, pc)
		if err != nil {
			t.Fatal(err)
		}
		h64, err := TaskEntropy(j, got64, pc)
		if err != nil {
			t.Fatal(err)
		}
		// One flipped near-tie per depth can each cost at most the band.
		if h64-h32 > float32Band*float64(k) {
			t.Fatalf("trial %d: f32 selection %v loses %.3g bits vs %v",
				trial, got32, h64-h32, got64)
		}
	}
}

// TestButterfly32MatchesButterfly64: the float32 stage kernel agrees with
// the float64 butterfly (and hence the reference oracle, see
// TestButterflyMatchesReference) within float32 precision, including the
// cache-blocked split on vectors larger than one block.
func TestButterfly32MatchesButterfly64(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, k := range []int{1, 3, 8, 13, 14} { // 13, 14 exceed butterflyBlockBits
		d64 := make([]float64, 1<<uint(k))
		d32 := make([]float32, 1<<uint(k))
		for i := range d64 {
			v := rng.Float64()
			d64[i] = v
			d32[i] = float32(v)
		}
		pc := 0.5 + rng.Float64()/2
		bscButterfly(d64, k, pc)
		bscButterfly32(d32, k, float32(pc))
		for i := range d64 {
			if math.Abs(float64(d32[i])-d64[i]) > 1e-3 {
				t.Fatalf("k=%d i=%d: f32 %v vs f64 %v", k, i, d32[i], d64[i])
			}
		}
	}
}

// TestBlockedButterflyBitIdentical: the cache-blocked butterfly is the
// same arithmetic as the naive stage-by-stage sweep, bit for bit, above
// and below the block size.
func TestBlockedButterflyBitIdentical(t *testing.T) {
	naive := func(dense []float64, k int, pc float64) {
		qc := 1 - pc
		for b := 0; b < k; b++ {
			step := 1 << uint(b)
			for base := 0; base < len(dense); base += step << 1 {
				for i := base; i < base+step; i++ {
					lo, hi := dense[i], dense[i+step]
					dense[i] = pc*lo + qc*hi
					dense[i+step] = qc*lo + pc*hi
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(103))
	for _, k := range []int{0, 1, 5, 11, 12, 13, 15} {
		a := make([]float64, 1<<uint(k))
		b := make([]float64, len(a))
		for i := range a {
			a[i] = rng.Float64()
			b[i] = a[i]
		}
		pc := 0.5 + rng.Float64()/2
		bscButterfly(a, k, pc)
		naive(b, k, pc)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("k=%d: blocked and naive butterflies diverge at %d: %v != %v",
					k, i, a[i], b[i])
			}
		}
	}
}

// TestBatchSelectorSharedJoint ensures items sharing one immutable joint
// (the common case: one session selected twice concurrently) are safe and
// identical.
func TestBatchSelectorSharedJoint(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	j := randomSparseJoint(t, rng, 10, 200)
	sel := NewGreedyPrunePre()
	items := make([]BatchItem, 6)
	for i := range items {
		items[i] = BatchItem{Selector: sel, Joint: j, K: 3, Pc: 0.8}
	}
	want, err := sel.Select(j, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range NewBatchSelector().SelectBatch(items) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !reflect.DeepEqual(r.Tasks, want) {
			t.Fatalf("item %d: %v != %v", i, r.Tasks, want)
		}
	}
}
