package core
