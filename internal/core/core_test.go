package core

import (
	"math"
	"math/rand"
	"testing"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// paperJoint rebuilds the running-example joint distribution of Table II,
// with fact indices 0..3 standing for f1..f4.
func paperJoint(tb testing.TB) *dist.Joint {
	tb.Helper()
	rows := []struct {
		judgments string
		p         float64
	}{
		{"FFFF", 0.03}, {"FFFT", 0.06}, {"FFTF", 0.07}, {"FFTT", 0.04},
		{"FTFF", 0.09}, {"FTFT", 0.01}, {"FTTF", 0.11}, {"FTTT", 0.09},
		{"TFFF", 0.04}, {"TFFT", 0.04}, {"TFTF", 0.04}, {"TFTT", 0.05},
		{"TTFF", 0.06}, {"TTFT", 0.09}, {"TTTF", 0.07}, {"TTTT", 0.11},
	}
	worlds := make([]dist.World, len(rows))
	probs := make([]float64, len(rows))
	for i, r := range rows {
		var w dist.World
		for fi, c := range r.judgments {
			if c == 'T' {
				w = w.Set(fi, true)
			}
		}
		worlds[i] = w
		probs[i] = r.p
	}
	j, err := dist.New(4, worlds, probs)
	if err != nil {
		tb.Fatalf("building paper joint: %v", err)
	}
	return j
}

// bruteTaskEntropy computes H(T) through a completely separate code path:
// direct enumeration of all answer sets with Equation 2 via
// dist.AnswerSetProb.
func bruteTaskEntropy(tb testing.TB, j *dist.Joint, tasks []int, pc float64) float64 {
	tb.Helper()
	k := len(tasks)
	var h float64
	for bitsPat := 0; bitsPat < 1<<uint(k); bitsPat++ {
		answers := make([]bool, k)
		for i := 0; i < k; i++ {
			answers[i] = bitsPat&(1<<uint(i)) != 0
		}
		p, err := j.AnswerSetProb(tasks, answers, pc)
		if err != nil {
			tb.Fatal(err)
		}
		h -= info.PLogP(p)
	}
	return h
}

func randomJoint(rng *rand.Rand, n, size int) *dist.Joint {
	worlds := make([]dist.World, size)
	probs := make([]float64, size)
	for i := range worlds {
		worlds[i] = dist.World(rng.Int63n(1 << uint(n)))
		probs[i] = rng.Float64() + 1e-6
	}
	j, err := dist.New(n, worlds, probs)
	if err != nil {
		panic(err)
	}
	return j
}

// --- Golden tests against the paper's running example -----------------

// TestPaperTable3 pins the fact entropies and task entropies of Table III
// for every 2-subset at Pc = 0.8.
//
// Note on labels: the paper's Table III is internally consistent with its
// Table II only under the reversed fact labelling (f1<->f4, f2<->f3); the
// value sets match exactly. The expectations below use the Table II bit
// convention, with the paper's printed row noted alongside.
func TestPaperTable3(t *testing.T) {
	j := paperJoint(t)
	tests := []struct {
		name      string
		tasks     []int
		factH     float64 // H({f_i | f_i in T})
		taskH     float64 // H(T) at Pc = 0.8
		paperRow  string
		tolerance float64
	}{
		{"f1,f2", []int{0, 1}, 1.948, 1.982, "printed as {f3,f4}", 1e-3},
		{"f1,f3", []int{0, 2}, 1.977, 1.993, "printed as {f2,f4}", 1e-3},
		{"f1,f4", []int{0, 3}, 1.976, 1.997, "printed as {f1,f4}", 1e-3},
		{"f2,f3", []int{1, 2}, 1.929, 1.975, "printed as {f2,f3}", 1e-3},
		{"f2,f4", []int{1, 3}, 1.949, 1.982, "printed as {f1,f3}", 1e-3},
		{"f3,f4", []int{2, 3}, 1.981, 1.993, "printed as {f1,f2}", 1e-3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fh, err := j.FactEntropy(tt.tasks)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fh-tt.factH) > tt.tolerance {
				t.Errorf("fact entropy = %.4f, want %.3f (%s)", fh, tt.factH, tt.paperRow)
			}
			th, err := TaskEntropy(j, tt.tasks, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(th-tt.taskH) > tt.tolerance {
				t.Errorf("task entropy = %.4f, want %.3f (%s)", th, tt.taskH, tt.paperRow)
			}
			// Cross-check the fast path against direct Equation 2
			// enumeration.
			if brute := bruteTaskEntropy(t, j, tt.tasks, 0.8); math.Abs(th-brute) > 1e-9 {
				t.Errorf("TaskEntropy = %v disagrees with brute force %v", th, brute)
			}
		})
	}
}

// TestPaperTable4 pins the answer joint distribution of Table IV: asking
// all four facts at Pc = 0.8. On the dense support the preprocessing's
// answer joint is exact.
func TestPaperTable4(t *testing.T) {
	j := paperJoint(t)
	pre, err := Preprocess(j, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper rows a1..a16 in the same F/T enumeration as Table II.
	want := map[string]float64{
		"FFFF": 0.049, "FFFT": 0.050, "FFTF": 0.063, "FFTT": 0.055,
		"FTFF": 0.071, "FTFT": 0.049, "FTTF": 0.087, "FTTT": 0.077,
		"TFFF": 0.047, "TFFT": 0.051, "TFTF": 0.052, "TFTT": 0.056,
		"TTFF": 0.065, "TTFT": 0.071, "TTTF": 0.073, "TTTT": 0.085,
	}
	var total float64
	for r, w := range pre.Joint().Worlds() {
		key := ""
		for i := 0; i < 4; i++ {
			if w.Has(i) {
				key += "T"
			} else {
				key += "F"
			}
		}
		got := pre.AnswerProb(r)
		if math.Abs(got-want[key]) > 1e-3 {
			t.Errorf("P(a=%s) = %.4f, want %.3f", key, got, want[key])
		}
		total += got
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("answer joint sums to %v on a dense support, want 1", total)
	}
	if math.Abs(pre.CoveredMass()-1) > 1e-9 {
		t.Errorf("CoveredMass = %v on dense support", pre.CoveredMass())
	}
	// The exact value of a1 from the paper's own arithmetic.
	if a1 := pre.AnswerProb(0); math.Abs(a1-0.048688) > 1e-9 {
		t.Errorf("P(a1) = %v, want 0.048688", a1)
	}
}

// TestPaperGreedyTrace reproduces the Section III-D walkthrough: with
// k = 2 and Pc = 0.8 the greedy algorithm selects f1 first (its answer
// entropy is exactly 1 bit) and then f4, ending with H(T) = 1.997.
func TestPaperGreedyTrace(t *testing.T) {
	j := paperJoint(t)

	h1, err := TaskEntropy(j, []int{0}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1-1.0) > 1e-12 {
		t.Errorf("H({f1}) = %v, want exactly 1 (P(f1) = 0.5)", h1)
	}

	for _, sel := range []Selector{
		NewGreedy(), NewGreedyPrune(), NewGreedyPre(), NewGreedyPrunePre(), OptSelector{},
	} {
		got, err := sel.Select(j, 2, 0.8)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if len(got) != 2 || got[0] != 0 || got[1] != 3 {
			t.Errorf("%s selected %v, want [0 3] (f1 and f4)", sel.Name(), got)
		}
		h, err := TaskEntropy(j, got, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-1.997) > 1e-3 {
			t.Errorf("%s: H(selection) = %.4f, want 1.997", sel.Name(), h)
		}
	}
}

// TestPaperPcOneSpecialCase: with a perfect crowd the best 2-subset is
// {f1, f2} under the paper's printed labels — in the Table II bit
// convention, the pair with the highest fact entropy, {f3, f4}.
func TestPaperPcOneSpecialCase(t *testing.T) {
	j := paperJoint(t)
	got, err := (OptSelector{}).Select(j, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("OPT at Pc=1 selected %v, want [2 3] (highest fact entropy)", got)
	}
	// And TaskEntropy degenerates to fact entropy.
	th, err := TaskEntropy(j, got, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := j.FactEntropy(got)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-fh) > 1e-12 {
		t.Errorf("H(T) at Pc=1 = %v != fact entropy %v", th, fh)
	}
}

// --- TaskEntropy unit and property tests --------------------------------

func TestTaskEntropyValidation(t *testing.T) {
	j := paperJoint(t)
	if _, err := TaskEntropy(j, []int{0}, 0.4); err != ErrBadAccuracy {
		t.Errorf("pc=0.4 err = %v", err)
	}
	if _, err := TaskEntropy(j, []int{0, 0}, 0.8); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := TaskEntropy(j, []int{7}, 0.8); err == nil {
		t.Error("out-of-range task accepted")
	}
	big := make([]int, MaxTasksPerRound+1)
	for i := range big {
		big[i] = i
	}
	if _, err := TaskEntropy(j, big, 0.8); err != ErrTooManyTasks {
		t.Errorf("oversized task set err = %v", err)
	}
	h, err := TaskEntropy(j, nil, 0.8)
	if err != nil || h != 0 {
		t.Errorf("H(empty) = %v, %v; want 0, nil", h, err)
	}
}

func TestTaskEntropyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(5)
		j := randomJoint(rng, n, 1+rng.Intn(12))
		k := 1 + rng.Intn(3)
		tasks := rng.Perm(n)[:k]
		pc := 0.5 + rng.Float64()*0.5
		got, err := TaskEntropy(j, tasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTaskEntropy(t, j, tasks, pc)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("TaskEntropy=%v brute=%v (n=%d tasks=%v pc=%v)", got, want, n, tasks, pc)
		}
	}
}

// TestTaskEntropyMonotone: H(T) never decreases when a task is added.
func TestTaskEntropyMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(4)
		j := randomJoint(rng, n, 1+rng.Intn(10))
		pc := 0.5 + rng.Float64()*0.5
		perm := rng.Perm(n)
		var h float64
		for k := 1; k <= 4 && k <= n; k++ {
			hk, err := TaskEntropy(j, perm[:k], pc)
			if err != nil {
				t.Fatal(err)
			}
			if hk < h-1e-9 {
				t.Fatalf("H(T) decreased from %v to %v adding task %d", h, hk, perm[k-1])
			}
			h = hk
		}
	}
}

// TestTaskEntropySubmodular: the marginal gain of a fixed task shrinks as
// the base set grows — the property underpinning the (1-1/e) guarantee.
func TestTaskEntropySubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(3)
		j := randomJoint(rng, n, 1+rng.Intn(10))
		pc := 0.5 + rng.Float64()*0.5
		perm := rng.Perm(n)
		small := perm[:1]
		large := perm[:3]
		f := perm[4]
		hSmall, err := TaskEntropy(j, small, pc)
		if err != nil {
			t.Fatal(err)
		}
		hSmallF, err := TaskEntropy(j, append(append([]int(nil), small...), f), pc)
		if err != nil {
			t.Fatal(err)
		}
		hLarge, err := TaskEntropy(j, large, pc)
		if err != nil {
			t.Fatal(err)
		}
		hLargeF, err := TaskEntropy(j, append(append([]int(nil), large...), f), pc)
		if err != nil {
			t.Fatal(err)
		}
		gainSmall := hSmallF - hSmall
		gainLarge := hLargeF - hLarge
		if gainLarge > gainSmall+1e-9 {
			t.Fatalf("submodularity violated: gain %v (|T|=1) < %v (|T|=3)", gainSmall, gainLarge)
		}
	}
}

func TestUtilityGain(t *testing.T) {
	j := paperJoint(t)
	// ΔQ = H(T) - k·H(Crowd): for {f1} at 0.8, 1.0 - 0.72193 = 0.27807.
	g, err := UtilityGain(j, []int{0}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-(1.0-0.7219280948873623)) > 1e-12 {
		t.Errorf("UtilityGain = %v", g)
	}
	// A perfect crowd has no noise cost.
	g, err = UtilityGain(j, []int{0}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1.0) > 1e-12 {
		t.Errorf("UtilityGain at Pc=1 = %v, want 1", g)
	}
}

// --- Preprocessing tests -------------------------------------------------

// TestPreprocessedExactOnDense: on a full-cube support, Algorithm 2's
// marginalization is exact — the answer-noise on unselected facts sums out.
func TestPreprocessedExactOnDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		probs := make([]float64, 1<<uint(n))
		for i := range probs {
			probs[i] = rng.Float64() + 1e-6
		}
		j, err := dist.Dense(n, probs)
		if err != nil {
			t.Fatal(err)
		}
		pc := 0.5 + rng.Float64()*0.5
		pre, err := Preprocess(j, pc)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(n)
		tasks := rng.Perm(n)[:k]
		exact, err := TaskEntropy(j, tasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := pre.TaskEntropy(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-approx) > 1e-9 {
			t.Fatalf("dense preprocess mismatch: exact %v approx %v (n=%d tasks=%v)",
				exact, approx, n, tasks)
		}
	}
}

func TestPreprocessedSparseApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		n := 6 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(6))
		pc := 0.6 + rng.Float64()*0.4
		pre, err := Preprocess(j, pc)
		if err != nil {
			t.Fatal(err)
		}
		if cm := pre.CoveredMass(); cm <= 0 || cm > 1+1e-9 {
			t.Fatalf("CoveredMass = %v outside (0, 1]", cm)
		}
		tasks := rng.Perm(n)[:2]
		h, err := pre.TaskEntropy(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if h < 0 || h > 2+1e-9 {
			t.Fatalf("approximate H(T) = %v outside [0, 2]", h)
		}
	}
}

func TestPreprocessValidation(t *testing.T) {
	j := paperJoint(t)
	if _, err := Preprocess(j, 0.2); err != ErrBadAccuracy {
		t.Errorf("Preprocess(pc=0.2) err = %v", err)
	}
	pre, err := Preprocess(j, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Pc() != 0.8 {
		t.Errorf("Pc() = %v", pre.Pc())
	}
	if pre.Joint() != j {
		t.Error("Joint() does not round-trip")
	}
	if h, err := pre.TaskEntropy(nil); err != nil || h != 0 {
		t.Errorf("empty task set: %v, %v", h, err)
	}
	if _, err := pre.TaskEntropy([]int{11}); err == nil {
		t.Error("out-of-range task accepted")
	}
}

// TestPartitionRefinement: the incremental partition used by the greedy
// selector gives the same entropies as direct marginalization.
func TestPartitionRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(10))
		pre, err := Preprocess(j, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		s := getScratch()
		part := newPartition(j.SupportSize(), s)
		var tasks []int
		for _, f := range rng.Perm(n)[:3] {
			viaIncremental := pre.entropyAfter(s, &part, f)
			tasks = append(tasks, f)
			viaDirect, err := pre.TaskEntropy(tasks)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(viaIncremental-viaDirect) > 1e-9 {
				t.Fatalf("incremental %v != direct %v at tasks %v",
					viaIncremental, viaDirect, tasks)
			}
			part.refine(j.Worlds(), f)
		}
		putScratch(s)
	}
}

// --- Selector tests ------------------------------------------------------

func TestSelectorValidation(t *testing.T) {
	j := paperJoint(t)
	sels := []Selector{OptSelector{}, NewGreedy(), NewGreedyPrunePre(), NewRandom(1)}
	for _, s := range sels {
		if _, err := s.Select(j, 0, 0.8); err != ErrNoTasks {
			t.Errorf("%s: k=0 err = %v", s.Name(), err)
		}
		if _, err := s.Select(j, 1, 0.3); err != ErrBadAccuracy {
			t.Errorf("%s: pc=0.3 err = %v", s.Name(), err)
		}
		// k > n is clamped, not an error.
		got, err := s.Select(j, 10, 0.8)
		if err != nil {
			t.Errorf("%s: k>n: %v", s.Name(), err)
		}
		if len(got) > 4 {
			t.Errorf("%s: selected %d tasks from 4 facts", s.Name(), len(got))
		}
	}
}

func TestSelectorNames(t *testing.T) {
	want := map[Selector]string{
		OptSelector{}:       "OPT",
		NewGreedy():         "Approx",
		NewGreedyPrune():    "Approx+Prune",
		NewGreedyPre():      "Approx+Pre",
		NewGreedyPrunePre(): "Approx+Prune+Pre",
		NewRandom(1):        "Random",
	}
	for s, n := range want {
		if s.Name() != n {
			t.Errorf("Name() = %q, want %q", s.Name(), n)
		}
	}
}

// TestGreedyApproximationGuarantee: on random instances the greedy task
// entropy must reach at least (1 - 1/e) of OPT's. (Empirically it is almost
// always equal.)
func TestGreedyApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ratio := 1 - 1/math.E
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(3)
		j := randomJoint(rng, n, 2+rng.Intn(10))
		pc := 0.5 + rng.Float64()*0.5
		k := 2 + rng.Intn(2)

		opt, err := (OptSelector{}).Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hOpt, err := TaskEntropy(j, opt, pc)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := NewGreedy().Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hGreedy, err := TaskEntropy(j, greedy, pc)
		if err != nil {
			t.Fatal(err)
		}
		if len(greedy) < k {
			// Greedy stopped early (K* < k): legitimate only when no
			// remaining task nets positive utility beyond crowd noise.
			for f := 0; f < n; f++ {
				already := false
				for _, s := range greedy {
					if s == f {
						already = true
					}
				}
				if already {
					continue
				}
				hWith, err := TaskEntropy(j, append(append([]int(nil), greedy...), f), pc)
				if err != nil {
					t.Fatal(err)
				}
				if hWith-hGreedy-info.Binary(pc) > 1e-9 {
					t.Fatalf("greedy stopped early but fact %d still nets %v",
						f, hWith-hGreedy-info.Binary(pc))
				}
			}
			continue
		}
		if hGreedy < ratio*hOpt-1e-9 {
			t.Fatalf("greedy %v below (1-1/e)*OPT %v (n=%d k=%d)", hGreedy, ratio*hOpt, n, k)
		}
		if hGreedy > hOpt+1e-9 {
			t.Fatalf("greedy %v exceeds OPT %v — OPT is broken", hGreedy, hOpt)
		}
	}
}

// TestGreedyVariantsAgree: preprocessing is an evaluation accelerator — on
// dense supports (where it is exact) all greedy variants must select task
// sets of identical quality; the submodularity-based prune must never
// change the result.
func TestGreedyVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		probs := make([]float64, 1<<uint(n))
		for i := range probs {
			probs[i] = rng.Float64() + 1e-6
		}
		j, err := dist.Dense(n, probs)
		if err != nil {
			t.Fatal(err)
		}
		pc := 0.5 + rng.Float64()*0.5
		k := 1 + rng.Intn(n)

		base, err := NewGreedy().Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hBase, err := TaskEntropy(j, base, pc)
		if err != nil {
			t.Fatal(err)
		}
		variants := []*GreedySelector{
			NewGreedyPre(),
			NewGreedyPrune(),
			NewGreedyPrunePre(),
		}
		for _, v := range variants {
			got, err := v.Select(j, k, pc)
			if err != nil {
				t.Fatalf("%s: %v", v.Name(), err)
			}
			hGot, err := TaskEntropy(j, got, pc)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(hGot-hBase) > 1e-9 {
				t.Errorf("%s achieved H=%v, plain greedy H=%v (n=%d k=%d trial=%d)",
					v.Name(), hGot, hBase, n, k, trial)
			}
		}
	}
}

// TestLazyPruneMatchesGreedyOnSparse: the sound prune must match plain
// greedy's achieved entropy on sparse supports too, where the paper's
// literal bound demonstrably does not.
func TestLazyPruneMatchesGreedyOnSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(12))
		pc := 0.5 + rng.Float64()*0.5
		k := 2 + rng.Intn(3)
		base, err := NewGreedy().Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hBase, err := TaskEntropy(j, base, pc)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := NewGreedyPrune().Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hPruned, err := TaskEntropy(j, pruned, pc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hPruned-hBase) > 1e-9 {
			t.Errorf("lazy prune changed quality: %v vs %v (n=%d k=%d)", hPruned, hBase, n, k)
		}
	}
}

// TestLiteralPaperPruneAblation documents the Theorem 3 discrepancy: the
// rule as printed can discard facts a later iteration needs, losing real
// quality on sparse instances. We bound how bad it gets (it keeps at least
// the first greedy pick, so it retains a constant fraction) and verify it
// never *beats* plain greedy, which would indicate a broken comparison.
func TestLiteralPaperPruneAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	literal := &GreedySelector{Options: GreedyOptions{Prune: true, LiteralPaperRule: true}}
	sawLoss := false
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(12))
		pc := 0.5 + rng.Float64()*0.5
		k := 2 + rng.Intn(3)
		base, err := NewGreedy().Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hBase, err := TaskEntropy(j, base, pc)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := literal.Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hPruned, err := TaskEntropy(j, pruned, pc)
		if err != nil {
			t.Fatal(err)
		}
		if hPruned > hBase+1e-9 {
			t.Errorf("literal prune beat greedy: %v vs %v", hPruned, hBase)
		}
		if hPruned < 0.4*hBase-1e-9 {
			t.Errorf("literal prune catastrophically bad: %v vs %v", hPruned, hBase)
		}
		if hPruned < hBase-1e-9 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Log("literal paper rule never lost quality on these instances")
	}
}

// TestGreedyStopsOnCertainFacts: when the distribution has a single world
// (every fact certain) no task has positive gain and selection returns
// empty (K* = 0).
func TestGreedyStopsOnCertainFacts(t *testing.T) {
	j, err := dist.New(4, []dist.World{0b1010}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Selector{NewGreedy(), NewGreedyPrunePre()} {
		got, err := s.Select(j, 3, 0.8)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) != 0 {
			t.Errorf("%s selected %v from a certain distribution", s.Name(), got)
		}
	}
}

// TestGreedyPartialStop: with one certain fact and one uncertain fact,
// greedy asks only the uncertain one even when k = 2 (K* < k).
func TestGreedyPartialStop(t *testing.T) {
	// Fact 0 is true in both worlds (certain); fact 1 is uncertain.
	j, err := dist.New(2, []dist.World{0b01, 0b11}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewGreedy().Select(j, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("selected %v, want just the uncertain fact [1]", got)
	}
}

func TestRandomSelector(t *testing.T) {
	j := paperJoint(t)
	r := NewRandom(99)
	got, err := r.Select(j, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] == got[1] {
		t.Errorf("random selection invalid: %v", got)
	}
	for _, f := range got {
		if f < 0 || f > 3 {
			t.Errorf("fact %d out of range", f)
		}
	}
	// Deterministic under the same seed.
	r2 := NewRandom(99)
	got2, _ := r2.Select(j, 2, 0.8)
	for i := range got {
		if got[i] != got2[i] {
			t.Error("same-seed random selectors diverged")
		}
	}
}

func TestNextCombination(t *testing.T) {
	subset := []int{0, 1}
	var all [][]int
	for {
		all = append(all, append([]int(nil), subset...))
		if !nextCombination(subset, 4) {
			break
		}
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(all) != len(want) {
		t.Fatalf("enumerated %d combinations, want %d", len(all), len(want))
	}
	for i := range want {
		for jj := range want[i] {
			if all[i][jj] != want[i][jj] {
				t.Fatalf("combination %d = %v, want %v", i, all[i], want[i])
			}
		}
	}
}

func TestOptRefusesExplosion(t *testing.T) {
	// 40 facts choose 10 is ~8.5e8 subsets — must be refused, not attempted.
	worlds := make([]dist.World, 8)
	probs := make([]float64, 8)
	for i := range worlds {
		worlds[i] = dist.World(i * 5)
		probs[i] = 1.0 / 8
	}
	j, err := dist.New(40, worlds, probs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (OptSelector{}).Select(j, 10, 0.8); err == nil {
		t.Error("OPT attempted an astronomically large enumeration")
	}
}
