package core

import (
	"fmt"
	"math"
	"sort"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// Cost-aware task selection: the paper charges every task one unit, but on
// a real platform task prices differ (long author lists take longer to
// check; the paper's Section V-D classes are harder and would be priced
// higher). This generalizes the selection problem to a budget in money
// rather than task count: maximize H(T) subject to sum of task costs <= B.
//
// For budgeted monotone submodular maximization the standard approach is
// the cost-benefit greedy — pick the task with the best marginal gain per
// unit cost — guarded by a comparison with the best single affordable task
// (Leskovec et al.'s CELF trick), which restores a constant-factor
// guarantee of (1 - 1/sqrt(e))/2 that plain ratio greedy lacks.

// CostSelector chooses tasks under a heterogeneous-cost budget.
type CostSelector struct {
	// Costs[i] is the price of asking fact i. Facts without an entry
	// cost 1.
	Costs map[int]float64
}

// NewCostSelector builds a cost-aware selector.
func NewCostSelector(costs map[int]float64) *CostSelector {
	return &CostSelector{Costs: costs}
}

// cost returns the price of a fact.
func (s *CostSelector) cost(f int) float64 {
	if c, ok := s.Costs[f]; ok {
		return c
	}
	return 1
}

// validateCosts rejects non-positive or non-finite prices.
func (s *CostSelector) validateCosts(n int) error {
	for f, c := range s.Costs {
		if f < 0 || f >= n {
			return fmt.Errorf("core: cost for fact %d out of range [0, %d)", f, n)
		}
		if !(c > 0) || math.IsInf(c, 0) {
			return fmt.Errorf("core: cost %v for fact %d must be positive and finite", c, f)
		}
	}
	return nil
}

// SelectBudget returns a task set whose total cost is at most budget,
// greedily maximizing the net utility gain per unit cost, and returns the
// chosen facts with their total cost. The crowd-noise floor applies as in
// Algorithm 1: a task is only added while its absolute net gain is
// positive.
func (s *CostSelector) SelectBudget(j *dist.Joint, budget, pc float64) ([]int, float64, error) {
	if budget <= 0 {
		return nil, 0, ErrNoTasks
	}
	if err := checkTasks(j, nil, pc); err != nil {
		return nil, 0, err
	}
	if err := s.validateCosts(j.N()); err != nil {
		return nil, 0, err
	}
	n := j.N()
	noise := info.Binary(pc)

	ratioSet, ratioH, ratioCost, err := s.greedyByRatio(j, budget, pc, noise)
	if err != nil {
		return nil, 0, err
	}
	// CELF guard: compare against the single best affordable task.
	bestSingle := -1
	bestSingleH := 0.0
	for f := 0; f < n; f++ {
		if s.cost(f) > budget {
			continue
		}
		h, err := TaskEntropy(j, []int{f}, pc)
		if err != nil {
			return nil, 0, err
		}
		if h-noise > gainTolerance && h > bestSingleH {
			bestSingleH = h
			bestSingle = f
		}
	}
	if bestSingle >= 0 && bestSingleH > ratioH {
		return []int{bestSingle}, s.cost(bestSingle), nil
	}
	return ratioSet, ratioCost, nil
}

// greedyByRatio runs the gain-per-cost greedy until the budget or the
// noise floor stops it.
func (s *CostSelector) greedyByRatio(j *dist.Joint, budget, pc, noise float64) ([]int, float64, float64, error) {
	n := j.N()
	selected := make([]int, 0, n)
	inSet := make([]bool, n)
	currentH := 0.0
	spent := 0.0
	for len(selected) < MaxTasksPerRound {
		bestFact := -1
		bestRatio := 0.0
		bestH := 0.0
		for f := 0; f < n; f++ {
			if inSet[f] {
				continue
			}
			c := s.cost(f)
			if spent+c > budget {
				continue
			}
			h, err := TaskEntropy(j, append(selected, f), pc)
			if err != nil {
				return nil, 0, 0, err
			}
			netGain := h - currentH - noise
			if netGain <= gainTolerance {
				continue
			}
			if ratio := netGain / c; ratio > bestRatio {
				bestRatio = ratio
				bestFact = f
				bestH = h
			}
		}
		if bestFact < 0 {
			break
		}
		selected = append(selected, bestFact)
		inSet[bestFact] = true
		spent += s.cost(bestFact)
		currentH = bestH
	}
	sort.Ints(selected)
	return selected, currentH, spent, nil
}
