package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestCostSelectorValidation(t *testing.T) {
	j := paperJoint(t)
	s := NewCostSelector(nil)
	if _, _, err := s.SelectBudget(j, 0, 0.8); err != ErrNoTasks {
		t.Errorf("zero budget err = %v", err)
	}
	if _, _, err := s.SelectBudget(j, 2, 0.3); err != ErrBadAccuracy {
		t.Errorf("bad pc err = %v", err)
	}
	bad := NewCostSelector(map[int]float64{0: -1})
	if _, _, err := bad.SelectBudget(j, 2, 0.8); err == nil {
		t.Error("negative cost accepted")
	}
	oob := NewCostSelector(map[int]float64{9: 1})
	if _, _, err := oob.SelectBudget(j, 2, 0.8); err == nil {
		t.Error("out-of-range cost accepted")
	}
}

// TestCostSelectorUnitCostsMatchGreedy: with all costs 1 and budget k, the
// cost-aware selection achieves the same entropy as Algorithm 1's greedy.
func TestCostSelectorUnitCostsMatchGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(10))
		pc := 0.6 + rng.Float64()*0.4
		k := 2 + rng.Intn(2)

		plain, err := NewGreedy().Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		hPlain, err := TaskEntropy(j, plain, pc)
		if err != nil {
			t.Fatal(err)
		}
		costed, spent, err := NewCostSelector(nil).SelectBudget(j, float64(k), pc)
		if err != nil {
			t.Fatal(err)
		}
		hCost, err := TaskEntropy(j, costed, pc)
		if err != nil {
			t.Fatal(err)
		}
		if spent > float64(k)+1e-9 {
			t.Fatalf("spent %v over budget %d", spent, k)
		}
		// Ratio greedy with equal costs = gain greedy; allow tiny slack
		// for the noise-floor stopping interplay.
		if hCost < hPlain-0.2 {
			t.Errorf("unit-cost selection H=%v far below greedy H=%v", hCost, hPlain)
		}
	}
}

// TestCostSelectorPrefersCheapInformation: two near-identical facts where
// one costs 5x as much — the cheap one must be chosen first.
func TestCostSelectorPrefersCheapInformation(t *testing.T) {
	j := paperJoint(t)
	// f1 (index 0) has the highest single-task entropy; price it out.
	s := NewCostSelector(map[int]float64{0: 5})
	tasks, spent, err := s.SelectBudget(j, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tasks {
		if f == 0 {
			t.Errorf("selected the overpriced fact 0 (tasks %v, spent %v)", tasks, spent)
		}
	}
	if len(tasks) < 2 {
		t.Errorf("budget 3 with unit alternatives bought only %v", tasks)
	}
}

// TestCostSelectorCELFGuard: when one expensive task dominates everything
// affordable by ratio, the single-best guard still picks it if its
// absolute gain wins.
func TestCostSelectorCELFGuard(t *testing.T) {
	// Two facts: fact 0 uncertain (high gain, cost 4), fact 1 nearly
	// certain (tiny gain, cost 1). Budget 4: ratio greedy would buy the
	// cheap dribble first and could then not afford fact 0.
	j := mustJoint(t, 2, []uint64{0b00, 0b01, 0b11}, []float64{0.49, 0.49, 0.02})
	s := NewCostSelector(map[int]float64{0: 4, 1: 1})
	tasks, spent, err := s.SelectBudget(j, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	hGot, err := TaskEntropy(j, tasks, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	hSingle, err := TaskEntropy(j, []int{0}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if hGot < hSingle-1e-9 {
		t.Errorf("selection %v (H=%v, spent %v) worse than the single big task (H=%v)",
			tasks, hGot, spent, hSingle)
	}
}

// TestCostSelectorRespectsNoiseFloor: certain facts are never bought at
// any price.
func TestCostSelectorRespectsNoiseFloor(t *testing.T) {
	j := mustJoint(t, 3, []uint64{0b101}, []float64{1})
	tasks, spent, err := NewCostSelector(nil).SelectBudget(j, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 || spent != 0 {
		t.Errorf("bought %v (spent %v) from a certain distribution", tasks, spent)
	}
}

// TestCostSelectorBudgetBinding: total spend never exceeds the budget even
// with fractional costs.
func TestCostSelectorBudgetBinding(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(8))
		costs := make(map[int]float64, n)
		for f := 0; f < n; f++ {
			costs[f] = 0.5 + 2*rng.Float64()
		}
		budget := 1 + 4*rng.Float64()
		tasks, spent, err := NewCostSelector(costs).SelectBudget(j, budget, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if spent > budget+1e-9 {
			t.Fatalf("spent %v over budget %v (tasks %v)", spent, budget, tasks)
		}
		var check float64
		for _, f := range tasks {
			check += costs[f]
		}
		if math.Abs(check-spent) > 1e-9 {
			t.Fatalf("reported spend %v != actual %v", spent, check)
		}
	}
}
