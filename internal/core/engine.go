package core

import (
	"errors"
	"fmt"

	"crowdfusion/internal/dist"
)

// AnswerProvider supplies crowd answers for a batch of tasks. Each element
// of the returned slice is the crowd's true/false judgment of the fact at
// the same position in tasks. crowd.Simulator and platform.Platform satisfy
// this interface.
type AnswerProvider interface {
	Answers(tasks []int) []bool
}

// RoundStats records one selection-collection-update cycle of the engine.
type RoundStats struct {
	Round    int     // 1-based round number
	Tasks    []int   // fact indices asked this round
	Answers  []bool  // crowd judgments received
	CumCost  int     // cumulative number of tasks asked so far
	Entropy  float64 // H(F) after merging this round's answers
	Utility  float64 // Q(F) = -H(F) after merging
	TaskH    float64 // H(T) of the selected set, the selection objective
	Selected string  // selector name, for mixed-strategy traces
}

// Result is the outcome of an engine run.
type Result struct {
	Final  *dist.Joint  // posterior output distribution
	Rounds []RoundStats // per-round trace
	Cost   int          // total tasks asked
}

// Judgments returns the refined true/false decision for every fact: true
// when the posterior marginal correctness probability is at least 0.5.
func (r *Result) Judgments() []bool {
	m := r.Final.Marginals()
	out := make([]bool, len(m))
	for i, p := range m {
		out[i] = p >= 0.5
	}
	return out
}

// Engine runs the CrowdFusion improvement loop of Figure 1: while budget
// remains, select a task set, post it to the crowd, and merge the answers
// into the output distribution with Bayes' rule (Equation 3).
type Engine struct {
	// Prior is the initial output distribution — the result of a
	// machine-only fusion method, or uniform.
	Prior *dist.Joint
	// Selector chooses each round's task set.
	Selector Selector
	// Crowd answers the selected tasks.
	Crowd AnswerProvider
	// Pc is the crowd accuracy assumed by both selection and merging.
	Pc float64
	// K is the number of tasks posted per round.
	K int
	// Budget is the total number of tasks the run may post. The paper's
	// experiments use B = 60 per book, giving ceil(B/K) rounds.
	Budget int
}

// Validate checks the engine configuration.
func (e *Engine) Validate() error {
	if e.Prior == nil {
		return errors.New("core: engine needs a prior distribution")
	}
	if e.Selector == nil {
		return errors.New("core: engine needs a selector")
	}
	if e.Crowd == nil {
		return errors.New("core: engine needs an answer provider")
	}
	if e.Pc < 0.5 || e.Pc > 1 {
		return ErrBadAccuracy
	}
	if e.K <= 0 {
		return ErrNoTasks
	}
	if e.Budget <= 0 {
		return errors.New("core: engine needs a positive budget")
	}
	return nil
}

// Run executes rounds until the budget is exhausted, the selector returns
// no tasks (all facts certain), or merging fails.
func (e *Engine) Run() (*Result, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	current := e.Prior.Clone()
	res := &Result{}
	for round := 1; res.Cost < e.Budget; round++ {
		k := e.K
		if remaining := e.Budget - res.Cost; k > remaining {
			k = remaining
		}
		if n := current.N(); k > n {
			k = n
		}
		tasks, err := e.Selector.Select(current, k, e.Pc)
		if err != nil {
			return nil, fmt.Errorf("core: round %d selection: %w", round, err)
		}
		if len(tasks) == 0 {
			break // nothing uncertain remains to ask
		}
		answers := e.Crowd.Answers(tasks)
		if len(answers) != len(tasks) {
			return nil, fmt.Errorf("core: round %d: %d tasks but %d answers",
				round, len(tasks), len(answers))
		}
		taskH, err := TaskEntropy(current, tasks, e.Pc)
		if err != nil {
			return nil, err
		}
		updated, err := current.Condition(tasks, answers, e.Pc)
		if err != nil {
			return nil, fmt.Errorf("core: round %d merge: %w", round, err)
		}
		current = updated
		res.Cost += len(tasks)
		res.Rounds = append(res.Rounds, RoundStats{
			Round:    round,
			Tasks:    append([]int(nil), tasks...),
			Answers:  append([]bool(nil), answers...),
			CumCost:  res.Cost,
			Entropy:  current.Entropy(),
			Utility:  -current.Entropy(),
			TaskH:    taskH,
			Selected: e.Selector.Name(),
		})
	}
	res.Final = current
	return res, nil
}

// MergeAnswers exposes one Bayesian update step (Equation 3) as a free
// function: the posterior output distribution after the crowd answers the
// given tasks.
func MergeAnswers(j *dist.Joint, tasks []int, answers []bool, pc float64) (*dist.Joint, error) {
	if err := checkTasks(j, tasks, pc); err != nil {
		return nil, err
	}
	return j.Condition(tasks, answers, pc)
}

// MergeAnswersWeighted is the per-judgment form of MergeAnswers: each
// answer carries its own channel parameters — sens[i] = P(answer true |
// fact true), spec[i] = P(answer false | fact false) — typically a
// worker's current accuracy estimate (symmetric EM) or confusion row
// (Dawid–Skene). Uniform weights sens[i] == spec[i] == pc reproduce
// MergeAnswers(…, pc) bit-for-bit (dist.ConditionWeighted delegates to
// the scalar path in that case).
//
// The task-set validation reuses checkTasks with a neutral pc = 1: the
// per-judgment accuracies are validated by dist (each a probability, not
// bounded below by 0.5 — an adversarial worker's estimate may be).
func MergeAnswersWeighted(j *dist.Joint, tasks []int, answers []bool, sens, spec []float64) (*dist.Joint, error) {
	if err := checkTasks(j, tasks, 1); err != nil {
		return nil, err
	}
	return j.ConditionWeighted(tasks, answers, sens, spec)
}
