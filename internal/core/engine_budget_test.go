package core

import (
	"testing"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
)

// recordingSelector wraps a selector and records the k each round asked for.
type recordingSelector struct {
	inner Selector
	ks    []int
}

func (r *recordingSelector) Name() string { return r.inner.Name() }

func (r *recordingSelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	r.ks = append(r.ks, k)
	return r.inner.Select(j, k, pc)
}

// scriptedSelector returns canned batches, then empties.
type scriptedSelector struct {
	batches [][]int
	calls   int
}

func (s *scriptedSelector) Name() string { return "Scripted" }

func (s *scriptedSelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	if s.calls >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.calls]
	s.calls++
	if len(b) > k {
		b = b[:k]
	}
	return append([]int(nil), b...), nil
}

// countingProvider counts crowd calls while answering a fixed value.
type countingProvider struct {
	calls int
	tasks int
}

func (c *countingProvider) Answers(tasks []int) []bool {
	c.calls++
	c.tasks += len(tasks)
	return make([]bool, len(tasks))
}

// TestEngineBudgetClampsFinalRound: when the budget is exhausted mid-round,
// the selector must be handed the clamped k — the remaining budget — not
// the configured round size, so no round can be selected that could not be
// paid for.
func TestEngineBudgetClampsFinalRound(t *testing.T) {
	// Uniform over 6 facts: plenty of uncertainty, so only the budget
	// stops the run.
	j, err := dist.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := crowd.NewSimulator(dist.World(0b101010), 0.8, 11)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSelector{inner: NewGreedyPrunePre()}
	eng := Engine{Prior: j, Selector: rec, Crowd: sim, Pc: 0.8, K: 4, Budget: 10}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 10 {
		t.Fatalf("cost %d, want the whole budget 10", res.Cost)
	}
	// Rounds of 4, 4, then a final clamped round of 2.
	want := []int{4, 4, 2}
	if len(rec.ks) != len(want) {
		t.Fatalf("selector saw k sequence %v, want %v", rec.ks, want)
	}
	for i, k := range want {
		if rec.ks[i] != k {
			t.Fatalf("round %d: selector asked for k=%d, want %d (ks %v)", i+1, rec.ks[i], k, rec.ks)
		}
	}
	if last := res.Rounds[len(res.Rounds)-1]; len(last.Tasks) != 2 || last.CumCost != 10 {
		t.Fatalf("final round %+v, want 2 tasks ending at cum cost 10", last)
	}
}

// TestEngineZeroTaskSelectStops: a selector that returns no tasks ends the
// run immediately — no crowd call, no phantom round, budget unspent.
func TestEngineZeroTaskSelectStops(t *testing.T) {
	j := paperJoint(t)
	sel := &scriptedSelector{batches: [][]int{{0, 1}}} // one real round, then empty
	crowdCalls := &countingProvider{}
	eng := Engine{Prior: j, Selector: sel, Crowd: crowdCalls, Pc: 0.8, K: 2, Budget: 20}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 || res.Cost != 2 {
		t.Fatalf("rounds %d cost %d, want exactly the one scripted round of 2", len(res.Rounds), res.Cost)
	}
	if crowdCalls.calls != 1 || crowdCalls.tasks != 2 {
		t.Fatalf("crowd called %d times for %d tasks; the empty select must not reach the crowd",
			crowdCalls.calls, crowdCalls.tasks)
	}
	if res.Final == nil {
		t.Fatal("early stop lost the posterior")
	}
}

// TestEngineCertainPriorCostsNothing: a single-world (zero-entropy) prior
// makes greedy return an empty batch on round one, so the run completes
// with zero cost and the prior itself as the posterior.
func TestEngineCertainPriorCostsNothing(t *testing.T) {
	j, err := dist.New(4, []dist.World{0b1010}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	crowdCalls := &countingProvider{}
	eng := Engine{Prior: j, Selector: NewGreedyPrunePre(), Crowd: crowdCalls, Pc: 0.8, K: 3, Budget: 12}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || len(res.Rounds) != 0 {
		t.Fatalf("certain prior spent %d tasks over %d rounds", res.Cost, len(res.Rounds))
	}
	if crowdCalls.calls != 0 {
		t.Fatalf("crowd consulted %d times for a certain prior", crowdCalls.calls)
	}
	if res.Final.Entropy() != 0 {
		t.Fatalf("posterior entropy %v, want 0", res.Final.Entropy())
	}
}

// TestEngineKBeyondFactCount: K larger than the fact count is clamped to n
// before reaching the selector.
func TestEngineKBeyondFactCount(t *testing.T) {
	j, err := dist.Uniform(3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := crowd.NewSimulator(dist.World(0b101), 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSelector{inner: NewGreedy()}
	eng := Engine{Prior: j, Selector: rec, Crowd: sim, Pc: 0.9, K: 10, Budget: 6}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range rec.ks {
		if k > 3 {
			t.Fatalf("round %d: selector asked for k=%d with only 3 facts", i+1, k)
		}
	}
	if res.Cost > 6 {
		t.Fatalf("cost %d exceeded budget", res.Cost)
	}
}
