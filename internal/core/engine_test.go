package core

import (
	"math"
	"math/rand"
	"testing"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
)

func TestEngineValidate(t *testing.T) {
	j := paperJoint(t)
	truth := dist.World(0b0111)
	sim, err := crowd.NewSimulator(truth, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := Engine{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.8, K: 2, Budget: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid engine rejected: %v", err)
	}
	bad := []Engine{
		{Selector: NewGreedy(), Crowd: sim, Pc: 0.8, K: 2, Budget: 10},
		{Prior: j, Crowd: sim, Pc: 0.8, K: 2, Budget: 10},
		{Prior: j, Selector: NewGreedy(), Pc: 0.8, K: 2, Budget: 10},
		{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.2, K: 2, Budget: 10},
		{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.8, K: 0, Budget: 10},
		{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.8, K: 2, Budget: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("invalid engine %d accepted", i)
		}
		if _, err := e.Run(); err == nil {
			t.Errorf("invalid engine %d ran", i)
		}
	}
}

// TestEnginePerfectCrowdConverges: with Pc = 1 the engine pins every fact
// to the hidden truth and utility climbs to its maximum of 0.
func TestEnginePerfectCrowdConverges(t *testing.T) {
	j := paperJoint(t)
	truth := dist.World(0b0101) // f1 true, f2 false, f3 true, f4 false
	sim, err := crowd.NewSimulator(truth, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 1.0, K: 2, Budget: 8}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	judgments := res.Judgments()
	for i, v := range judgments {
		if v != truth.Has(i) {
			t.Errorf("fact %d judged %v, truth %v", i, v, truth.Has(i))
		}
	}
	if u := -res.Final.Entropy(); math.Abs(u) > 1e-9 {
		t.Errorf("final utility = %v, want 0 with a perfect crowd", u)
	}
	// With all facts certain, selection stops before the budget runs out.
	if res.Cost >= 8 {
		t.Errorf("cost = %d; expected early stop before budget 8", res.Cost)
	}
}

// TestEngineBudgetAccounting: rounds consume exactly K tasks except a
// smaller final round, and never exceed the budget.
func TestEngineBudgetAccounting(t *testing.T) {
	j := paperJoint(t)
	truth := dist.World(0b0101)
	sim, err := crowd.NewSimulator(truth, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Prior: j, Selector: NewRandom(5), Crowd: sim, Pc: 0.7, K: 3, Budget: 7}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 7 {
		t.Errorf("cost %d exceeded budget 7", res.Cost)
	}
	var total int
	for i, r := range res.Rounds {
		if len(r.Tasks) != len(r.Answers) {
			t.Errorf("round %d: %d tasks, %d answers", r.Round, len(r.Tasks), len(r.Answers))
		}
		total += len(r.Tasks)
		if r.CumCost != total {
			t.Errorf("round %d: CumCost %d, want %d", r.Round, r.CumCost, total)
		}
		if r.Round != i+1 {
			t.Errorf("round numbering off: %d at index %d", r.Round, i)
		}
		if r.Selected != "Random" {
			t.Errorf("round %d: Selected = %q", r.Round, r.Selected)
		}
	}
	if total != res.Cost {
		t.Errorf("trace total %d != cost %d", total, res.Cost)
	}
	// K=3 with budget 7: rounds of 3, 3, 1.
	if len(res.Rounds) != 3 || len(res.Rounds[2].Tasks) != 1 {
		t.Errorf("rounds = %d (last size %d), want 3 rounds ending with 1 task",
			len(res.Rounds), len(res.Rounds[len(res.Rounds)-1].Tasks))
	}
}

// TestEngineImprovesUtilityOnAverage: across seeds, running CrowdFusion
// with a reasonably accurate crowd must increase expected utility over the
// prior — the system's core promise.
func TestEngineImprovesUtilityOnAverage(t *testing.T) {
	j := paperJoint(t)
	prior := -j.Entropy()
	var sum float64
	const runs = 40
	for seed := int64(0); seed < runs; seed++ {
		truth := dist.World(0b1011)
		sim, err := crowd.NewSimulator(truth, 0.8, seed)
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.8, K: 2, Budget: 6}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum += -res.Final.Entropy()
	}
	avg := sum / runs
	if avg <= prior {
		t.Errorf("average utility %v did not improve over prior %v", avg, prior)
	}
}

// TestEngineMismatchedProvider: a provider returning the wrong number of
// answers is an error, not a panic.
type brokenProvider struct{}

func (brokenProvider) Answers(tasks []int) []bool { return nil }

func TestEngineMismatchedProvider(t *testing.T) {
	j := paperJoint(t)
	eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: brokenProvider{}, Pc: 0.8, K: 2, Budget: 4}
	if _, err := eng.Run(); err == nil {
		t.Error("mismatched provider accepted")
	}
}

func TestMergeAnswers(t *testing.T) {
	j := paperJoint(t)
	post, err := MergeAnswers(j, []int{0}, []bool{true}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := post.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	// Posterior P(f1) = 0.8·0.5 / 0.5 = 0.8.
	if math.Abs(m-0.8) > 1e-9 {
		t.Errorf("posterior P(f1) = %v, want 0.8", m)
	}
	if _, err := MergeAnswers(j, []int{0, 0}, []bool{true, true}, 0.8); err == nil {
		t.Error("duplicate tasks accepted")
	}
}

// TestEngineQuerySelector: the engine runs end-to-end with the query-based
// selector and refines the facts of interest.
func TestEngineQuerySelector(t *testing.T) {
	j := paperJoint(t)
	truth := dist.World(0b0111)
	sim, err := crowd.NewSimulator(truth, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	sel := &QueryGreedySelector{FOI: []int{1, 2}}
	eng := Engine{Prior: j, Selector: sel, Crowd: sim, Pc: 0.9, K: 2, Budget: 8}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == 0 {
		t.Fatal("query engine asked nothing")
	}
	priorH, err := j.FactEntropy([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	postH, err := res.Final.FactEntropy([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if postH >= priorH {
		t.Errorf("FOI entropy did not drop: %v -> %v", priorH, postH)
	}
}

// TestEngineDeterminism: identical seeds and configuration give identical
// traces.
func TestEngineDeterminism(t *testing.T) {
	j := paperJoint(t)
	run := func() *Result {
		sim, err := crowd.NewSimulator(dist.World(0b0101), 0.8, 21)
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Prior: j, Selector: NewGreedyPrunePre(), Crowd: sim, Pc: 0.8, K: 2, Budget: 10}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cost != b.Cost || len(a.Rounds) != len(b.Rounds) {
		t.Fatal("deterministic runs diverged in shape")
	}
	for i := range a.Rounds {
		if math.Abs(a.Rounds[i].Utility-b.Rounds[i].Utility) > 1e-12 {
			t.Fatalf("round %d utilities diverged", i)
		}
	}
}

// TestEngineNoisyCrowdNotMonotone documents the paper's Figure 2
// observation: with a noisy crowd, utility is not necessarily monotone in
// the number of answers — wrong answers can lower it. We only require that
// some run exhibits a non-monotone step, proving the engine does not
// artificially smooth the trace.
func TestEngineNoisyCrowdNotMonotone(t *testing.T) {
	j := paperJoint(t)
	sawDrop := false
	for seed := int64(0); seed < 60 && !sawDrop; seed++ {
		sim, err := crowd.NewSimulator(dist.World(0b0101), 0.7, seed)
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.7, K: 1, Budget: 12}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		prev := -j.Entropy()
		for _, r := range res.Rounds {
			if r.Utility < prev-1e-9 {
				sawDrop = true
				break
			}
			prev = r.Utility
		}
	}
	if !sawDrop {
		t.Error("no seed produced a utility drop; noisy merging looks suspiciously monotone")
	}
}

// fixedProvider returns scripted answers, for deterministic engine tests.
type fixedProvider struct {
	script [][]bool
	call   int
}

func (f *fixedProvider) Answers(tasks []int) []bool {
	if f.call >= len(f.script) {
		return make([]bool, len(tasks))
	}
	a := f.script[f.call]
	f.call++
	if len(a) > len(tasks) {
		a = a[:len(tasks)]
	}
	for len(a) < len(tasks) {
		a = append(a, false)
	}
	return a
}

func TestEngineScriptedRun(t *testing.T) {
	j := paperJoint(t)
	prov := &fixedProvider{script: [][]bool{{true, false}, {true, false}}}
	eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: prov, Pc: 0.8, K: 2, Budget: 4}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 4 || len(res.Rounds) != 2 {
		t.Fatalf("cost=%d rounds=%d, want 4 and 2", res.Cost, len(res.Rounds))
	}
	// Repeated confirmations of f1=true push its marginal up each round.
	m0, _ := j.Marginal(0)
	m1, _ := res.Final.Marginal(0)
	if m1 <= m0 {
		t.Errorf("P(f1) did not increase: %v -> %v", m0, m1)
	}
}

func TestResultJudgments(t *testing.T) {
	j, err := dist.New(3, []dist.World{0b011, 0b001}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Final: j}
	got := res.Judgments()
	want := []bool{true, true, false} // P = 1.0, 0.7, 0.0
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("judgment %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Benchmark-ish sanity: the engine over many random instances never errors.
func TestEngineFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		j := randomJoint(rng, n, 2+rng.Intn(10))
		var truth dist.World
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				truth = truth.Set(i, true)
			}
		}
		pc := 0.6 + rng.Float64()*0.4
		sim, err := crowd.NewSimulator(truth, pc, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		eng := Engine{
			Prior:    j,
			Selector: NewGreedyPrunePre(),
			Crowd:    sim,
			Pc:       pc,
			K:        1 + rng.Intn(3),
			Budget:   1 + rng.Intn(12),
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("engine fuzz trial %d: %v", trial, err)
		}
	}
}
