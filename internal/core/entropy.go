// Package core implements the CrowdFusion system of Section III of the
// paper: computing the entropy H(T) of the crowd-answer distribution for a
// candidate task set, selecting task sets (brute-force OPT, the greedy
// (1-1/e)-approximation of Algorithm 1, its pruning and preprocessing
// accelerations, and a random baseline), merging crowd answers back into the
// output distribution (Equation 3), the query-based variant of Section IV,
// and the NP-hardness reduction of Theorem 1.
//
// The entropy kernel is built for the hot path: the answer-channel
// convolution runs as a k-stage butterfly in O(|O| + k·2^k) instead of the
// textbook O(|O|·2^k) popcount loop, grouping is sort-based over pooled
// scratch buffers instead of per-call maps, and the reference
// implementations are retained in reference.go as differential-test oracles.
package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// MaxTasksPerRound bounds the size k of a selected task set. The answer
// space has 2^k patterns, so selection cost grows exponentially in k; the
// paper's experiments stop at k = 10.
const MaxTasksPerRound = 20

var (
	// ErrTooManyTasks is returned when k exceeds MaxTasksPerRound.
	ErrTooManyTasks = errors.New("core: task set too large (limit 20 per round)")
	// ErrBadAccuracy is returned for crowd accuracies outside [0.5, 1].
	ErrBadAccuracy = errors.New("core: crowd accuracy must be in [0.5, 1]")
	// ErrNoTasks is returned when a selector is asked for k <= 0 tasks.
	ErrNoTasks = errors.New("core: requested task count must be positive")
)

// bscWeights returns the per-disagreement-count channel weights
// w[d] = pc^(k-d) * (1-pc)^d for d = 0..k: the probability that a crowd with
// accuracy pc produces an answer vector at Hamming distance d from the true
// judgments of k independent tasks (Equation 2's Pc^#Same (1-Pc)^#Diff).
//
// Invariant: pc ∈ [0.5, 1]. Every caller sits behind a validation gate
// (checkTasks or the Preprocess accuracy check) that enforces it, so the
// pc = 0 degenerate case cannot arise and the ratio below is well-defined.
func bscWeights(k int, pc float64) []float64 {
	w := make([]float64, k+1)
	w[0] = 1
	for i := 0; i < k; i++ {
		w[0] *= pc
	}
	ratio := (1 - pc) / pc
	for d := 1; d <= k; d++ {
		w[d] = w[d-1] * ratio
	}
	return w
}

// patMass is one support world's task pattern with its probability mass —
// the unit of sort-based grouping.
type patMass struct {
	pat  uint64
	mass float64
}

// kernelScratch holds the reusable buffers of the entropy hot path: the
// dense 2^k answer vector (float64 and float32 variants), the pattern/mass
// pairs of sort-based grouping, a flat mass buffer for entropy input, and
// the index/offset double buffers of the preprocessing partition. Instances
// are pooled so concurrent selections (parallel sweeps) never share a
// buffer, and steady-state evaluation allocates nothing.
type kernelScratch struct {
	dense   []float64
	dense32 []float32
	pairs   []patMass
	masses  []float64
	// Partition double buffers (see partition): support indices grouped
	// contiguously, plus the group-boundary offsets, two of each so refine
	// can ping-pong without allocating.
	idxA, idxB   []int
	offsA, offsB []int
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

func getScratch() *kernelScratch  { return kernelPool.Get().(*kernelScratch) }
func putScratch(s *kernelScratch) { kernelPool.Put(s) }

// denseZero returns a zeroed length-n view of the scratch dense buffer.
// Capacity is rounded up to a whole number of 64-byte cache lines (8
// float64s) so the butterfly's blocked passes always work over cache-line
// multiples.
func (s *kernelScratch) denseZero(n int) []float64 {
	if cap(s.dense) < n {
		s.dense = make([]float64, (n+7)&^7)
	}
	d := s.dense[:n]
	clear(d)
	return d
}

// denseZero32 is denseZero for the float32 stage variant (16 float32s per
// cache line).
func (s *kernelScratch) denseZero32(n int) []float32 {
	if cap(s.dense32) < n {
		s.dense32 = make([]float32, (n+15)&^15)
	}
	d := s.dense32[:n]
	clear(d)
	return d
}

// pairBuf returns a length-n view of the pattern/mass pair buffer.
func (s *kernelScratch) pairBuf(n int) []patMass {
	if cap(s.pairs) < n {
		s.pairs = make([]patMass, n)
	}
	return s.pairs[:n]
}

// massesOf copies the grouped masses into the flat scratch buffer, the
// shape the entropy helpers take.
func (s *kernelScratch) massesOf(pairs []patMass) []float64 {
	if cap(s.masses) < len(pairs) {
		s.masses = make([]float64, len(pairs))
	}
	ms := s.masses[:len(pairs)]
	for i, pm := range pairs {
		ms[i] = pm.mass
	}
	return ms
}

// butterflyBlockBits bounds the span of butterfly stages that run
// back-to-back over one contiguous chunk of the dense vector: 2^12 float64s
// = 32 KB, sized to stay resident in a typical L1 data cache. A stage with
// step < blockSize only ever pairs indices inside one block, so applying
// all such stages to a block before moving to the next performs exactly the
// same pairwise operations in a different order — bit-identical output,
// with one cache-resident pass instead of k full-vector sweeps on large
// cubes (the preprocessing butterfly reaches 2^20 entries = 8 MB).
const butterflyBlockBits = 12

// bscButterfly applies the k-fold binary symmetric channel to a dense
// pattern-mass vector in place, one bit per stage: after stage b, dense
// holds the answer distribution over bit b's channel with the remaining
// bits still noiseless. Each stage mixes index pairs (i, i|1<<b) with
// weights pc/(1-pc), so the full pass costs O(k·2^k) — replacing the
// O(|O|·2^k) per-pattern popcount loop of the reference implementation.
// Stages below butterflyBlockBits are fused per cache-resident block.
//
// Invariant: pc ∈ [0.5, 1] (see bscWeights); len(dense) == 1<<k.
func bscButterfly(dense []float64, k int, pc float64) {
	qc := 1 - pc
	bb := butterflyBlockBits
	if bb > k {
		bb = k
	}
	block := 1 << uint(bb)
	for base := 0; base < len(dense); base += block {
		for b := 0; b < bb; b++ {
			step := 1 << uint(b)
			for lo := base; lo < base+block; lo += step << 1 {
				for i := lo; i < lo+step; i++ {
					x, y := dense[i], dense[i+step]
					dense[i] = pc*x + qc*y
					dense[i+step] = qc*x + pc*y
				}
			}
		}
	}
	for b := bb; b < k; b++ {
		step := 1 << uint(b)
		for base := 0; base < len(dense); base += step << 1 {
			for i := base; i < base+step; i++ {
				x, y := dense[i], dense[i+step]
				dense[i] = pc*x + qc*y
				dense[i+step] = qc*x + pc*y
			}
		}
	}
}

// bscButterfly32 is the float32 stage variant of bscButterfly: same
// structure, half the memory traffic (a 2^k cube occupies half as many
// cache lines, and twice as many lanes fit a vector register). Stage
// arithmetic in float32 perturbs entropies around the 7th decimal digit;
// whether that is admissible for selection is an *argmax*-stability
// question, decided by the differential tests against the float64 path and
// the reference oracles — the variant is only reachable behind
// GreedyOptions.Float32.
func bscButterfly32(dense []float32, k int, pc float32) {
	qc := 1 - pc
	bb := butterflyBlockBits
	if bb > k {
		bb = k
	}
	block := 1 << uint(bb)
	for base := 0; base < len(dense); base += block {
		for b := 0; b < bb; b++ {
			step := 1 << uint(b)
			for lo := base; lo < base+block; lo += step << 1 {
				for i := lo; i < lo+step; i++ {
					x, y := dense[i], dense[i+step]
					dense[i] = pc*x + qc*y
					dense[i+step] = qc*x + pc*y
				}
			}
		}
	}
	for b := bb; b < k; b++ {
		step := 1 << uint(b)
		for base := 0; base < len(dense); base += step << 1 {
			for i := base; i < base+step; i++ {
				x, y := dense[i], dense[i+step]
				dense[i] = pc*x + qc*y
				dense[i+step] = qc*x + pc*y
			}
		}
	}
}

// entropy32 returns the Shannon entropy, in bits, of a float32 mass vector,
// accumulating in float64 so only the channel stages — not the final sum —
// carry reduced precision.
func entropy32(ps []float32) float64 {
	var h float64
	for _, p := range ps {
		if p > 0 {
			pf := float64(p)
			h -= pf * math.Log2(pf)
		}
	}
	return h
}

// scatterPatterns accumulates each support world's probability at its
// pattern index in the dense vector — the sparse-to-dense half of the
// butterfly kernel, O(|O|·k) for the pattern extraction.
func scatterPatterns(dense []float64, j *dist.Joint, tasks []int) {
	worlds := j.Worlds()
	probs := j.Probs()
	for i, w := range worlds {
		dense[w.Pattern(tasks)] += probs[i]
	}
}

// patternMasses groups the support of j by the judgments of the given tasks
// and returns the distinct patterns (ascending) with their total
// probabilities — the task-set marginal of the output distribution,
// sparsely. The returned slice is a view into the scratch and is valid
// only until its next use.
func (s *kernelScratch) patternMasses(j *dist.Joint, tasks []int) []patMass {
	worlds := j.Worlds()
	probs := j.Probs()
	pairs := s.pairBuf(len(worlds))
	for i, w := range worlds {
		pairs[i] = patMass{pat: w.Pattern(tasks), mass: probs[i]}
	}
	return groupPatternMasses(pairs)
}

// groupPatternMasses sorts the pairs by pattern and compacts runs of equal
// patterns into single entries with summed masses, in place. This is the
// allocation-free replacement for the map-based grouping the reference
// implementation uses (patternMassesRef): slices.SortFunc over the struct
// slice is a generic pdqsort with no closure boxing or interface
// conversion, so the steady state allocates nothing.
func groupPatternMasses(pairs []patMass) []patMass {
	slices.SortFunc(pairs, func(a, b patMass) int {
		switch {
		case a.pat < b.pat:
			return -1
		case a.pat > b.pat:
			return 1
		}
		return 0
	})
	out := 0
	for i := 0; i < len(pairs); {
		p := pairs[i].pat
		acc := pairs[i].mass
		for i++; i < len(pairs) && pairs[i].pat == p; i++ {
			acc += pairs[i].mass
		}
		pairs[out] = patMass{pat: p, mass: acc}
		out++
	}
	return pairs[:out]
}

// TaskEntropy returns H(T): the Shannon entropy, in bits, of the joint
// distribution of crowd answers to the given tasks (Section III-B). It is
// the quantity Algorithm 1 greedily maximizes, since
// ΔQ(F) = H(T) - k·H(Crowd) and the crowd term is constant for fixed k.
//
// With pc = 1 it degenerates to the fact entropy H({f_i | f_i in T}), the
// special case the paper discusses after Equation 4 — served sparsely in
// O(|O| log |O|) without touching the 2^k answer cube.
func TaskEntropy(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	if err := checkTasks(j, tasks, pc); err != nil {
		return 0, err
	}
	if len(tasks) == 0 {
		return 0, nil
	}
	s := getScratch()
	defer putScratch(s)
	if pc == 1 {
		// Noiseless channel: the answer distribution is the pattern
		// marginal itself.
		return info.Entropy(s.massesOf(s.patternMasses(j, tasks))), nil
	}
	k := len(tasks)
	dense := s.denseZero(1 << uint(k))
	scatterPatterns(dense, j, tasks)
	bscButterfly(dense, k, pc)
	return info.Entropy(dense), nil
}

// UtilityGain returns ΔQ(F) = H(T) - |T|·H(Crowd), the expected utility
// improvement of asking the task set T (Definition 5 rearranged). A
// negative value means the crowd's noise outweighs the information gained.
func UtilityGain(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	h, err := TaskEntropy(j, tasks, pc)
	if err != nil {
		return 0, err
	}
	return h - float64(len(tasks))*info.Binary(pc), nil
}

// checkAccuracy validates the crowd-accuracy invariant pc ∈ [0.5, 1] that
// bscWeights and the butterfly kernel rely on.
func checkAccuracy(pc float64) error {
	if pc < 0.5 || pc > 1 || math.IsNaN(pc) {
		return ErrBadAccuracy
	}
	return nil
}

// checkTasks validates a task set against a joint distribution. Duplicate
// detection uses a 64-bit mask — valid indices are below j.N() <= 64
// (dist.MaxFacts), so no map is needed on this per-evaluation path.
func checkTasks(j *dist.Joint, tasks []int, pc float64) error {
	if err := checkAccuracy(pc); err != nil {
		return err
	}
	if len(tasks) > MaxTasksPerRound {
		return ErrTooManyTasks
	}
	var seen uint64
	for _, t := range tasks {
		if t < 0 || t >= j.N() {
			return fmt.Errorf("core: task %d out of range [0, %d)", t, j.N())
		}
		if seen&(1<<uint(t)) != 0 {
			return fmt.Errorf("core: duplicate task %d in set", t)
		}
		seen |= 1 << uint(t)
	}
	return nil
}
