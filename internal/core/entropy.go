// Package core implements the CrowdFusion system of Section III of the
// paper: computing the entropy H(T) of the crowd-answer distribution for a
// candidate task set, selecting task sets (brute-force OPT, the greedy
// (1-1/e)-approximation of Algorithm 1, its pruning and preprocessing
// accelerations, and a random baseline), merging crowd answers back into the
// output distribution (Equation 3), the query-based variant of Section IV,
// and the NP-hardness reduction of Theorem 1.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// MaxTasksPerRound bounds the size k of a selected task set. The answer
// space has 2^k patterns, so selection cost grows exponentially in k; the
// paper's experiments stop at k = 10.
const MaxTasksPerRound = 20

var (
	// ErrTooManyTasks is returned when k exceeds MaxTasksPerRound.
	ErrTooManyTasks = errors.New("core: task set too large (limit 20 per round)")
	// ErrBadAccuracy is returned for crowd accuracies outside [0.5, 1].
	ErrBadAccuracy = errors.New("core: crowd accuracy must be in [0.5, 1]")
	// ErrNoTasks is returned when a selector is asked for k <= 0 tasks.
	ErrNoTasks = errors.New("core: requested task count must be positive")
)

// bscWeights returns the per-disagreement-count channel weights
// w[d] = pc^(k-d) * (1-pc)^d for d = 0..k: the probability that a crowd with
// accuracy pc produces an answer vector at Hamming distance d from the true
// judgments of k independent tasks (Equation 2's Pc^#Same (1-Pc)^#Diff).
func bscWeights(k int, pc float64) []float64 {
	w := make([]float64, k+1)
	w[0] = 1
	for i := 0; i < k; i++ {
		w[0] *= pc
	}
	if pc == 0 {
		// Degenerate: only the all-wrong vector is possible.
		for d := 0; d < k; d++ {
			w[d+1] = 0
		}
		if k > 0 {
			w[k] = 1
		}
		return w
	}
	ratio := (1 - pc) / pc
	for d := 1; d <= k; d++ {
		w[d] = w[d-1] * ratio
	}
	return w
}

// patternMasses groups the support of j by the judgments of the given tasks
// and returns the distinct patterns with their total probabilities — the
// task-set marginal of the output distribution, sparsely.
func patternMasses(j *dist.Joint, tasks []int) (patterns []uint64, masses []float64) {
	worlds := j.Worlds()
	probs := j.Probs()
	acc := make(map[uint64]float64, len(worlds))
	order := make([]uint64, 0, len(worlds))
	for i, w := range worlds {
		p := w.Pattern(tasks)
		if _, seen := acc[p]; !seen {
			order = append(order, p)
		}
		acc[p] += probs[i]
	}
	masses = make([]float64, len(order))
	for i, p := range order {
		masses[i] = acc[p]
	}
	return order, masses
}

// answerDistribution computes the exact probability of every crowd answer
// pattern for the given task-set marginal: the k-fold binary symmetric
// channel applied to the pattern masses.
//
//	P(a) = sum_q masses[q] * pc^(k - d(a, q)) * (1-pc)^d(a, q)
//
// where d is the Hamming distance between answer pattern a and world pattern
// q over the k selected tasks. The result is a dense vector of length 2^k.
func answerDistribution(patterns []uint64, masses []float64, k int, pc float64) []float64 {
	weights := bscWeights(k, pc)
	out := make([]float64, 1<<uint(k))
	for qi, q := range patterns {
		m := masses[qi]
		if m == 0 {
			continue
		}
		for a := uint64(0); a < uint64(len(out)); a++ {
			d := bits.OnesCount64(a ^ q)
			out[a] += m * weights[d]
		}
	}
	return out
}

// TaskEntropy returns H(T): the Shannon entropy, in bits, of the joint
// distribution of crowd answers to the given tasks (Section III-B). It is
// the quantity Algorithm 1 greedily maximizes, since
// ΔQ(F) = H(T) - k·H(Crowd) and the crowd term is constant for fixed k.
//
// With pc = 1 it degenerates to the fact entropy H({f_i | f_i in T}), the
// special case the paper discusses after Equation 4.
func TaskEntropy(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	if err := checkTasks(j, tasks, pc); err != nil {
		return 0, err
	}
	if len(tasks) == 0 {
		return 0, nil
	}
	patterns, masses := patternMasses(j, tasks)
	return info.Entropy(answerDistribution(patterns, masses, len(tasks), pc)), nil
}

// UtilityGain returns ΔQ(F) = H(T) - |T|·H(Crowd), the expected utility
// improvement of asking the task set T (Definition 5 rearranged). A
// negative value means the crowd's noise outweighs the information gained.
func UtilityGain(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	h, err := TaskEntropy(j, tasks, pc)
	if err != nil {
		return 0, err
	}
	return h - float64(len(tasks))*info.Binary(pc), nil
}

// checkTasks validates a task set against a joint distribution.
func checkTasks(j *dist.Joint, tasks []int, pc float64) error {
	if pc < 0.5 || pc > 1 || math.IsNaN(pc) {
		return ErrBadAccuracy
	}
	if len(tasks) > MaxTasksPerRound {
		return ErrTooManyTasks
	}
	seen := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		if t < 0 || t >= j.N() {
			return fmt.Errorf("core: task %d out of range [0, %d)", t, j.N())
		}
		if seen[t] {
			return fmt.Errorf("core: duplicate task %d in set", t)
		}
		seen[t] = true
	}
	return nil
}
