package core

import (
	"math/bits"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// Expected-outcome analysis of a candidate task set, before any answers
// arrive. These quantities justify the selection objective: maximizing
// H(T) at fixed k is exactly minimizing the expected posterior entropy,
// because
//
//	E_ans[H(F | Ans_T)] = H(F) - I(F; Ans_T)
//	                    = H(F) - H(T) + |T|·H(Crowd).
//
// ExpectedPosteriorEntropy computes the left side directly by enumerating
// answer sets; the identity is verified by property tests, giving an
// independent check on the whole Equation 2/3 machinery.

// ExpectedPosteriorEntropy returns E over answer sets of H(F | Ans_T): the
// average entropy of the Bayesian-updated distribution, weighted by each
// answer set's probability. Cost O(2^k · |O|).
func ExpectedPosteriorEntropy(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	if err := checkTasks(j, tasks, pc); err != nil {
		return 0, err
	}
	k := len(tasks)
	if k == 0 {
		return j.Entropy(), nil
	}
	worlds := j.Worlds()
	probs := j.Probs()
	// pc ∈ [0.5, 1] here (checkTasks above), as bscWeights requires.
	weights := bscWeights(k, pc)
	patterns := make([]uint64, len(worlds))
	for i, w := range worlds {
		patterns[i] = w.Pattern(tasks)
	}
	var expected float64
	posterior := make([]float64, len(worlds))
	for a := uint64(0); a < uint64(1)<<uint(k); a++ {
		var pAns float64
		for i := range worlds {
			d := bits.OnesCount64(a ^ patterns[i])
			posterior[i] = probs[i] * weights[d]
			pAns += posterior[i]
		}
		if pAns <= 0 {
			continue
		}
		// H of the normalized posterior, computed without dividing
		// through: H(p/Z) = log2 Z - (1/Z) sum p log2 p.
		expected += pAns * info.EntropyNormalized(posterior)
	}
	return expected, nil
}

// InformationGain returns I(F; Ans_T) = H(F) - E[H(F | Ans_T)]: the
// expected utility improvement of asking the task set. It is always
// non-negative and zero exactly when every asked fact is already certain.
func InformationGain(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	eh, err := ExpectedPosteriorEntropy(j, tasks, pc)
	if err != nil {
		return 0, err
	}
	g := j.Entropy() - eh
	if g < 0 && g > -1e-9 {
		g = 0
	}
	return g, nil
}
