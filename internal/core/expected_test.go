package core

import (
	"math"
	"math/rand"
	"testing"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// TestInformationIdentity verifies the central identity that justifies the
// selection objective:
//
//	E[H(F | Ans_T)] = H(F) - H(T) + |T|·H(Crowd)
//
// on random sparse joints, connecting three independently implemented
// code paths (conditioning, task entropy, expected posterior entropy).
func TestInformationIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(5)
		j := randomJoint(rng, n, 1+rng.Intn(12))
		k := 1 + rng.Intn(3)
		tasks := rng.Perm(n)[:k]
		pc := 0.5 + rng.Float64()*0.5

		lhs, err := ExpectedPosteriorEntropy(j, tasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		ht, err := TaskEntropy(j, tasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		rhs := j.Entropy() - ht + float64(k)*info.Binary(pc)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("identity violated: E[H(F|Ans)]=%v, H(F)-H(T)+kH(crowd)=%v (n=%d k=%d pc=%v)",
				lhs, rhs, n, k, pc)
		}
	}
}

// TestExpectedPosteriorMatchesDirectEnumeration cross-checks against a
// brute-force computation through dist.Condition.
func TestExpectedPosteriorMatchesDirectEnumeration(t *testing.T) {
	j := paperJoint(t)
	tasks := []int{0, 2}
	pc := 0.8
	got, err := ExpectedPosteriorEntropy(j, tasks, pc)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for bitsPat := 0; bitsPat < 4; bitsPat++ {
		answers := []bool{bitsPat&1 != 0, bitsPat&2 != 0}
		pAns, err := j.AnswerSetProb(tasks, answers, pc)
		if err != nil {
			t.Fatal(err)
		}
		post, err := j.Condition(tasks, answers, pc)
		if err != nil {
			t.Fatal(err)
		}
		want += pAns * post.Entropy()
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("expected posterior entropy %v != brute force %v", got, want)
	}
}

func TestInformationGainProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(4)
		j := randomJoint(rng, n, 1+rng.Intn(10))
		k := 1 + rng.Intn(2)
		tasks := rng.Perm(n)[:k]
		pc := 0.5 + rng.Float64()*0.5
		g, err := InformationGain(j, tasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		// Information never hurts.
		if g < 0 {
			t.Fatalf("negative information gain %v", g)
		}
		// And is bounded by the prior entropy.
		if g > j.Entropy()+1e-9 {
			t.Fatalf("gain %v exceeds prior entropy %v", g, j.Entropy())
		}
	}
}

func TestInformationGainZeroForCertainFacts(t *testing.T) {
	// A deterministic joint: answers carry no information about F.
	j := mustJoint(t, 3, []uint64{0b101}, []float64{1})
	g, err := InformationGain(j, []int{0, 1}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-12 {
		t.Errorf("gain %v for a certain distribution, want 0", g)
	}
	// Pc = 0.5 answers are pure noise: zero gain on any joint.
	g, err = InformationGain(paperJoint(t), []int{0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-9 {
		t.Errorf("gain %v at Pc=0.5, want 0", g)
	}
}

func TestExpectedPosteriorEdgeCases(t *testing.T) {
	j := paperJoint(t)
	// Empty task set: the posterior is the prior.
	h, err := ExpectedPosteriorEntropy(j, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-j.Entropy()) > 1e-12 {
		t.Errorf("E[H] with no tasks = %v, want prior %v", h, j.Entropy())
	}
	// Validation propagates.
	if _, err := ExpectedPosteriorEntropy(j, []int{9}, 0.8); err == nil {
		t.Error("out-of-range task accepted")
	}
	if _, err := InformationGain(j, []int{0}, 0.1); err == nil {
		t.Error("bad accuracy accepted")
	}
	// Perfect crowd on an uncertain fact: expected posterior entropy
	// drops by exactly the fact entropy... at least by H(marginal).
	g, err := InformationGain(j, []int{0}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := j.FactEntropy([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-fh) > 1e-9 {
		t.Errorf("perfect-crowd gain %v != fact entropy %v", g, fh)
	}
}

func mustJoint(t *testing.T, n int, worlds []uint64, probs []float64) *dist.Joint {
	t.Helper()
	ws := make([]dist.World, len(worlds))
	for i, w := range worlds {
		ws[i] = dist.World(w)
	}
	j, err := dist.New(n, ws, probs)
	if err != nil {
		t.Fatal(err)
	}
	return j
}
