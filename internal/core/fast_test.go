package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// Differential tests for the fast selection kernel: every accelerated path
// (butterfly answer channel, sort-based grouping, incremental pattern
// cache, parallel preprocessing) is checked against the retained reference
// implementations in reference.go on random sparse joints, including the
// degenerate single-world and full-cube supports.

const diffTol = 1e-12

// randomSparseJoint builds a joint over n facts with the given support
// size: distinct random worlds with continuous random masses (so exact
// entropy ties across candidates have probability zero).
func randomSparseJoint(tb testing.TB, rng *rand.Rand, n, support int) *dist.Joint {
	tb.Helper()
	seen := make(map[dist.World]bool, support)
	worlds := make([]dist.World, 0, support)
	probs := make([]float64, 0, support)
	limit := 1 << uint(n)
	if support > limit {
		support = limit
	}
	for len(worlds) < support {
		w := dist.World(rng.Intn(limit))
		if seen[w] {
			continue
		}
		seen[w] = true
		worlds = append(worlds, w)
		probs = append(probs, 0.05+rng.Float64())
	}
	j, err := dist.New(n, worlds, probs)
	if err != nil {
		tb.Fatal(err)
	}
	return j
}

func randomTasks(rng *rand.Rand, n, k int) []int {
	perm := rng.Perm(n)
	tasks := append([]int(nil), perm[:k]...)
	return tasks
}

// answerDistribution assembles the butterfly answer distribution the way
// TaskEntropy's hot path does (scatter + bscButterfly), over a fresh slice
// so the test can inspect it.
func answerDistribution(j *dist.Joint, tasks []int, pc float64) []float64 {
	dense := make([]float64, 1<<uint(len(tasks)))
	scatterPatterns(dense, j, tasks)
	bscButterfly(dense, len(tasks), pc)
	return dense
}

// TestButterflyMatchesReference: the k-stage butterfly channel produces
// the same dense answer distribution as the O(|O|·2^k) popcount loop.
func TestButterflyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct{ n, support int }{
		{4, 1},     // single world
		{4, 16},    // full cube
		{8, 5},     // sparse
		{10, 200},  // mid
		{12, 4096}, // dense cube
		{14, 300},  // wide facts, sparse support
	}
	for _, tc := range cases {
		j := randomSparseJoint(t, rng, tc.n, tc.support)
		for _, k := range []int{1, 2, 5, 8} {
			if k > tc.n {
				continue
			}
			tasks := randomTasks(rng, tc.n, k)
			for _, pc := range []float64{0.5, 0.62, 0.8, 0.97, 1} {
				got := answerDistribution(j, tasks, pc)
				pats, masses := patternMassesRef(j, tasks)
				want := answerDistributionRef(pats, masses, k, pc)
				if len(got) != len(want) {
					t.Fatalf("n=%d |O|=%d k=%d: len %d != %d", tc.n, tc.support, k, len(got), len(want))
				}
				for a := range got {
					if math.Abs(got[a]-want[a]) > diffTol {
						t.Fatalf("n=%d |O|=%d k=%d pc=%v: answer %d: butterfly %v != ref %v",
							tc.n, tc.support, k, pc, a, got[a], want[a])
					}
				}
			}
		}
	}
}

// TestGroupPatternMasses: sort-based compaction produces exactly one
// ascending entry per distinct pattern, with the summed mass, across
// adversarial input shapes.
func TestGroupPatternMasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []func(i, n int) uint64{
		func(i, n int) uint64 { return uint64(rng.Intn(8)) },     // heavy duplicates
		func(i, n int) uint64 { return uint64(i) },               // already sorted
		func(i, n int) uint64 { return uint64(n - i) },           // reversed
		func(i, n int) uint64 { return 3 },                       // constant
		func(i, n int) uint64 { return rng.Uint64() },            // random wide
		func(i, n int) uint64 { return uint64(rng.Intn(n + 1)) }, // random narrow
	}
	for _, n := range []int{0, 1, 2, 11, 12, 13, 100, 5000} {
		for si, shape := range shapes {
			pairs := make([]patMass, n)
			want := make(map[uint64]float64, n)
			for i := range pairs {
				p := shape(i, n)
				m := rng.Float64()
				pairs[i] = patMass{pat: p, mass: m}
				want[p] += m
			}
			got := groupPatternMasses(pairs)
			if len(got) != len(want) {
				t.Fatalf("n=%d shape=%d: %d groups, want %d", n, si, len(got), len(want))
			}
			for i, pm := range got {
				if i > 0 && got[i-1].pat >= pm.pat {
					t.Fatalf("n=%d shape=%d: patterns not strictly ascending at %d", n, si, i)
				}
				if math.Abs(pm.mass-want[pm.pat]) > 1e-9 {
					t.Fatalf("n=%d shape=%d: pattern %d mass %v, want %v",
						n, si, pm.pat, pm.mass, want[pm.pat])
				}
			}
		}
	}
}

// TestPatternMassesMatchesReference: sort-based grouping and the map-based
// reference agree on the pattern → mass association.
func TestPatternMassesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		support := 1 + rng.Intn(1<<uint(min(n, 9)))
		j := randomSparseJoint(t, rng, n, support)
		k := 1 + rng.Intn(min(n, 8))
		tasks := randomTasks(rng, n, k)

		s := getScratch()
		pairs := s.patternMasses(j, tasks)
		got := make(map[uint64]float64, len(pairs))
		for i, pm := range pairs {
			if i > 0 && pairs[i-1].pat >= pm.pat {
				t.Fatalf("patterns not strictly ascending at %d", i)
			}
			got[pm.pat] = pm.mass
		}
		putScratch(s)

		refPats, refMasses := patternMassesRef(j, tasks)
		if len(refPats) != len(got) {
			t.Fatalf("distinct pattern counts differ: %d vs %d", len(got), len(refPats))
		}
		for i, p := range refPats {
			if math.Abs(got[p]-refMasses[i]) > diffTol {
				t.Fatalf("pattern %d: mass %v != ref %v", p, got[p], refMasses[i])
			}
		}
	}
}

// TestTaskEntropyMatchesReference: the full fast H(T) (scatter + butterfly
// over pooled scratch, sparse path at pc = 1) matches the reference within
// 1e-12 across random joints and the degenerate supports.
func TestTaskEntropyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	type tc struct{ n, support int }
	cases := []tc{{3, 1}, {6, 64}, {10, 1024}}
	for trial := 0; trial < 40; trial++ {
		cases = append(cases, tc{2 + rng.Intn(13), 1 + rng.Intn(512)})
	}
	for _, c := range cases {
		j := randomSparseJoint(t, rng, c.n, c.support)
		k := 1 + rng.Intn(min(c.n, 10))
		tasks := randomTasks(rng, c.n, k)
		for _, pc := range []float64{0.5, 0.55, 0.8, 1} {
			got, err := TaskEntropy(j, tasks, pc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := taskEntropyRef(j, tasks, pc)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > diffTol {
				t.Fatalf("n=%d |O|=%d k=%d pc=%v: fast H(T)=%v ref=%v",
					c.n, c.support, k, pc, got, want)
			}
		}
	}
}

// TestPreprocessPairwiseBitIdentical: every row of the parallel pairwise
// strategy accumulates in ascending index order whatever the worker count,
// so it must equal the row-major reference bit for bit — not just within
// tolerance.
func TestPreprocessPairwiseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(14)
		support := 1 + rng.Intn(1<<uint(min(n, 10)))
		j := randomSparseJoint(t, rng, n, support)
		pc := 0.5 + rng.Float64()/2
		ref, err := preprocessRef(j, pc)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got := preprocessPairwise(j, pc, workers, nil)
			if !reflect.DeepEqual(got.answerP, ref.answerP) {
				t.Fatalf("workers=%d n=%d |O|=%d: answer joint not bit-identical to reference",
					workers, n, support)
			}
			if got.total != ref.total {
				t.Fatalf("workers=%d: CoveredMass %v != ref %v", workers, got.total, ref.total)
			}
		}
	}
}

// TestPreprocessMatchesReference: whatever strategy Preprocess picks (cube
// butterfly or pairwise), the answer joint matches the reference within
// 1e-12 — including the degenerate single-world and full-cube supports.
func TestPreprocessMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	type tc struct{ n, support int }
	cases := []tc{{3, 1}, {6, 64}, {10, 1024}, {12, 4096}}
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(14)
		cases = append(cases, tc{n, 1 + rng.Intn(1<<uint(min(n, 11)))})
	}
	for _, c := range cases {
		j := randomSparseJoint(t, rng, c.n, c.support)
		pc := 0.5 + rng.Float64()/2
		ref, err := preprocessRef(j, pc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Preprocess(j, pc)
		if err != nil {
			t.Fatal(err)
		}
		for r := range ref.answerP {
			if math.Abs(got.answerP[r]-ref.answerP[r]) > diffTol {
				t.Fatalf("n=%d |O|=%d: A[%d] = %v, ref %v", c.n, c.support, r,
					got.answerP[r], ref.answerP[r])
			}
		}
		if math.Abs(got.total-ref.total) > diffTol {
			t.Fatalf("n=%d |O|=%d: CoveredMass %v != ref %v", c.n, c.support, got.total, ref.total)
		}
	}
}

// TestMarginalizeMatchesReference: sort-based Algorithm-2 marginalization
// groups the same masses as the map-based reference.
func TestMarginalizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		j := randomSparseJoint(t, rng, n, 1+rng.Intn(1<<uint(min(n, 9))))
		pre, err := Preprocess(j, 0.5+rng.Float64()/2)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(min(n, 6))
		tasks := randomTasks(rng, n, k)

		s := getScratch()
		got := append([]float64(nil), pre.marginalize(s, tasks)...)
		putScratch(s)
		want := pre.marginalizeRef(tasks)
		sort.Float64s(got)
		sort.Float64s(want)
		if len(got) != len(want) {
			t.Fatalf("part counts differ: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > diffTol {
				t.Fatalf("part mass %d: %v != ref %v", i, got[i], want[i])
			}
		}
	}
}

// TestPatternCacheMatchesTaskEntropy: the incremental per-candidate cache
// returns exactly what a from-scratch TaskEntropy over the extended set
// would, at every depth of a simulated selection.
func TestPatternCacheMatchesTaskEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		j := randomSparseJoint(t, rng, n, 1+rng.Intn(1<<uint(min(n, 9))))
		pc := []float64{0.5, 0.7, 0.9, 1}[rng.Intn(4)]
		cache := newPatternCache(j, pc, false)
		var selected []int
		inSet := make([]bool, n)
		for depth := 0; depth < min(n, 6); depth++ {
			for f := 0; f < n; f++ {
				if inSet[f] {
					continue
				}
				got := cache.entropyWith(f)
				want, err := TaskEntropy(j, append(append([]int(nil), selected...), f), pc)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > diffTol {
					t.Fatalf("depth=%d f=%d pc=%v: cache %v != TaskEntropy %v",
						depth, f, pc, got, want)
				}
			}
			// Extend by a random unselected fact.
			f := rng.Intn(n)
			for inSet[f] {
				f = rng.Intn(n)
			}
			cache.pick(f)
			selected = append(selected, f)
			inSet[f] = true
		}
		cache.release()
	}
}

// referenceGreedySelect mirrors the plain-greedy loop of
// GreedySelector.Select (no prune, no preprocess) with the reference
// entropy kernel — the oracle for selection-identity tests.
func referenceGreedySelect(tb testing.TB, j *dist.Joint, k int, pc float64) []int {
	tb.Helper()
	n := j.N()
	if k > n {
		k = n
	}
	noiseFloor := info.Binary(pc)
	selected := make([]int, 0, k)
	inSet := make([]bool, n)
	currentH := 0.0
	for len(selected) < k {
		bestFact := -1
		bestH := math.Inf(-1)
		for f := 0; f < n; f++ {
			if inSet[f] {
				continue
			}
			h, err := taskEntropyRef(j, append(append([]int(nil), selected...), f), pc)
			if err != nil {
				tb.Fatal(err)
			}
			if h > bestH {
				bestH = h
				bestFact = f
			}
		}
		if bestFact < 0 || bestH-currentH-noiseFloor <= gainTolerance {
			break
		}
		selected = append(selected, bestFact)
		inSet[bestFact] = true
		currentH = bestH
	}
	sort.Ints(selected)
	return selected
}

// TestGreedySelectionsUnchanged: the rebuilt kernel (butterfly + pattern
// cache, with and without lazy pruning) selects exactly the same task sets
// as the reference greedy, and the selected sets' exact entropies agree
// within 1e-12.
func TestGreedySelectionsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		j := randomSparseJoint(t, rng, n, 1+rng.Intn(1<<uint(min(n, 9))))
		k := 1 + rng.Intn(min(n, 6))
		pc := []float64{0.6, 0.8, 0.95}[rng.Intn(3)]
		want := referenceGreedySelect(t, j, k, pc)
		for _, sel := range []Selector{NewGreedy(), NewGreedyPrune()} {
			got, err := sel.Select(j, k, pc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s(n=%d k=%d pc=%v): selected %v, reference %v",
					trial, sel.Name(), n, k, pc, got, want)
			}
			hGot, err := taskEntropyRef(j, got, pc)
			if err != nil {
				t.Fatal(err)
			}
			hWant, err := taskEntropyRef(j, want, pc)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(hGot-hWant) > diffTol {
				t.Fatalf("%s: H(selection) %v != %v", sel.Name(), hGot, hWant)
			}
		}
	}
}

// TestRandomSelectorDraw: the partial Fisher–Yates draw returns k distinct
// in-range facts, is deterministic for a fixed seed, covers the k = n
// edge, and is safe for concurrent use.
func TestRandomSelectorDraw(t *testing.T) {
	j := randomSparseJoint(t, rand.New(rand.NewSource(1)), 12, 40)

	a := NewRandom(99)
	b := NewRandom(99)
	for i := 0; i < 20; i++ {
		k := 1 + i%12
		sa, err := a.Select(j, k, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Select(j, k, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("same seed diverged: %v vs %v", sa, sb)
		}
		if len(sa) != k {
			t.Fatalf("k=%d: got %d tasks", k, len(sa))
		}
		for x := 1; x < len(sa); x++ {
			if sa[x] <= sa[x-1] {
				t.Fatalf("k=%d: not strictly ascending: %v", k, sa)
			}
		}
		if sa[0] < 0 || sa[len(sa)-1] >= j.N() {
			t.Fatalf("k=%d: out of range: %v", k, sa)
		}
	}

	// k = n must return every fact.
	full, err := NewRandom(3).Select(j, j.N(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range full {
		if f != i {
			t.Fatalf("k=n draw missed a fact: %v", full)
		}
	}

	// Concurrent draws from one selector: exercised under -race.
	shared := NewRandom(7)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := shared.Select(j, 3, 0.8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Uniformity sanity: over many draws of k=1 from n facts, every fact
	// appears (a frozen or biased stream would leave gaps).
	counts := make([]int, j.N())
	r := NewRandom(5)
	for i := 0; i < 2000; i++ {
		s, err := r.Select(j, 1, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		counts[s[0]]++
	}
	for f, c := range counts {
		if c == 0 {
			t.Errorf("fact %d never drawn in 2000 single draws", f)
		}
	}
}
