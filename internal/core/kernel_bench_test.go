package core

import (
	"fmt"
	"math/rand"
	"testing"

	"crowdfusion/internal/dist"
)

// Before/after benchmarks for the selection kernel. Each fast path is
// benchmarked side by side with the retained reference implementation it
// replaced, so `make bench-json` captures the speedup in one run:
//
//	BenchmarkTaskEntropyKernel/Butterfly/...  vs  .../Reference/...
//	BenchmarkPreprocessKernel/Fast            vs  .../Reference
//	BenchmarkGreedySelectKernel/PatternCache  vs  .../Reference

// benchDenseJoint builds the paper's own support regime: a dense 2^n-world
// joint from independent marginals — the regime where |O| ≫ k and the
// butterfly's O(|O| + k·2^k) beats the O(|O|·2^k) popcount loop hardest.
func benchDenseJoint(b *testing.B, n int) *dist.Joint {
	b.Helper()
	marginals := make([]float64, n)
	for i := range marginals {
		marginals[i] = 0.3 + 0.4*float64(i)/float64(n-1)
	}
	j, err := dist.Independent(marginals)
	if err != nil {
		b.Fatal(err)
	}
	return j
}

// benchSparseJoint draws a random sparse support, the regime of the book
// instances.
func benchSparseJoint(b *testing.B, n, support int) *dist.Joint {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomSparseJoint(b, rng, n, support)
}

func BenchmarkTaskEntropyKernel(b *testing.B) {
	j := benchDenseJoint(b, 12)
	for _, k := range []int{4, 8, 10} {
		tasks := make([]int, k)
		for i := range tasks {
			tasks[i] = i
		}
		b.Run(fmt.Sprintf("Butterfly/dense/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TaskEntropy(j, tasks, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Reference/dense/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := taskEntropyRef(j, tasks, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	sparse := benchSparseJoint(b, 16, 256)
	tasks := []int{0, 3, 5, 7, 9, 11, 13, 15}
	b.Run("Butterfly/sparse/k=8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := TaskEntropy(sparse, tasks, 0.8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Reference/sparse/k=8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := taskEntropyRef(sparse, tasks, 0.8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPreprocessKernel(b *testing.B) {
	for _, support := range []int{256, 1024, 4096} {
		j := benchSparseJoint(b, 14, support)
		b.Run(fmt.Sprintf("Fast/support=%d", support), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Preprocess(j, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Reference/support=%d", support), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := preprocessRef(j, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// referenceGreedyBench is plain greedy over the reference kernel with the
// pre-rebuild evaluation pattern (recompute World.Pattern over the whole
// extended set per candidate) — the before side of the selector benchmark.
func referenceGreedyBench(b *testing.B, j *dist.Joint, k int, pc float64) {
	b.Helper()
	if _, err := (&referenceGreedySelector{}).Select(j, k, pc); err != nil {
		b.Fatal(err)
	}
}

// referenceGreedySelector adapts referenceGreedySelect to the Selector
// shape for benchmarking.
type referenceGreedySelector struct{}

func (referenceGreedySelector) Name() string { return "ReferenceGreedy" }

func (referenceGreedySelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	return referenceGreedySelect(benchTB{}, j, k, pc), nil
}

// benchTB is a minimal testing.TB stand-in for referenceGreedySelect's
// helper signature inside benchmarks; the reference kernel cannot error on
// the valid inputs used here.
type benchTB struct{ testing.TB }

func (benchTB) Helper()                   {}
func (benchTB) Fatal(args ...interface{}) { panic(fmt.Sprint(args...)) }
func (benchTB) Fatalf(f string, a ...any) { panic(fmt.Sprintf(f, a...)) }

func BenchmarkGreedySelectKernel(b *testing.B) {
	j := benchDenseJoint(b, 12)
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("PatternCache/k=%d", k), func(b *testing.B) {
			sel := NewGreedy()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(j, k, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Reference/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				referenceGreedyBench(b, j, k, 0.8)
			}
		})
	}
}

// BenchmarkBatchSelect measures cross-session batched selection: width
// sessions, each with its own posterior over a shared (pc, k) group,
// selected in one SelectBatch call. Width=1 is the single-session
// degenerate case the service's coalescer hits under light load; ns/op is
// per batch, so per-session cost is ns/op ÷ width.
func BenchmarkBatchSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	sel := NewGreedyPrunePre()
	for _, width := range []int{1, 4, 16} {
		items := make([]BatchItem, width)
		for i := range items {
			items[i] = BatchItem{
				Selector: sel,
				Joint:    randomSparseJoint(b, rng, 12, 4096),
				K:        3,
				Pc:       0.8,
			}
		}
		bs := NewBatchSelector()
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range bs.SelectBatch(items) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
