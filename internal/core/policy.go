package core

import (
	"fmt"
	"math"
)

// Round-size policies. The paper's Section V-C2 concludes that k trades
// latency against quality: each round is one platform round-trip, so large
// k finishes sooner, while small k re-targets after every answer and
// spends the budget better. A KPolicy lets the engine move along that
// trade-off during a run instead of fixing k up front — its natural
// instantiation starts with large rounds while beliefs are vague and
// shrinks them as the posterior sharpens.

// PolicyStats is the information a policy may base its decision on.
type PolicyStats struct {
	// Round is the 1-based upcoming round number.
	Round int
	// Entropy is the current output-distribution entropy H(F).
	Entropy float64
	// InitialEntropy is H(F) of the engine's prior.
	InitialEntropy float64
	// RemainingBudget is the number of tasks still available.
	RemainingBudget int
}

// KPolicy decides how many tasks to post in the upcoming round. Returned
// values are clamped by the engine to [1, remaining budget] and the fact
// count.
type KPolicy interface {
	NextK(stats PolicyStats) int
}

// FixedK posts the same number of tasks every round — the paper's
// protocol.
type FixedK int

// NextK implements KPolicy.
func (k FixedK) NextK(PolicyStats) int { return int(k) }

// EntropyAdaptiveK interpolates between MaxK and MinK by the fraction of
// the prior's entropy still unresolved: vague beliefs get big, fast
// rounds; sharp beliefs get small, targeted ones.
type EntropyAdaptiveK struct {
	MinK int
	MaxK int
}

// NextK implements KPolicy.
func (p EntropyAdaptiveK) NextK(s PolicyStats) int {
	lo, hi := p.MinK, p.MaxK
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if s.InitialEntropy <= 0 {
		return lo
	}
	frac := s.Entropy / s.InitialEntropy
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return lo + int(math.Round(frac*float64(hi-lo)))
}

// HalvingK halves the round size every FullRounds rounds, never dropping
// below 1 — a schedule for deployments that must bound total rounds.
type HalvingK struct {
	InitialK   int
	FullRounds int
}

// NextK implements KPolicy.
func (p HalvingK) NextK(s PolicyStats) int {
	k := p.InitialK
	if k < 1 {
		k = 1
	}
	period := p.FullRounds
	if period < 1 {
		period = 1
	}
	for r := s.Round - 1; r >= period && k > 1; r -= period {
		k /= 2
	}
	if k < 1 {
		k = 1
	}
	return k
}

// RunWithPolicy executes the engine loop with a round-size policy instead
// of the fixed K. All other behaviour matches Engine.Run.
func (e *Engine) RunWithPolicy(policy KPolicy) (*Result, error) {
	if policy == nil {
		return e.Run()
	}
	// Validate with a nominal K; the policy supplies the real one.
	probe := *e
	if probe.K <= 0 {
		probe.K = 1
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	current := e.Prior.Clone()
	initialH := current.Entropy()
	res := &Result{}
	for round := 1; res.Cost < e.Budget; round++ {
		k := policy.NextK(PolicyStats{
			Round:           round,
			Entropy:         current.Entropy(),
			InitialEntropy:  initialH,
			RemainingBudget: e.Budget - res.Cost,
		})
		if k < 1 {
			k = 1
		}
		if remaining := e.Budget - res.Cost; k > remaining {
			k = remaining
		}
		if n := current.N(); k > n {
			k = n
		}
		tasks, err := e.Selector.Select(current, k, e.Pc)
		if err != nil {
			return nil, err
		}
		if len(tasks) == 0 {
			break
		}
		answers := e.Crowd.Answers(tasks)
		if len(answers) != len(tasks) {
			return nil, fmt.Errorf("core: round %d: %d tasks but %d answers",
				round, len(tasks), len(answers))
		}
		taskH, err := TaskEntropy(current, tasks, e.Pc)
		if err != nil {
			return nil, err
		}
		updated, err := current.Condition(tasks, answers, e.Pc)
		if err != nil {
			return nil, err
		}
		current = updated
		res.Cost += len(tasks)
		res.Rounds = append(res.Rounds, RoundStats{
			Round:    round,
			Tasks:    append([]int(nil), tasks...),
			Answers:  append([]bool(nil), answers...),
			CumCost:  res.Cost,
			Entropy:  current.Entropy(),
			Utility:  -current.Entropy(),
			TaskH:    taskH,
			Selected: e.Selector.Name(),
		})
	}
	res.Final = current
	return res, nil
}
