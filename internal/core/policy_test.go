package core

import (
	"testing"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
)

func TestFixedKPolicy(t *testing.T) {
	if got := FixedK(3).NextK(PolicyStats{Round: 5, Entropy: 2}); got != 3 {
		t.Errorf("FixedK = %d", got)
	}
}

func TestEntropyAdaptiveK(t *testing.T) {
	p := EntropyAdaptiveK{MinK: 1, MaxK: 5}
	// Full uncertainty: max rounds.
	if got := p.NextK(PolicyStats{Entropy: 4, InitialEntropy: 4}); got != 5 {
		t.Errorf("full entropy k = %d, want 5", got)
	}
	// Resolved: min rounds.
	if got := p.NextK(PolicyStats{Entropy: 0, InitialEntropy: 4}); got != 1 {
		t.Errorf("zero entropy k = %d, want 1", got)
	}
	// Halfway: middle.
	if got := p.NextK(PolicyStats{Entropy: 2, InitialEntropy: 4}); got != 3 {
		t.Errorf("half entropy k = %d, want 3", got)
	}
	// Degenerate configurations clamp sanely.
	bad := EntropyAdaptiveK{MinK: 0, MaxK: -3}
	if got := bad.NextK(PolicyStats{Entropy: 1, InitialEntropy: 1}); got != 1 {
		t.Errorf("degenerate policy k = %d, want 1", got)
	}
	if got := p.NextK(PolicyStats{Entropy: 9, InitialEntropy: 0}); got != 1 {
		t.Errorf("zero initial entropy k = %d, want MinK", got)
	}
	// Entropy above initial (possible after contradictory answers) clamps.
	if got := p.NextK(PolicyStats{Entropy: 8, InitialEntropy: 4}); got != 5 {
		t.Errorf("overshoot entropy k = %d, want MaxK", got)
	}
}

func TestHalvingK(t *testing.T) {
	p := HalvingK{InitialK: 8, FullRounds: 2}
	want := map[int]int{1: 8, 2: 8, 3: 4, 4: 4, 5: 2, 6: 2, 7: 1, 8: 1, 20: 1}
	for round, k := range want {
		if got := p.NextK(PolicyStats{Round: round}); got != k {
			t.Errorf("round %d: k = %d, want %d", round, got, k)
		}
	}
	deg := HalvingK{InitialK: 0, FullRounds: 0}
	if got := deg.NextK(PolicyStats{Round: 3}); got != 1 {
		t.Errorf("degenerate halving k = %d", got)
	}
}

func TestRunWithPolicyNilFallsBack(t *testing.T) {
	j := paperJoint(t)
	sim, err := crowd.NewSimulator(dist.World(0b0101), 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.9, K: 2, Budget: 6}
	res, err := eng.RunWithPolicy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == 0 {
		t.Error("nil policy run asked nothing")
	}
}

// TestRunWithPolicyAdaptiveShrinks: with an adaptive policy on a quickly
// resolving instance, later rounds must be no larger than the first.
func TestRunWithPolicyAdaptiveShrinks(t *testing.T) {
	marginals := make([]float64, 8)
	for i := range marginals {
		marginals[i] = 0.5
	}
	j, err := dist.Independent(marginals)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := crowd.NewSimulator(dist.World(0b10110100), 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Prior: j, Selector: NewGreedyPrune(), Crowd: sim, Pc: 0.95, Budget: 24}
	res, err := eng.RunWithPolicy(EntropyAdaptiveK{MinK: 1, MaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("only %d rounds", len(res.Rounds))
	}
	first := len(res.Rounds[0].Tasks)
	last := len(res.Rounds[len(res.Rounds)-1].Tasks)
	if first < last {
		t.Errorf("rounds grew: first %d, last %d", first, last)
	}
	if first != 6 {
		t.Errorf("first round size %d, want MaxK 6 at full uncertainty", first)
	}
	if res.Cost > 24 {
		t.Errorf("cost %d exceeds budget", res.Cost)
	}
}

// TestRunWithPolicyBudgetClamp: the policy's request never overruns the
// remaining budget.
func TestRunWithPolicyBudgetClamp(t *testing.T) {
	j := paperJoint(t)
	sim, err := crowd.NewSimulator(dist.World(0b0101), 0.8, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Prior: j, Selector: NewGreedy(), Crowd: sim, Pc: 0.8, Budget: 5}
	res, err := eng.RunWithPolicy(FixedK(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 5 {
		t.Errorf("cost %d exceeds budget 5", res.Cost)
	}
	// 4 then 1.
	if len(res.Rounds) >= 2 && len(res.Rounds[1].Tasks) > 1 {
		t.Errorf("second round size %d, want <= 1", len(res.Rounds[1].Tasks))
	}
}

func TestRunWithPolicyValidates(t *testing.T) {
	eng := Engine{} // invalid
	if _, err := eng.RunWithPolicy(FixedK(2)); err == nil {
		t.Error("invalid engine accepted")
	}
}
