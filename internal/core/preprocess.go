package core

import (
	"math/bits"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
	"crowdfusion/internal/parallel"
)

// Preprocessed holds the precomputed answer joint distribution of Section
// III-F: for every support world r (interpreted as a full answer vector over
// all n facts), the probability A[r] that the crowd, asked every fact,
// returns exactly that vector:
//
//	A[r] = sum_i P(o_i) * pc^(n - d(w_r, w_i)) * (1-pc)^d(w_r, w_i).
//
// The paper restricts the answer joint to the ids of the output support
// (its Table IV over the full 2^n cube is the special case of a dense
// support), which makes the precomputation O(|O|^2). Marginalizing A over a
// task set T with Algorithm 2 then costs O(|O|) per evaluation instead of
// O(2^|T|·|O|).
//
// When the support covers the whole cube the marginalization is exact
// (crowd noise on unselected facts sums out); on a sparse support it is an
// approximation whose quality the ablation benchmarks measure.
type Preprocessed struct {
	joint   *dist.Joint
	pc      float64
	answerP []float64 // A[r], parallel to joint.Worlds()
	total   float64   // sum of A[r]; < 1 on sparse supports
}

// maxPreprocessButterflyFacts caps the dense cube the preprocessing
// butterfly may allocate: 2^20 float64s = 8 MB, transient per call.
const maxPreprocessButterflyFacts = 20

// Preprocess computes the answer joint distribution for the given output
// distribution and crowd accuracy. Two strategies, chosen by instance
// shape only (so results never depend on the machine):
//
//   - Cube butterfly: A is the n-fold binary symmetric channel applied to
//     the support scattered into the full 2^n cube — the same kernel as
//     answerDistribution with every fact selected — costing O(n·2^n).
//     Used when n is small enough to allocate the cube and n·2^n < |O|²,
//     e.g. every dense-support instance.
//   - Pairwise: the direct O(|O|²) popcount loop, row-partitioned across
//     all CPUs; every row accumulates in the same index order regardless
//     of worker count, so the result is bit-identical to the sequential
//     reference (preprocessRef).
//
// The result may be reused for any number of task-set evaluations and
// selections, but is invalidated by answer merging (the posterior is a
// different distribution); each selection round preprocesses once, as the
// paper notes.
func Preprocess(j *dist.Joint, pc float64) (*Preprocessed, error) {
	return preprocessPlan(j, pc, 0, nil)
}

// preprocessWorkers is Preprocess with an explicit worker count (0 = all
// CPUs), split out so tests can exercise the parallel path on any machine.
func preprocessWorkers(j *dist.Joint, pc float64, workers int) (*Preprocessed, error) {
	return preprocessPlan(j, pc, workers, nil)
}

// preprocessPlan is Preprocess with an explicit worker count (0 = all CPUs)
// and an optional shared channel plan supplying the per-distance weight
// tables (bit-identical to computing them inline, since they are pure
// functions of the fact count and pc).
func preprocessPlan(j *dist.Joint, pc float64, workers int, plan *ChannelPlan) (*Preprocessed, error) {
	if err := checkAccuracy(pc); err != nil {
		return nil, err
	}
	n := j.N()
	size := uint64(j.SupportSize())
	if n <= maxPreprocessButterflyFacts && uint64(n)<<uint(n) < size*size {
		return preprocessButterfly(j, pc), nil
	}
	return preprocessPairwise(j, pc, workers, plan), nil
}

// preprocessButterfly computes the answer joint by scattering the support
// into the dense 2^n cube and applying the n-stage channel butterfly, then
// gathering the support rows back out: O(|O| + n·2^n) total, an
// asymptotic win over the pairwise loop whenever the support is within a
// square root of the cube.
func preprocessButterfly(j *dist.Joint, pc float64) *Preprocessed {
	worlds := j.Worlds()
	probs := j.Probs()
	n := j.N()
	s := getScratch()
	defer putScratch(s)
	dense := s.denseZero(1 << uint(n)) // transient: pooled, not allocated
	for i, w := range worlds {
		dense[w] = probs[i] // support worlds are distinct
	}
	bscButterfly(dense, n, pc)
	a := make([]float64, len(worlds)) // escapes into the Preprocessed
	var total float64
	for r, w := range worlds {
		a[r] = dense[w]
		total += dense[w]
	}
	return &Preprocessed{joint: j, pc: pc, answerP: a, total: total}
}

// preprocessPairwise is the direct O(|O|²) computation, row-partitioned
// across the bounded worker pool. Each row is an independent local
// accumulation in ascending index order, so any worker count produces
// bit-identical output. A shared plan supplies the per-distance weight
// table so a batch computes it once per (fact count, pc) instead of once
// per member.
func preprocessPairwise(j *dist.Joint, pc float64, workers int, plan *ChannelPlan) *Preprocessed {
	worlds := j.Worlds()
	probs := j.Probs()
	weights := plan.distWeights(j.N(), pc)
	a := make([]float64, len(worlds))
	w := parallel.Workers(workers, len(worlds))
	parallel.Blocks(w, len(worlds), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			wr := worlds[r]
			var acc float64
			for i, wi := range worlds {
				d := bits.OnesCount64(uint64(wr ^ wi))
				acc += probs[i] * weights[d]
			}
			a[r] = acc
		}
	})
	// Plain ascending sum, matching the reference accumulation order so
	// CoveredMass is bit-identical too.
	var total float64
	for _, v := range a {
		total += v
	}
	return &Preprocessed{joint: j, pc: pc, answerP: a, total: total}
}

// Joint returns the output distribution the preprocessing was built from.
func (p *Preprocessed) Joint() *dist.Joint { return p.joint }

// Pc returns the crowd accuracy the preprocessing was built for.
func (p *Preprocessed) Pc() float64 { return p.pc }

// AnswerProb returns A[r] for the r-th support world: the probability that
// asking all facts yields that world's judgments as the answer vector. This
// regenerates the rows of the paper's Table IV when the support is dense.
func (p *Preprocessed) AnswerProb(r int) float64 { return p.answerP[r] }

// CoveredMass returns sum_r A[r] — the probability that the full crowd
// answer vector coincides with some support world. 1 for dense supports;
// the shortfall on sparse supports is exactly the mass the approximation
// ignores.
func (p *Preprocessed) CoveredMass() float64 { return p.total }

// TaskEntropy approximates H(T) by marginalizing the precomputed answer
// joint over the task set with Algorithm 2: partition the support by the
// judgments of T, sum A within each part, and take the entropy of the
// normalized part masses. Cost O(|O| log |O|) with pooled scratch — no
// allocation on the steady-state path. Safe for concurrent use.
func (p *Preprocessed) TaskEntropy(tasks []int) (float64, error) {
	if err := checkTasks(p.joint, tasks, p.pc); err != nil {
		return 0, err
	}
	if len(tasks) == 0 {
		return 0, nil
	}
	s := getScratch()
	defer putScratch(s)
	masses := p.marginalize(s, tasks)
	return info.EntropyNormalized(masses), nil
}

// marginalize implements Algorithm 2 (Compute Marginal Distribution): the
// support is separated into parts by the judgments of the selected facts
// and the answer-joint probabilities are summed within each part. Grouping
// is sort-based over the scratch pair buffer (see groupPatternMasses); the
// returned part masses are in ascending-pattern order and are views into
// the scratch, valid only until its next use.
func (p *Preprocessed) marginalize(s *kernelScratch, tasks []int) []float64 {
	worlds := p.joint.Worlds()
	pairs := s.pairBuf(len(worlds))
	for r, w := range worlds {
		pairs[r] = patMass{pat: w.Pattern(tasks), mass: p.answerP[r]}
	}
	return s.massesOf(groupPatternMasses(pairs))
}

// partition is the incremental state used by the greedy selector with
// preprocessing: the current grouping of support indices by the judgments of
// the already-selected tasks. Refining by one more fact splits each group in
// two with a single linear scan, the "separate each part ... into two new
// parts" step of Algorithm 2.
//
// The layout is flat and cache-contiguous: all support indices live in one
// []int, grouped as contiguous runs delimited by offs (group g is
// idx[offs[g]:offs[g+1]]) — replacing the per-refine [][]int of appends
// that dominated the selection path's allocations. idx/offs and their
// spares are borrowed from the selection's pooled kernel scratch, so
// refinement allocates nothing in the steady state.
type partition struct {
	idx       []int // support indices, grouped contiguously
	offs      []int // group boundaries; len = groups+1, offs[0] = 0
	spare     []int // double buffer for idx
	offsSpare []int // double buffer for offs
}

// newPartition returns the trivial partition with all support indices in
// one group ("initially, answer set has one part as a whole"), backed by
// the scratch's partition buffers. offs can grow to at most size+1 entries,
// so both offset buffers are sized once and never reallocate.
func newPartition(size int, s *kernelScratch) partition {
	if cap(s.idxA) < size {
		s.idxA = make([]int, size)
	}
	if cap(s.idxB) < size {
		s.idxB = make([]int, size)
	}
	if cap(s.offsA) < size+1 {
		s.offsA = make([]int, 0, size+1)
	}
	if cap(s.offsB) < size+1 {
		s.offsB = make([]int, 0, size+1)
	}
	idx := s.idxA[:size]
	for i := range idx {
		idx[i] = i
	}
	return partition{
		idx:       idx,
		offs:      append(s.offsA[:0], 0, size),
		spare:     s.idxB[:0],
		offsSpare: s.offsB[:0],
	}
}

// refine splits every group by whether the world at each support index
// judges fact f true, in place: the split runs are written to the spare
// buffers (no-half first, then yes-half, preserving index order within each
// half, exactly as the former slice-of-slices layout did) and the buffers
// are swapped.
func (pt *partition) refine(worlds []dist.World, f int) {
	next := pt.spare[:0]
	noffs := append(pt.offsSpare[:0], 0)
	for g := 0; g+1 < len(pt.offs); g++ {
		run := pt.idx[pt.offs[g]:pt.offs[g+1]]
		for _, idx := range run {
			if !worlds[idx].Has(f) {
				next = append(next, idx)
			}
		}
		split := len(next)
		for _, idx := range run {
			if worlds[idx].Has(f) {
				next = append(next, idx)
			}
		}
		if split > noffs[len(noffs)-1] && split < len(next) {
			noffs = append(noffs, split) // both halves non-empty
		}
		noffs = append(noffs, len(next))
	}
	pt.idx, pt.spare = next, pt.idx
	pt.offs, pt.offsSpare = noffs, pt.offs
}

// entropyAfter returns the Algorithm-2 entropy of the partition refined by
// fact f, without materializing the refined partition: each group's
// answer-joint mass is split by the judgment of f and the entropy of the
// normalized split masses is computed directly over the caller's scratch.
// The caller holds one scratch for its whole selection (as
// GreedySelector.Select does) so this per-candidate hot path pays no pool
// round-trip.
func (p *Preprocessed) entropyAfter(s *kernelScratch, pt *partition, f int) float64 {
	worlds := p.joint.Worlds()
	masses := s.masses[:0]
	for g := 0; g+1 < len(pt.offs); g++ {
		var yes, no float64
		for _, idx := range pt.idx[pt.offs[g]:pt.offs[g+1]] {
			if worlds[idx].Has(f) {
				yes += p.answerP[idx]
			} else {
				no += p.answerP[idx]
			}
		}
		if no > 0 {
			masses = append(masses, no)
		}
		if yes > 0 {
			masses = append(masses, yes)
		}
	}
	h := info.EntropyNormalized(masses)
	s.masses = masses[:0] // retain any growth for the next caller
	return h
}
