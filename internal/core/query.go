package core

import (
	"fmt"
	"math/bits"
	"sort"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// Query-based CrowdFusion (Section IV of the paper): when only a subset of
// facts — the facts of interest (FOI) — matter to the user, the utility
// becomes Q(I|T) = H(T) - H(I, T), and tasks outside the FOI remain worth
// asking when they are correlated with it (the paper's continent/population
// example). Q(I|T) equals -H(I | Ans_T): maximizing it minimizes the
// posterior uncertainty about the facts of interest.

// JointFactAnswerEntropy returns H(I, T): the joint entropy of the true
// judgments of the facts of interest and the crowd answers to the selected
// tasks. foi and tasks may overlap — a fact can be both of interest and
// asked.
func JointFactAnswerEntropy(j *dist.Joint, foi, tasks []int, pc float64) (float64, error) {
	if err := checkTasks(j, tasks, pc); err != nil {
		return 0, err
	}
	if err := checkFOI(j, foi); err != nil {
		return 0, err
	}
	if len(foi) > MaxTasksPerRound {
		return 0, fmt.Errorf("core: facts-of-interest set too large (%d, limit %d)",
			len(foi), MaxTasksPerRound)
	}
	k := len(tasks)
	// Group worlds by the pair (FOI pattern, task pattern).
	type key struct{ q, t uint64 }
	acc := make(map[key]float64, j.SupportSize())
	worlds := j.Worlds()
	probs := j.Probs()
	for i, w := range worlds {
		acc[key{w.Pattern(foi), w.Pattern(tasks)}] += probs[i]
	}
	if k == 0 {
		masses := make([]float64, 0, len(acc))
		for _, m := range acc {
			masses = append(masses, m)
		}
		return info.Entropy(masses), nil
	}
	// pc ∈ [0.5, 1] here (checkTasks above), as bscWeights requires.
	weights := bscWeights(k, pc)
	// P(q, a) = sum_t m[q,t] * w[d(a, t)] — accumulate per (q, a) cell.
	cells := make(map[uint64][]float64, len(acc))
	size := 1 << uint(k)
	for kt, m := range acc {
		row, ok := cells[kt.q]
		if !ok {
			row = make([]float64, size)
			cells[kt.q] = row
		}
		for a := uint64(0); a < uint64(size); a++ {
			d := bits.OnesCount64(a ^ kt.t)
			row[a] += m * weights[d]
		}
	}
	var h float64
	for _, row := range cells {
		for _, p := range row {
			h -= info.PLogP(p)
		}
	}
	if h < 0 {
		h = 0
	}
	return h, nil
}

// QueryUtility returns Q(I|T) = H(T) - H(I, T), the query-based utility of
// Section IV. It equals -H(I | Ans_T) and is therefore always <= 0,
// increasing toward 0 as the answers pin down the facts of interest.
func QueryUtility(j *dist.Joint, foi, tasks []int, pc float64) (float64, error) {
	ht, err := TaskEntropy(j, tasks, pc)
	if err != nil {
		return 0, err
	}
	hit, err := JointFactAnswerEntropy(j, foi, tasks, pc)
	if err != nil {
		return 0, err
	}
	return ht - hit, nil
}

// QueryGreedySelector implements the Section IV adaptation of Algorithm 1:
// greedily add the task maximizing the query-based utility improvement
// ρ_j = Q(I|T ∪ {j}) - Q(I|T). The gain equals the conditional mutual
// information I(Ans_j ; I | Ans_T) ≥ 0, and Q(I|·) is monotone submodular,
// so the same (1 - 1/e) guarantee applies.
type QueryGreedySelector struct {
	// FOI is the set of fact indices the user cares about.
	FOI []int
	// MinGain stops selection when the best remaining gain drops to or
	// below it; zero reproduces the paper's "stop when no benefit" rule.
	MinGain float64
}

// Name implements Selector.
func (q *QueryGreedySelector) Name() string { return "QueryApprox" }

// Select implements Selector.
func (q *QueryGreedySelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	if k <= 0 {
		return nil, ErrNoTasks
	}
	if err := checkFOI(j, q.FOI); err != nil {
		return nil, err
	}
	n := j.N()
	if k > n {
		k = n
	}
	if k > MaxTasksPerRound {
		return nil, ErrTooManyTasks
	}
	if err := checkTasks(j, nil, pc); err != nil {
		return nil, err
	}
	selected := make([]int, 0, k)
	inSet := make([]bool, n)
	currentQ, err := QueryUtility(j, q.FOI, nil, pc)
	if err != nil {
		return nil, err
	}
	for len(selected) < k {
		bestFact := -1
		bestQ := currentQ
		for f := 0; f < n; f++ {
			if inSet[f] {
				continue
			}
			qv, err := QueryUtility(j, q.FOI, append(selected, f), pc)
			if err != nil {
				return nil, err
			}
			if qv > bestQ+gainTolerance {
				bestQ = qv
				bestFact = f
			}
		}
		if bestFact < 0 || bestQ-currentQ <= q.MinGain+gainTolerance {
			break
		}
		selected = append(selected, bestFact)
		inSet[bestFact] = true
		currentQ = bestQ
	}
	sort.Ints(selected)
	return selected, nil
}

func checkFOI(j *dist.Joint, foi []int) error {
	if len(foi) == 0 {
		return fmt.Errorf("core: query-based selection needs a non-empty facts-of-interest set")
	}
	seen := make(map[int]bool, len(foi))
	for _, f := range foi {
		if f < 0 || f >= j.N() {
			return fmt.Errorf("core: fact of interest %d out of range [0, %d)", f, j.N())
		}
		if seen[f] {
			return fmt.Errorf("core: duplicate fact of interest %d", f)
		}
		seen[f] = true
	}
	return nil
}
