package core

import (
	"math"
	"math/rand"
	"testing"

	"crowdfusion/internal/dist"
)

func TestQueryUtilityBasics(t *testing.T) {
	j := paperJoint(t)
	foi := []int{1} // f2, the population fact

	// With no tasks, Q(I|{}) = -H(I).
	q0, err := QueryUtility(j, foi, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	hI, err := j.FactEntropy(foi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q0-(-hI)) > 1e-9 {
		t.Errorf("Q(I|{}) = %v, want -H(I) = %v", q0, -hI)
	}

	// Query utility is never positive (it is -H(I | Ans_T)).
	for _, tasks := range [][]int{{0}, {1}, {0, 2}, {0, 1, 2, 3}} {
		q, err := QueryUtility(j, foi, tasks, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if q > 1e-9 {
			t.Errorf("Q(I|%v) = %v > 0", tasks, q)
		}
		if q < q0-1e-9 {
			t.Errorf("Q(I|%v) = %v below the no-task utility %v", tasks, q, q0)
		}
	}
}

// TestQueryUtilityMonotoneInTasks verifies Section IV's inequality (7):
// Q(I|T) >= Q(I|T') is stated for T ⊆ T' in the paper with the opposite
// orientation; information-theoretically Q(I|T) = -H(I|Ans_T) can only
// improve (weakly) as more answers arrive, so supersets have utility at
// least as high.
func TestQueryUtilityMonotoneInTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4)
		j := randomJoint(rng, n, 2+rng.Intn(10))
		pc := 0.5 + rng.Float64()*0.5
		perm := rng.Perm(n)
		foi := perm[:1+rng.Intn(2)]
		rest := perm[len(foi):]
		small := rest[:1]
		large := rest[:2]
		qSmall, err := QueryUtility(j, foi, small, pc)
		if err != nil {
			t.Fatal(err)
		}
		qLarge, err := QueryUtility(j, foi, large, pc)
		if err != nil {
			t.Fatal(err)
		}
		if qLarge < qSmall-1e-9 {
			t.Fatalf("Q(I|T) decreased when adding a task: %v -> %v (foi=%v small=%v large=%v)",
				qSmall, qLarge, foi, small, large)
		}
	}
}

// TestQueryGainIsConditionalMI: the gain of one more task equals
// I(Ans_f ; I | Ans_T) >= 0, so it must vanish when the task is independent
// of the facts of interest.
func TestQueryGainIsConditionalMI(t *testing.T) {
	// Two independent fact groups: facts {0,1} correlated with each
	// other, fact 2 independent of both.
	j, err := dist.Independent([]float64{0.5, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	foi := []int{0}
	q0, err := QueryUtility(j, foi, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Asking the independent fact 2 yields exactly zero gain.
	q2, err := QueryUtility(j, foi, []int{2}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q2-q0) > 1e-9 {
		t.Errorf("independent task changed query utility: %v -> %v", q0, q2)
	}
	// Asking the fact of interest itself yields positive gain.
	qf, err := QueryUtility(j, foi, []int{0}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if qf <= q0+1e-9 {
		t.Errorf("asking the FOI itself gave no gain: %v -> %v", q0, qf)
	}
}

// TestQueryCorrelatedOutsideFOI reproduces the paper's motivating point for
// Section IV: a task outside the facts of interest is worth asking when it
// is correlated with them (the continent/population example).
func TestQueryCorrelatedOutsideFOI(t *testing.T) {
	// Fact 0 ("continent") and fact 1 ("population") are strongly
	// correlated; fact 0 is easier to separate because the crowd sees it
	// directly. FOI = {1} only.
	worlds := []dist.World{0b00, 0b11}
	j, err := dist.New(2, worlds, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	foi := []int{1}
	q0, err := QueryUtility(j, foi, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	qOutside, err := QueryUtility(j, foi, []int{0}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if qOutside <= q0+1e-6 {
		t.Errorf("correlated non-FOI task gave no gain: %v -> %v", q0, qOutside)
	}
	// With perfect correlation, asking fact 0 is as good as asking fact 1.
	qInside, err := QueryUtility(j, foi, []int{1}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qOutside-qInside) > 1e-9 {
		t.Errorf("perfectly correlated tasks differ: outside %v inside %v", qOutside, qInside)
	}
}

func TestQueryGreedySelect(t *testing.T) {
	j := paperJoint(t)
	sel := &QueryGreedySelector{FOI: []int{1, 2}}
	got, err := sel.Select(j, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 2 {
		t.Fatalf("selected %v", got)
	}
	// The selection must beat or match any single task on query utility.
	qSel, err := QueryUtility(j, sel.FOI, got, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		qf, err := QueryUtility(j, sel.FOI, []int{f}, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if qSel < qf-1e-9 {
			t.Errorf("greedy query selection %v (Q=%v) worse than single task %d (Q=%v)",
				got, qSel, f, qf)
		}
	}
	if sel.Name() != "QueryApprox" {
		t.Errorf("Name() = %q", sel.Name())
	}
}

// TestQueryGreedySkipsUninformativeTasks: with an independent joint, the
// query selector asks only about facts of interest — uncorrelated tasks
// carry zero gain and must not consume budget.
func TestQueryGreedySkipsUninformativeTasks(t *testing.T) {
	j, err := dist.Independent([]float64{0.5, 0.4, 0.6, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sel := &QueryGreedySelector{FOI: []int{0}}
	got, err := sel.Select(j, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("selected %v, want just the FOI fact [0]", got)
	}
}

func TestQueryGreedyValidation(t *testing.T) {
	j := paperJoint(t)
	cases := []*QueryGreedySelector{
		{FOI: nil},
		{FOI: []int{9}},
		{FOI: []int{0, 0}},
	}
	for i, sel := range cases {
		if _, err := sel.Select(j, 2, 0.8); err == nil {
			t.Errorf("case %d: invalid FOI accepted", i)
		}
	}
	ok := &QueryGreedySelector{FOI: []int{0}}
	if _, err := ok.Select(j, 0, 0.8); err != ErrNoTasks {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := ok.Select(j, 2, 0.1); err != ErrBadAccuracy {
		t.Errorf("bad pc err = %v", err)
	}
}

// TestQueryReducesToGeneralCase: Section IV notes query-based CrowdFusion
// with I = F is the original problem. The greedy selections under both
// objectives must then achieve the same utility improvement.
func TestQueryReducesToGeneralCase(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		j := randomJoint(rng, n, 2+rng.Intn(8))
		pc := 0.6 + rng.Float64()*0.4
		foi := make([]int, n)
		for i := range foi {
			foi[i] = i
		}
		qSel := &QueryGreedySelector{FOI: foi}
		qTasks, err := qSel.Select(j, 2, pc)
		if err != nil {
			t.Fatal(err)
		}
		gTasks, err := NewGreedy().Select(j, 2, pc)
		if err != nil {
			t.Fatal(err)
		}
		// With I = F, Q(I|T) = H(T) - H(F, T) and maximizing it is
		// equivalent to maximizing H(T) - H(F|Ans_T)... both selectors
		// maximize information about the full fact set; compare the
		// achieved posterior-entropy reduction.
		qq, err := QueryUtility(j, foi, qTasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		qg, err := QueryUtility(j, foi, gTasks, pc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qq-qg) > 0.15 {
			t.Errorf("trial %d: query-greedy Q=%v vs greedy Q=%v diverge beyond tolerance",
				trial, qq, qg)
		}
		if qq < qg-1e-9 {
			t.Errorf("trial %d: query-greedy underperformed the H(T) greedy on its own objective: %v < %v",
				trial, qq, qg)
		}
	}
}

func TestJointFactAnswerEntropyEdges(t *testing.T) {
	j := paperJoint(t)
	// No tasks: H(I, {}) = H(I).
	h, err := JointFactAnswerEntropy(j, []int{0, 1}, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := j.FactEntropy([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-want) > 1e-9 {
		t.Errorf("H(I,{}) = %v, want %v", h, want)
	}
	// FOI and tasks may overlap.
	if _, err := JointFactAnswerEntropy(j, []int{0}, []int{0}, 0.8); err != nil {
		t.Errorf("overlapping FOI/tasks rejected: %v", err)
	}
	// Oversized FOI is rejected.
	bigFOI := make([]int, MaxTasksPerRound+1)
	for i := range bigFOI {
		bigFOI[i] = i
	}
	big, err := dist.New(32, []dist.World{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JointFactAnswerEntropy(big, bigFOI, nil, 0.8); err == nil {
		t.Error("oversized FOI accepted")
	}
}
