package core

import (
	"errors"
	"fmt"
	"math"

	"crowdfusion/internal/dist"
)

// This file implements the Theorem 1 reduction from PARTITION to the
// decision version of task selection (DTaskSelect), as a runnable artifact:
// the construction in the paper's proof, a DTaskSelect decision procedure,
// and a PARTITION extractor, so the equivalence can be tested in both
// directions.
//
// Construction: given s positive numbers c_1..c_s with total Sum, build an
// instance with n = 2^s facts and s support outputs. Output o_i (one per
// number) has probability x_i = c_i / Sum, and judges fact f_I true exactly
// when bit i of I is set. The judgments of fact f_I across the outputs thus
// spell out the binary representation of I, enumerating every subset of the
// numbers. With k = 1 and Pc = 1, H(T) for T = {f_I} is the binary entropy
// of P(f_I) = sum of x_i over the subset, which reaches the target H_t = 1
// exactly when the subset sums to Sum/2 — i.e. when a partition exists.

// MaxPartitionItems bounds the PARTITION instance size: the reduction
// creates 2^s facts and worlds are 64-bit masks, so s <= 6.
const MaxPartitionItems = 6

// ErrPartitionSize is returned when the instance exceeds MaxPartitionItems.
var ErrPartitionSize = errors.New("core: partition instance too large (limit 6 numbers)")

// ReducePartition builds the DTaskSelect joint distribution for a PARTITION
// instance. The returned distribution has 2^s facts and at most s support
// worlds.
func ReducePartition(c []uint64) (*dist.Joint, error) {
	s := len(c)
	if s == 0 {
		return nil, errors.New("core: empty partition instance")
	}
	if s > MaxPartitionItems {
		return nil, ErrPartitionSize
	}
	var sum uint64
	for i, ci := range c {
		if ci == 0 {
			return nil, fmt.Errorf("core: partition numbers must be positive (c[%d] = 0)", i)
		}
		sum += ci
	}
	n := 1 << uint(s)
	worlds := make([]dist.World, s)
	probs := make([]float64, s)
	for i := 0; i < s; i++ {
		// Output i judges fact I true iff bit i of I is set.
		var w dist.World
		for fact := 0; fact < n; fact++ {
			if fact&(1<<uint(i)) != 0 {
				w = w.Set(fact, true)
			}
		}
		worlds[i] = w
		probs[i] = float64(c[i]) / float64(sum)
	}
	return dist.New(n, worlds, probs)
}

// DTaskSelect decides the paper's decision problem: is there a selection of
// k tasks with H(T) >= target? It is exact (brute force) and therefore only
// suitable for small instances — which is the point of the reduction.
func DTaskSelect(j *dist.Joint, k int, pc, target float64) (bool, []int, error) {
	best, err := (OptSelector{}).Select(j, k, pc)
	if err != nil {
		return false, nil, err
	}
	h, err := TaskEntropy(j, best, pc)
	if err != nil {
		return false, nil, err
	}
	if h >= target-1e-9 {
		return true, best, nil
	}
	return false, nil, nil
}

// HasEqualPartition answers the original PARTITION question through the
// reduction: it builds the DTaskSelect instance, asks for a single task
// reaching entropy 1 with a perfect crowd, and decodes the witness fact
// index into the two subsets.
func HasEqualPartition(c []uint64) (ok bool, subset []int, err error) {
	j, err := ReducePartition(c)
	if err != nil {
		return false, nil, err
	}
	yes, witness, err := DTaskSelect(j, 1, 1.0, 1.0)
	if err != nil {
		return false, nil, err
	}
	if !yes {
		return false, nil, nil
	}
	// Decode: bit i of the witness fact index says c_i is in the subset.
	fact := witness[0]
	for i := 0; i < len(c); i++ {
		if fact&(1<<uint(i)) != 0 {
			subset = append(subset, i)
		}
	}
	return true, subset, nil
}

// VerifyPartition checks that the indices in subset select numbers summing
// to exactly half the total — the certificate check for PARTITION.
func VerifyPartition(c []uint64, subset []int) bool {
	var total, part uint64
	for _, ci := range c {
		total += ci
	}
	if total%2 != 0 {
		return false
	}
	used := make(map[int]bool, len(subset))
	for _, i := range subset {
		if i < 0 || i >= len(c) || used[i] {
			return false
		}
		used[i] = true
		part += c[i]
	}
	return part*2 == total
}

// BruteForcePartition solves PARTITION directly by subset enumeration, as
// the independent oracle the reduction tests compare against.
func BruteForcePartition(c []uint64) (ok bool, subset []int) {
	var total uint64
	for _, ci := range c {
		total += ci
	}
	if total%2 != 0 {
		return false, nil
	}
	half := total / 2
	for mask := 0; mask < 1<<uint(len(c)); mask++ {
		var part uint64
		for i := range c {
			if mask&(1<<uint(i)) != 0 {
				part += c[i]
			}
		}
		if part == half {
			var sel []int
			for i := range c {
				if mask&(1<<uint(i)) != 0 {
					sel = append(sel, i)
				}
			}
			return true, sel
		}
	}
	return false, nil
}

// PartitionEntropy returns the single-task entropy H({f_I}) at Pc = 1 in
// the reduced instance for the subset encoded by fact index I — the binary
// entropy of the subset's probability mass. Exposed for tests that verify
// the reduction's arithmetic directly.
func PartitionEntropy(c []uint64, fact int) (float64, error) {
	s := len(c)
	if s == 0 || s > MaxPartitionItems {
		return 0, ErrPartitionSize
	}
	if fact < 0 || fact >= 1<<uint(s) {
		return 0, fmt.Errorf("core: fact %d out of range", fact)
	}
	var sum, part uint64
	for i, ci := range c {
		sum += ci
		if fact&(1<<uint(i)) != 0 {
			part += ci
		}
	}
	p := float64(part) / float64(sum)
	if p <= 0 || p >= 1 {
		return 0, nil
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p), nil
}
