package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestReducePartitionValidation(t *testing.T) {
	if _, err := ReducePartition(nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := ReducePartition(make([]uint64, MaxPartitionItems+1)); err != ErrPartitionSize {
		t.Errorf("oversized instance err = %v", err)
	}
	if _, err := ReducePartition([]uint64{1, 0, 2}); err == nil {
		t.Error("zero element accepted")
	}
}

func TestReducePartitionStructure(t *testing.T) {
	c := []uint64{3, 1, 2}
	j, err := ReducePartition(c)
	if err != nil {
		t.Fatal(err)
	}
	// n = 2^3 = 8 facts, 3 support worlds with probabilities c_i / 6.
	if j.N() != 8 {
		t.Errorf("N = %d, want 8", j.N())
	}
	if j.SupportSize() != 3 {
		t.Errorf("support = %d, want 3", j.SupportSize())
	}
	// Fact f_I is true in world i iff bit i of I is set, so the marginal
	// of f_I is the subset sum divided by the total.
	for fact := 0; fact < 8; fact++ {
		var want float64
		for i, ci := range c {
			if fact&(1<<uint(i)) != 0 {
				want += float64(ci) / 6
			}
		}
		got, err := j.Marginal(fact)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(f_%d) = %v, want %v", fact, got, want)
		}
	}
}

// TestReductionYesInstances: instances with an equal partition must map to
// DTaskSelect instances reaching H = 1, and the witness must decode to a
// valid partition.
func TestReductionYesInstances(t *testing.T) {
	yes := [][]uint64{
		{1, 1},
		{3, 1, 2},
		{2, 2, 2, 2},
		{5, 3, 2, 4, 6}, // half = 10: {4,6} or {5,3,2}...
		{1, 2, 3, 4, 10},
	}
	for _, c := range yes {
		ok, subset, err := HasEqualPartition(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !ok {
			t.Errorf("%v: reduction says no partition, but one exists", c)
			continue
		}
		if !VerifyPartition(c, subset) {
			t.Errorf("%v: witness %v is not a valid partition", c, subset)
		}
	}
}

// TestReductionNoInstances: instances with no equal partition must come
// back negative.
func TestReductionNoInstances(t *testing.T) {
	no := [][]uint64{
		{1},
		{1, 2},
		{1, 1, 1},    // odd total
		{2, 4, 8},    // total 14, half 7 unreachable
		{1, 2, 4, 8}, // total 15, odd
		{10, 1, 2, 3},
	}
	for _, c := range no {
		ok, subset, err := HasEqualPartition(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if ok {
			t.Errorf("%v: reduction found a 'partition' %v", c, subset)
		}
	}
}

// TestReductionMatchesBruteForce: randomized agreement between the
// reduction-based decision procedure and direct subset enumeration.
func TestReductionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		s := 2 + rng.Intn(4)
		c := make([]uint64, s)
		for i := range c {
			c[i] = uint64(1 + rng.Intn(12))
		}
		viaReduction, _, err := HasEqualPartition(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		viaBrute, subset := BruteForcePartition(c)
		if viaReduction != viaBrute {
			t.Fatalf("%v: reduction=%v brute=%v", c, viaReduction, viaBrute)
		}
		if viaBrute && !VerifyPartition(c, subset) {
			t.Fatalf("%v: brute force returned invalid witness %v", c, subset)
		}
	}
}

func TestPartitionEntropy(t *testing.T) {
	c := []uint64{1, 1}
	// Fact 0b01 selects {c_0}: mass 0.5 -> entropy 1.
	h, err := PartitionEntropy(c, 0b01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Errorf("H = %v, want 1", h)
	}
	// Fact 0 selects nothing: entropy 0.
	h, err = PartitionEntropy(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("H(empty subset) = %v", h)
	}
	// And it agrees with TaskEntropy on the reduced instance at Pc = 1.
	j, err := ReducePartition([]uint64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for fact := 0; fact < 8; fact++ {
		want, err := PartitionEntropy([]uint64{3, 1, 2}, fact)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TaskEntropy(j, []int{fact}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("fact %d: TaskEntropy %v != PartitionEntropy %v", fact, got, want)
		}
	}
	if _, err := PartitionEntropy(c, 99); err == nil {
		t.Error("out-of-range fact accepted")
	}
	if _, err := PartitionEntropy(nil, 0); err == nil {
		t.Error("empty instance accepted")
	}
}

func TestVerifyPartition(t *testing.T) {
	c := []uint64{3, 1, 2}
	if !VerifyPartition(c, []int{0}) {
		t.Error("valid partition {3} vs {1,2} rejected")
	}
	if VerifyPartition(c, []int{1}) {
		t.Error("invalid partition accepted")
	}
	if VerifyPartition(c, []int{0, 0}) {
		t.Error("duplicate indices accepted")
	}
	if VerifyPartition(c, []int{5}) {
		t.Error("out-of-range index accepted")
	}
	if VerifyPartition([]uint64{1, 2}, []int{0}) {
		t.Error("odd-total instance accepted")
	}
}

func TestDTaskSelectThreshold(t *testing.T) {
	j := paperJoint(t)
	// H({f1}) = 1 at Pc = 1 since P(f1) = 0.5; target 1 is reachable.
	ok, witness, err := DTaskSelect(j, 1, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(witness) != 1 || witness[0] != 0 {
		t.Errorf("DTaskSelect = %v %v, want true [0]", ok, witness)
	}
	// An unreachable target.
	ok, _, err = DTaskSelect(j, 1, 1.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("DTaskSelect reached an impossible target")
	}
}
