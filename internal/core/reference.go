package core

import (
	"math/bits"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// Reference implementations of the selection kernel, retained verbatim from
// the pre-butterfly code as differential-test oracles. They compute the
// same quantities as the fast paths in entropy.go / preprocess.go through
// structurally different algorithms (per-call maps, O(|O|·2^k) popcount
// convolution, sequential O(|O|²) preprocessing), so agreement within
// floating-point tolerance is strong evidence both are right. They are not
// called outside tests and benchmarks.

// patternMassesRef groups the support of j by the judgments of the given
// tasks with a per-call map, returning distinct patterns in first-seen
// order with their total probabilities.
func patternMassesRef(j *dist.Joint, tasks []int) (patterns []uint64, masses []float64) {
	worlds := j.Worlds()
	probs := j.Probs()
	acc := make(map[uint64]float64, len(worlds))
	order := make([]uint64, 0, len(worlds))
	for i, w := range worlds {
		p := w.Pattern(tasks)
		if _, seen := acc[p]; !seen {
			order = append(order, p)
		}
		acc[p] += probs[i]
	}
	masses = make([]float64, len(order))
	for i, p := range order {
		masses[i] = acc[p]
	}
	return order, masses
}

// answerDistributionRef computes the answer distribution with the direct
// O(|patterns|·2^k) popcount convolution the butterfly kernel replaces.
func answerDistributionRef(patterns []uint64, masses []float64, k int, pc float64) []float64 {
	weights := bscWeights(k, pc)
	out := make([]float64, 1<<uint(k))
	for qi, q := range patterns {
		m := masses[qi]
		if m == 0 {
			continue
		}
		for a := uint64(0); a < uint64(len(out)); a++ {
			d := bits.OnesCount64(a ^ q)
			out[a] += m * weights[d]
		}
	}
	return out
}

// taskEntropyRef is the reference H(T): map-based grouping composed with
// the popcount convolution.
func taskEntropyRef(j *dist.Joint, tasks []int, pc float64) (float64, error) {
	if err := checkTasks(j, tasks, pc); err != nil {
		return 0, err
	}
	if len(tasks) == 0 {
		return 0, nil
	}
	patterns, masses := patternMassesRef(j, tasks)
	return info.Entropy(answerDistributionRef(patterns, masses, len(tasks), pc)), nil
}

// preprocessRef is the reference Section III-F precomputation: the
// single-threaded row-major O(|O|²) pairwise loop.
func preprocessRef(j *dist.Joint, pc float64) (*Preprocessed, error) {
	if err := checkAccuracy(pc); err != nil {
		return nil, err
	}
	worlds := j.Worlds()
	probs := j.Probs()
	weights := bscWeights(j.N(), pc)
	a := make([]float64, len(worlds))
	var total float64
	for r, wr := range worlds {
		var acc float64
		for i, wi := range worlds {
			d := bits.OnesCount64(uint64(wr ^ wi))
			acc += probs[i] * weights[d]
		}
		a[r] = acc
		total += acc
	}
	return &Preprocessed{joint: j, pc: pc, answerP: a, total: total}, nil
}

// marginalizeRef is the reference Algorithm-2 marginalization: map-based
// grouping of the answer joint by task pattern, part masses in first-seen
// order.
func (p *Preprocessed) marginalizeRef(tasks []int) []float64 {
	worlds := p.joint.Worlds()
	acc := make(map[uint64]float64, len(worlds))
	order := make([]uint64, 0, len(worlds))
	for r, w := range worlds {
		pat := w.Pattern(tasks)
		if _, seen := acc[pat]; !seen {
			order = append(order, pat)
		}
		acc[pat] += p.answerP[r]
	}
	masses := make([]float64, len(order))
	for i, pat := range order {
		masses[i] = acc[pat]
	}
	return masses
}
