package core

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"
	"sync"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
)

// gainTolerance is the numeric floor below which a marginal entropy gain is
// treated as zero, triggering Algorithm 1's early stop (K* < k).
const gainTolerance = 1e-12

// Selector chooses a set of at most k fact-judgment tasks to post to the
// crowd, given the current output distribution and the crowd accuracy.
// Selectors may return fewer than k tasks when no further task yields
// positive gain (the paper's K* < k case).
type Selector interface {
	// Name identifies the selector in reports ("OPT", "Approx", ...).
	Name() string
	// Select returns the chosen fact indices (no duplicates).
	Select(j *dist.Joint, k int, pc float64) ([]int, error)
}

// optMaxSubsets caps the number of C(n, k) subsets the brute-force selector
// will enumerate; beyond this the caller is better served by the greedy
// approximation (the paper waited five days for OPT at k = 4).
const optMaxSubsets = 5_000_000

// OptSelector enumerates every size-k subset and returns the one maximizing
// the exact task entropy H(T). Exponential in k; intended for the running
// example, small instances, and the Table V / Figure 2 comparisons.
type OptSelector struct{}

// Name implements Selector.
func (OptSelector) Name() string { return "OPT" }

// Select implements Selector by exhaustive enumeration.
func (OptSelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	if k <= 0 {
		return nil, ErrNoTasks
	}
	n := j.N()
	if k > n {
		k = n
	}
	if k > MaxTasksPerRound {
		return nil, ErrTooManyTasks
	}
	if err := checkTasks(j, nil, pc); err != nil {
		return nil, err
	}
	count := binomial(n, k)
	if count.Cmp(big.NewInt(optMaxSubsets)) > 0 {
		return nil, fmt.Errorf("core: OPT would enumerate %s subsets (limit %d)",
			count.String(), optMaxSubsets)
	}

	best := make([]int, 0, k)
	bestH := math.Inf(-1)
	subset := make([]int, k)
	for i := range subset {
		subset[i] = i
	}
	for {
		h, err := TaskEntropy(j, subset, pc)
		if err != nil {
			return nil, err
		}
		if h > bestH+gainTolerance {
			bestH = h
			best = append(best[:0], subset...)
		}
		if !nextCombination(subset, n) {
			break
		}
	}
	return append([]int(nil), best...), nil
}

// nextCombination advances subset (sorted ascending, drawn from [0, n)) to
// the lexicographically next combination, returning false when exhausted.
func nextCombination(subset []int, n int) bool {
	k := len(subset)
	for i := k - 1; i >= 0; i-- {
		if subset[i] < n-k+i {
			subset[i]++
			for jj := i + 1; jj < k; jj++ {
				subset[jj] = subset[jj-1] + 1
			}
			return true
		}
	}
	return false
}

func binomial(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// GreedyOptions configures the approximation selector.
type GreedyOptions struct {
	// Prune enables the pruning strategy of Section III-E. The paper's
	// Theorem 3 bound as printed — H(T∪{f_j}) + log2(k-|T|-1) < max —
	// cannot behave as described for binary tasks: within one iteration
	// all candidates lie within one bit of each other, so any bound of
	// at least one bit never fires and any smaller bound can discard
	// facts a later iteration would want (quantified by the ablation
	// tests via LiteralPaperRule). We therefore realize the pruning
	// idea soundly through submodularity: a candidate's last computed
	// marginal gain upper-bounds all its future gains, so candidates
	// are kept in a max-heap of stale gains and only re-evaluated while
	// their stale bound beats the best fresh evaluation (lazy greedy).
	// This yields exactly the plain-greedy selections while evaluating
	// almost no candidates after the first iteration — the behaviour
	// the paper reports for Approx.&Prune in Table V.
	Prune bool
	// LiteralPaperRule switches pruning to the log2(k-|T|-1) rule
	// exactly as printed in Theorem 3, for ablation; it may change
	// selections.
	LiteralPaperRule bool
	// Preprocess enables the Section III-F acceleration: the answer
	// joint distribution is precomputed once per selection in O(|O|^2)
	// and every candidate evaluation becomes an O(|O|) partition scan
	// (Algorithm 2) instead of an exact O(2^|T|·|O|) channel computation.
	Preprocess bool
	// Float32 runs the butterfly channel stages of exact candidate
	// evaluation in float32 (half the cache traffic per 2^k cube). The
	// final entropy sum stays float64, so entropies differ from the
	// float64 path only around the 7th decimal; the argmax-stability
	// property tests measure whether that preserves selection ordering.
	// Only affects the pattern-cache path — preprocessed evaluation is
	// partition sums, not butterfly stages.
	Float32 bool
}

// GreedySelector implements Algorithm 1: iteratively add the task with the
// highest marginal entropy gain until k tasks are chosen or no task has
// positive gain. It achieves a (1 - 1/e) approximation of the optimal task
// entropy because conditional entropy is monotone submodular.
type GreedySelector struct {
	Options GreedyOptions
}

// NewGreedy returns a plain greedy selector (the paper's "Approx.").
func NewGreedy() *GreedySelector { return &GreedySelector{} }

// NewGreedyPrune returns greedy with pruning ("Approx.&Prune").
func NewGreedyPrune() *GreedySelector {
	return &GreedySelector{Options: GreedyOptions{Prune: true}}
}

// NewGreedyPre returns greedy with preprocessing ("Approx.&Pre.").
func NewGreedyPre() *GreedySelector {
	return &GreedySelector{Options: GreedyOptions{Preprocess: true}}
}

// NewGreedyPrunePre returns greedy with both accelerations
// ("Approx.&Prune&Pre.").
func NewGreedyPrunePre() *GreedySelector {
	return &GreedySelector{Options: GreedyOptions{Prune: true, Preprocess: true}}
}

// Name implements Selector.
func (g *GreedySelector) Name() string {
	var name string
	switch {
	case g.Options.Prune && g.Options.Preprocess:
		name = "Approx+Prune+Pre"
	case g.Options.Prune:
		name = "Approx+Prune"
	case g.Options.Preprocess:
		name = "Approx+Pre"
	default:
		name = "Approx"
	}
	if g.Options.Float32 {
		name += "+F32"
	}
	return name
}

// patternCache incrementally maintains each support world's answer pattern
// over the already-selected tasks, the exact-evaluation analogue of
// partition.refine: evaluating a candidate f ORs one more bit onto the
// cached patterns instead of recomputing World.Pattern over the whole
// selected set, so each evaluation costs O(|O| + k·2^k) via the butterfly
// instead of O(|O|·k + |O|·2^k).
type patternCache struct {
	j       *dist.Joint
	pc      float64
	f32     bool     // run channel stages in float32 (GreedyOptions.Float32)
	depth   int      // number of selected tasks folded into base
	base    []uint64 // per-support-world pattern on the selected set
	scratch *kernelScratch
}

func newPatternCache(j *dist.Joint, pc float64, f32 bool) *patternCache {
	return &patternCache{
		j:       j,
		pc:      pc,
		f32:     f32,
		base:    make([]uint64, j.SupportSize()),
		scratch: getScratch(),
	}
}

// release returns the pooled scratch; the cache must not be used after.
func (c *patternCache) release() { putScratch(c.scratch) }

// entropyWith returns the exact H(selected ∪ {f}): the cached base
// patterns extended by candidate f's judgment bit, scattered densely and
// pushed through the butterfly channel. Entropy is invariant to the bit
// order of the patterns, so folding f into the top bit matches
// TaskEntropy(j, append(selected, f), pc) exactly.
func (c *patternCache) entropyWith(f int) float64 {
	if c.f32 {
		return c.entropyWith32(f)
	}
	k := c.depth + 1
	dense := c.scratch.denseZero(1 << uint(k))
	worlds := c.j.Worlds()
	probs := c.j.Probs()
	bit := uint64(1) << uint(c.depth)
	for i, w := range worlds {
		p := c.base[i]
		if w.Has(f) {
			p |= bit
		}
		dense[p] += probs[i]
	}
	if c.pc != 1 {
		bscButterfly(dense, k, c.pc)
	}
	return info.Entropy(dense)
}

// entropyWith32 is entropyWith over the float32 stage variant: masses are
// scattered and convolved in float32, and only the final entropy reduction
// runs in float64.
func (c *patternCache) entropyWith32(f int) float64 {
	k := c.depth + 1
	dense := c.scratch.denseZero32(1 << uint(k))
	worlds := c.j.Worlds()
	probs := c.j.Probs()
	bit := uint64(1) << uint(c.depth)
	for i, w := range worlds {
		p := c.base[i]
		if w.Has(f) {
			p |= bit
		}
		dense[p] += float32(probs[i])
	}
	if c.pc != 1 {
		bscButterfly32(dense, k, float32(c.pc))
	}
	return entropy32(dense)
}

// pick folds the chosen fact into the cached patterns.
func (c *patternCache) pick(f int) {
	bit := uint64(1) << uint(c.depth)
	for i, w := range c.j.Worlds() {
		if w.Has(f) {
			c.base[i] |= bit
		}
	}
	c.depth++
}

// Select implements Selector.
func (g *GreedySelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	return g.selectPlan(j, k, pc, nil)
}

// selectPlan is Select with an optional shared channel plan: a
// BatchSelector computes the (pc, k)-dependent setup once per group and
// hands it to every member's greedy pass. A nil plan computes the same
// values inline; every plan value is a pure function of (pc, k) and the
// instance's fact count, so the planned and unplanned paths are
// bit-identical (the batch differential tests assert this).
func (g *GreedySelector) selectPlan(j *dist.Joint, k int, pc float64, plan *ChannelPlan) ([]int, error) {
	if k <= 0 {
		return nil, ErrNoTasks
	}
	n := j.N()
	if k > n {
		k = n
	}
	if k > MaxTasksPerRound {
		return nil, ErrTooManyTasks
	}
	if err := checkTasks(j, nil, pc); err != nil {
		return nil, err
	}

	var pre *Preprocessed
	var part partition
	var preScratch *kernelScratch
	var cache *patternCache
	if g.Options.Preprocess {
		var err error
		pre, err = preprocessPlan(j, pc, 0, plan)
		if err != nil {
			return nil, err
		}
		preScratch = getScratch()
		defer putScratch(preScratch)
		part = newPartition(j.SupportSize(), preScratch)
	} else {
		cache = newPatternCache(j, pc, g.Options.Float32)
		defer cache.release()
	}
	eval := func(f int) (float64, error) {
		if g.Options.Preprocess {
			return pre.entropyAfter(preScratch, &part, f), nil
		}
		return cache.entropyWith(f), nil
	}
	onPick := func(f int) {
		if g.Options.Preprocess {
			part.refine(j.Worlds(), f)
		} else {
			cache.pick(f)
		}
	}
	// In preprocessed mode the Algorithm-2 entropies are approximate on
	// sparse supports; before letting an (approximate) vanishing gain end
	// the selection early, confirm it with one exact evaluation so the
	// acceleration cannot silently shrink K*.
	confirmStop := func(selected []int, f int) (bool, error) {
		if !g.Options.Preprocess {
			return true, nil
		}
		base, err := TaskEntropy(j, selected, pc)
		if err != nil {
			return false, err
		}
		with, err := TaskEntropy(j, append(append([]int(nil), selected...), f), pc)
		if err != nil {
			return false, err
		}
		return with-base-info.Binary(pc) <= gainTolerance, nil
	}

	// A selected task's answer always carries the crowd's own noise
	// entropy; only the excess over it improves utility (Definition 5:
	// ΔQ = H(T) - |T|·H(Crowd)). The loop stops when no task's net gain
	// is positive — by Theorem 2 exactly when every remaining fact is
	// already certain.
	noiseFloor := plan.noiseFloor(pc)

	selected := make([]int, 0, k)
	inSet := make([]bool, n)
	currentH := 0.0 // H(T) for the running task set

	if g.Options.Prune && !g.Options.LiteralPaperRule {
		return g.selectLazy(j, k, eval, confirmStop, onPick, noiseFloor)
	}

	pruned := make([]bool, n)
	for len(selected) < k {
		bestFact := -1
		bestH := math.Inf(-1)
		remaining := k - len(selected) - 1 // selections after this one
		evaluatedAny := false

		for f := 0; f < n; f++ {
			if inSet[f] || pruned[f] {
				continue
			}
			h, err := eval(f)
			if err != nil {
				return nil, err
			}
			if h > bestH {
				bestH = h
				bestFact = f
			}
			// Theorem 3 as printed, for ablation only: prune any
			// fact whose entropy plus log2(remaining picks) cannot
			// reach the incumbent. The first candidate of each
			// iteration seeds the incumbent and is never pruned.
			if g.Options.Prune && g.Options.LiteralPaperRule &&
				evaluatedAny && remaining > 0 {
				if h+math.Log2(float64(remaining)) < bestH-gainTolerance {
					pruned[f] = true
				}
			}
			evaluatedAny = true
		}
		if bestFact < 0 {
			break // every remaining fact pruned
		}
		if bestH-currentH-noiseFloor <= gainTolerance {
			stop, err := confirmStop(selected, bestFact)
			if err != nil {
				return nil, err
			}
			if stop {
				break // Theorem 2: no uncertain fact remains; K* < k
			}
		}
		selected = append(selected, bestFact)
		inSet[bestFact] = true
		currentH = bestH
		onPick(bestFact)
	}
	sort.Ints(selected)
	return selected, nil
}

// selectLazy is the sound realization of the pruning strategy: lazy greedy
// over stale marginal gains. Submodularity of H guarantees a candidate's
// previously computed gain upper-bounds its gain against any larger task
// set, so candidates whose stale gain cannot beat the best fresh evaluation
// are skipped without re-evaluation — the "prune" of Section III-E.
func (g *GreedySelector) selectLazy(
	j *dist.Joint, k int,
	eval func(f int) (float64, error),
	confirmStop func(selected []int, f int) (bool, error),
	onPick func(f int),
	noiseFloor float64,
) ([]int, error) {
	n := j.N()
	type cand struct {
		fact  int
		gain  float64 // stale upper bound on the marginal gain
		round int     // iteration the bound was computed in
	}
	heap := make([]cand, 0, n)
	push := func(c cand) {
		heap = append(heap, c)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].gain >= heap[i].gain {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() cand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l].gain > heap[big].gain {
				big = l
			}
			if r < len(heap) && heap[r].gain > heap[big].gain {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
		return top
	}

	for f := 0; f < n; f++ {
		push(cand{fact: f, gain: math.Inf(1), round: -1})
	}
	selected := make([]int, 0, k)
	currentH := 0.0
	for round := 0; len(selected) < k && len(heap) > 0; round++ {
		var chosen cand
		for {
			top := pop()
			if top.round == round {
				// Fresh evaluation already on top: it dominates
				// every stale bound below it.
				chosen = top
				break
			}
			h, err := eval(top.fact)
			if err != nil {
				return nil, err
			}
			top.gain = h - currentH
			top.round = round
			if len(heap) == 0 || top.gain >= heap[0].gain-gainTolerance {
				chosen = top
				break
			}
			push(top)
		}
		if chosen.gain-noiseFloor <= gainTolerance {
			stop, err := confirmStop(selected, chosen.fact)
			if err != nil {
				return nil, err
			}
			if stop {
				break // no remaining task nets positive utility
			}
		}
		selected = append(selected, chosen.fact)
		currentH += chosen.gain
		onPick(chosen.fact)
	}
	sort.Ints(selected)
	return selected, nil
}

// RandomSelector picks k distinct facts uniformly at random — the baseline
// the paper's Figures 2-4 compare against. A mutex serializes draws from
// the shared stream, so one selector may serve concurrently stepped
// instances (parallel sweeps) without racing; for reproducible parallel
// runs give each instance its own seeded selector, as eval.RunSweep does.
type RandomSelector struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a random selector seeded deterministically.
func NewRandom(seed int64) *RandomSelector {
	return &RandomSelector{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Selector.
func (r *RandomSelector) Name() string { return "Random" }

// Select implements Selector with a partial Fisher–Yates draw: only the k
// drawn positions of the virtual permutation are materialized (in a sparse
// swap map), so a draw costs O(k) time and memory instead of the O(n) of a
// full rand.Perm — the usual regime is k ≪ n.
func (r *RandomSelector) Select(j *dist.Joint, k int, pc float64) ([]int, error) {
	if k <= 0 {
		return nil, ErrNoTasks
	}
	if err := checkTasks(j, nil, pc); err != nil {
		return nil, err
	}
	n := j.N()
	if k > n {
		k = n
	}
	if k > MaxTasksPerRound {
		return nil, ErrTooManyTasks
	}
	picked := make([]int, k)
	swap := make(map[int]int, k)
	r.mu.Lock()
	for i := 0; i < k; i++ {
		t := i + r.rng.Intn(n-i)
		vt, ok := swap[t]
		if !ok {
			vt = t
		}
		vi, ok := swap[i]
		if !ok {
			vi = i
		}
		picked[i] = vt
		swap[t] = vi
	}
	r.mu.Unlock()
	sort.Ints(picked)
	return picked, nil
}
