// Package crowd implements the crowdsourcing model of Section II-B of the
// CrowdFusion paper: workers answer true/false judgment tasks independently
// with accuracy Pc ∈ [0.5, 1], so each answer is a Bernoulli sample whose
// success probability is Pc when the underlying fact is true and 1-Pc when
// it is false.
//
// Beyond the paper's shared-accuracy model the package provides the pieces a
// real deployment needs and the paper describes in passing: heterogeneous
// worker pools, redundancy with majority aggregation, accuracy estimation
// from a small set of gold (ground-truth) sample tasks, and the per-statement
// difficulty classes from the paper's error analysis (Section V-D).
package crowd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowdfusion/internal/dist"
)

var (
	// ErrAccuracyRange is returned when an accuracy lies outside [0.5, 1].
	ErrAccuracyRange = errors.New("crowd: accuracy must be in [0.5, 1]")
	// ErrNoWorkers is returned by pool operations on an empty pool.
	ErrNoWorkers = errors.New("crowd: pool has no workers")
	// ErrNoGold is returned when estimating accuracy with no gold tasks.
	ErrNoGold = errors.New("crowd: no gold tasks to estimate from")
)

// Answer is a single crowd judgment of one fact.
type Answer struct {
	Fact   int    // fact index the task asked about
	Value  bool   // the crowd's true/false judgment
	Worker string // identifier of the answering worker ("" for aggregate answers)
}

// Model is the paper's Definition 2 crowd: a single shared accuracy Pc.
// Answers to distinct tasks are independent.
type Model struct {
	Pc float64
}

// NewModel validates and returns a crowd model with accuracy pc.
func NewModel(pc float64) (Model, error) {
	if pc < 0.5 || pc > 1 || math.IsNaN(pc) {
		return Model{}, ErrAccuracyRange
	}
	return Model{Pc: pc}, nil
}

// Sample returns one crowd judgment of a fact whose ground truth is truth:
// correct with probability Pc, flipped otherwise.
func (m Model) Sample(rng *rand.Rand, truth bool) bool {
	if rng.Float64() < m.Pc {
		return truth
	}
	return !truth
}

// Entropy returns H(Crowd) from Equation 1 of the paper.
func (m Model) Entropy() float64 {
	p := m.Pc
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Simulator produces crowd answers for tasks against a hidden ground-truth
// world, standing in for a live platform such as gMission. The base accuracy
// applies to every task unless a per-task override is present (used to model
// the hard statement classes of Section V-D, whose observed correct rates
// hover near or below 0.5).
type Simulator struct {
	Truth    dist.World      // hidden ground-truth judgment of every fact
	Base     Model           // shared crowd accuracy
	PerTask  map[int]float64 // optional per-fact accuracy overrides
	rng      *rand.Rand
	askCount int
}

// NewSimulator builds a deterministic simulator from a seed.
func NewSimulator(truth dist.World, pc float64, seed int64) (*Simulator, error) {
	m, err := NewModel(pc)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		Truth: truth,
		Base:  m,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// SetTaskAccuracy overrides the accuracy for a single fact's task. Unlike
// the pool-level model, overrides may dip below 0.5 — the paper observed
// misspelled author lists answered correctly less than half the time.
func (s *Simulator) SetTaskAccuracy(fact int, pc float64) error {
	if pc < 0 || pc > 1 || math.IsNaN(pc) {
		return fmt.Errorf("crowd: task accuracy %v out of [0,1]", pc)
	}
	if s.PerTask == nil {
		s.PerTask = make(map[int]float64)
	}
	s.PerTask[fact] = pc
	return nil
}

// accuracyFor returns the effective accuracy used for a fact's task.
func (s *Simulator) accuracyFor(fact int) float64 {
	if pc, ok := s.PerTask[fact]; ok {
		return pc
	}
	return s.Base.Pc
}

// Answers asks the simulated crowd the given tasks and returns one judgment
// per task. Every call consumes randomness; answers across calls and across
// tasks are independent, matching Definition 2.
func (s *Simulator) Answers(tasks []int) []bool {
	out := make([]bool, len(tasks))
	for i, f := range tasks {
		truth := s.Truth.Has(f)
		if s.rng.Float64() < s.accuracyFor(f) {
			out[i] = truth
		} else {
			out[i] = !truth
		}
		s.askCount++
	}
	return out
}

// Asked returns the total number of task answers produced so far (the cost
// counter used by the budget experiments).
func (s *Simulator) Asked() int { return s.askCount }

// Worker is one crowd member with an individual accuracy and optional
// per-domain accuracies (real workers are reliable only in familiar domains,
// as the paper's eCampus.com example illustrates).
type Worker struct {
	ID        string
	Accuracy  float64
	PerDomain map[string]float64
}

// AccuracyIn returns the worker's accuracy for a domain, falling back to the
// general accuracy when the worker has no domain-specific figure.
func (w Worker) AccuracyIn(domain string) float64 {
	if a, ok := w.PerDomain[domain]; ok {
		return a
	}
	return w.Accuracy
}

// Pool is a set of workers from which task assignments are drawn.
type Pool struct {
	workers []Worker
}

// NewPool validates worker accuracies and builds a pool.
func NewPool(workers []Worker) (*Pool, error) {
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	for _, w := range workers {
		if w.Accuracy < 0.5 || w.Accuracy > 1 || math.IsNaN(w.Accuracy) {
			return nil, fmt.Errorf("%w: worker %q has accuracy %v",
				ErrAccuracyRange, w.ID, w.Accuracy)
		}
	}
	p := &Pool{workers: append([]Worker(nil), workers...)}
	sort.Slice(p.workers, func(i, j int) bool { return p.workers[i].ID < p.workers[j].ID })
	return p, nil
}

// RandomPool generates size workers whose accuracies are drawn uniformly
// from [lo, hi] ⊆ [0.5, 1], deterministically from the seed.
func RandomPool(size int, lo, hi float64, seed int64) (*Pool, error) {
	if size <= 0 {
		return nil, ErrNoWorkers
	}
	if lo < 0.5 || hi > 1 || lo > hi {
		return nil, ErrAccuracyRange
	}
	rng := rand.New(rand.NewSource(seed))
	workers := make([]Worker, size)
	for i := range workers {
		workers[i] = Worker{
			ID:       fmt.Sprintf("w%03d", i),
			Accuracy: lo + rng.Float64()*(hi-lo),
		}
	}
	return NewPool(workers)
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Workers returns the pool's workers sorted by ID. The slice is shared;
// callers must not modify it.
func (p *Pool) Workers() []Worker { return p.workers }

// Draw picks one worker uniformly at random.
func (p *Pool) Draw(rng *rand.Rand) Worker {
	return p.workers[rng.Intn(len(p.workers))]
}

// MeanAccuracy returns the average worker accuracy — the effective shared Pc
// if every task is answered by one uniformly drawn worker.
func (p *Pool) MeanAccuracy() float64 {
	var sum float64
	for _, w := range p.workers {
		sum += w.Accuracy
	}
	return sum / float64(len(p.workers))
}

// MajorityAnswer assigns the task to r distinct randomly drawn workers
// (r capped at the pool size and rounded up to odd) and returns the majority
// judgment along with the individual answers.
func (p *Pool) MajorityAnswer(rng *rand.Rand, fact int, truth bool, r int) (bool, []Answer) {
	if r < 1 {
		r = 1
	}
	if r > len(p.workers) {
		r = len(p.workers)
	}
	if r%2 == 0 {
		r--
		if r < 1 {
			r = 1
		}
	}
	perm := rng.Perm(len(p.workers))[:r]
	answers := make([]Answer, r)
	votes := 0
	for i, wi := range perm {
		w := p.workers[wi]
		v := truth
		if rng.Float64() >= w.Accuracy {
			v = !truth
		}
		answers[i] = Answer{Fact: fact, Value: v, Worker: w.ID}
		if v == truth {
			votes++
		}
	}
	// Majority of r answers; ties impossible since r is odd.
	correct := votes*2 > r
	majority := truth
	if !correct {
		majority = !truth
	}
	return majority, answers
}

// MajorityAccuracy returns the analytic accuracy of a majority vote over r
// independent answers each with accuracy pc: the probability that more than
// half of r Bernoulli(pc) trials succeed. r is rounded up to odd.
func MajorityAccuracy(pc float64, r int) float64 {
	if r < 1 {
		r = 1
	}
	if r%2 == 0 {
		r++
	}
	need := r/2 + 1
	var total float64
	for k := need; k <= r; k++ {
		total += binomPMF(r, k, pc)
	}
	return total
}

// binomPMF returns C(n,k) p^k (1-p)^(n-k) computed in log space for
// stability.
func binomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// EstimatePc estimates crowd accuracy from gold sample tasks: answers[i] is
// the crowd's judgment of a task whose known truth is gold[i]. A Laplace
// (add-one) smoothed rate is returned, clamped into the model's legal range
// [0.5, 1]. The paper recommends exactly this pre-test against ground truth
// before choosing Pc (Section V-C3).
func EstimatePc(gold, answers []bool) (float64, error) {
	if len(gold) == 0 && len(answers) == 0 {
		return 0, ErrNoGold
	}
	if len(gold) != len(answers) {
		return 0, fmt.Errorf("crowd: %d gold labels but %d answers", len(gold), len(answers))
	}
	correct := 0
	for i := range gold {
		if gold[i] == answers[i] {
			correct++
		}
	}
	est := (float64(correct) + 1) / (float64(len(gold)) + 2)
	if est < 0.5 {
		est = 0.5
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// WilsonInterval returns the Wilson score interval for the true accuracy
// given correct successes out of total trials at ~95% confidence. It is the
// interval a deployment would report next to the point estimate.
//
// Zero support (total <= 0) is total ignorance: the interval is [0, 1],
// never NaN. Inconsistent counts are clamped into 0 <= correct <= total
// rather than poisoning the square root below with a negative operand.
func WilsonInterval(correct, total int) (lo, hi float64) {
	if total <= 0 {
		return 0, 1
	}
	if correct < 0 {
		correct = 0
	}
	if correct > total {
		correct = total
	}
	const z = 1.96
	n := float64(total)
	phat := float64(correct) / n
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
