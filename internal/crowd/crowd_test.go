package crowd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdfusion/internal/dist"
)

func TestNewModel(t *testing.T) {
	for _, pc := range []float64{0.5, 0.7, 1.0} {
		if _, err := NewModel(pc); err != nil {
			t.Errorf("NewModel(%v) rejected: %v", pc, err)
		}
	}
	for _, pc := range []float64{0.49, -1, 1.01, math.NaN()} {
		if _, err := NewModel(pc); err != ErrAccuracyRange {
			t.Errorf("NewModel(%v) err = %v, want ErrAccuracyRange", pc, err)
		}
	}
}

func TestModelEntropy(t *testing.T) {
	m, _ := NewModel(0.8)
	if got := m.Entropy(); math.Abs(got-0.7219280948873623) > 1e-12 {
		t.Errorf("H(Crowd) at 0.8 = %v", got)
	}
	perfect, _ := NewModel(1.0)
	if perfect.Entropy() != 0 {
		t.Error("perfect crowd should have zero entropy")
	}
	coin, _ := NewModel(0.5)
	if math.Abs(coin.Entropy()-1) > 1e-12 {
		t.Error("random crowd should have one bit of entropy")
	}
}

func TestModelSampleRate(t *testing.T) {
	m, _ := NewModel(0.8)
	rng := rand.New(rand.NewSource(1))
	const trials = 200000
	correct := 0
	for i := 0; i < trials; i++ {
		truth := i%2 == 0
		if m.Sample(rng, truth) == truth {
			correct++
		}
	}
	rate := float64(correct) / trials
	if math.Abs(rate-0.8) > 0.005 {
		t.Errorf("empirical accuracy = %v, want ~0.8", rate)
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	truth := dist.World(0b1011)
	a, err := NewSimulator(truth, 0.8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSimulator(truth, 0.8, 42)
	tasks := []int{0, 1, 2, 3, 0, 1}
	ansA := a.Answers(tasks)
	ansB := b.Answers(tasks)
	for i := range ansA {
		if ansA[i] != ansB[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if a.Asked() != len(tasks) {
		t.Errorf("Asked = %d, want %d", a.Asked(), len(tasks))
	}
}

func TestSimulatorAccuracy(t *testing.T) {
	truth := dist.World(0b0101)
	s, err := NewSimulator(truth, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 100000
	correct := 0
	for i := 0; i < trials; i++ {
		ans := s.Answers([]int{i % 4})
		if ans[0] == truth.Has(i%4) {
			correct++
		}
	}
	rate := float64(correct) / trials
	if math.Abs(rate-0.9) > 0.005 {
		t.Errorf("simulator accuracy = %v, want ~0.9", rate)
	}
}

func TestSimulatorPerTaskOverride(t *testing.T) {
	truth := dist.World(0b1)
	s, err := NewSimulator(truth, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fact 0 is made adversarially hard: workers are wrong 70% of the time.
	if err := s.SetTaskAccuracy(0, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTaskAccuracy(0, 1.5); err == nil {
		t.Error("out-of-range override accepted")
	}
	const trials = 50000
	correct := 0
	for i := 0; i < trials; i++ {
		if s.Answers([]int{0})[0] == true {
			correct++
		}
	}
	rate := float64(correct) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("override accuracy = %v, want ~0.3", rate)
	}
}

func TestSimulatorRejectsBadPc(t *testing.T) {
	if _, err := NewSimulator(0, 0.3, 1); err != ErrAccuracyRange {
		t.Errorf("NewSimulator(pc=0.3) err = %v", err)
	}
}

func TestPoolConstruction(t *testing.T) {
	if _, err := NewPool(nil); err != ErrNoWorkers {
		t.Errorf("empty pool err = %v", err)
	}
	if _, err := NewPool([]Worker{{ID: "a", Accuracy: 0.4}}); err == nil {
		t.Error("sub-0.5 worker accepted")
	}
	p, err := NewPool([]Worker{
		{ID: "b", Accuracy: 0.8},
		{ID: "a", Accuracy: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Errorf("Size = %d", p.Size())
	}
	// Sorted by ID for determinism.
	if p.Workers()[0].ID != "a" {
		t.Errorf("workers not sorted: %v", p.Workers())
	}
	if got := p.MeanAccuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("MeanAccuracy = %v, want 0.7", got)
	}
}

func TestRandomPool(t *testing.T) {
	p, err := RandomPool(50, 0.6, 0.95, 11)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 50 {
		t.Fatalf("Size = %d", p.Size())
	}
	for _, w := range p.Workers() {
		if w.Accuracy < 0.6 || w.Accuracy > 0.95 {
			t.Errorf("worker %s accuracy %v outside [0.6, 0.95]", w.ID, w.Accuracy)
		}
	}
	if _, err := RandomPool(0, 0.6, 0.9, 1); err != ErrNoWorkers {
		t.Errorf("RandomPool(0) err = %v", err)
	}
	if _, err := RandomPool(5, 0.4, 0.9, 1); err != ErrAccuracyRange {
		t.Errorf("RandomPool(lo<0.5) err = %v", err)
	}
	// Determinism.
	q, _ := RandomPool(50, 0.6, 0.95, 11)
	for i := range p.Workers() {
		if p.Workers()[i].Accuracy != q.Workers()[i].Accuracy {
			t.Fatal("RandomPool not deterministic")
		}
	}
}

func TestWorkerDomainAccuracy(t *testing.T) {
	w := Worker{ID: "x", Accuracy: 0.9,
		PerDomain: map[string]float64{"non-textbook": 0.55}}
	if got := w.AccuracyIn("textbook"); got != 0.9 {
		t.Errorf("fallback accuracy = %v", got)
	}
	if got := w.AccuracyIn("non-textbook"); got != 0.55 {
		t.Errorf("domain accuracy = %v", got)
	}
}

func TestMajorityAnswer(t *testing.T) {
	p, err := RandomPool(30, 0.8, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const trials = 20000
	correct := 0
	for i := 0; i < trials; i++ {
		truth := i%2 == 0
		got, answers := p.MajorityAnswer(rng, 3, truth, 5)
		if len(answers) != 5 {
			t.Fatalf("redundancy = %d answers", len(answers))
		}
		for _, a := range answers {
			if a.Fact != 3 {
				t.Fatalf("answer for wrong fact %d", a.Fact)
			}
		}
		if got == truth {
			correct++
		}
	}
	rate := float64(correct) / trials
	want := MajorityAccuracy(0.8, 5) // 0.94208
	if math.Abs(rate-want) > 0.01 {
		t.Errorf("majority accuracy = %v, want ~%v", rate, want)
	}
}

func TestMajorityAnswerEdgeCases(t *testing.T) {
	p, _ := RandomPool(4, 0.9, 0.9, 1)
	rng := rand.New(rand.NewSource(2))
	// Redundancy above pool size is capped (and made odd).
	_, answers := p.MajorityAnswer(rng, 0, true, 99)
	if len(answers) != 3 {
		t.Errorf("capped redundancy = %d, want 3", len(answers))
	}
	// Non-positive redundancy becomes 1.
	_, answers = p.MajorityAnswer(rng, 0, true, 0)
	if len(answers) != 1 {
		t.Errorf("zero redundancy = %d answers, want 1", len(answers))
	}
	// Even redundancy is rounded down to odd.
	_, answers = p.MajorityAnswer(rng, 0, true, 4)
	if len(answers) != 3 {
		t.Errorf("even redundancy = %d answers, want 3", len(answers))
	}
}

func TestMajorityAccuracy(t *testing.T) {
	// r=1 is the base accuracy.
	if got := MajorityAccuracy(0.8, 1); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("MajorityAccuracy(0.8,1) = %v", got)
	}
	// Known value: 3 workers at 0.8 -> 0.8^3 + 3*0.8^2*0.2 = 0.896.
	if got := MajorityAccuracy(0.8, 3); math.Abs(got-0.896) > 1e-9 {
		t.Errorf("MajorityAccuracy(0.8,3) = %v, want 0.896", got)
	}
	// Even r rounds up.
	if got := MajorityAccuracy(0.8, 2); math.Abs(got-0.896) > 1e-9 {
		t.Errorf("MajorityAccuracy(0.8,2) = %v, want 0.896", got)
	}
	// Degenerate accuracies.
	if got := MajorityAccuracy(1, 5); got != 1 {
		t.Errorf("MajorityAccuracy(1,5) = %v", got)
	}
	if got := MajorityAccuracy(0, 5); got != 0 {
		t.Errorf("MajorityAccuracy(0,5) = %v", got)
	}
}

func TestMajorityAccuracyMonotoneInRedundancy(t *testing.T) {
	// For pc > 0.5, adding redundancy never hurts.
	f := func(pcRaw float64, rRaw uint8) bool {
		pc := 0.5 + math.Mod(math.Abs(pcRaw), 0.5)
		r := 1 + int(rRaw)%10
		return MajorityAccuracy(pc, r+2) >= MajorityAccuracy(pc, r)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimatePc(t *testing.T) {
	gold := []bool{true, false, true, true, false, true, false, true}
	// Crowd gets 7 of 8 right.
	answers := append([]bool(nil), gold...)
	answers[0] = !answers[0]
	est, err := EstimatePc(gold, answers)
	if err != nil {
		t.Fatal(err)
	}
	want := (7.0 + 1) / (8 + 2)
	if math.Abs(est-want) > 1e-12 {
		t.Errorf("EstimatePc = %v, want %v", est, want)
	}
	// All wrong still clamps to the legal crowd range.
	allWrong := make([]bool, len(gold))
	for i := range gold {
		allWrong[i] = !gold[i]
	}
	est, err = EstimatePc(gold, allWrong)
	if err != nil {
		t.Fatal(err)
	}
	if est != 0.5 {
		t.Errorf("EstimatePc(all wrong) = %v, want clamp to 0.5", est)
	}
	if _, err := EstimatePc(nil, nil); err != ErrNoGold {
		t.Errorf("EstimatePc(no gold) err = %v", err)
	}
	if _, err := EstimatePc(gold, gold[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEstimatePcRecovers(t *testing.T) {
	// A large gold set recovers the true accuracy to within a point.
	truth := dist.World(0)
	for i := 0; i < 32; i += 2 {
		truth = truth.Set(i, true)
	}
	s, _ := NewSimulator(truth, 0.86, 77) // paper's observed worker rate
	n := 5000
	gold := make([]bool, n)
	answers := make([]bool, n)
	for i := 0; i < n; i++ {
		f := i % 32
		gold[i] = truth.Has(f)
		answers[i] = s.Answers([]int{f})[0]
	}
	est, err := EstimatePc(gold, answers)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-0.86) > 0.02 {
		t.Errorf("recovered Pc = %v, want ~0.86", est)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(86, 100)
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	if lo > 0.86 || hi < 0.86 {
		t.Errorf("interval [%v, %v] excludes the point estimate", lo, hi)
	}
	// Wider with less data.
	lo2, hi2 := WilsonInterval(9, 10)
	if hi2-lo2 <= hi-lo {
		t.Error("interval did not widen with fewer trials")
	}
	lo3, hi3 := WilsonInterval(0, 0)
	if lo3 != 0 || hi3 != 1 {
		t.Errorf("no-data interval = [%v, %v], want [0, 1]", lo3, hi3)
	}
}

func TestErrorClassString(t *testing.T) {
	want := map[ErrorClass]string{
		Easy:           "easy",
		WrongOrder:     "wrong-order",
		AdditionalInfo: "additional-info",
		Misspelling:    "misspelling",
		ErrorClass(99): "ErrorClass(99)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if len(ErrorClasses) != 4 {
		t.Errorf("ErrorClasses has %d entries", len(ErrorClasses))
	}
}

func TestDifficultyProfile(t *testing.T) {
	p := DefaultDifficulty()
	base := 0.86 // the paper's observed worker accuracy

	easy := p.EffectiveAccuracy(Easy, base)
	if math.Abs(easy-base) > 1e-12 {
		t.Errorf("easy accuracy = %v, want %v", easy, base)
	}
	order := p.EffectiveAccuracy(WrongOrder, base)
	if order <= 0.5 || order >= 0.62 {
		t.Errorf("wrong-order accuracy = %v, want slightly above 0.5", order)
	}
	addl := p.EffectiveAccuracy(AdditionalInfo, base)
	// Paper: >40% of workers judge such statements incorrectly.
	if 1-addl < 0.3 {
		t.Errorf("additional-info wrong rate = %v, want a large minority", 1-addl)
	}
	miss := p.EffectiveAccuracy(Misspelling, base)
	if miss >= 0.5 {
		t.Errorf("misspelling accuracy = %v, want below 0.5", miss)
	}
	// Unknown class falls back to base accuracy.
	if got := p.EffectiveAccuracy(ErrorClass(42), base); got != base {
		t.Errorf("unknown class accuracy = %v, want base", got)
	}
	// Clamping.
	hot := DifficultyProfile{Multipliers: map[ErrorClass]float64{Easy: 10}}
	if got := hot.EffectiveAccuracy(Easy, 0.9); got != 1 {
		t.Errorf("unclamped accuracy %v", got)
	}
	cold := DifficultyProfile{Multipliers: map[ErrorClass]float64{Easy: -10}}
	if got := cold.EffectiveAccuracy(Easy, 0.9); got != 0 {
		t.Errorf("unclamped low accuracy %v", got)
	}
}
