package crowd

import (
	"fmt"
	"math"
	"sort"
)

// Full Dawid-Skene estimation with asymmetric worker confusion: each
// worker has a sensitivity (probability of answering "true" on a true
// fact) and a specificity (probability of answering "false" on a false
// fact). The symmetric model of EstimateEM cannot represent workers who
// are biased toward one answer — precisely the behaviour the paper's error
// analysis observed (over 40% of workers judging additional-info
// statements "true" while judging most other statements correctly).

// ConfusionEstimate holds per-worker confusion parameters and per-task
// posteriors.
type ConfusionEstimate struct {
	// Sensitivity maps worker ID to P(answer true | fact true).
	Sensitivity map[string]float64
	// Specificity maps worker ID to P(answer false | fact false).
	Specificity map[string]float64
	// TaskPosterior maps fact index to P(fact true | answers).
	TaskPosterior map[int]float64
	// Prior is the estimated fraction of true facts.
	Prior float64
	// Iterations actually run.
	Iterations int
}

// Accuracy returns a worker's balanced accuracy (mean of sensitivity and
// specificity), the scalar most comparable to the symmetric model's Pc.
func (e *ConfusionEstimate) Accuracy(worker string) float64 {
	return (e.Sensitivity[worker] + e.Specificity[worker]) / 2
}

// Bias returns sensitivity minus specificity: positive for workers biased
// toward answering "true", negative for "false"-biased workers, near zero
// for symmetric ones.
func (e *ConfusionEstimate) Bias(worker string) float64 {
	return e.Sensitivity[worker] - e.Specificity[worker]
}

// Workers returns the estimated worker IDs, sorted.
func (e *ConfusionEstimate) Workers() []string {
	out := make([]string, 0, len(e.Sensitivity))
	for w := range e.Sensitivity {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// EstimateDawidSkene runs EM with per-worker sensitivity/specificity on a
// redundant answer log. Options are shared with the symmetric estimator.
func EstimateDawidSkene(answers []Answer, opts EMOptions) (*ConfusionEstimate, error) {
	if len(answers) == 0 {
		return nil, ErrNoAnswers
	}
	opts = opts.normalized()

	workerIDs := make([]string, 0)
	workerIdx := make(map[string]int)
	taskIDs := make([]int, 0)
	taskIdx := make(map[int]int)
	for _, a := range answers {
		if a.Worker == "" {
			return nil, fmt.Errorf("crowd: answer for fact %d has no worker ID", a.Fact)
		}
		if _, ok := workerIdx[a.Worker]; !ok {
			workerIdx[a.Worker] = -1
			workerIDs = append(workerIDs, a.Worker)
		}
		if _, ok := taskIdx[a.Fact]; !ok {
			taskIdx[a.Fact] = -1
			taskIDs = append(taskIDs, a.Fact)
		}
	}
	sort.Strings(workerIDs)
	for i, w := range workerIDs {
		workerIdx[w] = i
	}
	sort.Ints(taskIDs)
	for i, f := range taskIDs {
		taskIdx[f] = i
	}

	type vote struct {
		w     int
		value bool
	}
	votes := make([][]vote, len(taskIDs))
	for _, a := range answers {
		fi := taskIdx[a.Fact]
		votes[fi] = append(votes[fi], vote{w: workerIdx[a.Worker], value: a.Value})
	}

	nW := len(workerIDs)
	sens := make([]float64, nW)
	spec := make([]float64, nW)
	for i := range sens {
		sens[i] = opts.InitAccuracy
		spec[i] = opts.InitAccuracy
	}
	// Majority-vote initialization of the posteriors — the original
	// Dawid & Skene recipe. Starting EM from the raw vote shares instead
	// of flat parameters avoids most of the spurious local optima that
	// plague confusion-matrix estimation with few workers per task.
	q := make([]float64, len(taskIDs))
	for fi, vs := range votes {
		trues := 0
		for _, v := range vs {
			if v.value {
				trues++
			}
		}
		q[fi] = (float64(trues) + 0.5) / (float64(len(vs)) + 1)
	}
	pi := 0.5

	clamp := func(x float64) float64 {
		if x < opts.ClampLo {
			return opts.ClampLo
		}
		if x > opts.ClampHi {
			return opts.ClampHi
		}
		return x
	}

	iters := 0
	for iter := 0; iter < opts.MaxIter; iter++ {
		iters = iter + 1
		// M-step from the current posteriors.
		sensNum := make([]float64, nW)
		sensDen := make([]float64, nW)
		specNum := make([]float64, nW)
		specDen := make([]float64, nW)
		for fi, vs := range votes {
			for _, v := range vs {
				sensDen[v.w] += q[fi]
				specDen[v.w] += 1 - q[fi]
				if v.value {
					sensNum[v.w] += q[fi]
				} else {
					specNum[v.w] += 1 - q[fi]
				}
			}
		}
		maxDelta := 0.0
		for wi := 0; wi < nW; wi++ {
			if sensDen[wi] > 0 {
				next := clamp(sensNum[wi] / sensDen[wi])
				if d := math.Abs(next - sens[wi]); d > maxDelta {
					maxDelta = d
				}
				sens[wi] = next
			}
			if specDen[wi] > 0 {
				next := clamp(specNum[wi] / specDen[wi])
				if d := math.Abs(next - spec[wi]); d > maxDelta {
					maxDelta = d
				}
				spec[wi] = next
			}
		}
		var sumQ float64
		for _, qf := range q {
			sumQ += qf
		}
		pi = sumQ / float64(len(q))
		if pi < 0.01 {
			pi = 0.01
		}
		if pi > 0.99 {
			pi = 0.99
		}
		// E-step with the updated parameters.
		for fi, vs := range votes {
			logT := math.Log(pi)
			logF := math.Log(1 - pi)
			for _, v := range vs {
				if v.value {
					logT += math.Log(sens[v.w])
					logF += math.Log(1 - spec[v.w])
				} else {
					logT += math.Log(1 - sens[v.w])
					logF += math.Log(spec[v.w])
				}
			}
			m := math.Max(logT, logF)
			q[fi] = math.Exp(logT-m) / (math.Exp(logT-m) + math.Exp(logF-m))
		}
		if maxDelta < opts.Tol {
			break
		}
	}

	// Canonicalize the label-flip symmetry (sens -> 1-sens,
	// spec -> 1-spec, q -> 1-q): report the branch with mean balanced
	// accuracy above chance.
	var mean float64
	for i := range sens {
		mean += (sens[i] + spec[i]) / 2
	}
	if mean/float64(nW) < 0.5 {
		for i := range sens {
			sens[i] = 1 - sens[i]
			spec[i] = 1 - spec[i]
		}
		for i := range q {
			q[i] = 1 - q[i]
		}
		pi = 1 - pi
	}

	est := &ConfusionEstimate{
		Sensitivity:   make(map[string]float64, nW),
		Specificity:   make(map[string]float64, nW),
		TaskPosterior: make(map[int]float64, len(taskIDs)),
		Prior:         pi,
		Iterations:    iters,
	}
	for i, w := range workerIDs {
		est.Sensitivity[w] = sens[i]
		est.Specificity[w] = spec[i]
	}
	for i, f := range taskIDs {
		est.TaskPosterior[f] = q[i]
	}
	return est, nil
}
