package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// plantAsymmetric simulates workers with distinct sensitivity/specificity.
// Truth is a []bool (task counts exceed the 64-fact World limit).
func plantAsymmetric(tb testing.TB, sens, spec []float64, nTasks int, seed int64) ([]Answer, []bool) {
	tb.Helper()
	if len(sens) != len(spec) {
		tb.Fatal("sens/spec length mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	truth := make([]bool, nTasks)
	for f := range truth {
		truth[f] = rng.Intn(2) == 0
	}
	var log []Answer
	for f := 0; f < nTasks; f++ {
		for wi := range sens {
			var v bool
			if truth[f] {
				v = rng.Float64() < sens[wi]
			} else {
				v = rng.Float64() >= spec[wi]
			}
			log = append(log, Answer{Fact: f, Value: v, Worker: fmt.Sprintf("w%02d", wi)})
		}
	}
	return log, truth
}

func TestDawidSkeneRecoversConfusion(t *testing.T) {
	sens := []float64{0.95, 0.70, 0.85, 0.60, 0.90}
	spec := []float64{0.90, 0.95, 0.65, 0.85, 0.75}
	log, _ := plantAsymmetric(t, sens, spec, 600, 3)
	est, err := EstimateDawidSkene(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for wi := range sens {
		id := fmt.Sprintf("w%02d", wi)
		if math.Abs(est.Sensitivity[id]-sens[wi]) > 0.06 {
			t.Errorf("%s sensitivity %.3f, true %.3f", id, est.Sensitivity[id], sens[wi])
		}
		if math.Abs(est.Specificity[id]-spec[wi]) > 0.06 {
			t.Errorf("%s specificity %.3f, true %.3f", id, est.Specificity[id], spec[wi])
		}
	}
	if len(est.Workers()) != 5 {
		t.Errorf("workers = %v", est.Workers())
	}
}

// TestDawidSkeneIdentifiesBias: a yes-biased worker (high sensitivity, low
// specificity) must show positive Bias; a balanced worker near zero.
func TestDawidSkeneIdentifiesBias(t *testing.T) {
	sens := []float64{0.95, 0.85, 0.85}
	spec := []float64{0.55, 0.85, 0.85}
	log, _ := plantAsymmetric(t, sens, spec, 500, 7)
	est, err := EstimateDawidSkene(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b := est.Bias("w00"); b < 0.2 {
		t.Errorf("yes-biased worker bias = %.3f, want >= 0.2", b)
	}
	if b := math.Abs(est.Bias("w01")); b > 0.1 {
		t.Errorf("balanced worker |bias| = %.3f, want < 0.1", b)
	}
	// Balanced accuracy of the biased worker is the mean.
	want := (sens[0] + spec[0]) / 2
	if math.Abs(est.Accuracy("w00")-want) > 0.06 {
		t.Errorf("balanced accuracy %.3f, want ~%.3f", est.Accuracy("w00"), want)
	}
}

// TestDawidSkeneBeatsSymmetricOnBiasedCrowd: when every worker answers
// "true" far too eagerly (specificity near a coin flip), the symmetric
// model mistakes the agreement on false facts for accuracy and labels
// nearly everything true; the asymmetric model knows yes-votes are weak
// evidence. Aggregated over seeds for stability.
func TestDawidSkeneBeatsSymmetricOnBiasedCrowd(t *testing.T) {
	sens := []float64{0.98, 0.97, 0.96, 0.98}
	spec := []float64{0.50, 0.52, 0.48, 0.51}
	asymTotal, symTotal := 0, 0
	for seed := int64(11); seed < 14; seed++ {
		log, truth := plantAsymmetric(t, sens, spec, 800, seed)
		asym, err := EstimateDawidSkene(log, EMOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sym, err := EstimateEM(log, EMOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 800; f++ {
			if (asym.TaskPosterior[f] >= 0.5) == truth[f] {
				asymTotal++
			}
			if (sym.TaskPosterior[f] >= 0.5) == truth[f] {
				symTotal++
			}
		}
	}
	if asymTotal <= symTotal {
		t.Errorf("asymmetric model %d correct <= symmetric %d", asymTotal, symTotal)
	}
}

func TestDawidSkeneValidation(t *testing.T) {
	if _, err := EstimateDawidSkene(nil, EMOptions{}); err != ErrNoAnswers {
		t.Errorf("empty err = %v", err)
	}
	if _, err := EstimateDawidSkene([]Answer{{Fact: 0}}, EMOptions{}); err == nil {
		t.Error("anonymous answer accepted")
	}
}

func TestDawidSkeneDegenerate(t *testing.T) {
	log := []Answer{{Fact: 0, Value: true, Worker: "solo"}}
	est, err := EstimateDawidSkene(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := est.Sensitivity["solo"]
	if math.IsNaN(s) || s < 0.05 || s > 0.99 {
		t.Errorf("degenerate sensitivity %v", s)
	}
	// Specificity had no false-task evidence; must stay at init/clamps.
	sp := est.Specificity["solo"]
	if math.IsNaN(sp) || sp < 0.05 || sp > 0.99 {
		t.Errorf("degenerate specificity %v", sp)
	}
}
