package crowd

import "fmt"

// ErrorClass categorizes why a statement is hard for crowd workers to judge,
// following the residual-error taxonomy of Section V-D of the paper.
type ErrorClass int

const (
	// Easy statements carry no special difficulty; workers answer with
	// their base accuracy.
	Easy ErrorClass = iota
	// WrongOrder statements list the correct authors in a different order
	// than the cover page; the paper reports these cause high answer
	// diversity and many false negatives.
	WrongOrder
	// AdditionalInfo statements append organization or publisher text to
	// an author name; the paper found over 40% of workers judge such a
	// statement true although the gold standard marks it false.
	AdditionalInfo
	// Misspelling statements contain a subtly misspelled author name; the
	// paper observed correct rates below 50% for some of them.
	Misspelling
)

// String implements fmt.Stringer.
func (c ErrorClass) String() string {
	switch c {
	case Easy:
		return "easy"
	case WrongOrder:
		return "wrong-order"
	case AdditionalInfo:
		return "additional-info"
	case Misspelling:
		return "misspelling"
	default:
		return fmt.Sprintf("ErrorClass(%d)", int(c))
	}
}

// ErrorClasses lists all classes, for iteration in reports.
var ErrorClasses = []ErrorClass{Easy, WrongOrder, AdditionalInfo, Misspelling}

// DifficultyProfile maps a statement's error class to the effective accuracy
// crowd workers achieve on it, given the crowd's base accuracy on easy
// statements. The default profile reproduces the qualitative rates the
// paper reports in its error analysis.
type DifficultyProfile struct {
	// Multipliers scale the base accuracy's edge over random guessing:
	// effective = 0.5 + multiplier * (base - 0.5). A multiplier of 1
	// leaves the task at base accuracy; 0 makes the crowd guess; negative
	// values model systematically wrong crowds (misspellings).
	Multipliers map[ErrorClass]float64
}

// DefaultDifficulty is the profile used by the experiments: wrong-order
// statements are close to coin flips, additional-info statements are judged
// wrongly by a large minority, and misspellings push the crowd slightly
// below chance.
func DefaultDifficulty() DifficultyProfile {
	return DifficultyProfile{Multipliers: map[ErrorClass]float64{
		Easy:           1.0,
		WrongOrder:     0.25,
		AdditionalInfo: 0.4,
		Misspelling:    -0.15,
	}}
}

// EffectiveAccuracy returns the accuracy workers achieve on a statement of
// the given class when their accuracy on easy statements is base. The
// result is clamped into [0, 1].
func (p DifficultyProfile) EffectiveAccuracy(class ErrorClass, base float64) float64 {
	mult, ok := p.Multipliers[class]
	if !ok {
		mult = 1
	}
	eff := 0.5 + mult*(base-0.5)
	if eff < 0 {
		eff = 0
	}
	if eff > 1 {
		eff = 1
	}
	return eff
}
