package crowd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// emVote is one (worker, judgment) pair attached to a task.
type emVote struct {
	w     int
	value bool
}

// EM estimation of per-worker accuracy without gold labels, in the style of
// Dawid & Skene (1979) specialized to symmetric binary confusion: when a
// platform assigns each task to several workers, the agreement structure
// alone identifies who is reliable. This complements the paper's
// gold-sample pre-test (Section V-C3): it needs no ground truth, only
// redundancy.
//
// Model: task f has a latent truth t_f ~ Bernoulli(pi); worker w answers
// correctly with probability p_w independent of the task. EM alternates:
//
//	E-step: q_f = P(t_f = true | answers, p, pi)
//	M-step: p_w = sum over w's answers of P(answer correct) / #answers
//	        pi  = mean of q_f
type EMEstimate struct {
	// WorkerAccuracy maps worker ID to estimated accuracy.
	WorkerAccuracy map[string]float64
	// TaskPosterior maps fact index to P(fact true | answers).
	TaskPosterior map[int]float64
	// Prior is the estimated fraction of true facts.
	Prior float64
	// Iterations actually run before convergence.
	Iterations int
}

// EMOptions tunes the estimator.
type EMOptions struct {
	// MaxIter bounds EM iterations (default 100).
	MaxIter int
	// Tol stops when no accuracy moves more than this (default 1e-6).
	Tol float64
	// InitAccuracy seeds every worker (default 0.7).
	InitAccuracy float64
	// ClampLo/ClampHi keep accuracies away from 0/1 so likelihoods stay
	// finite (defaults 0.05, 0.99).
	ClampLo, ClampHi float64
	// Restarts runs EM that many times from perturbed initializations
	// and keeps the highest-likelihood solution; EM likelihoods are
	// multi-modal (e.g. one expert among coin-flippers has a spurious
	// fixpoint where everyone looks mediocre). Default 15. The first
	// restart always uses the clean majority-vote initialization.
	Restarts int
	// Seed drives the restart perturbations (deterministic).
	Seed int64
}

func (o EMOptions) normalized() EMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.InitAccuracy <= 0 || o.InitAccuracy >= 1 {
		o.InitAccuracy = 0.7
	}
	if o.ClampLo <= 0 {
		o.ClampLo = 0.05
	}
	if o.ClampHi <= 0 || o.ClampHi >= 1 {
		o.ClampHi = 0.99
	}
	if o.Restarts <= 0 {
		o.Restarts = 15
	}
	return o
}

// ErrNoAnswers is returned when the answer log is empty.
var ErrNoAnswers = errors.New("crowd: no answers to estimate from")

// EstimateEM runs EM on an answer log. Answers must carry worker IDs;
// anonymous answers (empty Worker) are rejected because the model needs to
// attribute agreement.
func EstimateEM(answers []Answer, opts EMOptions) (*EMEstimate, error) {
	if len(answers) == 0 {
		return nil, ErrNoAnswers
	}
	opts = opts.normalized()

	workerIDs := make([]string, 0)
	workerIdx := make(map[string]int)
	taskIDs := make([]int, 0)
	taskIdx := make(map[int]int)
	for _, a := range answers {
		if a.Worker == "" {
			return nil, fmt.Errorf("crowd: answer for fact %d has no worker ID", a.Fact)
		}
		if _, ok := workerIdx[a.Worker]; !ok {
			workerIdx[a.Worker] = -1
			workerIDs = append(workerIDs, a.Worker)
		}
		if _, ok := taskIdx[a.Fact]; !ok {
			taskIdx[a.Fact] = -1
			taskIDs = append(taskIDs, a.Fact)
		}
	}
	sort.Strings(workerIDs)
	for i, w := range workerIDs {
		workerIdx[w] = i
	}
	sort.Ints(taskIDs)
	for i, f := range taskIDs {
		taskIdx[f] = i
	}

	votes := make([][]emVote, len(taskIDs))
	perWorker := make([]int, len(workerIDs))
	for _, a := range answers {
		fi := taskIdx[a.Fact]
		votes[fi] = append(votes[fi], emVote{w: workerIdx[a.Worker], value: a.Value})
		perWorker[workerIdx[a.Worker]]++
	}

	// Run EM from several initializations and keep the solution with the
	// highest marginal likelihood of the observed answers.
	rng := rand.New(rand.NewSource(opts.Seed + 777))
	var bestAcc, bestQ []float64
	var bestPi float64
	bestIters := 0
	bestLL := math.Inf(-1)
	for restart := 0; restart < opts.Restarts; restart++ {
		initAcc := make([]float64, len(workerIDs))
		for i := range initAcc {
			if restart == 0 {
				initAcc[i] = opts.InitAccuracy
			} else {
				initAcc[i] = 0.52 + 0.46*rng.Float64()
			}
		}
		acc, q, pi, iters := runSymmetricEM(votes, perWorker, initAcc, len(taskIDs), opts, restart == 0)
		ll := symmetricLogLikelihood(votes, acc, pi)
		if ll > bestLL {
			bestLL = ll
			bestAcc, bestQ, bestPi, bestIters = acc, q, pi, iters
		}
	}
	acc, q, pi := bestAcc, bestQ, bestPi
	// Canonicalize: the symmetric model is invariant under flipping all
	// accuracies and truths (a -> 1-a, q -> 1-q, pi -> 1-pi gives the
	// same likelihood); report the branch where workers are on average
	// better than chance, per the paper's Pc >= 0.5 assumption.
	var mean float64
	for _, a := range acc {
		mean += a
	}
	if mean/float64(len(acc)) < 0.5 {
		for i := range acc {
			acc[i] = 1 - acc[i]
		}
		for i := range q {
			q[i] = 1 - q[i]
		}
		pi = 1 - pi
	}

	est := &EMEstimate{
		WorkerAccuracy: make(map[string]float64, len(workerIDs)),
		TaskPosterior:  make(map[int]float64, len(taskIDs)),
		Prior:          pi,
		Iterations:     bestIters,
	}
	for i, w := range workerIDs {
		est.WorkerAccuracy[w] = acc[i]
	}
	for i, f := range taskIDs {
		est.TaskPosterior[f] = q[i]
	}
	return est, nil
}

// PoolAccuracy returns the mean estimated worker accuracy — the effective
// Pc a CrowdFusion engine should assume for this crowd when tasks are
// assigned to uniformly drawn workers.
func (e *EMEstimate) PoolAccuracy() float64 {
	if len(e.WorkerAccuracy) == 0 {
		return 0
	}
	var sum float64
	for _, a := range e.WorkerAccuracy {
		sum += a
	}
	return sum / float64(len(e.WorkerAccuracy))
}

// runSymmetricEM executes one EM run. When majorityInit is true the task
// posteriors start from smoothed vote shares (the original Dawid & Skene
// recipe); otherwise they start from the E-step of the given accuracies.
func runSymmetricEM(votes [][]emVote, perWorker []int, initAcc []float64,
	nTasks int, opts EMOptions, majorityInit bool) (acc, q []float64, pi float64, iters int) {

	acc = append([]float64(nil), initAcc...)
	q = make([]float64, nTasks)
	pi = 0.5
	if majorityInit {
		for fi, vs := range votes {
			trues := 0
			for _, v := range vs {
				if v.value {
					trues++
				}
			}
			q[fi] = (float64(trues) + 0.5) / (float64(len(vs)) + 1)
		}
	} else {
		eStepSymmetric(votes, acc, pi, q)
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		iters = iter + 1
		// M-step: worker accuracies and truth prior from the posteriors.
		next := make([]float64, len(acc))
		for fi, vs := range votes {
			for _, v := range vs {
				if v.value {
					next[v.w] += q[fi]
				} else {
					next[v.w] += 1 - q[fi]
				}
			}
		}
		maxDelta := 0.0
		for wi := range next {
			if perWorker[wi] == 0 {
				next[wi] = acc[wi]
				continue
			}
			next[wi] /= float64(perWorker[wi])
			if next[wi] < opts.ClampLo {
				next[wi] = opts.ClampLo
			}
			if next[wi] > opts.ClampHi {
				next[wi] = opts.ClampHi
			}
			if d := math.Abs(next[wi] - acc[wi]); d > maxDelta {
				maxDelta = d
			}
		}
		acc = next
		var sumQ float64
		for _, qf := range q {
			sumQ += qf
		}
		pi = sumQ / float64(len(q))
		if pi < 0.01 {
			pi = 0.01
		}
		if pi > 0.99 {
			pi = 0.99
		}
		eStepSymmetric(votes, acc, pi, q)
		if maxDelta < opts.Tol {
			break
		}
	}
	return acc, q, pi, iters
}

// eStepSymmetric fills q with posterior truth probabilities in log space.
func eStepSymmetric(votes [][]emVote, acc []float64, pi float64, q []float64) {
	for fi, vs := range votes {
		logT := math.Log(pi)
		logF := math.Log(1 - pi)
		for _, v := range vs {
			p := acc[v.w]
			if v.value {
				logT += math.Log(p)
				logF += math.Log(1 - p)
			} else {
				logT += math.Log(1 - p)
				logF += math.Log(p)
			}
		}
		m := math.Max(logT, logF)
		q[fi] = math.Exp(logT-m) / (math.Exp(logT-m) + math.Exp(logF-m))
	}
}

// symmetricLogLikelihood scores a parameter set: the marginal log
// probability of every task's votes under the two latent truth values.
func symmetricLogLikelihood(votes [][]emVote, acc []float64, pi float64) float64 {
	var total float64
	for _, vs := range votes {
		logT := math.Log(pi)
		logF := math.Log(1 - pi)
		for _, v := range vs {
			p := acc[v.w]
			if v.value {
				logT += math.Log(p)
				logF += math.Log(1 - p)
			} else {
				logT += math.Log(1 - p)
				logF += math.Log(p)
			}
		}
		m := math.Max(logT, logF)
		total += m + math.Log(math.Exp(logT-m)+math.Exp(logF-m))
	}
	return total
}
