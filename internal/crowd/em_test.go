package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"crowdfusion/internal/dist"
)

// plantAnswers simulates a redundant answer log: each of nTasks facts is
// answered by every worker, whose true accuracies are given. Truth is a
// []bool because task counts exceed the 64-fact World limit.
func plantAnswers(tb testing.TB, accuracies []float64, nTasks int, seed int64) ([]Answer, []bool) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := make([]bool, nTasks)
	for f := range truth {
		truth[f] = rng.Intn(2) == 0
	}
	var log []Answer
	for f := 0; f < nTasks; f++ {
		for wi, acc := range accuracies {
			v := truth[f]
			if rng.Float64() >= acc {
				v = !v
			}
			log = append(log, Answer{Fact: f, Value: v, Worker: fmt.Sprintf("w%02d", wi)})
		}
	}
	return log, truth
}

func TestEstimateEMRecoverAccuracies(t *testing.T) {
	accuracies := []float64{0.95, 0.85, 0.75, 0.65, 0.9, 0.8, 0.7}
	log, _ := plantAnswers(t, accuracies, 400, 11)
	est, err := EstimateEM(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for wi, want := range accuracies {
		got := est.WorkerAccuracy[fmt.Sprintf("w%02d", wi)]
		if math.Abs(got-want) > 0.05 {
			t.Errorf("worker %d: estimated %.3f, true %.3f", wi, got, want)
		}
	}
	if est.Iterations <= 0 || est.Iterations > 100 {
		t.Errorf("iterations = %d", est.Iterations)
	}
	pool := est.PoolAccuracy()
	var want float64
	for _, a := range accuracies {
		want += a
	}
	want /= float64(len(accuracies))
	if math.Abs(pool-want) > 0.05 {
		t.Errorf("pool accuracy %.3f, want ~%.3f", pool, want)
	}
}

func TestEstimateEMRecoversTruth(t *testing.T) {
	accuracies := []float64{0.9, 0.9, 0.85, 0.8, 0.8}
	log, truth := plantAnswers(t, accuracies, 300, 13)
	est, err := EstimateEM(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for f := 0; f < 300; f++ {
		if (est.TaskPosterior[f] >= 0.5) == truth[f] {
			correct++
		}
	}
	rate := float64(correct) / 300
	if rate < 0.97 {
		t.Errorf("EM truth recovery rate %.3f, want >= 0.97", rate)
	}
}

// TestEstimateEMBeatsMajorityWeighting: EM-weighted inference must recover
// truth at least as well as unweighted majority voting when worker quality
// is heterogeneous.
func TestEstimateEMBeatsMajorityWeighting(t *testing.T) {
	// One excellent worker among four coin-flippers: majority voting is
	// barely better than chance, EM should learn to trust the expert.
	accuracies := []float64{0.97, 0.52, 0.52, 0.52, 0.52}
	log, truth := plantAnswers(t, accuracies, 500, 17)
	est, err := EstimateEM(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	emCorrect, mvCorrect := 0, 0
	byTask := make(map[int][]Answer)
	for _, a := range log {
		byTask[a.Fact] = append(byTask[a.Fact], a)
	}
	for f := 0; f < 500; f++ {
		if (est.TaskPosterior[f] >= 0.5) == truth[f] {
			emCorrect++
		}
		votes := 0
		for _, a := range byTask[f] {
			if a.Value {
				votes++
			}
		}
		if (votes*2 > len(byTask[f])) == truth[f] {
			mvCorrect++
		}
	}
	if emCorrect <= mvCorrect {
		t.Errorf("EM correct %d <= majority %d", emCorrect, mvCorrect)
	}
	// And the expert is identified as clearly better than the noise
	// workers (EM slightly shrinks extreme accuracies, so compare
	// against the flippers rather than the true 0.97).
	if est.WorkerAccuracy["w00"] < 0.75 {
		t.Errorf("expert estimated at %.3f", est.WorkerAccuracy["w00"])
	}
	for i := 1; i < 5; i++ {
		id := fmt.Sprintf("w%02d", i)
		if est.WorkerAccuracy["w00"] < est.WorkerAccuracy[id]+0.15 {
			t.Errorf("expert %.3f not separated from %s %.3f",
				est.WorkerAccuracy["w00"], id, est.WorkerAccuracy[id])
		}
	}
}

func TestEstimateEMValidation(t *testing.T) {
	if _, err := EstimateEM(nil, EMOptions{}); err != ErrNoAnswers {
		t.Errorf("empty log err = %v", err)
	}
	if _, err := EstimateEM([]Answer{{Fact: 0, Value: true}}, EMOptions{}); err == nil {
		t.Error("anonymous answer accepted")
	}
}

func TestEstimateEMDegenerate(t *testing.T) {
	// A single worker, single task: must not NaN or panic; accuracy is
	// unidentifiable and should stay within the clamps.
	log := []Answer{{Fact: 0, Value: true, Worker: "w"}}
	est, err := EstimateEM(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := est.WorkerAccuracy["w"]
	if math.IsNaN(a) || a < 0.05 || a > 0.99 {
		t.Errorf("degenerate accuracy %v", a)
	}
	if (&EMEstimate{}).PoolAccuracy() != 0 {
		t.Error("empty estimate pool accuracy should be 0")
	}
}

func TestEMOptionsDefaults(t *testing.T) {
	o := EMOptions{MaxIter: -1, Tol: -1, InitAccuracy: 2, ClampLo: -1, ClampHi: 2}.normalized()
	if o.MaxIter != 100 || o.Tol != 1e-6 || o.InitAccuracy != 0.7 ||
		o.ClampLo != 0.05 || o.ClampHi != 0.99 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

// TestEMWithPlatformLog: EM consumes the platform simulator's answer log
// directly, closing the loop between the two subsystems.
func TestEMWithPlatformLog(t *testing.T) {
	// Build via the crowd-side pieces only to avoid an import cycle:
	// sample a pool manually with per-worker accuracies.
	pool, err := RandomPool(12, 0.7, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var truth dist.World
	truth = truth.Set(1, true).Set(3, true)
	var log []Answer
	for round := 0; round < 400; round++ {
		for f := 0; f < 4; f++ {
			_, answers := pool.MajorityAnswer(rng, f, truth.Has(f), 3)
			log = append(log, answers...)
		}
	}
	est, err := EstimateEM(log, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every estimated accuracy should be within 0.1 of the worker's true
	// accuracy.
	for _, w := range pool.Workers() {
		got, ok := est.WorkerAccuracy[w.ID]
		if !ok {
			continue // may not have been drawn
		}
		if math.Abs(got-w.Accuracy) > 0.1 {
			t.Errorf("worker %s: estimated %.3f, true %.3f", w.ID, got, w.Accuracy)
		}
	}
}
