package dist

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"crowdfusion/internal/info"
)

// The crowd model of Definition 2: every answer is independently correct
// with probability pc, so the probability that the crowd's answers to k
// tasks sit at Hamming distance d from a world's true judgments is
// pc^(k-d) * (1-pc)^d (Equation 2). This file implements the two sides of
// that channel: the evidence probability P(e) of an answer set
// (AnswerSetProb) and the Bayesian update of the output distribution
// given the answers (Condition, the paper's Equation 3).

// ErrImpossibleAnswers is returned by Condition when the answer set has
// zero probability under the distribution (only possible at pc = 0 or 1),
// leaving no posterior to normalize.
var ErrImpossibleAnswers = errors.New("dist: answer set has probability zero")

// channelWeights returns w[d] = pc^(k-d) * (1-pc)^d for d = 0..k, the
// per-Hamming-distance likelihoods of Equation 2.
func channelWeights(k int, pc float64) []float64 {
	return fillChannelWeights(make([]float64, k+1), pc)
}

// fillChannelWeights is channelWeights into a caller-provided slice of
// length k+1, so hot paths can reuse pooled scratch.
func fillChannelWeights(w []float64, pc float64) []float64 {
	k := len(w) - 1
	w[0] = 1
	for i := 0; i < k; i++ {
		w[0] *= pc
	}
	if pc == 0 {
		// Degenerate: only the all-wrong answer vector is possible.
		for d := 1; d <= k; d++ {
			w[d] = 0
		}
		if k > 0 {
			w[k] = 1
		}
		return w
	}
	ratio := (1 - pc) / pc
	for d := 1; d <= k; d++ {
		w[d] = w[d-1] * ratio
	}
	return w
}

// condScratch holds the transient buffers of one conditioning call: the
// unnormalized posterior masses and the Hamming-distance weight table.
// Both are consumed before the posterior is returned, so they recycle
// through a pool and the steady-state Bayesian update allocates only the
// posterior's own storage.
type condScratch struct {
	ps []float64
	w  []float64
}

var condPool = sync.Pool{New: func() any { return new(condScratch) }}

// masses returns a zero-length-irrelevant slice of n uninitialized
// floats backed by the scratch.
func (s *condScratch) masses(n int) []float64 {
	if cap(s.ps) < n {
		s.ps = make([]float64, n)
	}
	return s.ps[:n]
}

// weights returns the Equation 2 weight table for (k, pc) backed by the
// scratch.
func (s *condScratch) weights(k int, pc float64) []float64 {
	if cap(s.w) < k+1 {
		s.w = make([]float64, k+1)
	}
	return fillChannelWeights(s.w[:k+1], pc)
}

// jointSlabSize is how many Joint headers one slab allocation vends.
// Posteriors are produced once per merge and typically retired within a
// few rounds, so amortizing the header allocation 64-ways is nearly free;
// the tradeoff is that one live posterior pins its sibling headers
// (~64 × ~100 B) until all are dead, which is negligible next to the
// probability slices each posterior owns.
const jointSlabSize = 64

var jointSlab struct {
	mu   sync.Mutex
	free []Joint
}

// newJointFromSlab vends a zeroed *Joint from the batch slab.
func newJointFromSlab() *Joint {
	jointSlab.mu.Lock()
	if len(jointSlab.free) == 0 {
		jointSlab.free = make([]Joint, jointSlabSize)
	}
	j := &jointSlab.free[0]
	jointSlab.free = jointSlab.free[1:]
	jointSlab.mu.Unlock()
	return j
}

// finishConditioned builds the posterior for likelihood-weighted masses
// ps parallel to the receiver's support. It replicates finish's exact
// arithmetic — normalize each mass by the total in ascending support
// order, accumulate marginals by bit-scan, entropy over the normalized
// probabilities — so posteriors are bit-identical to the allocating path.
//
// In the common case no mass is exactly zero (impossible for accuracies
// strictly inside (0, 1)), and the posterior then
//   - shares the receiver's worlds slice (both are immutable),
//   - packs probabilities and marginals into one allocation, and
//   - draws its Joint header from the batch slab,
//
// for one steady-state allocation per conditioning instead of four. When
// the evidence zeroes out part of the support, it falls back to the
// compacting finish on fresh copies. ps is scratch: consumed either way.
func (j *Joint) finishConditioned(ps []float64) (*Joint, error) {
	zero := false
	for _, p := range ps {
		if p == 0 {
			zero = true
			break
		}
	}
	if zero {
		ws := make([]World, len(j.worlds))
		copy(ws, j.worlds)
		return finish(j.n, ws, append([]float64(nil), ps...))
	}
	total := info.Sum(ps)
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, ErrZeroMass
	}
	m := len(ps)
	buf := make([]float64, m+j.n)
	probs := buf[:m:m]
	marginals := buf[m:]
	post := newJointFromSlab()
	*post = Joint{n: j.n, worlds: j.worlds, probs: probs, marginals: marginals}
	for i, p := range ps {
		p /= total
		probs[i] = p
		for mm := uint64(j.worlds[i]); mm != 0; mm &= mm - 1 {
			marginals[bits.TrailingZeros64(mm)] += p
		}
	}
	post.entropy = info.Entropy(probs)
	return post, nil
}

// checkEvidence validates a (tasks, answers, pc) evidence triple against
// the distribution.
func (j *Joint) checkEvidence(tasks []int, answers []bool, pc float64) error {
	if err := j.checkFacts(tasks); err != nil {
		return err
	}
	if len(answers) != len(tasks) {
		return fmt.Errorf("dist: %d tasks but %d answers", len(tasks), len(answers))
	}
	if math.IsNaN(pc) || pc < 0 || pc > 1 {
		return fmt.Errorf("dist: crowd accuracy %v outside [0, 1]", pc)
	}
	return nil
}

// answerPattern packs an answer vector into the bitmask convention of
// World.Pattern: bit i set exactly when answers[i] is true.
func answerPattern(answers []bool) uint64 {
	var p uint64
	for i, a := range answers {
		if a {
			p |= 1 << uint(i)
		}
	}
	return p
}

// AnswerSetProb returns P(e): the probability that a crowd with accuracy
// pc, asked the given tasks, returns exactly the given answers — the
// evidence term of Equation 3, summing Equation 2 over the support.
func (j *Joint) AnswerSetProb(tasks []int, answers []bool, pc float64) (float64, error) {
	if err := j.checkEvidence(tasks, answers, pc); err != nil {
		return 0, err
	}
	k := len(tasks)
	if k == 0 {
		return 1, nil
	}
	weights := channelWeights(k, pc)
	ans := answerPattern(answers)
	var sum, comp float64
	for i, w := range j.worlds {
		d := bits.OnesCount64(w.Pattern(tasks) ^ ans)
		term := j.probs[i] * weights[d]
		y := term - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum, nil
}

// Condition returns the posterior distribution after the crowd answers
// the given tasks — the Bayesian update of Equation 3:
//
//	P(o | e) = P(e | o) * P(o) / P(e).
//
// The support is unchanged except for worlds the evidence rules out
// entirely (possible only at pc = 0 or 1), which are dropped; when none
// are dropped the posterior shares the receiver's worlds slice (Joints
// are immutable, so sharing is safe). The receiver is not modified.
// Conditioning on no tasks returns a copy of the receiver.
// ErrImpossibleAnswers is returned when P(e) = 0.
func (j *Joint) Condition(tasks []int, answers []bool, pc float64) (*Joint, error) {
	if err := j.checkEvidence(tasks, answers, pc); err != nil {
		return nil, err
	}
	k := len(tasks)
	if k == 0 {
		return j.Clone(), nil
	}
	s := condPool.Get().(*condScratch)
	weights := s.weights(k, pc)
	ans := answerPattern(answers)
	ps := s.masses(len(j.worlds))
	for i, w := range j.worlds {
		d := bits.OnesCount64(w.Pattern(tasks) ^ ans)
		ps[i] = j.probs[i] * weights[d]
	}
	post, err := j.finishConditioned(ps)
	condPool.Put(s)
	if err != nil {
		return nil, ErrImpossibleAnswers
	}
	return post, nil
}

// Condition is the package-level form of Joint.Condition, for callers
// that hold the evidence first.
func Condition(j *Joint, tasks []int, answers []bool, pc float64) (*Joint, error) {
	return j.Condition(tasks, answers, pc)
}

// checkEvidenceWeighted validates a per-judgment evidence set: one
// sensitivity (P(answer true | fact true)) and one specificity
// (P(answer false | fact false)) per judgment, each a probability.
func (j *Joint) checkEvidenceWeighted(tasks []int, answers []bool, sens, spec []float64) error {
	if err := j.checkFacts(tasks); err != nil {
		return err
	}
	if len(answers) != len(tasks) {
		return fmt.Errorf("dist: %d tasks but %d answers", len(tasks), len(answers))
	}
	if len(sens) != len(tasks) || len(spec) != len(tasks) {
		return fmt.Errorf("dist: %d tasks but %d/%d per-judgment accuracies",
			len(tasks), len(sens), len(spec))
	}
	for i := range sens {
		if math.IsNaN(sens[i]) || sens[i] < 0 || sens[i] > 1 {
			return fmt.Errorf("dist: judgment %d sensitivity %v outside [0, 1]", i, sens[i])
		}
		if math.IsNaN(spec[i]) || spec[i] < 0 || spec[i] > 1 {
			return fmt.Errorf("dist: judgment %d specificity %v outside [0, 1]", i, spec[i])
		}
	}
	return nil
}

// uniformAccuracy reports whether every judgment shares one symmetric
// accuracy (sens[i] == spec[i] == c for all i) and returns it.
func uniformAccuracy(sens, spec []float64) (float64, bool) {
	c := sens[0]
	for i := range sens {
		if sens[i] != c || spec[i] != c {
			return 0, false
		}
	}
	return c, true
}

// ConditionWeighted is the per-judgment generalization of Condition: each
// answer i carries its own channel — sens[i] = P(answer true | fact true)
// and spec[i] = P(answer false | fact false) — so judgments from workers
// of different estimated accuracy (or a Dawid–Skene confusion row) weigh
// differently in the same Bayesian update. The world likelihood is the
// product of the per-judgment likelihoods, replacing Equation 2's single
// pc^#Same (1-pc)^#Diff term.
//
// When every judgment shares one symmetric accuracy c (sens[i] == spec[i]
// == c), the update IS Definition 2's channel and the call delegates to
// Condition(tasks, answers, c), making the uniform case bit-identical to
// the fixed-pc path — the differential oracle the weighted merge is
// verified against.
func (j *Joint) ConditionWeighted(tasks []int, answers []bool, sens, spec []float64) (*Joint, error) {
	if err := j.checkEvidenceWeighted(tasks, answers, sens, spec); err != nil {
		return nil, err
	}
	k := len(tasks)
	if k == 0 {
		return j.Clone(), nil
	}
	if c, uniform := uniformAccuracy(sens, spec); uniform {
		return j.Condition(tasks, answers, c)
	}
	ans := answerPattern(answers)
	s := condPool.Get().(*condScratch)
	ps := s.masses(len(j.worlds))
	for i, w := range j.worlds {
		pat := w.Pattern(tasks)
		like := 1.0
		for b := 0; b < k; b++ {
			bit := uint64(1) << uint(b)
			truth := pat&bit != 0
			agree := (ans&bit != 0) == truth
			switch {
			case truth && agree:
				like *= sens[b]
			case truth:
				like *= 1 - sens[b]
			case agree:
				like *= spec[b]
			default:
				like *= 1 - spec[b]
			}
		}
		ps[i] = j.probs[i] * like
	}
	post, err := j.finishConditioned(ps)
	condPool.Put(s)
	if err != nil {
		return nil, ErrImpossibleAnswers
	}
	return post, nil
}

// ConditionWeighted is the package-level form of Joint.ConditionWeighted.
func ConditionWeighted(j *Joint, tasks []int, answers []bool, sens, spec []float64) (*Joint, error) {
	return j.ConditionWeighted(tasks, answers, sens, spec)
}

// AnswerSetProb is the package-level form of Joint.AnswerSetProb.
func AnswerSetProb(j *Joint, tasks []int, answers []bool, pc float64) (float64, error) {
	return j.AnswerSetProb(tasks, answers, pc)
}
