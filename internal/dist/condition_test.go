package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteAnswerSetProb recomputes Equation 2 + total probability with
// per-world arithmetic, independent of the channel-weight table.
func bruteAnswerSetProb(j *Joint, tasks []int, answers []bool, pc float64) float64 {
	var sum float64
	for i, w := range j.Worlds() {
		p := j.Probs()[i]
		for t, f := range tasks {
			if w.Has(f) == answers[t] {
				p *= pc
			} else {
				p *= 1 - pc
			}
		}
		sum += p
	}
	return sum
}

func TestAnswerSetProbMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		j := randomJoint(t, rng, n, 1+rng.Intn(12))
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		tasks := rng.Perm(n)[:k]
		answers := make([]bool, k)
		for i := range answers {
			answers[i] = rng.Intn(2) == 0
		}
		pc := rng.Float64()
		got, err := j.AnswerSetProb(tasks, answers, pc)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAnswerSetProb(j, tasks, answers, pc)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("AnswerSetProb = %v, brute force = %v", got, want)
		}
		// The package-level helper is the same computation.
		viaFree, err := AnswerSetProb(j, tasks, answers, pc)
		if err != nil || viaFree != got {
			t.Fatalf("package-level AnswerSetProb = %v, %v", viaFree, err)
		}
	}
}

// TestAnswerSetProbTotalsOne: the evidence probabilities over all 2^k
// answer vectors form a distribution.
func TestAnswerSetProbTotalsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		j := randomJoint(t, rng, n, 1+rng.Intn(10))
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		tasks := rng.Perm(n)[:k]
		pc := rng.Float64()
		var total float64
		for pat := 0; pat < 1<<uint(k); pat++ {
			answers := make([]bool, k)
			for i := range answers {
				answers[i] = pat&(1<<uint(i)) != 0
			}
			p, err := j.AnswerSetProb(tasks, answers, pc)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 {
				t.Fatalf("negative evidence probability %v", p)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("answer probabilities sum to %v", total)
		}
	}
}

func TestAnswerSetProbEdges(t *testing.T) {
	j, err := New(2, []World{0b01, 0b10}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// No evidence has probability 1.
	if p, err := j.AnswerSetProb(nil, nil, 0.8); err != nil || p != 1 {
		t.Errorf("AnswerSetProb(nil) = %v, %v", p, err)
	}
	// A perfect crowd reports the support pattern masses exactly.
	p, err := j.AnswerSetProb([]int{0}, []bool{true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.3) > 1e-12 {
		t.Errorf("P(f0 answered true | pc=1) = %v, want 0.3", p)
	}
	// Validation.
	if _, err := j.AnswerSetProb([]int{0}, nil, 0.8); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := j.AnswerSetProb([]int{2}, []bool{true}, 0.8); err == nil {
		t.Error("out-of-range task accepted")
	}
	if _, err := j.AnswerSetProb([]int{0}, []bool{true}, 1.5); err == nil {
		t.Error("accuracy > 1 accepted")
	}
	if _, err := j.AnswerSetProb([]int{0}, []bool{true}, math.NaN()); err == nil {
		t.Error("NaN accuracy accepted")
	}
}

// TestConditionRenormalizes: every posterior is a valid distribution with
// total mass 1, on the same fact count, and agrees with per-world Bayes.
func TestConditionRenormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		j := randomJoint(t, rng, n, 1+rng.Intn(12))
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		tasks := rng.Perm(n)[:k]
		answers := make([]bool, k)
		for i := range answers {
			answers[i] = rng.Intn(2) == 0
		}
		pc := 0.5 + rng.Float64()*0.5
		post, err := j.Condition(tasks, answers, pc)
		if err != nil {
			t.Fatal(err)
		}
		if post.N() != j.N() {
			t.Fatalf("posterior over %d facts, want %d", post.N(), j.N())
		}
		if err := post.Validate(); err != nil {
			t.Fatalf("posterior invalid: %v", err)
		}
		// Bayes per world: P(o|e) = P(e|o) P(o) / P(e).
		pe, err := j.AnswerSetProb(tasks, answers, pc)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range j.Worlds() {
			like := j.Probs()[i]
			for t2, f := range tasks {
				if w.Has(f) == answers[t2] {
					like *= pc
				} else {
					like *= 1 - pc
				}
			}
			if math.Abs(post.Prob(w)-like/pe) > 1e-9 {
				t.Fatalf("P(%v|e) = %v, want %v", w, post.Prob(w), like/pe)
			}
		}
		// The receiver is untouched.
		if err := j.Validate(); err != nil {
			t.Fatalf("prior mutated: %v", err)
		}
	}
}

// TestConditionRunningUpdate pins the paper's update walkthrough: asking
// f1 on the running example and hearing "true" at Pc = 0.8 moves the f1
// marginal from 0.5 to exactly 0.8.
func TestConditionRunningUpdate(t *testing.T) {
	_, j := RunningExample()
	pe, err := j.AnswerSetProb([]int{0}, []bool{true}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// P(e) = 0.5*0.8 + 0.5*0.2 = 0.5 by symmetry of the f1 marginal.
	if math.Abs(pe-0.5) > 1e-9 {
		t.Errorf("P(e) = %v, want 0.5", pe)
	}
	post, err := j.Condition([]int{0}, []bool{true}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := post.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.8) > 1e-12 {
		t.Errorf("posterior P(f1) = %v, want 0.8", m)
	}
	// Conditioning never grows the support.
	if post.SupportSize() != j.SupportSize() {
		t.Errorf("support changed: %d -> %d at pc<1", j.SupportSize(), post.SupportSize())
	}
}

func TestConditionSequentialAccumulation(t *testing.T) {
	// Conditioning on two answers at once equals conditioning twice.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(4)
		j := randomJoint(t, rng, n, 2+rng.Intn(10))
		perm := rng.Perm(n)
		tasks := perm[:2]
		answers := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
		pc := 0.5 + rng.Float64()*0.5

		both, err := j.Condition(tasks, answers, pc)
		if err != nil {
			t.Fatal(err)
		}
		first, err := j.Condition(tasks[:1], answers[:1], pc)
		if err != nil {
			t.Fatal(err)
		}
		chained, err := first.Condition(tasks[1:], answers[1:], pc)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range both.Worlds() {
			if math.Abs(both.Probs()[i]-chained.Prob(w)) > 1e-9 {
				t.Fatalf("batch vs chained conditioning differ at world %v", w)
			}
		}
	}
}

func TestConditionPerfectCrowd(t *testing.T) {
	// At pc = 1 contradicted worlds drop from the support.
	j, err := New(3, []World{0b001, 0b011, 0b110}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	post, err := j.Condition([]int{0}, []bool{true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if post.SupportSize() != 2 {
		t.Fatalf("support = %v, want the two f0-true worlds", post.Worlds())
	}
	if math.Abs(post.Prob(0b001)-0.4) > 1e-12 || math.Abs(post.Prob(0b011)-0.6) > 1e-12 {
		t.Errorf("posterior = %v, want [0.4 0.6]", post.Probs())
	}
	// An impossible answer set is an error, not a NaN distribution.
	certain, err := New(2, []World{0b11}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := certain.Condition([]int{0}, []bool{false}, 1); !errors.Is(err, ErrImpossibleAnswers) {
		t.Errorf("contradiction at pc=1: err = %v, want ErrImpossibleAnswers", err)
	}
}

func TestConditionNoEvidence(t *testing.T) {
	j, err := New(2, []World{0, 3}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	post, err := j.Condition(nil, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if post == j {
		t.Error("Condition(nil) should return an independent copy")
	}
	if post.Entropy() != j.Entropy() || post.Prob(3) != j.Prob(3) {
		t.Error("Condition(nil) changed the distribution")
	}
	// Package-level form.
	post2, err := Condition(j, []int{0}, []bool{true}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := post2.Marginal(0); math.Abs(m-0.8) > 1e-12 {
		t.Errorf("package-level Condition marginal = %v", m)
	}
}

func BenchmarkCondition(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	j := randomJoint(b, rng, 16, 512)
	tasks := []int{1, 5, 9}
	answers := []bool{true, false, true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := j.Condition(tasks, answers, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}
