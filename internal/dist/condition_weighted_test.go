package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteConditionWeighted recomputes the weighted posterior with naive
// per-world, per-judgment arithmetic — the oracle for ConditionWeighted's
// bit-packed likelihood loop.
func bruteConditionWeighted(j *Joint, tasks []int, answers []bool, sens, spec []float64) ([]World, []float64) {
	ws := make([]World, 0, len(j.Worlds()))
	ps := make([]float64, 0, len(j.Worlds()))
	var total float64
	for i, w := range j.Worlds() {
		p := j.Probs()[i]
		for t, f := range tasks {
			truth := w.Has(f)
			agree := answers[t] == truth
			switch {
			case truth && agree:
				p *= sens[t]
			case truth:
				p *= 1 - sens[t]
			case agree:
				p *= spec[t]
			default:
				p *= 1 - spec[t]
			}
		}
		if p > 0 {
			ws = append(ws, w)
			ps = append(ps, p)
		}
		total += p
	}
	for i := range ps {
		ps[i] /= total
	}
	return ws, ps
}

// TestConditionWeightedUniformBitIdentical is the differential oracle the
// ISSUE requires: when every judgment carries the same symmetric accuracy
// c, the weighted update must be bit-for-bit the fixed-pc update — not
// merely close, identical — because recovery replays mixed histories
// through whichever path matches each op.
func TestConditionWeightedUniformBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		j := randomJoint(t, rng, n, 1+rng.Intn(12))
		k := 1 + rng.Intn(4)
		if k > n {
			k = n
		}
		tasks := rng.Perm(n)[:k]
		answers := make([]bool, k)
		for i := range answers {
			answers[i] = rng.Intn(2) == 0
		}
		c := 0.05 + 0.9*rng.Float64()
		sens := make([]float64, k)
		spec := make([]float64, k)
		for i := range sens {
			sens[i] = c
			spec[i] = c
		}
		want, errW := j.Condition(tasks, answers, c)
		got, errG := j.ConditionWeighted(tasks, answers, sens, spec)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: Condition err=%v, ConditionWeighted err=%v", trial, errW, errG)
		}
		if errW != nil {
			continue
		}
		wantW, gotW := want.Worlds(), got.Worlds()
		wantP, gotP := want.Probs(), got.Probs()
		if len(wantW) != len(gotW) {
			t.Fatalf("trial %d: support %d vs %d", trial, len(wantW), len(gotW))
		}
		for i := range wantW {
			if wantW[i] != gotW[i] || wantP[i] != gotP[i] {
				t.Fatalf("trial %d world %d: fixed (%v, %v) weighted (%v, %v)",
					trial, i, wantW[i], wantP[i], gotW[i], gotP[i])
			}
		}
	}
}

// TestConditionWeightedMatchesBruteForce checks genuinely heterogeneous
// channels against the naive per-world recomputation.
func TestConditionWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		j := randomJoint(t, rng, n, 1+rng.Intn(12))
		k := 1 + rng.Intn(4)
		if k > n {
			k = n
		}
		tasks := rng.Perm(n)[:k]
		answers := make([]bool, k)
		sens := make([]float64, k)
		spec := make([]float64, k)
		for i := range answers {
			answers[i] = rng.Intn(2) == 0
			sens[i] = 0.05 + 0.9*rng.Float64()
			spec[i] = 0.05 + 0.9*rng.Float64()
		}
		got, err := j.ConditionWeighted(tasks, answers, sens, spec)
		wantW, wantP := bruteConditionWeighted(j, tasks, answers, sens, spec)
		if err != nil {
			if errors.Is(err, ErrImpossibleAnswers) && len(wantW) == 0 {
				continue
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Worlds()) != len(wantW) {
			t.Fatalf("trial %d: support %d, brute force %d", trial, len(got.Worlds()), len(wantW))
		}
		for i, w := range got.Worlds() {
			if w != wantW[i] {
				t.Fatalf("trial %d: world %d is %v, brute force %v", trial, i, w, wantW[i])
			}
			if math.Abs(got.Probs()[i]-wantP[i]) > 1e-12 {
				t.Fatalf("trial %d world %v: prob %v, brute force %v", trial, w, got.Probs()[i], wantP[i])
			}
		}
		// The package-level helper is the same computation.
		viaFree, err := ConditionWeighted(j, tasks, answers, sens, spec)
		if err != nil {
			t.Fatalf("trial %d: package-level: %v", trial, err)
		}
		if len(viaFree.Worlds()) != len(got.Worlds()) {
			t.Fatalf("trial %d: package-level support differs", trial)
		}
	}
}

// TestConditionWeightedAsymmetry: a judgment with perfect sensitivity but
// useless specificity shifts mass exactly as a one-sided likelihood should
// — false answers rule out true worlds entirely, true answers only
// reweight.
func TestConditionWeightedPerfectJudgment(t *testing.T) {
	j, err := New(1, []World{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect worker says false: P(false|true worlds) = 0, so only the
	// empty world survives.
	post, err := j.ConditionWeighted([]int{0}, []bool{false}, []float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Worlds()) != 1 || post.Worlds()[0] != 0 || post.Probs()[0] != 1 {
		t.Fatalf("posterior = %v %v, want the empty world with certainty", post.Worlds(), post.Probs())
	}
	// A perfect judgment that contradicts every supported world
	// annihilates the posterior.
	if _, err := post.ConditionWeighted([]int{0}, []bool{true},
		[]float64{1}, []float64{1}); !errors.Is(err, ErrImpossibleAnswers) {
		t.Fatalf("contradicting perfect judgment: err = %v, want ErrImpossibleAnswers", err)
	}
}

func TestConditionWeightedValidation(t *testing.T) {
	j, err := New(2, []World{0, 1, 2}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		tasks      []int
		answers    []bool
		sens, spec []float64
	}{
		{"short sens", []int{0, 1}, []bool{true, false}, []float64{0.8}, []float64{0.8, 0.8}},
		{"short spec", []int{0, 1}, []bool{true, false}, []float64{0.8, 0.8}, []float64{0.8}},
		{"sens above one", []int{0}, []bool{true}, []float64{1.1}, []float64{0.8}},
		{"spec below zero", []int{0}, []bool{true}, []float64{0.8}, []float64{-0.1}},
		{"NaN sens", []int{0}, []bool{true}, []float64{math.NaN()}, []float64{0.8}},
		{"bad fact", []int{7}, []bool{true}, []float64{0.8}, []float64{0.8}},
		{"answers mismatch", []int{0, 1}, []bool{true}, []float64{0.8, 0.8}, []float64{0.8, 0.8}},
	}
	for _, tc := range cases {
		if _, err := j.ConditionWeighted(tc.tasks, tc.answers, tc.sens, tc.spec); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Empty evidence is a clone, matching Condition's contract.
	post, err := j.ConditionWeighted(nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Worlds()) != 3 {
		t.Fatalf("empty evidence changed the support: %v", post.Worlds())
	}
}
