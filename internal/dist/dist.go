// Package dist is the probability kernel of CrowdFusion: facts, possible
// worlds and sparse joint distributions over them (Section II of the
// paper).
//
// A Fact is one {subject, predicate, object} triple whose truth is
// uncertain. A World is a complete truth assignment over n facts, encoded
// as a bitmask — one of the paper's "possible outputs" o_i. A Joint is a
// probability distribution over worlds with an explicit sparse support:
// only worlds with positive probability are stored, as a sorted,
// deduplicated world list with a parallel probability vector.
//
// The package is built for the selection hot path (internal/core calls
// Entropy, Marginal and Prob inside the greedy loop):
//
//   - supports are sorted ascending and deduplicated at construction, so
//     Prob is a binary search and set operations are merges;
//   - Entropy and the per-fact marginals are computed once at construction
//     and served from cache with no per-call allocations;
//   - all validation (negative probabilities, zero total mass, worlds out
//     of range) happens in the constructors, never at query time;
//   - a Joint is immutable: Condition and Truncate return new values, so
//     distributions may be shared freely across goroutines.
//
// Probabilities passed to the constructors are treated as non-negative
// weights and normalized to total mass 1; duplicate worlds are merged and
// zero-weight worlds are dropped from the support.
package dist

import "fmt"

// MaxFacts is the largest number of facts a distribution may range over.
// Worlds are uint64 bitmasks, so one machine word bounds the fact count.
const MaxFacts = 64

// MaxDenseFacts is the largest fact count accepted by the dense
// constructors (Dense, Uniform, Independent), which materialize all 2^n
// worlds. 2^20 worlds is ~8 MB of probabilities — past that a sparse
// support via New is the only sensible representation.
const MaxDenseFacts = 20

// Fact is one {subject, predicate, object} triple with a prior
// correctness probability, the unit the crowd is asked to judge
// (Definition 1 of the paper).
type Fact struct {
	// ID is a short stable identifier ("f1", a statement id, ...).
	ID string
	// Subject, Predicate and Object form the triple.
	Subject   string
	Predicate string
	Object    string
	// Prior is the marginal correctness probability assigned by the
	// machine-only fusion method that produced the distribution.
	Prior float64
}

// String renders the triple in the paper's (subject, predicate, object)
// notation.
func (f Fact) String() string {
	return fmt.Sprintf("(%s, %s, %s)", f.Subject, f.Predicate, f.Object)
}
