package dist

// RunningExample returns the paper's worked example: the four uncertain
// facts about Hong Kong of Table I and the output joint distribution of
// Table II over all sixteen possible worlds.
//
// Fact indices 0..3 are the paper's f1..f4; the marginals (0.50, 0.63,
// 0.58, 0.49) and every downstream number of Tables III and IV follow
// from the joint below.
func RunningExample() ([]Fact, *Joint) {
	// Table II, indexed by world value with bit 0 = f1 .. bit 3 = f4
	// (the paper lists rows with f4 as the fastest-changing judgment).
	probs := []float64{
		0.03, 0.04, 0.09, 0.06, 0.07, 0.04, 0.11, 0.07,
		0.06, 0.04, 0.01, 0.09, 0.04, 0.05, 0.09, 0.11,
	}
	j, err := Dense(4, probs)
	if err != nil {
		// Unreachable: the literal is a valid distribution.
		panic("dist: running example: " + err.Error())
	}
	triples := [][2]string{
		{"is located in", "Asia"},
		{"has population at least", "500,000"},
		{"has major ethnic group", "Chinese"},
		{"is located in", "Europe"},
	}
	facts := make([]Fact, len(triples))
	for i, tr := range triples {
		facts[i] = Fact{
			ID:        "f" + string(rune('1'+i)),
			Subject:   "Hong Kong",
			Predicate: tr[0],
			Object:    tr[1],
			Prior:     j.Marginals()[i],
		}
	}
	return facts, j
}
