package dist

import (
	"math"
	"testing"
)

// TestRunningExampleTables pins the worked example against the paper's
// printed numbers: the Table I marginals, the Table II joint, and the
// Table III fact entropies (Table II bit convention; see the label note
// in internal/core's golden tests).
func TestRunningExampleTables(t *testing.T) {
	facts, j := RunningExample()
	if j.N() != 4 || len(facts) != 4 {
		t.Fatalf("running example has %d facts, joint over %d", len(facts), j.N())
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}

	// Table I: the per-fact marginals.
	wantM := []float64{0.50, 0.63, 0.58, 0.49}
	for i, want := range wantM {
		m, err := j.Marginal(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m-want) > 1e-9 {
			t.Errorf("P(f%d) = %v, want %v", i+1, m, want)
		}
		if facts[i].Prior != m {
			t.Errorf("fact f%d prior %v != marginal %v", i+1, facts[i].Prior, m)
		}
		if facts[i].ID != "f"+string(rune('1'+i)) {
			t.Errorf("fact %d ID = %q", i, facts[i].ID)
		}
	}

	// Table II: all sixteen worlds, in sorted (dense) order.
	wantP := []float64{
		0.03, 0.04, 0.09, 0.06, 0.07, 0.04, 0.11, 0.07,
		0.06, 0.04, 0.01, 0.09, 0.04, 0.05, 0.09, 0.11,
	}
	if j.SupportSize() != 16 {
		t.Fatalf("support = %d, want 16", j.SupportSize())
	}
	for i, w := range j.Worlds() {
		if w != World(i) {
			t.Errorf("world %d = %v, want %d (sorted dense support)", i, w, i)
		}
		if math.Abs(j.Probs()[i]-wantP[i]) > 1e-9 {
			t.Errorf("P(o%d) = %v, want %v", i+1, j.Probs()[i], wantP[i])
		}
	}

	// Table III's fact-entropy column for every 2-subset.
	wantFH := map[[2]int]float64{
		{0, 1}: 1.948, {0, 2}: 1.977, {0, 3}: 1.976,
		{1, 2}: 1.929, {1, 3}: 1.949, {2, 3}: 1.981,
	}
	for pair, want := range wantFH {
		fh, err := j.FactEntropy(pair[:])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fh-want) > 1e-3 {
			t.Errorf("H({f%d,f%d}) = %.4f, want %.3f", pair[0]+1, pair[1]+1, fh, want)
		}
	}

	// The Section III-D walkthrough seed: H({f1}) is exactly one bit.
	fh, err := j.FactEntropy([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fh-1) > 1e-9 {
		t.Errorf("H({f1}) = %v, want 1", fh)
	}
}
