package dist

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"crowdfusion/internal/info"
)

// Joint is a probability distribution over possible worlds with an
// explicit sparse support: the worlds with positive probability, sorted
// ascending and deduplicated, with a parallel probability vector that
// sums to 1.
//
// A Joint is immutable after construction. Entropy and the per-fact
// marginals are precomputed, so the accessors the selection inner loop
// leans on (Entropy, Marginal, Prob) do no allocation and no recomputation.
type Joint struct {
	n         int
	worlds    []World   // sorted ascending, no duplicates, no zero-mass entries
	probs     []float64 // parallel to worlds; sums to 1
	marginals []float64 // marginals[i] = P(fact i is true)
	entropy   float64   // H(O) in bits
}

// Construction errors.
var (
	// ErrNoWorlds is returned when a constructor receives an empty support.
	ErrNoWorlds = errors.New("dist: distribution needs at least one world")
	// ErrZeroMass is returned when the support's total weight is not
	// positive, so no normalized distribution exists.
	ErrZeroMass = errors.New("dist: total probability mass must be positive")
)

// New builds a sparse joint distribution over n facts. The probabilities
// are treated as non-negative weights: duplicate worlds are merged,
// zero-weight worlds are dropped, and the remaining weights are
// normalized to total mass 1. The inputs are not modified.
//
// Errors: n outside [1, MaxFacts], mismatched slice lengths, an empty
// support, a negative or non-finite weight, zero total mass, or a world
// judging facts at or beyond index n.
func New(n int, worlds []World, probs []float64) (*Joint, error) {
	if n < 1 || n > MaxFacts {
		return nil, fmt.Errorf("dist: fact count %d outside [1, %d]", n, MaxFacts)
	}
	if len(worlds) != len(probs) {
		return nil, fmt.Errorf("dist: %d worlds but %d probabilities", len(worlds), len(probs))
	}
	if len(worlds) == 0 {
		return nil, ErrNoWorlds
	}
	for i, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, fmt.Errorf("dist: world %d has invalid probability %v", i, p)
		}
	}
	for i, w := range worlds {
		// Shifting by n is well-defined for n = MaxFacts = 64: the
		// result is 0, so every 64-bit world is in range.
		if uint64(w)>>uint(n) != 0 {
			return nil, fmt.Errorf("dist: world %d (%#x) judges facts beyond index %d", i, uint64(w), n-1)
		}
	}

	// Sort a copy of the (world, weight) pairs by world and merge
	// duplicates in one pass.
	idx := make([]int, len(worlds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return worlds[idx[a]] < worlds[idx[b]] })
	ws := make([]World, 0, len(worlds))
	ps := make([]float64, 0, len(worlds))
	for _, i := range idx {
		if len(ws) > 0 && ws[len(ws)-1] == worlds[i] {
			ps[len(ps)-1] += probs[i]
			continue
		}
		ws = append(ws, worlds[i])
		ps = append(ps, probs[i])
	}
	return finish(n, ws, ps)
}

// Dense builds a distribution over the full 2^n world cube, with probs
// indexed by world value (probs[w] is the weight of World(w)). Weights
// are normalized; zero-weight worlds are dropped from the support.
func Dense(n int, probs []float64) (*Joint, error) {
	if n < 1 || n > MaxDenseFacts {
		return nil, fmt.Errorf("dist: dense fact count %d outside [1, %d]", n, MaxDenseFacts)
	}
	if want := 1 << uint(n); len(probs) != want {
		return nil, fmt.Errorf("dist: dense support over %d facts needs %d probabilities, got %d",
			n, want, len(probs))
	}
	ws := make([]World, len(probs))
	ps := make([]float64, len(probs))
	for w, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, fmt.Errorf("dist: world %d has invalid probability %v", w, p)
		}
		ws[w] = World(w)
		ps[w] = p
	}
	return finish(n, ws, ps)
}

// Uniform builds the uniform prior over all 2^n worlds — the
// maximum-entropy distribution, with H = n bits.
func Uniform(n int) (*Joint, error) {
	if n < 1 || n > MaxDenseFacts {
		return nil, fmt.Errorf("dist: uniform fact count %d outside [1, %d]", n, MaxDenseFacts)
	}
	size := 1 << uint(n)
	probs := make([]float64, size)
	p := 1 / float64(size)
	for i := range probs {
		probs[i] = p
	}
	return Dense(n, probs)
}

// Independent builds the product distribution from per-fact marginal
// correctness probabilities — the bridge from fusion methods that output
// only marginals. World w gets probability prod_i (m_i if w judges fact i
// true, else 1-m_i); worlds ruled out by a 0 or 1 marginal are dropped.
func Independent(marginals []float64) (*Joint, error) {
	n := len(marginals)
	if n < 1 || n > MaxDenseFacts {
		return nil, fmt.Errorf("dist: independent fact count %d outside [1, %d]", n, MaxDenseFacts)
	}
	for i, m := range marginals {
		if math.IsNaN(m) || m < 0 || m > 1 {
			return nil, fmt.Errorf("dist: marginal %d = %v outside [0, 1]", i, m)
		}
	}
	probs := make([]float64, 1<<uint(n))
	probs[0] = 1
	size := 1
	for _, m := range marginals {
		for w := 0; w < size; w++ {
			p := probs[w]
			probs[w] = p * (1 - m)
			probs[w|size] = p * m
		}
		size <<= 1
	}
	return Dense(n, probs)
}

// finish normalizes the sorted, deduplicated support, drops zero-mass
// worlds, and precomputes the cached marginals and entropy. It takes
// ownership of ws and ps.
func finish(n int, ws []World, ps []float64) (*Joint, error) {
	total := info.Sum(ps)
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, ErrZeroMass
	}
	out := 0
	for i, p := range ps {
		if p == 0 {
			continue
		}
		ws[out] = ws[i]
		ps[out] = p / total
		out++
	}
	ws = ws[:out]
	ps = ps[:out]
	if out == 0 {
		return nil, ErrZeroMass
	}
	j := &Joint{n: n, worlds: ws, probs: ps}
	j.marginals = make([]float64, n)
	for i, w := range ws {
		p := ps[i]
		for m := uint64(w); m != 0; m &= m - 1 {
			j.marginals[bits.TrailingZeros64(m)] += p
		}
	}
	j.entropy = info.Entropy(ps)
	return j, nil
}

// N returns the number of facts the distribution ranges over.
func (j *Joint) N() int { return j.n }

// SupportSize returns the number of worlds with positive probability.
func (j *Joint) SupportSize() int { return len(j.worlds) }

// Worlds returns the support, sorted ascending. The slice is shared with
// the Joint and must not be modified.
func (j *Joint) Worlds() []World { return j.worlds }

// Probs returns the probabilities parallel to Worlds, summing to 1. The
// slice is shared with the Joint and must not be modified.
func (j *Joint) Probs() []float64 { return j.probs }

// Prob returns P(w): the probability of the exact world w, or 0 when w is
// outside the support. O(log |support|), no allocation.
func (j *Joint) Prob(w World) float64 {
	lo, hi := 0, len(j.worlds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if j.worlds[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(j.worlds) && j.worlds[lo] == w {
		return j.probs[lo]
	}
	return 0
}

// Marginal returns P(fact i is true): the total mass of worlds judging
// fact i true. Served from the construction-time cache.
func (j *Joint) Marginal(i int) (float64, error) {
	if i < 0 || i >= j.n {
		return 0, fmt.Errorf("dist: fact %d out of range [0, %d)", i, j.n)
	}
	return j.marginals[i], nil
}

// Marginals returns the per-fact marginal correctness probabilities. The
// slice is shared with the Joint and must not be modified.
func (j *Joint) Marginals() []float64 { return j.marginals }

// Entropy returns H(O), the Shannon entropy of the distribution in bits
// (Definition 4's uncertainty measure). Served from the construction-time
// cache: no allocation, no recomputation.
func (j *Joint) Entropy() float64 { return j.entropy }

// Utility returns the paper's quality measure Q = -H(O) (Definition 4): 0
// for a certain output, increasingly negative with uncertainty.
func (j *Joint) Utility() float64 { return -j.entropy }

// FactEntropy returns H({f_i | i in facts}): the entropy of the joint
// judgment distribution of the given facts — the Pc = 1 degenerate case of
// the task entropy (the paper's discussion after Equation 4). The facts
// must be distinct and in range.
func (j *Joint) FactEntropy(facts []int) (float64, error) {
	if err := j.checkFacts(facts); err != nil {
		return 0, err
	}
	if len(facts) == 0 {
		return 0, nil
	}
	// Group worlds by judgment pattern with a sort instead of a map: one
	// allocation, cache-friendly, and a deterministic summation order (map
	// iteration order would reorder the entropy accumulation run to run).
	type patMass struct {
		pat  uint64
		mass float64
	}
	pairs := make([]patMass, len(j.worlds))
	for i, w := range j.worlds {
		pairs[i] = patMass{pat: w.Pattern(facts), mass: j.probs[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].pat < pairs[b].pat })
	var sum, comp float64
	for i := 0; i < len(pairs); {
		mass := pairs[i].mass
		for i++; i < len(pairs) && pairs[i].pat == pairs[i-1].pat; i++ {
			mass += pairs[i].mass
		}
		// Kahan-compensated -sum p log2 p, matching info.Entropy.
		term := -info.PLogP(mass)
		y := term - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	if sum < 0 {
		sum = 0
	}
	return sum, nil
}

// Validate re-checks the construction invariants: a sorted, duplicate-free
// support of in-range worlds with positive probabilities summing to 1.
// The constructors establish all of this, so Validate failing means the
// shared support slices were modified; it exists as a cheap integrity
// check for tests and long-lived pipelines.
func (j *Joint) Validate() error {
	if j.n < 1 || j.n > MaxFacts {
		return fmt.Errorf("dist: fact count %d outside [1, %d]", j.n, MaxFacts)
	}
	if len(j.worlds) == 0 || len(j.worlds) != len(j.probs) {
		return fmt.Errorf("dist: support of %d worlds with %d probabilities", len(j.worlds), len(j.probs))
	}
	for i, w := range j.worlds {
		if uint64(w)>>uint(j.n) != 0 {
			return fmt.Errorf("dist: world %d (%#x) judges facts beyond index %d", i, uint64(w), j.n-1)
		}
		if i > 0 && j.worlds[i-1] >= w {
			return fmt.Errorf("dist: support not sorted at index %d", i)
		}
		if j.probs[i] <= 0 || math.IsNaN(j.probs[i]) || math.IsInf(j.probs[i], 0) {
			return fmt.Errorf("dist: world %d has invalid probability %v", i, j.probs[i])
		}
	}
	return info.Validate(j.probs)
}

// Clone returns an independent copy of the distribution. Joints are
// immutable, so this is only needed to decouple lifetimes.
func (j *Joint) Clone() *Joint {
	c := *j
	c.worlds = append([]World(nil), j.worlds...)
	c.probs = append([]float64(nil), j.probs...)
	c.marginals = append([]float64(nil), j.marginals...)
	return &c
}

// Truncate returns a distribution keeping only the m highest-probability
// worlds of the support, renormalized — the support-truncation ablation
// of the benchmarks. Ties are broken toward smaller worlds for
// determinism. If m is at least the support size, the receiver itself is
// returned.
func (j *Joint) Truncate(m int) *Joint {
	if m >= len(j.worlds) {
		return j
	}
	if m < 1 {
		m = 1
	}
	idx := make([]int, len(j.worlds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if j.probs[idx[a]] != j.probs[idx[b]] {
			return j.probs[idx[a]] > j.probs[idx[b]]
		}
		return j.worlds[idx[a]] < j.worlds[idx[b]]
	})
	kept := idx[:m]
	sort.Ints(kept)
	ws := make([]World, m)
	ps := make([]float64, m)
	for i, k := range kept {
		ws[i] = j.worlds[k]
		ps[i] = j.probs[k]
	}
	t, err := finish(j.n, ws, ps)
	if err != nil {
		// Unreachable: the support is non-empty with positive mass.
		panic(fmt.Sprintf("dist: truncate: %v", err))
	}
	return t
}

// checkFacts validates that every index is in range and distinct.
func (j *Joint) checkFacts(facts []int) error {
	var seen uint64
	for _, f := range facts {
		if f < 0 || f >= j.n {
			return fmt.Errorf("dist: fact %d out of range [0, %d)", f, j.n)
		}
		if seen&(1<<uint(f)) != 0 {
			return fmt.Errorf("dist: duplicate fact %d", f)
		}
		seen |= 1 << uint(f)
	}
	return nil
}
