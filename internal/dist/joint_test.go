package dist

import (
	"math"
	"math/rand"
	"testing"
)

// randomJoint builds a sparse distribution with the given support size
// from unnormalized positive weights, exercising the merge/normalize path.
func randomJoint(tb testing.TB, rng *rand.Rand, n, size int) *Joint {
	tb.Helper()
	worlds := make([]World, size)
	probs := make([]float64, size)
	for i := range worlds {
		worlds[i] = World(rng.Int63n(1 << uint(n)))
		probs[i] = rng.Float64() + 1e-6
	}
	j, err := New(n, worlds, probs)
	if err != nil {
		tb.Fatalf("New(%d, %d worlds): %v", n, size, err)
	}
	return j
}

func TestNewValidation(t *testing.T) {
	w := []World{0, 1}
	p := []float64{0.5, 0.5}
	cases := []struct {
		name   string
		n      int
		worlds []World
		probs  []float64
	}{
		{"zero facts", 0, w, p},
		{"too many facts", MaxFacts + 1, w, p},
		{"length mismatch", 2, w, p[:1]},
		{"empty support", 2, nil, nil},
		{"negative prob", 2, w, []float64{0.5, -0.1}},
		{"NaN prob", 2, w, []float64{0.5, math.NaN()}},
		{"Inf prob", 2, w, []float64{0.5, math.Inf(1)}},
		{"zero mass", 2, w, []float64{0, 0}},
		{"world out of range", 2, []World{0, 4}, p},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.n, tc.worlds, tc.probs); err == nil {
				t.Errorf("New(%d, %v, %v) accepted invalid input", tc.n, tc.worlds, tc.probs)
			}
		})
	}
}

func TestNewNormalizesMergesAndSorts(t *testing.T) {
	// Duplicates of world 2 merge; the weights are unnormalized; input
	// order is shuffled; world 1 carries zero weight and is dropped.
	j, err := New(3,
		[]World{5, 2, 1, 2},
		[]float64{2, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if j.SupportSize() != 2 {
		t.Fatalf("support = %d, want 2 (merged + zero dropped)", j.SupportSize())
	}
	if j.Worlds()[0] != 2 || j.Worlds()[1] != 5 {
		t.Errorf("support %v not sorted ascending", j.Worlds())
	}
	if math.Abs(j.Prob(2)-4.0/6) > 1e-12 || math.Abs(j.Prob(5)-2.0/6) > 1e-12 {
		t.Errorf("probs = %v, want [4/6 2/6]", j.Probs())
	}
	if got := j.Prob(1); got != 0 {
		t.Errorf("Prob(dropped world) = %v, want 0", got)
	}
	if got := j.Prob(7); got != 0 {
		t.Errorf("Prob(absent world) = %v, want 0", got)
	}
	if err := j.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewAcceptsMaxFacts(t *testing.T) {
	// 64 facts exercises the full-width world mask (the Theorem 1
	// reduction builds exactly this shape).
	j, err := New(MaxFacts, []World{0, math.MaxUint64}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	m, err := j.Marginal(MaxFacts - 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.75) > 1e-12 {
		t.Errorf("Marginal(63) = %v, want 0.75", m)
	}
}

// TestMarginalsConsistentWithWorldMass: every marginal lies in [0, 1] and
// equals the total probability of the worlds judging that fact true.
func TestMarginalsConsistentWithWorldMass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		j := randomJoint(t, rng, n, 1+rng.Intn(20))
		if len(j.Marginals()) != n {
			t.Fatalf("Marginals() has %d entries for %d facts", len(j.Marginals()), n)
		}
		for f := 0; f < n; f++ {
			m, err := j.Marginal(f)
			if err != nil {
				t.Fatal(err)
			}
			if m < 0 || m > 1+1e-12 {
				t.Fatalf("marginal %d = %v outside [0, 1]", f, m)
			}
			var mass float64
			for i, w := range j.Worlds() {
				if w.Has(f) {
					mass += j.Probs()[i]
				}
			}
			if math.Abs(m-mass) > 1e-12 {
				t.Fatalf("marginal %d = %v, world mass = %v", f, m, mass)
			}
			if m != j.Marginals()[f] {
				t.Fatalf("Marginal(%d) disagrees with Marginals()[%d]", f, f)
			}
		}
		if _, err := j.Marginal(-1); err == nil {
			t.Fatal("Marginal(-1) accepted")
		}
		if _, err := j.Marginal(n); err == nil {
			t.Fatal("Marginal(n) accepted")
		}
	}
}

// TestEntropyBoundsAndUniformMaximum: entropy is non-negative, at most n
// bits, exactly n for Uniform(n), and no distribution over n facts beats
// the uniform one.
func TestEntropyBoundsAndUniformMaximum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 8; n++ {
		u, err := Uniform(n)
		if err != nil {
			t.Fatal(err)
		}
		if u.Entropy() != float64(n) {
			t.Errorf("H(Uniform(%d)) = %v, want exactly %d", n, u.Entropy(), n)
		}
		if u.SupportSize() != 1<<uint(n) {
			t.Errorf("Uniform(%d) support = %d", n, u.SupportSize())
		}
		for trial := 0; trial < 50; trial++ {
			j := randomJoint(t, rng, n, 1+rng.Intn(1<<uint(n)))
			h := j.Entropy()
			if h < 0 {
				t.Fatalf("negative entropy %v", h)
			}
			if h > u.Entropy()+1e-9 {
				t.Fatalf("entropy %v exceeds uniform maximum %d", h, n)
			}
			if u := j.Utility(); u != -h {
				t.Fatalf("Utility() = %v, want %v", u, -h)
			}
		}
	}
	// A single-world distribution is certain: zero entropy.
	j, err := New(5, []World{0b10101}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if j.Entropy() != 0 {
		t.Errorf("H(certain) = %v, want 0", j.Entropy())
	}
}

// TestIndependentAgreesWithDense: the product distribution must equal the
// explicitly tabulated dense distribution on every world.
func TestIndependentAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		marginals := make([]float64, n)
		for i := range marginals {
			marginals[i] = rng.Float64()
		}
		probs := make([]float64, 1<<uint(n))
		for w := range probs {
			p := 1.0
			for i := 0; i < n; i++ {
				if w&(1<<uint(i)) != 0 {
					p *= marginals[i]
				} else {
					p *= 1 - marginals[i]
				}
			}
			probs[w] = p
		}
		ind, err := Independent(marginals)
		if err != nil {
			t.Fatal(err)
		}
		den, err := Dense(n, probs)
		if err != nil {
			t.Fatal(err)
		}
		if ind.SupportSize() != den.SupportSize() {
			t.Fatalf("support %d vs %d", ind.SupportSize(), den.SupportSize())
		}
		for i, w := range ind.Worlds() {
			if den.Worlds()[i] != w {
				t.Fatalf("world order differs at %d", i)
			}
			if math.Abs(ind.Probs()[i]-den.Probs()[i]) > 1e-12 {
				t.Fatalf("P(%v) = %v vs %v", w, ind.Probs()[i], den.Probs()[i])
			}
		}
		// And the marginals round-trip through the joint.
		for f, m := range marginals {
			got, err := ind.Marginal(f)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-m) > 1e-9 {
				t.Fatalf("marginal %d = %v, want %v", f, got, m)
			}
		}
	}
}

func TestIndependentExtremeMarginals(t *testing.T) {
	// Marginals of 0 and 1 rule worlds out: the support shrinks to the
	// single consistent world.
	j, err := Independent([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if j.SupportSize() != 1 || j.Worlds()[0] != 0b101 {
		t.Fatalf("support = %v, want [0b101]", j.Worlds())
	}
	if j.Entropy() != 0 {
		t.Errorf("entropy %v, want 0", j.Entropy())
	}
	if _, err := Independent([]float64{0.5, 1.2}); err == nil {
		t.Error("marginal > 1 accepted")
	}
	if _, err := Independent(nil); err == nil {
		t.Error("empty marginals accepted")
	}
}

func TestFactEntropy(t *testing.T) {
	// Two perfectly correlated facts: one bit of judgment entropy total.
	j, err := New(2, []World{0b00, 0b11}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, facts := range [][]int{{0}, {1}, {0, 1}} {
		h, err := j.FactEntropy(facts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-1) > 1e-12 {
			t.Errorf("FactEntropy(%v) = %v, want 1", facts, h)
		}
	}
	if h, err := j.FactEntropy(nil); err != nil || h != 0 {
		t.Errorf("FactEntropy(nil) = %v, %v; want 0, nil", h, err)
	}
	if _, err := j.FactEntropy([]int{2}); err == nil {
		t.Error("out-of-range fact accepted")
	}
	if _, err := j.FactEntropy([]int{0, 0}); err == nil {
		t.Error("duplicate fact accepted")
	}
	// FactEntropy over all facts equals the distribution entropy.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		j := randomJoint(t, rng, n, 1+rng.Intn(12))
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		h, err := j.FactEntropy(all)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-j.Entropy()) > 1e-9 {
			t.Fatalf("FactEntropy(all) = %v, H = %v", h, j.Entropy())
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	j, err := New(3, []World{1, 6}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	c := j.Clone()
	if c == j {
		t.Fatal("Clone returned the receiver")
	}
	c.Worlds()[0] = 7
	c.Probs()[0] = 99
	c.Marginals()[0] = 99
	if j.Worlds()[0] != 1 || j.Probs()[0] != 0.25 {
		t.Error("mutating the clone reached the original")
	}
	if err := j.Validate(); err != nil {
		t.Errorf("original invalidated: %v", err)
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate missed the tampered clone")
	}
}

func TestTruncate(t *testing.T) {
	j, err := New(3,
		[]World{0, 1, 2, 3},
		[]float64{0.4, 0.3, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tr := j.Truncate(2)
	if tr.SupportSize() != 2 {
		t.Fatalf("support = %d, want 2", tr.SupportSize())
	}
	if tr.Worlds()[0] != 0 || tr.Worlds()[1] != 1 {
		t.Errorf("kept worlds %v, want the top-2 by probability [0 1]", tr.Worlds())
	}
	if math.Abs(tr.Prob(0)-4.0/7) > 1e-12 || math.Abs(tr.Prob(1)-3.0/7) > 1e-12 {
		t.Errorf("truncated probs %v not renormalized", tr.Probs())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if got := j.Truncate(10); got != j {
		t.Error("Truncate past the support should return the receiver")
	}
	if got := j.Truncate(0); got.SupportSize() != 1 {
		t.Errorf("Truncate(0) support = %d, want clamp to 1", got.SupportSize())
	}
	// The original is untouched.
	if j.SupportSize() != 4 {
		t.Errorf("Truncate modified the receiver (support %d)", j.SupportSize())
	}
}

// TestHotPathDoesNotAllocate pins the design requirement that the greedy
// inner loop's queries stay allocation-free.
func TestHotPathDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	j := randomJoint(t, rng, 10, 40)
	for name, fn := range map[string]func(){
		"Entropy":   func() { _ = j.Entropy() },
		"Utility":   func() { _ = j.Utility() },
		"Marginal":  func() { _, _ = j.Marginal(3) },
		"Marginals": func() { _ = j.Marginals() },
		"Prob":      func() { _ = j.Prob(17) },
		"Worlds":    func() { _ = j.Worlds() },
		"Probs":     func() { _ = j.Probs() },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %v times per call", name, allocs)
		}
	}
}

func BenchmarkEntropy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	j := randomJoint(b, rng, 16, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = j.Entropy()
	}
}

func BenchmarkProb(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	j := randomJoint(b, rng, 16, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = j.Prob(World(i & 0xFFFF))
	}
}

func BenchmarkNewSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	worlds := make([]World, 256)
	probs := make([]float64, 256)
	for i := range worlds {
		worlds[i] = World(rng.Int63n(1 << 16))
		probs[i] = rng.Float64() + 1e-6
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(16, worlds, probs); err != nil {
			b.Fatal(err)
		}
	}
}
