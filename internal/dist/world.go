package dist

import "strings"

// World is a complete truth assignment over the facts of a distribution,
// encoded as a bitmask: bit i is set exactly when fact i is judged true.
// It is one of the paper's "possible outputs" o_i. The zero World judges
// every fact false.
type World uint64

// Set returns a copy of w with fact i judged v. Fact indices at or above
// MaxFacts are ignored.
func (w World) Set(i int, v bool) World {
	if i < 0 || i >= MaxFacts {
		return w
	}
	if v {
		return w | 1<<uint(i)
	}
	return w &^ (1 << uint(i))
}

// Has reports whether w judges fact i true. Indices at or above MaxFacts
// are false.
func (w World) Has(i int) bool {
	if i < 0 || i >= MaxFacts {
		return false
	}
	return w&(1<<uint(i)) != 0
}

// Pattern compresses w's judgments of the given facts into a bitmask: bit
// j of the result is set exactly when w judges facts[j] true. Two worlds
// with equal patterns are indistinguishable by answers to those facts —
// the grouping every marginalization in internal/core relies on.
func (w World) Pattern(facts []int) uint64 {
	var p uint64
	for j, f := range facts {
		if w.Has(f) {
			p |= 1 << uint(j)
		}
	}
	return p
}

// FormatJudgments renders the judgments of the first n facts as aligned
// "T"/"F" columns, matching the layout of the paper's Tables II and IV.
func (w World) FormatJudgments(n int) string {
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		if w.Has(i) {
			cols[i] = "T"
		} else {
			cols[i] = "F"
		}
	}
	return strings.Join(cols, "  ")
}
