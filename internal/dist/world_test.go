package dist

import "testing"

func TestWorldSetHas(t *testing.T) {
	var w World
	w = w.Set(0, true).Set(3, true).Set(63, true)
	for i := 0; i < MaxFacts; i++ {
		want := i == 0 || i == 3 || i == 63
		if w.Has(i) != want {
			t.Errorf("Has(%d) = %v, want %v", i, w.Has(i), want)
		}
	}
	w = w.Set(3, false)
	if w.Has(3) {
		t.Error("Set(3, false) did not clear the judgment")
	}
	// Out-of-range indices are inert, never a wrap-around.
	if w.Set(64, true) != w || w.Set(-1, true) != w {
		t.Error("out-of-range Set modified the world")
	}
	if w.Has(64) || w.Has(-1) {
		t.Error("out-of-range Has reported true")
	}
}

func TestWorldPattern(t *testing.T) {
	w := World(0b10110)
	cases := []struct {
		facts []int
		want  uint64
	}{
		{nil, 0},
		{[]int{0}, 0},
		{[]int{1}, 1},
		{[]int{4, 2, 0}, 0b011},
		{[]int{1, 2, 4}, 0b111},
		{[]int{3, 1}, 0b10},
	}
	for _, tc := range cases {
		if got := w.Pattern(tc.facts); got != tc.want {
			t.Errorf("Pattern(%v) = %#b, want %#b", tc.facts, got, tc.want)
		}
	}
}

func TestWorldFormatJudgments(t *testing.T) {
	w := World(0b0101)
	if got := w.FormatJudgments(4); got != "T  F  T  F" {
		t.Errorf("FormatJudgments(4) = %q", got)
	}
	if got := World(0).FormatJudgments(1); got != "F" {
		t.Errorf("FormatJudgments(1) = %q", got)
	}
	if got := World(0).FormatJudgments(0); got != "" {
		t.Errorf("FormatJudgments(0) = %q", got)
	}
}

func TestFactString(t *testing.T) {
	f := Fact{ID: "f1", Subject: "s", Predicate: "p", Object: "o", Prior: 0.5}
	if got := f.String(); got != "(s, p, o)" {
		t.Errorf("String() = %q", got)
	}
}
