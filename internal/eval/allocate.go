package eval

import (
	"container/heap"
	"fmt"

	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/info"
	"crowdfusion/internal/parallel"
	"crowdfusion/internal/worlds"
)

// Global budget allocation across books — the extension the paper's error
// analysis calls for (Section V-D: books with many statements run out of
// per-book budget while small books waste theirs; "if a proper strategy
// can be designed to distribute budgets among all subsets of facts, this
// can be solved").
//
// The allocator treats the whole corpus as one submodular maximization:
// at every step it funds the single task, in whichever book, with the
// highest net utility gain ΔQ = H(T∪{f}) - H(T) - H(Crowd). Because a
// book's gains only change when that book receives an answer, the
// per-book best gains are kept in a max-heap and only the funded book is
// re-evaluated — the cross-book analogue of the lazy-greedy prune.

// AllocationConfig configures a globally budgeted run.
type AllocationConfig struct {
	Instances []*worlds.Instance
	// TotalBudget is the corpus-wide number of tasks (compare with
	// SweepConfig.Budget × #books).
	TotalBudget int
	// Pc is the crowd accuracy assumed by selection and merging.
	Pc float64
	// CrowdPc is the simulated crowd's actual accuracy (defaults to Pc).
	CrowdPc float64
	// UseDifficulty routes statement difficulty into the simulation.
	UseDifficulty bool
	Seed          int64
}

// AllocationResult reports where the budget went and what it bought.
type AllocationResult struct {
	Config   AllocationConfig
	PerBook  []int // tasks funded per instance, parallel to Instances
	Joints   []*dist.Joint
	Final    Metrics
	Utility  float64
	Cost     int
	StopFull bool // true when the budget ran out (vs all books certain)
}

type allocBook struct {
	idx      int
	joint    *dist.Joint
	sim      *crowd.Simulator
	bestFact int
	bestGain float64
}

type allocHeap []*allocBook

func (h allocHeap) Len() int            { return len(h) }
func (h allocHeap) Less(i, j int) bool  { return h[i].bestGain > h[j].bestGain }
func (h allocHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *allocHeap) Push(x interface{}) { *h = append(*h, x.(*allocBook)) }
func (h *allocHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunAllocation executes the globally budgeted refinement.
func RunAllocation(cfg AllocationConfig) (*AllocationResult, error) {
	if len(cfg.Instances) == 0 {
		return nil, ErrInstanceCount
	}
	if cfg.TotalBudget <= 0 {
		return nil, fmt.Errorf("eval: TotalBudget must be positive")
	}
	crowdPc := cfg.CrowdPc
	if crowdPc == 0 {
		crowdPc = cfg.Pc
	}
	noise := info.Binary(cfg.Pc)

	res := &AllocationResult{
		Config:  cfg,
		PerBook: make([]int, len(cfg.Instances)),
		Joints:  make([]*dist.Joint, len(cfg.Instances)),
	}
	// Per-book setup — simulator construction plus the O(n) first
	// best-task scan — is independent across books, so it runs on the
	// bounded worker pool; results land at fixed indices and the heap is
	// assembled sequentially in book order, keeping the run
	// deterministic for a fixed seed.
	books := make([]*allocBook, len(cfg.Instances))
	errs := make([]error, len(cfg.Instances))
	parallel.For(0, len(cfg.Instances), func(i int) {
		in := cfg.Instances[i]
		seed := cfg.Seed + int64(i)*1009
		var sim *crowd.Simulator
		var err error
		if cfg.UseDifficulty {
			sim, err = in.Simulator(crowdPc, crowd.DefaultDifficulty(), seed)
		} else {
			sim, err = in.UniformSimulator(crowdPc, seed)
		}
		if err != nil {
			errs[i] = err
			return
		}
		book := &allocBook{idx: i, joint: in.Joint.Clone(), sim: sim}
		books[i], errs[i] = book, book.refreshBest(cfg.Pc, noise)
	})
	h := make(allocHeap, 0, len(cfg.Instances))
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		book := books[i]
		res.Joints[i] = book.joint
		if book.bestFact >= 0 {
			h = append(h, book)
		}
	}
	heap.Init(&h)

	for res.Cost < cfg.TotalBudget && h.Len() > 0 {
		book := heap.Pop(&h).(*allocBook)
		if book.bestGain <= 1e-12 {
			break // every remaining book is certain
		}
		answers := book.sim.Answers([]int{book.bestFact})
		post, err := book.joint.Condition([]int{book.bestFact}, answers, cfg.Pc)
		if err != nil {
			return nil, err
		}
		book.joint = post
		res.Joints[book.idx] = post
		res.PerBook[book.idx]++
		res.Cost++
		if err := book.refreshBest(cfg.Pc, noise); err != nil {
			return nil, err
		}
		if book.bestFact >= 0 {
			heap.Push(&h, book)
		}
	}
	res.StopFull = res.Cost >= cfg.TotalBudget

	var total Metrics
	for i, in := range cfg.Instances {
		res.Utility += -res.Joints[i].Entropy()
		judgments := make([]bool, res.Joints[i].N())
		for fi, m := range res.Joints[i].Marginals() {
			judgments[fi] = m >= 0.5
		}
		m, err := Score(judgments, in.Gold)
		if err != nil {
			return nil, err
		}
		total = total.Add(m)
	}
	res.Final = total
	return res, nil
}

// refreshBest finds the book's current best single task and its net gain.
func (b *allocBook) refreshBest(pc, noise float64) error {
	b.bestFact = -1
	b.bestGain = 0
	for f := 0; f < b.joint.N(); f++ {
		h, err := core.TaskEntropy(b.joint, []int{f}, pc)
		if err != nil {
			return err
		}
		gain := h - noise
		if gain > b.bestGain {
			b.bestGain = gain
			b.bestFact = f
		}
	}
	return nil
}
