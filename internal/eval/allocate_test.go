package eval

import (
	"testing"
)

func TestRunAllocationValidation(t *testing.T) {
	if _, err := RunAllocation(AllocationConfig{}); err != ErrInstanceCount {
		t.Errorf("empty config err = %v", err)
	}
	ins := testInstances(t, 3, 8, 30)
	if _, err := RunAllocation(AllocationConfig{Instances: ins, Pc: 0.8}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestRunAllocationAccounting(t *testing.T) {
	ins := testInstances(t, 6, 10, 31)
	res, err := RunAllocation(AllocationConfig{
		Instances:   ins,
		TotalBudget: 40,
		Pc:          0.8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 40 {
		t.Errorf("cost %d exceeds total budget", res.Cost)
	}
	var sum int
	for _, c := range res.PerBook {
		if c < 0 {
			t.Errorf("negative per-book cost %d", c)
		}
		sum += c
	}
	if sum != res.Cost {
		t.Errorf("per-book costs sum to %d, cost is %d", sum, res.Cost)
	}
	if len(res.Joints) != len(ins) {
		t.Fatalf("joints = %d", len(res.Joints))
	}
	for i, j := range res.Joints {
		if j.N() != ins[i].N() {
			t.Errorf("joint %d over %d facts, want %d", i, j.N(), ins[i].N())
		}
	}
	if res.Final.Total() == 0 {
		t.Error("no judgments scored")
	}
}

func TestRunAllocationDeterministic(t *testing.T) {
	ins := testInstances(t, 4, 8, 32)
	cfg := AllocationConfig{Instances: ins, TotalBudget: 24, Pc: 0.8, Seed: 7}
	a, err := RunAllocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Final != b.Final {
		t.Error("allocation runs diverged")
	}
	for i := range a.PerBook {
		if a.PerBook[i] != b.PerBook[i] {
			t.Fatalf("per-book allocation diverged at %d", i)
		}
	}
}

// TestAllocationFavorsUncertainBooks: books that are already near-certain
// should receive less budget than highly uncertain ones.
func TestRunAllocationFavorsUncertainBooks(t *testing.T) {
	ins := testInstances(t, 10, 14, 33)
	res, err := RunAllocation(AllocationConfig{
		Instances:   ins,
		TotalBudget: 60,
		Pc:          0.9,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank books by prior entropy; the most uncertain third should
	// receive more budget in total than the most certain third.
	type pair struct {
		h float64
		c int
	}
	pairs := make([]pair, len(ins))
	for i, in := range ins {
		pairs[i] = pair{h: in.Joint.Entropy(), c: res.PerBook[i]}
	}
	third := len(pairs) / 3
	var lowH, highH []pair
	for _, p := range pairs {
		lowH = append(lowH, p)
	}
	// Simple selection by sorting on entropy.
	for i := 0; i < len(lowH); i++ {
		for j := i + 1; j < len(lowH); j++ {
			if lowH[j].h < lowH[i].h {
				lowH[i], lowH[j] = lowH[j], lowH[i]
			}
		}
	}
	highH = lowH[len(lowH)-third:]
	lowH = lowH[:third]
	var lowCost, highCost int
	for _, p := range lowH {
		lowCost += p.c
	}
	for _, p := range highH {
		highCost += p.c
	}
	if highCost <= lowCost {
		t.Errorf("uncertain books got %d tasks, certain books got %d", highCost, lowCost)
	}
}

// TestAllocationVsUniform: at the same total budget, global allocation
// should match or beat the uniform per-book split on F1, averaged over
// seeds — the claim behind the Section V-D suggestion.
func TestRunAllocationVsUniform(t *testing.T) {
	ins := testInstances(t, 12, 14, 34)
	const perBook = 6
	total := perBook * len(ins)
	var allocF1, uniformF1 float64
	const seeds = 6
	for s := int64(0); s < seeds; s++ {
		a, err := RunAllocation(AllocationConfig{
			Instances:   ins,
			TotalBudget: total,
			Pc:          0.8,
			Seed:        400 + 13*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		u, err := RunSweep(SweepConfig{
			Instances: ins,
			Selector:  SelApproxPrune,
			K:         1,
			Budget:    perBook,
			Pc:        0.8,
			Seed:      400 + 13*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		allocF1 += a.Final.F1()
		uniformF1 += u.Final.F1()
	}
	if allocF1 < uniformF1-0.02*seeds {
		t.Errorf("global allocation avg F1 %v below uniform %v",
			allocF1/seeds, uniformF1/seeds)
	}
}

// TestAllocationStopsWhenCertain: with a tiny corpus and huge budget, the
// allocator must stop on its own once every book is certain.
func TestRunAllocationStopsWhenCertain(t *testing.T) {
	ins := testInstances(t, 3, 8, 35)
	res, err := RunAllocation(AllocationConfig{
		Instances:   ins,
		TotalBudget: 100000,
		Pc:          1.0, // perfect crowd pins facts quickly
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopFull {
		t.Error("allocator claimed to exhaust an absurdly large budget")
	}
	if res.Cost >= 100000 {
		t.Errorf("cost = %d", res.Cost)
	}
	// With a perfect crowd everything should be judged correctly.
	if res.Final.F1() < 0.999 {
		t.Errorf("perfect crowd F1 = %v", res.Final.F1())
	}
}
