package eval

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/worlds"
)

// Calibration analysis: the engine's output is a probability per
// statement, and downstream consumers (the paper's "confidence of any
// query answers") rely on those probabilities being honest. A reliability
// diagram bins statements by predicted probability and compares each bin's
// mean prediction with its empirical gold rate; the expected calibration
// error (ECE) summarizes the gap.

// CalibrationBin is one reliability-diagram bin.
type CalibrationBin struct {
	Lo, Hi        float64 // predicted-probability range [Lo, Hi)
	Count         int     // statements in the bin
	MeanPredicted float64 // average predicted P(true)
	EmpiricalRate float64 // fraction actually gold-true
}

// Calibration is a full reliability report.
type Calibration struct {
	Bins []CalibrationBin
	// ECE is the expected calibration error: the count-weighted mean
	// |MeanPredicted - EmpiricalRate| over bins.
	ECE float64
	// Brier is the mean squared error of the probabilistic predictions.
	Brier float64
	Total int
}

// CalibrationReport bins the marginal probabilities of the given joints
// (parallel to instances) against gold labels. nBins must be at least 2.
func CalibrationReport(instances []*worlds.Instance, joints []*dist.Joint, nBins int) (*Calibration, error) {
	if len(instances) == 0 || len(instances) != len(joints) {
		return nil, ErrInstanceCount
	}
	if nBins < 2 {
		return nil, fmt.Errorf("eval: nBins must be >= 2, got %d", nBins)
	}
	sumPred := make([]float64, nBins)
	sumTrue := make([]float64, nBins)
	count := make([]int, nBins)
	var brier float64
	total := 0
	for idx, in := range instances {
		if joints[idx].N() != in.N() {
			return nil, fmt.Errorf("eval: joint %d has %d facts, instance has %d",
				idx, joints[idx].N(), in.N())
		}
		for i, p := range joints[idx].Marginals() {
			b := int(p * float64(nBins))
			if b >= nBins {
				b = nBins - 1
			}
			sumPred[b] += p
			if in.Gold[i] {
				sumTrue[b]++
				brier += (1 - p) * (1 - p)
			} else {
				brier += p * p
			}
			count[b]++
			total++
		}
	}
	cal := &Calibration{Total: total}
	var ece float64
	for b := 0; b < nBins; b++ {
		bin := CalibrationBin{
			Lo: float64(b) / float64(nBins),
			Hi: float64(b+1) / float64(nBins),
		}
		if count[b] > 0 {
			bin.Count = count[b]
			bin.MeanPredicted = sumPred[b] / float64(count[b])
			bin.EmpiricalRate = sumTrue[b] / float64(count[b])
			ece += float64(count[b]) / float64(total) *
				math.Abs(bin.MeanPredicted-bin.EmpiricalRate)
		}
		cal.Bins = append(cal.Bins, bin)
	}
	cal.ECE = ece
	cal.Brier = brier / float64(total)
	return cal, nil
}

// RenderCalibration writes the reliability table.
func RenderCalibration(w io.Writer, c *Calibration) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bin\tcount\tmean predicted\tempirical rate")
	for _, b := range c.Bins {
		fmt.Fprintf(tw, "[%.2f, %.2f)\t%d\t%.3f\t%.3f\n",
			b.Lo, b.Hi, b.Count, b.MeanPredicted, b.EmpiricalRate)
	}
	fmt.Fprintf(tw, "ECE\t%.4f\tBrier\t%.4f\n", c.ECE, c.Brier)
	return tw.Flush()
}
