package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"crowdfusion/internal/dist"
)

func TestCalibrationReportValidation(t *testing.T) {
	if _, err := CalibrationReport(nil, nil, 10); err != ErrInstanceCount {
		t.Errorf("empty err = %v", err)
	}
	ins := testInstances(t, 3, 8, 50)
	joints := make([]*dist.Joint, len(ins))
	for i, in := range ins {
		joints[i] = in.Joint
	}
	if _, err := CalibrationReport(ins, joints[:1], 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CalibrationReport(ins, joints, 1); err == nil {
		t.Error("nBins=1 accepted")
	}
}

func TestCalibrationReportCounts(t *testing.T) {
	ins := testInstances(t, 6, 10, 51)
	joints := make([]*dist.Joint, len(ins))
	want := 0
	for i, in := range ins {
		joints[i] = in.Joint
		want += in.N()
	}
	cal, err := CalibrationReport(ins, joints, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Total != want {
		t.Errorf("total = %d, want %d", cal.Total, want)
	}
	sum := 0
	for _, b := range cal.Bins {
		sum += b.Count
		if b.Count > 0 {
			if b.MeanPredicted < b.Lo-1e-9 || b.MeanPredicted > b.Hi+1e-9 {
				t.Errorf("bin [%.2f,%.2f): mean predicted %.3f outside bin",
					b.Lo, b.Hi, b.MeanPredicted)
			}
			if b.EmpiricalRate < 0 || b.EmpiricalRate > 1 {
				t.Errorf("empirical rate %v", b.EmpiricalRate)
			}
		}
	}
	if sum != want {
		t.Errorf("bin counts sum to %d, want %d", sum, want)
	}
	if cal.ECE < 0 || cal.ECE > 1 {
		t.Errorf("ECE = %v", cal.ECE)
	}
	if cal.Brier < 0 || cal.Brier > 1 {
		t.Errorf("Brier = %v", cal.Brier)
	}
}

// TestCalibrationImprovesWithRefinement: crowd refinement should reduce
// both ECE and Brier score — the posterior probabilities become sharper
// and stay honest.
func TestCalibrationImprovesWithRefinement(t *testing.T) {
	ins := testInstances(t, 12, 14, 52)
	priorJoints := make([]*dist.Joint, len(ins))
	for i, in := range ins {
		priorJoints[i] = in.Joint
	}
	before, err := CalibrationReport(ins, priorJoints, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSweep(SweepConfig{
		Instances: ins, Selector: SelApproxPrune,
		K: 2, Budget: 20, Pc: 0.9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := CalibrationReport(ins, res.Joints, 10)
	if err != nil {
		t.Fatal(err)
	}
	if after.Brier >= before.Brier {
		t.Errorf("Brier did not improve: %.4f -> %.4f", before.Brier, after.Brier)
	}
}

// TestCalibrationPerfectPredictions: probabilities of exactly 0/1 matching
// gold give zero ECE and Brier.
func TestCalibrationPerfectPredictions(t *testing.T) {
	ins := testInstances(t, 4, 8, 53)
	joints := make([]*dist.Joint, len(ins))
	for i, in := range ins {
		// A point-mass joint on the truth world.
		j, err := dist.New(in.N(), []dist.World{in.Truth}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		joints[i] = j
	}
	cal, err := CalibrationReport(ins, joints, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.ECE) > 1e-9 || math.Abs(cal.Brier) > 1e-9 {
		t.Errorf("perfect predictions: ECE=%v Brier=%v", cal.ECE, cal.Brier)
	}
}

func TestRenderCalibration(t *testing.T) {
	ins := testInstances(t, 3, 8, 54)
	joints := make([]*dist.Joint, len(ins))
	for i, in := range ins {
		joints[i] = in.Joint
	}
	cal, err := CalibrationReport(ins, joints, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderCalibration(&buf, cal); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ECE") || !strings.Contains(out, "empirical rate") {
		t.Errorf("render missing fields:\n%s", out)
	}
}
