package eval

import (
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/worlds"
)

// ErrorBreakdown tallies residual wrong judgments by statement difficulty
// class, reproducing the Section V-D error analysis: wrong-order,
// additional-info and misspelled statements dominate what the crowd cannot
// fix.
type ErrorBreakdown struct {
	// Wrong counts misjudged statements per class; TotalByClass counts
	// all statements per class.
	Wrong        map[crowd.ErrorClass]int
	TotalByClass map[crowd.ErrorClass]int
}

// Rate returns the error rate for a class (0 when no such statements).
func (b ErrorBreakdown) Rate(c crowd.ErrorClass) float64 {
	total := b.TotalByClass[c]
	if total == 0 {
		return 0
	}
	return float64(b.Wrong[c]) / float64(total)
}

// AnalyzeErrors compares final judgments per instance against gold and
// attributes each residual error to its statement class. finals[i] must be
// the refined joint of instances[i].
func AnalyzeErrors(instances []*worlds.Instance, finals []*dist.Joint) (ErrorBreakdown, error) {
	b := ErrorBreakdown{
		Wrong:        make(map[crowd.ErrorClass]int),
		TotalByClass: make(map[crowd.ErrorClass]int),
	}
	if len(instances) != len(finals) {
		return b, ErrInstanceCount
	}
	if len(instances) == 0 {
		return b, ErrInstanceCount
	}
	for idx, in := range instances {
		marginals := finals[idx].Marginals()
		for i, s := range in.Statements {
			b.TotalByClass[s.Class]++
			judged := marginals[i] >= 0.5
			if judged != s.Gold {
				b.Wrong[s.Class]++
			}
		}
	}
	return b, nil
}
