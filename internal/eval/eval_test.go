package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/fusion"
	"crowdfusion/internal/worlds"
)

func testInstances(tb testing.TB, books, sources int, seed int64) []*worlds.Instance {
	tb.Helper()
	cfg := bookdata.DefaultConfig()
	cfg.Books = books
	cfg.Sources = sources
	cfg.Seed = seed
	d, err := bookdata.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	truths, err := fusion.NewCRH().Fuse(d.Claims)
	if err != nil {
		tb.Fatal(err)
	}
	instances, err := worlds.BuildAll(d, truths, worlds.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return instances
}

func TestScoreAndMetrics(t *testing.T) {
	judg := []bool{true, true, false, false, true}
	gold := []bool{true, false, false, true, true}
	m, err := Score(judg, gold)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 2 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if math.Abs(m.Precision()-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", m.Precision())
	}
	if math.Abs(m.Recall()-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", m.Recall())
	}
	if math.Abs(m.F1()-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", m.F1())
	}
	if math.Abs(m.Accuracy()-0.6) > 1e-12 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
	if _, err := Score(judg, gold[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero metrics should yield zero scores")
	}
	sum := Metrics{TP: 1}.Add(Metrics{FP: 2, TN: 3})
	if sum.TP != 1 || sum.FP != 2 || sum.TN != 3 || sum.Total() != 6 {
		t.Errorf("Add = %+v", sum)
	}
}

func TestNewSelector(t *testing.T) {
	kinds := []SelectorKind{SelOPT, SelApprox, SelApproxPrune, SelApproxPre, SelApproxFull, SelRandom}
	for _, k := range kinds {
		s, err := NewSelector(k, 1)
		if err != nil {
			t.Errorf("%s: %v", k, err)
		}
		if s == nil {
			t.Errorf("%s: nil selector", k)
		}
	}
	if _, err := NewSelector("nope", 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep(SweepConfig{}); err != ErrInstanceCount {
		t.Errorf("empty sweep err = %v", err)
	}
	ins := testInstances(t, 3, 8, 1)
	if _, err := RunSweep(SweepConfig{Instances: ins, Selector: SelApprox, Pc: 0.8}); err == nil {
		t.Error("zero K/Budget accepted")
	}
}

func TestRunSweepShape(t *testing.T) {
	ins := testInstances(t, 6, 10, 2)
	res, err := RunSweep(SweepConfig{
		Instances: ins,
		Selector:  SelApproxFull,
		K:         2,
		Budget:    8,
		Pc:        0.8,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	maxCost := 0
	prevCost := 0
	for _, p := range res.Trace {
		if p.Cost <= prevCost {
			t.Errorf("cost not strictly increasing: %d -> %d", prevCost, p.Cost)
		}
		prevCost = p.Cost
		if p.F1 < 0 || p.F1 > 1 {
			t.Errorf("F1 = %v out of range", p.F1)
		}
		maxCost = p.Cost
	}
	if maxCost > 8*len(ins) {
		t.Errorf("total cost %d exceeds budget %d", maxCost, 8*len(ins))
	}
	if res.Final.Total() == 0 {
		t.Error("final metrics empty")
	}
}

// TestSweepImprovesOverPrior: with an accurate crowd and the greedy
// selector, the final F1 across books must improve on the machine-only
// prior — the headline claim of the paper.
func TestSweepImprovesOverPrior(t *testing.T) {
	ins := testInstances(t, 10, 14, 4)
	_, prior, err := PriorQuality(ins)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSweep(SweepConfig{
		Instances: ins,
		Selector:  SelApproxPrune,
		K:         2,
		Budget:    30,
		Pc:        0.9,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.F1() <= prior.F1() {
		t.Errorf("final F1 %v did not beat prior %v", res.Final.F1(), prior.F1())
	}
}

// TestSweepGreedyBeatsRandom: at equal budget the greedy selector must
// dominate random selection on average — the core comparison of Figures
// 2-4 (which, like the paper, use the exact Approx selector; preprocessing
// belongs to the Table V timing study). Averaged over seeds for stability.
func TestSweepGreedyBeatsRandom(t *testing.T) {
	ins := testInstances(t, 12, 14, 6)
	var greedySum, randomSum float64
	const seeds = 12
	for s := int64(0); s < seeds; s++ {
		g, err := RunSweep(SweepConfig{
			Instances: ins, Selector: SelApproxPrune,
			K: 2, Budget: 16, Pc: 0.8, Seed: 100 + 31*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunSweep(SweepConfig{
			Instances: ins, Selector: SelRandom,
			K: 2, Budget: 16, Pc: 0.8, Seed: 100 + 31*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		greedySum += g.Final.F1()
		randomSum += r.Final.F1()
	}
	if greedySum <= randomSum {
		t.Errorf("greedy avg F1 %v <= random %v", greedySum/seeds, randomSum/seeds)
	}
}

// TestPreprocessingQualityAblation quantifies the documented trade-off: on
// sparse supports the Algorithm-2 acceleration approximates the objective,
// so its selections may lose some quality versus exact greedy — but must
// stay within a modest band and keep spending the budget (no silent early
// stops).
func TestPreprocessingQualityAblation(t *testing.T) {
	ins := testInstances(t, 10, 14, 6)
	var exactSum, preSum float64
	const seeds = 8
	for s := int64(0); s < seeds; s++ {
		ex, err := RunSweep(SweepConfig{
			Instances: ins, Selector: SelApproxPrune,
			K: 2, Budget: 16, Pc: 0.8, Seed: 500 + 17*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := RunSweep(SweepConfig{
			Instances: ins, Selector: SelApproxFull,
			K: 2, Budget: 16, Pc: 0.8, Seed: 500 + 17*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		exactSum += ex.Final.F1()
		preSum += pr.Final.F1()
		// The exact-confirmed stop rule must keep the preprocessed
		// run spending a comparable budget.
		exCost := ex.Trace[len(ex.Trace)-1].Cost
		prCost := pr.Trace[len(pr.Trace)-1].Cost
		if prCost*2 < exCost {
			t.Errorf("seed %d: preprocessed run stopped early: cost %d vs %d", s, prCost, exCost)
		}
	}
	if preSum < 0.9*exactSum {
		t.Errorf("preprocessed F1 %v lost more than 10%% vs exact %v",
			preSum/seeds, exactSum/seeds)
	}
}

// TestSweepHigherPcHigherUtility reproduces Figure 4(b): a more accurate
// crowd reaches higher utility at equal cost.
func TestSweepHigherPcHigherUtility(t *testing.T) {
	ins := testInstances(t, 8, 12, 8)
	var u7, u9 float64
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		lo, err := RunSweep(SweepConfig{
			Instances: ins, Selector: SelApproxPrune,
			K: 2, Budget: 20, Pc: 0.7, Seed: 200 + s,
		})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := RunSweep(SweepConfig{
			Instances: ins, Selector: SelApproxPrune,
			K: 2, Budget: 20, Pc: 0.9, Seed: 200 + s,
		})
		if err != nil {
			t.Fatal(err)
		}
		u7 += lo.Trace[len(lo.Trace)-1].Utility
		u9 += hi.Trace[len(hi.Trace)-1].Utility
	}
	if u9 <= u7 {
		t.Errorf("Pc=0.9 final utility %v <= Pc=0.7 %v", u9/seeds, u7/seeds)
	}
}

func TestSweepDeterministic(t *testing.T) {
	ins := testInstances(t, 4, 8, 10)
	cfg := SweepConfig{Instances: ins, Selector: SelApproxFull, K: 2, Budget: 10, Pc: 0.8, Seed: 7}
	a, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("trace lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestSweepMisestimatedPc: assuming a different accuracy than the crowd
// actually has still runs and yields sane output (Section V-C3).
func TestSweepMisestimatedPc(t *testing.T) {
	ins := testInstances(t, 4, 8, 12)
	res, err := RunSweep(SweepConfig{
		Instances: ins, Selector: SelApproxFull,
		K: 2, Budget: 10, Pc: 0.7, CrowdPc: 0.9, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Total() == 0 {
		t.Error("no judgments scored")
	}
}

// TestSweepParallelMatchesSequential: stepping books concurrently must be
// bit-identical to the sequential run — each book owns its RNG streams.
func TestSweepParallelMatchesSequential(t *testing.T) {
	ins := testInstances(t, 10, 12, 13)
	base := SweepConfig{
		Instances: ins, Selector: SelApproxPrune,
		K: 2, Budget: 12, Pc: 0.8, Seed: 21,
		Parallelism: 1, // force sequential (0 now means GOMAXPROCS)
	}
	seq, err := RunSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 8
	got, err := RunSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Trace) != len(got.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(seq.Trace), len(got.Trace))
	}
	for i := range seq.Trace {
		if seq.Trace[i] != got.Trace[i] {
			t.Fatalf("parallel diverged at round %d: %+v vs %+v",
				i+1, seq.Trace[i], got.Trace[i])
		}
	}
	if seq.Final != got.Final {
		t.Errorf("final metrics diverged: %+v vs %+v", seq.Final, got.Final)
	}
}

func TestPriorQuality(t *testing.T) {
	ins := testInstances(t, 5, 8, 14)
	u, m, err := PriorQuality(ins)
	if err != nil {
		t.Fatal(err)
	}
	if u >= 0 {
		t.Errorf("prior utility %v should be negative (uncertain prior)", u)
	}
	if m.Total() == 0 {
		t.Error("prior metrics empty")
	}
	if _, _, err := PriorQuality(nil); err != ErrInstanceCount {
		t.Errorf("empty instances err = %v", err)
	}
}

func TestRunTimings(t *testing.T) {
	ins := testInstances(t, 4, 10, 16)
	res, err := RunTimings(TimingConfig{
		Instances: ins,
		Ks:        []int{1, 2, 3},
		Selectors: []SelectorKind{SelOPT, SelApprox, SelApproxFull},
		Pc:        0.8,
		MaxOptK:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(res.Cells))
	}
	// OPT at k=3 must be skipped.
	cell, ok := res.Cell(3, SelOPT)
	if !ok || !cell.Skipped {
		t.Errorf("OPT at k=3 not skipped: %+v", cell)
	}
	// Non-skipped cells have non-negative times.
	for _, c := range res.Cells {
		if !c.Skipped && c.Seconds < 0 {
			t.Errorf("negative time %v", c.Seconds)
		}
	}
	if _, err := RunTimings(TimingConfig{}); err != ErrInstanceCount {
		t.Errorf("empty timing err = %v", err)
	}
	if _, err := RunTimings(TimingConfig{Instances: ins}); err == nil {
		t.Error("missing Ks/Selectors accepted")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ins := testInstances(t, 6, 10, 18)
	finals := make([]*dist.Joint, len(ins))
	for i, in := range ins {
		finals[i] = in.Joint // unrefined: errors are whatever the prior gets wrong
	}
	b, err := AnalyzeErrors(ins, finals)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range crowd.ErrorClasses {
		total += b.TotalByClass[c]
		if b.Wrong[c] > b.TotalByClass[c] {
			t.Errorf("class %v: wrong %d > total %d", c, b.Wrong[c], b.TotalByClass[c])
		}
	}
	want := 0
	for _, in := range ins {
		want += in.N()
	}
	if total != want {
		t.Errorf("breakdown covers %d statements, want %d", total, want)
	}
	if _, err := AnalyzeErrors(ins, finals[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AnalyzeErrors(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if b.Rate(crowd.ErrorClass(77)) != 0 {
		t.Error("unknown class rate should be 0")
	}
}

func TestRenderers(t *testing.T) {
	ins := testInstances(t, 3, 8, 20)
	timings, err := RunTimings(TimingConfig{
		Instances: ins,
		Ks:        []int{1, 2},
		Selectors: []SelectorKind{SelApprox, SelApproxFull},
		Pc:        0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTimings(&buf, timings); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Approx") {
		t.Error("timing table missing selector header")
	}
	buf.Reset()
	if err := WriteTimingsCSV(&buf, timings); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("CSV has %d lines, want 3", lines)
	}

	trace := []TracePoint{{Round: 1, Cost: 10, Utility: -5, F1: 0.7}}
	buf.Reset()
	if err := RenderTrace(&buf, "fig2", trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig2") {
		t.Error("trace table missing label")
	}
	buf.Reset()
	err = WriteTraceCSV(&buf, map[string][]TracePoint{"b": trace, "a": trace})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "\na,") > strings.Index(out, "\nb,") {
		t.Error("trace CSV series not sorted")
	}

	buf.Reset()
	breakdown := ErrorBreakdown{
		Wrong:        map[crowd.ErrorClass]int{crowd.Misspelling: 2},
		TotalByClass: map[crowd.ErrorClass]int{crowd.Misspelling: 4},
	}
	if err := RenderErrorBreakdown(&buf, breakdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "misspelling") {
		t.Error("breakdown table missing class")
	}
}
