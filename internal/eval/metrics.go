// Package eval implements the evaluation harness of Section V of the
// CrowdFusion paper: F1 scoring against gold labels, summed utility across
// data instances, budgeted quality sweeps (Figures 2, 3 and 4), one-round
// selection timing (Table V), the residual-error taxonomy (Section V-D),
// and text/CSV rendering of results.
package eval

import (
	"errors"
	"fmt"
)

// Metrics is a binary confusion matrix over statement judgments.
type Metrics struct {
	TP, FP, TN, FN int
}

// Score compares judgments against gold labels.
func Score(judgments, gold []bool) (Metrics, error) {
	if len(judgments) != len(gold) {
		return Metrics{}, fmt.Errorf("eval: %d judgments vs %d gold labels",
			len(judgments), len(gold))
	}
	var m Metrics
	for i := range gold {
		switch {
		case judgments[i] && gold[i]:
			m.TP++
		case judgments[i] && !gold[i]:
			m.FP++
		case !judgments[i] && gold[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	return m, nil
}

// Add returns the element-wise sum of two confusion matrices.
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{TP: m.TP + o.TP, FP: m.FP + o.FP, TN: m.TN + o.TN, FN: m.FN + o.FN}
}

// Total returns the number of scored items.
func (m Metrics) Total() int { return m.TP + m.FP + m.TN + m.FN }

// Precision returns TP / (TP + FP), or 0 when nothing was judged true.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP / (TP + FN), or 0 when nothing is gold-true.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct judgments.
func (m Metrics) Accuracy() float64 {
	if m.Total() == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(m.Total())
}

// ErrInstanceCount is returned by runners invoked without instances.
var ErrInstanceCount = errors.New("eval: no instances")
