package eval

import (
	"reflect"
	"testing"
)

// Tests that the parallelized evaluation loops are observationally
// identical to sequential runs: books own their RNG streams and results
// land at fixed indices, so worker count must never leak into outputs.

// TestSweepParallelismLevelsIdentical: sequential (1), auto (0 =
// GOMAXPROCS) and oversubscribed (8) runs of the same sweep produce
// byte-identical traces, finals and posteriors.
func TestSweepParallelismLevelsIdentical(t *testing.T) {
	ins := testInstances(t, 8, 10, 17)
	base := SweepConfig{
		Instances: ins, Selector: SelApproxFull,
		K: 2, Budget: 10, Pc: 0.8, Seed: 5,
		Parallelism: 1,
	}
	want, err := RunSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 8} {
		cfg := base
		cfg.Parallelism = workers
		got, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Trace, want.Trace) {
			t.Fatalf("parallelism=%d: trace differs from sequential", workers)
		}
		if got.Final != want.Final {
			t.Fatalf("parallelism=%d: final metrics differ", workers)
		}
		if len(got.Joints) != len(want.Joints) {
			t.Fatalf("parallelism=%d: joint counts differ", workers)
		}
		for i := range got.Joints {
			if !reflect.DeepEqual(got.Joints[i].Worlds(), want.Joints[i].Worlds()) ||
				!reflect.DeepEqual(got.Joints[i].Probs(), want.Joints[i].Probs()) {
				t.Fatalf("parallelism=%d: posterior %d differs", workers, i)
			}
		}
	}
}

// TestSweepRandomSelectorParallelIdentical: the Random baseline stays
// deterministic under parallel stepping — each book gets its own seeded
// selector, so no draw order depends on scheduling.
func TestSweepRandomSelectorParallelIdentical(t *testing.T) {
	ins := testInstances(t, 8, 10, 19)
	base := SweepConfig{
		Instances: ins, Selector: SelRandom,
		K: 2, Budget: 8, Pc: 0.8, Seed: 11,
		Parallelism: 1,
	}
	want, err := RunSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Parallelism = 6
	got, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Trace, want.Trace) {
		t.Fatal("Random-selector sweep diverged under parallelism")
	}
}

// TestAllocationDeterministicUnderParallelSetup: the parallel per-book
// setup of RunAllocation must not perturb the globally greedy funding
// sequence.
func TestAllocationDeterministicUnderParallelSetup(t *testing.T) {
	ins := testInstances(t, 6, 9, 23)
	cfg := AllocationConfig{Instances: ins, TotalBudget: 20, Pc: 0.8, Seed: 13}
	a, err := RunAllocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.PerBook, b.PerBook) {
		t.Fatalf("per-book funding differs across runs: %v vs %v", a.PerBook, b.PerBook)
	}
	if a.Cost != b.Cost || a.Utility != b.Utility || a.Final != b.Final {
		t.Fatal("allocation outcome differs across runs")
	}
}

// TestTimingsParallel: the parallel timing grid still measures every cell.
func TestTimingsParallel(t *testing.T) {
	ins := testInstances(t, 4, 8, 29)
	res, err := RunTimings(TimingConfig{
		Instances:   ins,
		Ks:          []int{1, 2},
		Selectors:   []SelectorKind{SelApprox, SelApproxFull},
		Pc:          0.8,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Skipped {
			t.Fatalf("cell k=%d %s unexpectedly skipped", c.K, c.Selector)
		}
		if c.Seconds <= 0 {
			t.Fatalf("cell k=%d %s has non-positive time", c.K, c.Selector)
		}
	}
	if len(res.Cells) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(res.Cells))
	}
}
