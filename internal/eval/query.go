package eval

import (
	"fmt"
	"math/rand"

	"crowdfusion/internal/core"
	"crowdfusion/internal/worlds"
)

// Query-based evaluation (Section IV): when users care about only a subset
// of facts, the query-based selector should reach a given quality on those
// facts with fewer tasks than the general selector — "if we are not
// interested in all aspects, we can get higher accuracy by asking fewer
// tasks".

// QuerySweepConfig configures the facts-of-interest comparison.
type QuerySweepConfig struct {
	Instances []*worlds.Instance
	// FOIFraction is the fraction of each book's facts sampled as the
	// facts of interest (at least one).
	FOIFraction float64
	// UseQuerySelector switches between the Section IV selector and the
	// general greedy selector evaluated on the same FOI metric.
	UseQuerySelector bool
	K                int
	Budget           int
	Pc               float64
	Seed             int64
}

// QuerySweepResult is the FOI-restricted quality curve.
type QuerySweepResult struct {
	Config QuerySweepConfig
	Trace  []TracePoint // Cost vs FOI-F1 and FOI utility (-H(I))
	Final  Metrics      // confusion over facts of interest only
}

// RunQuerySweep refines every instance with either the query-based or the
// general selector and scores only the facts of interest.
func RunQuerySweep(cfg QuerySweepConfig) (*QuerySweepResult, error) {
	if len(cfg.Instances) == 0 {
		return nil, ErrInstanceCount
	}
	if cfg.K <= 0 || cfg.Budget <= 0 {
		return nil, fmt.Errorf("eval: K and Budget must be positive")
	}
	if cfg.FOIFraction <= 0 || cfg.FOIFraction > 1 {
		return nil, fmt.Errorf("eval: FOIFraction must be in (0, 1]")
	}

	type run struct {
		*bookRun
		foi []int
	}
	runs := make([]*run, len(cfg.Instances))
	for i, in := range cfg.Instances {
		seed := cfg.Seed + int64(i)*1009
		rng := rand.New(rand.NewSource(seed))
		nFOI := int(cfg.FOIFraction * float64(in.N()))
		if nFOI < 1 {
			nFOI = 1
		}
		if max := core.MaxTasksPerRound; nFOI > max {
			nFOI = max
		}
		foi := append([]int(nil), rng.Perm(in.N())[:nFOI]...)

		var sel core.Selector
		if cfg.UseQuerySelector {
			sel = &core.QueryGreedySelector{FOI: foi}
		} else {
			sel = core.NewGreedyPrune()
		}
		sim, err := in.UniformSimulator(cfg.Pc, seed)
		if err != nil {
			return nil, err
		}
		runs[i] = &run{
			bookRun: &bookRun{in: in, joint: in.Joint.Clone(), sel: sel, sim: sim},
			foi:     foi,
		}
	}

	res := &QuerySweepResult{Config: cfg}
	sweep := SweepConfig{K: cfg.K, Budget: cfg.Budget, Pc: cfg.Pc}
	totalCost := 0
	for round := 1; ; round++ {
		asked := 0
		for _, r := range runs {
			n, err := r.step(sweep)
			if err != nil {
				return nil, fmt.Errorf("eval: query sweep book %s: %w", r.in.ISBN, err)
			}
			asked += n
		}
		if asked == 0 {
			break
		}
		totalCost += asked
		var utility float64
		var total Metrics
		for _, r := range runs {
			u, m, err := scoreFOI(r.bookRun, r.foi)
			if err != nil {
				return nil, err
			}
			utility += u
			total = total.Add(m)
		}
		res.Trace = append(res.Trace, TracePoint{
			Round: round, Cost: totalCost, Utility: utility, F1: total.F1(),
		})
	}
	var total Metrics
	for _, r := range runs {
		_, m, err := scoreFOI(r.bookRun, r.foi)
		if err != nil {
			return nil, err
		}
		total = total.Add(m)
	}
	res.Final = total
	return res, nil
}

// scoreFOI returns -H(I) and the confusion matrix over the facts of
// interest only.
func scoreFOI(r *bookRun, foi []int) (float64, Metrics, error) {
	h, err := r.joint.FactEntropy(foi)
	if err != nil {
		return 0, Metrics{}, err
	}
	marginals := r.joint.Marginals()
	judg := make([]bool, len(foi))
	gold := make([]bool, len(foi))
	for i, f := range foi {
		judg[i] = marginals[f] >= 0.5
		gold[i] = r.in.Gold[f]
	}
	m, err := Score(judg, gold)
	if err != nil {
		return 0, Metrics{}, err
	}
	return -h, m, nil
}
