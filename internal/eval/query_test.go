package eval

import (
	"testing"
)

func TestRunQuerySweepValidation(t *testing.T) {
	if _, err := RunQuerySweep(QuerySweepConfig{}); err != ErrInstanceCount {
		t.Errorf("empty config err = %v", err)
	}
	ins := testInstances(t, 3, 8, 40)
	if _, err := RunQuerySweep(QuerySweepConfig{
		Instances: ins, FOIFraction: 0.5, Pc: 0.8,
	}); err == nil {
		t.Error("zero K/Budget accepted")
	}
	if _, err := RunQuerySweep(QuerySweepConfig{
		Instances: ins, FOIFraction: 2, K: 1, Budget: 5, Pc: 0.8,
	}); err == nil {
		t.Error("FOIFraction > 1 accepted")
	}
}

func TestRunQuerySweepShape(t *testing.T) {
	ins := testInstances(t, 6, 10, 41)
	res, err := RunQuerySweep(QuerySweepConfig{
		Instances:        ins,
		FOIFraction:      0.4,
		UseQuerySelector: true,
		K:                2,
		Budget:           10,
		Pc:               0.8,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	prev := 0
	for _, p := range res.Trace {
		if p.Cost <= prev {
			t.Errorf("cost not increasing: %d -> %d", prev, p.Cost)
		}
		prev = p.Cost
	}
	if res.Final.Total() == 0 {
		t.Error("no FOI facts scored")
	}
}

// TestQuerySelectorAsksFewerTasks: the Section IV claim — with only a
// subset of facts of interest, the query-based selector stops earlier than
// the general selector while matching its FOI quality.
func TestQuerySelectorAsksFewerTasks(t *testing.T) {
	ins := testInstances(t, 10, 12, 42)
	var qCost, gCost int
	var qF1, gF1 float64
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		q, err := RunQuerySweep(QuerySweepConfig{
			Instances:        ins,
			FOIFraction:      0.3,
			UseQuerySelector: true,
			K:                2,
			Budget:           20,
			Pc:               0.9,
			Seed:             50 + 7*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, err := RunQuerySweep(QuerySweepConfig{
			Instances:        ins,
			FOIFraction:      0.3,
			UseQuerySelector: false,
			K:                2,
			Budget:           20,
			Pc:               0.9,
			Seed:             50 + 7*s,
		})
		if err != nil {
			t.Fatal(err)
		}
		qCost += q.Trace[len(q.Trace)-1].Cost
		gCost += g.Trace[len(g.Trace)-1].Cost
		qF1 += q.Final.F1()
		gF1 += g.Final.F1()
	}
	if qCost >= gCost {
		t.Errorf("query selector cost %d >= general %d", qCost/seeds, gCost/seeds)
	}
	if qF1 < gF1-0.05*seeds {
		t.Errorf("query selector FOI F1 %v far below general %v", qF1/seeds, gF1/seeds)
	}
}

func TestRunQuerySweepDeterministic(t *testing.T) {
	ins := testInstances(t, 4, 8, 43)
	cfg := QuerySweepConfig{
		Instances: ins, FOIFraction: 0.5, UseQuerySelector: true,
		K: 1, Budget: 6, Pc: 0.8, Seed: 9,
	}
	a, err := RunQuerySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQuerySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final || len(a.Trace) != len(b.Trace) {
		t.Error("query sweeps diverged")
	}
}
