package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"crowdfusion/internal/crowd"
)

// RenderTimings writes the Table V grid as an aligned text table: one row
// per k, one column per selector, times in seconds.
func RenderTimings(w io.Writer, r *TimingResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "k")
	for _, s := range r.Config.Selectors {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, k := range r.Config.Ks {
		fmt.Fprintf(tw, "%d", k)
		for _, s := range r.Config.Selectors {
			cell, ok := r.Cell(k, s)
			switch {
			case !ok || cell.Skipped:
				fmt.Fprint(tw, "\t-")
			default:
				fmt.Fprintf(tw, "\t%.6f", cell.Seconds)
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteTimingsCSV writes the grid as CSV with the same layout.
func WriteTimingsCSV(w io.Writer, r *TimingResult) error {
	cw := csv.NewWriter(w)
	header := []string{"k"}
	for _, s := range r.Config.Selectors {
		header = append(header, string(s))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, k := range r.Config.Ks {
		row := []string{strconv.Itoa(k)}
		for _, s := range r.Config.Selectors {
			cell, ok := r.Cell(k, s)
			if !ok || cell.Skipped {
				row = append(row, "")
			} else {
				row = append(row, strconv.FormatFloat(cell.Seconds, 'f', 6, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderTrace writes a quality curve as an aligned text table.
func RenderTrace(w io.Writer, label string, trace []TracePoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s\nround\tcost\tutility\tF1\n", label)
	for _, p := range trace {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.4f\n", p.Round, p.Cost, p.Utility, p.F1)
	}
	return tw.Flush()
}

// WriteTraceCSV writes one or more labelled quality curves as long-form
// CSV: label, round, cost, utility, f1.
func WriteTraceCSV(w io.Writer, curves map[string][]TracePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "round", "cost", "utility", "f1"}); err != nil {
		return err
	}
	// Deterministic order.
	labels := make([]string, 0, len(curves))
	for l := range curves {
		labels = append(labels, l)
	}
	sortStrings(labels)
	for _, l := range labels {
		for _, p := range curves[l] {
			err := cw.Write([]string{
				l,
				strconv.Itoa(p.Round),
				strconv.Itoa(p.Cost),
				strconv.FormatFloat(p.Utility, 'f', 4, 64),
				strconv.FormatFloat(p.F1, 'f', 4, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderErrorBreakdown writes the Section V-D residual-error table.
func RenderErrorBreakdown(w io.Writer, b ErrorBreakdown) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\twrong\ttotal\terror rate")
	for _, c := range crowd.ErrorClasses {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\n", c, b.Wrong[c], b.TotalByClass[c], b.Rate(c))
	}
	return tw.Flush()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
