package eval

import (
	"fmt"

	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/parallel"
	"crowdfusion/internal/worlds"
)

// SelectorKind names the task-selection strategies compared in the paper's
// figures.
type SelectorKind string

// The selector strategies of the evaluation.
const (
	SelOPT         SelectorKind = "OPT"
	SelApprox      SelectorKind = "Approx"
	SelApproxPrune SelectorKind = "Approx+Prune"
	SelApproxPre   SelectorKind = "Approx+Pre"
	SelApproxFull  SelectorKind = "Approx+Prune+Pre"
	SelRandom      SelectorKind = "Random"
	SelQuery       SelectorKind = "QueryApprox"
)

// NewSelector instantiates a selector for one instance. Random selectors
// get a per-instance seed so books do not share a random stream.
func NewSelector(kind SelectorKind, seed int64) (core.Selector, error) {
	switch kind {
	case SelOPT:
		return core.OptSelector{}, nil
	case SelApprox:
		return core.NewGreedy(), nil
	case SelApproxPrune:
		return core.NewGreedyPrune(), nil
	case SelApproxPre:
		return core.NewGreedyPre(), nil
	case SelApproxFull:
		return core.NewGreedyPrunePre(), nil
	case SelRandom:
		return core.NewRandom(seed), nil
	default:
		return nil, fmt.Errorf("eval: unknown selector kind %q", kind)
	}
}

// SweepConfig describes one quality-vs-budget run over a set of book
// instances, the configuration behind each curve in Figures 2-4.
type SweepConfig struct {
	Instances []*worlds.Instance
	Selector  SelectorKind
	// K is the number of tasks selected per round and book.
	K int
	// Budget is the per-book task budget (the paper uses 60).
	Budget int
	// Pc is the crowd accuracy assumed by selection and merging.
	Pc float64
	// CrowdPc is the actual accuracy of the simulated crowd; when 0 it
	// defaults to Pc. Setting them apart reproduces the Section V-C3
	// mis-estimation discussion.
	CrowdPc float64
	// UseDifficulty routes statement difficulty classes (Section V-D)
	// into the simulated crowd.
	UseDifficulty bool
	// Seed derives per-instance crowd and selector seeds.
	Seed int64
	// Parallelism steps that many books concurrently within each round
	// (books are independent — each owns its joint, selector and crowd
	// stream — so results are bit-identical to a sequential run). 0, the
	// default, uses all CPUs (GOMAXPROCS); 1 forces a sequential run.
	Parallelism int
}

// TracePoint is one point of a quality curve: total tasks asked across all
// instances, summed utility, and overall F1.
type TracePoint struct {
	Round   int
	Cost    int
	Utility float64
	F1      float64
}

// SweepResult is a full quality curve plus the final state.
type SweepResult struct {
	Config SweepConfig
	Trace  []TracePoint
	Final  Metrics
	// Joints holds each instance's refined posterior, parallel to
	// Config.Instances — the input to error analysis.
	Joints []*dist.Joint
}

// bookRun tracks one instance's refinement state between global rounds.
type bookRun struct {
	in    *worlds.Instance
	joint *dist.Joint
	sel   core.Selector
	sim   *crowd.Simulator
	cost  int
	done  bool
}

// RunSweep executes the paper's round-interleaved protocol: every round,
// each book with remaining budget selects and asks up to K tasks; after
// each global round the summed utility and overall F1 are recorded. The
// x-axis cost is the cumulative number of tasks across all books, exactly
// as in Figures 2-4.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Instances) == 0 {
		return nil, ErrInstanceCount
	}
	if cfg.K <= 0 || cfg.Budget <= 0 {
		return nil, fmt.Errorf("eval: K and Budget must be positive (got %d, %d)", cfg.K, cfg.Budget)
	}
	crowdPc := cfg.CrowdPc
	if crowdPc == 0 {
		crowdPc = cfg.Pc
	}

	runs := make([]*bookRun, len(cfg.Instances))
	for i, in := range cfg.Instances {
		seed := cfg.Seed + int64(i)*1009
		sel, err := NewSelector(cfg.Selector, seed)
		if err != nil {
			return nil, err
		}
		var sim *crowd.Simulator
		if cfg.UseDifficulty {
			sim, err = in.Simulator(crowdPc, crowd.DefaultDifficulty(), seed)
		} else {
			sim, err = in.UniformSimulator(crowdPc, seed)
		}
		if err != nil {
			return nil, err
		}
		runs[i] = &bookRun{in: in, joint: in.Joint.Clone(), sel: sel, sim: sim}
	}

	res := &SweepResult{Config: cfg}
	totalCost := 0
	for round := 1; ; round++ {
		asked, err := stepAll(runs, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: round %d: %w", round, err)
		}
		if asked == 0 {
			break
		}
		totalCost += asked
		utility, metrics := snapshot(runs)
		res.Trace = append(res.Trace, TracePoint{
			Round:   round,
			Cost:    totalCost,
			Utility: utility,
			F1:      metrics.F1(),
		})
	}
	_, res.Final = snapshot(runs)
	res.Joints = make([]*dist.Joint, len(runs))
	for i, r := range runs {
		res.Joints[i] = r.joint
	}
	return res, nil
}

// stepAll advances every book by one round across the bounded worker pool
// (cfg.Parallelism workers; 0 = GOMAXPROCS, 1 = sequential). Books are
// fully independent (each owns its joint, selector and crowd stream) and
// every book's result lands at its own index, so the parallel result is
// bit-identical to the sequential one.
func stepAll(runs []*bookRun, cfg SweepConfig) (int, error) {
	counts := make([]int, len(runs))
	errs := make([]error, len(runs))
	parallel.For(cfg.Parallelism, len(runs), func(i int) {
		counts[i], errs[i] = runs[i].step(cfg)
	})
	asked := 0
	for i := range runs {
		if errs[i] != nil {
			return 0, fmt.Errorf("book %s: %w", runs[i].in.ISBN, errs[i])
		}
		asked += counts[i]
	}
	return asked, nil
}

// step runs one round for one book, returning the number of tasks asked.
func (r *bookRun) step(cfg SweepConfig) (int, error) {
	if r.done || r.cost >= cfg.Budget {
		return 0, nil
	}
	k := cfg.K
	if rem := cfg.Budget - r.cost; k > rem {
		k = rem
	}
	if n := r.joint.N(); k > n {
		k = n
	}
	tasks, err := r.sel.Select(r.joint, k, cfg.Pc)
	if err != nil {
		return 0, err
	}
	if len(tasks) == 0 {
		r.done = true
		return 0, nil
	}
	answers := r.sim.Answers(tasks)
	post, err := r.joint.Condition(tasks, answers, cfg.Pc)
	if err != nil {
		return 0, err
	}
	r.joint = post
	r.cost += len(tasks)
	return len(tasks), nil
}

// snapshot sums utility and scores all books' current judgments.
func snapshot(runs []*bookRun) (float64, Metrics) {
	var utility float64
	var total Metrics
	for _, r := range runs {
		utility += -r.joint.Entropy()
		judgments := make([]bool, r.joint.N())
		for i, m := range r.joint.Marginals() {
			judgments[i] = m >= 0.5
		}
		m, err := Score(judgments, r.in.Gold)
		if err != nil {
			// Lengths are construction-time invariants; unreachable.
			panic(err)
		}
		total = total.Add(m)
	}
	return utility, total
}

// PriorQuality scores the machine-only prior (before any crowd work) — the
// zero-cost point of every curve.
func PriorQuality(instances []*worlds.Instance) (float64, Metrics, error) {
	if len(instances) == 0 {
		return 0, Metrics{}, ErrInstanceCount
	}
	var utility float64
	var total Metrics
	for _, in := range instances {
		utility += -in.Joint.Entropy()
		judgments := make([]bool, in.Joint.N())
		for i, m := range in.Joint.Marginals() {
			judgments[i] = m >= 0.5
		}
		m, err := Score(judgments, in.Gold)
		if err != nil {
			return 0, Metrics{}, err
		}
		total = total.Add(m)
	}
	return utility, total, nil
}
