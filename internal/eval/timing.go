package eval

import (
	"fmt"
	"time"

	"crowdfusion/internal/parallel"
	"crowdfusion/internal/worlds"
)

// TimingConfig describes the Table V experiment: average one-round task
// selection time of each approach, as k grows, over books with many facts.
type TimingConfig struct {
	// Instances are the books to time (the paper uses those with more
	// than 20 facts).
	Instances []*worlds.Instance
	// Ks are the task-set sizes to sweep (the paper uses 1..10).
	Ks []int
	// Selectors are the approaches to compare.
	Selectors []SelectorKind
	// Pc is the crowd accuracy assumed during selection.
	Pc float64
	// MaxOptK caps the brute-force selector (the paper stopped at 3;
	// beyond that OPT ran for days). 0 means no OPT at all.
	MaxOptK int
	// Repeats averages each measurement over this many runs (default 1).
	Repeats int
	// Parallelism times that many instances concurrently within each
	// (k, selector) cell. The default (0 or 1) measures sequentially —
	// this is a timing harness, and concurrent selections contend for
	// cores and caches, inflating per-selection wall times. Set > 1 to
	// trade timing fidelity for grid throughput (each Select is still
	// timed individually, so the distortion is contention only).
	Parallelism int
}

// TimingCell is one measured average.
type TimingCell struct {
	K        int
	Selector SelectorKind
	Seconds  float64
	Skipped  bool // true when the configuration was excluded (e.g. OPT at large k)
}

// TimingResult is the full Table V grid.
type TimingResult struct {
	Config TimingConfig
	Cells  []TimingCell
}

// Cell returns the measurement for (k, selector).
func (r *TimingResult) Cell(k int, sel SelectorKind) (TimingCell, bool) {
	for _, c := range r.Cells {
		if c.K == k && c.Selector == sel {
			return c, true
		}
	}
	return TimingCell{}, false
}

// RunTimings measures average one-round selection times. Selection is run
// against each instance's prior joint; answers are not collected (the
// paper's Table V isolates selection cost). With Parallelism > 1,
// instances within a cell are timed across the bounded worker pool, each
// with its own selector (per-instance seeds), so concurrently measured
// selections never share mutable state.
func RunTimings(cfg TimingConfig) (*TimingResult, error) {
	if len(cfg.Instances) == 0 {
		return nil, ErrInstanceCount
	}
	if len(cfg.Ks) == 0 || len(cfg.Selectors) == 0 {
		return nil, fmt.Errorf("eval: timing sweep needs Ks and Selectors")
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = 1 // sequential by default: timing isolates selection cost
	}
	res := &TimingResult{Config: cfg}
	for _, k := range cfg.Ks {
		for _, kind := range cfg.Selectors {
			if kind == SelOPT && (cfg.MaxOptK == 0 || k > cfg.MaxOptK) {
				res.Cells = append(res.Cells, TimingCell{K: k, Selector: kind, Skipped: true})
				continue
			}
			var total time.Duration
			count := 0
			for rep := 0; rep < repeats; rep++ {
				durations := make([]time.Duration, len(cfg.Instances))
				errs := make([]error, len(cfg.Instances))
				parallel.For(workers, len(cfg.Instances), func(i int) {
					sel, err := NewSelector(kind, int64(1+i))
					if err != nil {
						errs[i] = err
						return
					}
					start := time.Now()
					_, err = sel.Select(cfg.Instances[i].Joint, k, cfg.Pc)
					durations[i] = time.Since(start)
					errs[i] = err
				})
				for i, err := range errs {
					if err != nil {
						return nil, fmt.Errorf("eval: timing %s k=%d book %s: %w",
							kind, k, cfg.Instances[i].ISBN, err)
					}
					total += durations[i]
					count++
				}
			}
			res.Cells = append(res.Cells, TimingCell{
				K:        k,
				Selector: kind,
				Seconds:  total.Seconds() / float64(count),
			})
		}
	}
	return res, nil
}
