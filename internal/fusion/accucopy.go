package fusion

import "math"

// AccuCopy adds copying detection to the Bayesian accuracy model, in the
// spirit of Dong, Berti-Equille and Srivastava (VLDB 2009) — reference
// [10] of the CrowdFusion paper, which motivates modelling relationships
// between sources: "errors in the data may propagate with copying and
// referring between sources". Two sources that share many *false* values
// are likely dependent (sharing true values is expected — the truth is
// one; sharing mistakes is the fingerprint of copying), and a copier's
// votes should count less.
//
// The implementation follows the published intuition with a simplified
// dependence score: for each ordered source pair the fraction of their
// common claims that agree on values currently believed false, smoothed
// and mapped to an independence weight in (0, 1]. Posteriors are computed
// as in AccuVote but with each source's log-likelihood contribution scaled
// by its independence weight; accuracies, beliefs and dependence scores
// iterate to a fixpoint.
//
// Scope: detection needs the shared values to be *recognizably* false —
// i.e. contradicted by corroborated sources elsewhere. A clique that forms
// the believed majority everywhere cannot be unmasked by this simplified
// score (the full Dong et al. model reasons about agreement likelihoods
// instead); what the clique costs here is vote weight and attribution
// (SourceWeights), hardening the fusion against partially exposed
// copiers.
type AccuCopy struct {
	// CopyThreshold is the shared-false-value rate above which a pair is
	// considered fully dependent (default 0.6).
	CopyThreshold float64
	// MinCommon is the minimum number of common objects before
	// dependence is scored at all (default 3).
	MinCommon int
	// MaxIter bounds the outer iterations (default 20).
	MaxIter int
	// InitialAccuracy seeds sources (default 0.8).
	InitialAccuracy float64
}

// NewAccuCopy returns an AccuCopy with defaults.
func NewAccuCopy() *AccuCopy { return &AccuCopy{} }

// Name implements Method.
func (a *AccuCopy) Name() string { return "AccuCopy" }

func (a *AccuCopy) params() (thresh float64, minCommon, maxIter int, init float64) {
	thresh = a.CopyThreshold
	if thresh <= 0 || thresh > 1 {
		thresh = 0.6
	}
	minCommon = a.MinCommon
	if minCommon <= 0 {
		minCommon = 3
	}
	maxIter = a.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	init = a.InitialAccuracy
	if init <= 0 || init >= 1 {
		init = 0.8
	}
	return thresh, minCommon, maxIter, init
}

// Fuse implements Method.
func (a *AccuCopy) Fuse(claims []Claim) ([]Truth, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	thresh, minCommon, maxIter, init := a.params()

	nS := len(ix.sources)
	acc := make([]float64, nS)
	indep := make([]float64, nS) // independence weight per source
	for si := range acc {
		acc[si] = init
		indep[si] = 1
	}
	post := make([][]float64, len(ix.objects))
	for oi := range post {
		post[oi] = make([]float64, len(ix.values[oi]))
	}

	// claimOf[si][oi] = value index claimed by source si for object oi.
	claimOf := make([]map[int]int, nS)
	for si, cs := range ix.claimsBySource {
		claimOf[si] = make(map[int]int, len(cs))
		for _, ov := range cs {
			claimOf[si][ov[0]] = ov[1]
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Posterior per object with independence-weighted votes.
		for oi := range ix.votes {
			nv := len(ix.values[oi])
			logp := make([]float64, nv)
			for vi := range logp {
				for ov := range ix.votes[oi] {
					for _, si := range ix.votes[oi][ov] {
						w := indep[si]
						if ov == vi {
							logp[vi] += w * math.Log(clamp01(acc[si]))
						} else if nv > 1 {
							logp[vi] += w * math.Log(clamp01((1-acc[si])/float64(nv-1)))
						}
					}
				}
			}
			maxLog := math.Inf(-1)
			for _, lp := range logp {
				if lp > maxLog {
					maxLog = lp
				}
			}
			var z float64
			for _, lp := range logp {
				z += math.Exp(lp - maxLog)
			}
			for vi, lp := range logp {
				post[oi][vi] = math.Exp(lp-maxLog) / z
			}
		}

		// Accuracy re-estimation (as AccuVote).
		for si, cs := range ix.claimsBySource {
			if len(cs) == 0 {
				continue
			}
			var sum float64
			for _, ov := range cs {
				sum += post[ov[0]][ov[1]]
			}
			acc[si] = boundAcc(sum / float64(len(cs)))
		}

		// Dependence detection: shared false values.
		for si := 0; si < nS; si++ {
			maxDep := 0.0
			for sj := 0; sj < nS; sj++ {
				if si == sj {
					continue
				}
				dep := a.dependence(claimOf[si], claimOf[sj], post, minCommon)
				if dep > maxDep {
					maxDep = dep
				}
			}
			// Map dependence in [0, thresh..] to weight in [1, 0.2].
			w := 1 - 0.8*math.Min(maxDep/thresh, 1)
			indep[si] = w
		}
	}
	return ix.truths(func(oi, vi int) float64 { return post[oi][vi] }), nil
}

// dependence returns the smoothed fraction of common claims on which the
// two sources agree with a currently-believed-false value.
func (a *AccuCopy) dependence(ci, cj map[int]int, post [][]float64, minCommon int) float64 {
	common, sharedFalse := 0, 0
	for oi, vi := range ci {
		vj, ok := cj[oi]
		if !ok {
			continue
		}
		common++
		if vi == vj && post[oi][vi] < 0.5 {
			sharedFalse++
		}
	}
	if common < minCommon {
		return 0
	}
	return float64(sharedFalse) / float64(common)
}

// SourceWeights exposes the converged independence weights, for reports:
// low weight marks a probable copier.
func (a *AccuCopy) SourceWeights(claims []Claim) (map[string]float64, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	// Re-run Fuse to convergence, reusing its internals via a second pass
	// of dependence scoring against the final posteriors.
	truths, err := a.Fuse(claims)
	if err != nil {
		return nil, err
	}
	conf := make(map[[2]string]float64, len(truths))
	for _, t := range truths {
		conf[[2]string{t.Object, t.Value}] = t.Confidence
	}
	post := make([][]float64, len(ix.objects))
	for oi, obj := range ix.objects {
		post[oi] = make([]float64, len(ix.values[oi]))
		for vi, val := range ix.values[oi] {
			post[oi][vi] = conf[[2]string{obj, val}]
		}
	}
	thresh, minCommon, _, _ := a.params()
	claimOf := make([]map[int]int, len(ix.sources))
	for si, cs := range ix.claimsBySource {
		claimOf[si] = make(map[int]int, len(cs))
		for _, ov := range cs {
			claimOf[si][ov[0]] = ov[1]
		}
	}
	out := make(map[string]float64, len(ix.sources))
	for si, name := range ix.sources {
		maxDep := 0.0
		for sj := range ix.sources {
			if si == sj {
				continue
			}
			if dep := a.dependence(claimOf[si], claimOf[sj], post, minCommon); dep > maxDep {
				maxDep = dep
			}
		}
		out[name] = 1 - 0.8*math.Min(maxDep/thresh, 1)
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x < 1e-9 {
		return 1e-9
	}
	if x > 1 {
		return 1
	}
	return x
}

func boundAcc(x float64) float64 {
	if x < 0.05 {
		return 0.05
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}
