package fusion

import (
	"fmt"
	"math"
	"testing"
)

// copyScenario: three honest sources assert the truth everywhere; three
// copiers share identical wrong values on the first half of the objects
// (the copying fingerprint) and assert distinct junk on the second half
// (which tanks their individual accuracy).
func copyScenario(nObjects int) ([]Claim, map[string]string) {
	var claims []Claim
	truth := make(map[string]string)
	for o := 0; o < nObjects; o++ {
		obj := fmt.Sprintf("obj%02d", o)
		truth[obj] = "truth"
		for h := 0; h < 3; h++ {
			claims = append(claims, Claim{
				Source: fmt.Sprintf("honest%d", h), Object: obj, Value: "truth"})
		}
		for c := 0; c < 3; c++ {
			value := "copied-wrong"
			if o >= nObjects/2 {
				value = fmt.Sprintf("junk-%d-%d", o, c)
			}
			claims = append(claims, Claim{
				Source: fmt.Sprintf("copier%d", c), Object: obj, Value: value})
		}
	}
	return claims, truth
}

func TestAccuCopyName(t *testing.T) {
	if NewAccuCopy().Name() != "AccuCopy" {
		t.Error("name")
	}
}

func TestAccuCopyRecoversCopiedObjects(t *testing.T) {
	claims, truth := copyScenario(20)
	got, err := NewAccuCopy().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	top := topValue(got)
	for obj, want := range truth {
		if top[obj] != want {
			t.Errorf("object %s fused to %q, want %q", obj, top[obj], want)
		}
	}
}

// TestAccuCopyDetectsCopiers: the independence weights must separate the
// copier clique from the honest sources.
func TestAccuCopyDetectsCopiers(t *testing.T) {
	claims, _ := copyScenario(20)
	ac := NewAccuCopy()
	weights, err := ac.SourceWeights(claims)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		for c := 0; c < 3; c++ {
			hw := weights[fmt.Sprintf("honest%d", h)]
			cw := weights[fmt.Sprintf("copier%d", c)]
			if cw >= hw {
				t.Errorf("copier%d weight %.3f >= honest%d weight %.3f", c, cw, h, hw)
			}
		}
	}
}

// TestAccuCopyAtLeastAsConfident: downweighting the clique must never
// make AccuCopy less confident in the truth than AccuVote on the copied
// objects (both may saturate; the weights are the attribution value).
func TestAccuCopyAtLeastAsConfident(t *testing.T) {
	claims, _ := copyScenario(20)
	av, err := NewAccuVote().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAccuCopy().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	confOf := func(truths []Truth, obj, val string) float64 {
		for _, tr := range truths {
			if tr.Object == obj && tr.Value == val {
				return tr.Confidence
			}
		}
		return 0
	}
	for o := 0; o < 10; o++ {
		obj := fmt.Sprintf("obj%02d", o)
		if confOf(ac, obj, "truth") < confOf(av, obj, "truth")-1e-6 {
			t.Errorf("%s: AccuCopy %.4f below AccuVote %.4f", obj,
				confOf(ac, obj, "truth"), confOf(av, obj, "truth"))
		}
	}
}

// TestAccuCopyWeightsBelowHalf: detected copiers lose more than half their
// vote weight in this scenario.
func TestAccuCopyWeightsBelowHalf(t *testing.T) {
	claims, _ := copyScenario(20)
	weights, err := NewAccuCopy().SourceWeights(claims)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if w := weights[fmt.Sprintf("copier%d", c)]; w > 0.5 {
			t.Errorf("copier%d weight %.3f, want <= 0.5", c, w)
		}
	}
}

// TestAccuCopyNoFalsePositives: without copying, weights stay high and the
// result matches the plain scenario's truth.
func TestAccuCopyNoFalsePositives(t *testing.T) {
	claims, truth := scenario(5, 2, 10)
	ac := NewAccuCopy()
	got, err := ac.Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	top := topValue(got)
	for obj, want := range truth {
		if top[obj] != want {
			t.Errorf("object %s fused to %q, want %q", obj, top[obj], want)
		}
	}
	weights, err := ac.SourceWeights(claims)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 5; g++ {
		w := weights[fmt.Sprintf("good%d", g)]
		if w < 0.9 {
			t.Errorf("independent source good%d flagged with weight %.3f", g, w)
		}
	}
}

func TestAccuCopyValidationAndDefaults(t *testing.T) {
	if _, err := NewAccuCopy().Fuse(nil); err != ErrNoClaims {
		t.Errorf("empty claims err = %v", err)
	}
	a := &AccuCopy{CopyThreshold: 2, MinCommon: 0, MaxIter: -1, InitialAccuracy: 5}
	thresh, minCommon, maxIter, init := a.params()
	if thresh != 0.6 || minCommon != 3 || maxIter != 20 || init != 0.8 {
		t.Errorf("defaults: %v %v %v %v", thresh, minCommon, maxIter, init)
	}
}

func TestAccuCopyConfidencesValid(t *testing.T) {
	claims, _ := copyScenario(12)
	got, err := NewAccuCopy().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	byObj := ByObject(got)
	for obj, trs := range byObj {
		var sum float64
		for _, tr := range trs {
			if tr.Confidence < 0 || tr.Confidence > 1 || math.IsNaN(tr.Confidence) {
				t.Fatalf("%s/%s confidence %v", obj, tr.Value, tr.Confidence)
			}
			sum += tr.Confidence
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s posteriors sum to %v", obj, sum)
		}
	}
}
