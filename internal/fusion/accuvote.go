package fusion

import "math"

// AccuVote is a Bayesian source-accuracy fusion model in the spirit of
// Dong, Berti-Equille and Srivastava (VLDB 2009), without copying
// detection: each source has an accuracy a_s; assuming one true value per
// object and a uniform prior over the object's observed values, the
// posterior of value v is
//
//	P(v | claims) ∝ Π_{s claims on o} (a_s           if s claims v,
//	                                   (1-a_s)/(N-1) otherwise)
//
// computed in log space, where N is the number of distinct values claimed
// for the object. Source accuracies are then re-estimated as the mean
// posterior of the source's claims, and the two steps iterate.
//
// Although the model is single-truth, its per-value posteriors remain a
// useful probabilistic initializer for CrowdFusion; the paper's Section VII
// explicitly invites Bayesian fusion methods as inputs.
type AccuVote struct {
	// InitialAccuracy seeds every source (default 0.8).
	InitialAccuracy float64
	// MaxIter bounds the iterations (default 30).
	MaxIter int
	// Tol stops iteration when accuracies move less than this (1e-6).
	Tol float64
	// MinAccuracy and MaxAccuracy clamp estimates away from 0 and 1 so
	// log-likelihoods stay finite (defaults 0.05 and 0.99).
	MinAccuracy, MaxAccuracy float64
}

// NewAccuVote returns an AccuVote with default parameters.
func NewAccuVote() *AccuVote { return &AccuVote{} }

// Name implements Method.
func (a *AccuVote) Name() string { return "AccuVote" }

func (a *AccuVote) params() (init, tol, lo, hi float64, maxIter int) {
	init = a.InitialAccuracy
	if init <= 0 || init >= 1 {
		init = 0.8
	}
	maxIter = a.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}
	tol = a.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	lo = a.MinAccuracy
	if lo <= 0 {
		lo = 0.05
	}
	hi = a.MaxAccuracy
	if hi <= 0 || hi >= 1 {
		hi = 0.99
	}
	return init, tol, lo, hi, maxIter
}

// Fuse implements Method.
func (a *AccuVote) Fuse(claims []Claim) ([]Truth, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	init, tol, lo, hi, maxIter := a.params()

	acc := make([]float64, len(ix.sources))
	for si := range acc {
		acc[si] = init
	}
	post := make([][]float64, len(ix.objects))
	for oi := range post {
		post[oi] = make([]float64, len(ix.values[oi]))
	}

	for iter := 0; iter < maxIter; iter++ {
		// Posterior per object in log space.
		for oi := range ix.votes {
			nv := len(ix.values[oi])
			logp := make([]float64, nv)
			for vi := range logp {
				for _, si := range ix.votes[oi][vi] {
					logp[vi] += math.Log(acc[si])
				}
				// Sources claiming other values of this object
				// count against v.
				for ov := range ix.votes[oi] {
					if ov == vi {
						continue
					}
					for _, si := range ix.votes[oi][ov] {
						if nv > 1 {
							logp[vi] += math.Log((1 - acc[si]) / float64(nv-1))
						}
					}
				}
			}
			// Normalize with the log-sum-exp trick.
			maxLog := math.Inf(-1)
			for _, lp := range logp {
				if lp > maxLog {
					maxLog = lp
				}
			}
			var z float64
			for _, lp := range logp {
				z += math.Exp(lp - maxLog)
			}
			for vi, lp := range logp {
				post[oi][vi] = math.Exp(lp-maxLog) / z
			}
		}
		// Accuracy re-estimation.
		maxDelta := 0.0
		for si, cs := range ix.claimsBySource {
			if len(cs) == 0 {
				continue
			}
			var sum float64
			for _, ov := range cs {
				sum += post[ov[0]][ov[1]]
			}
			next := sum / float64(len(cs))
			if next < lo {
				next = lo
			}
			if next > hi {
				next = hi
			}
			if d := math.Abs(next - acc[si]); d > maxDelta {
				maxDelta = d
			}
			acc[si] = next
		}
		if maxDelta < tol {
			break
		}
	}
	return ix.truths(func(oi, vi int) float64 { return post[oi][vi] }), nil
}
