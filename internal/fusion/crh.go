package fusion

import (
	"math"
)

// CRH implements the Conflict Resolution on Heterogeneous data framework of
// Li et al. (SIGMOD 2014) for categorical data, with the modification the
// CrowdFusion paper applies for multi-truth inputs (Section V-A): because
// vanilla CRH supports a single true value per object while a book can have
// several true author-list statements (formats and orderings), the truth
// set is seeded by marking the top 50% of each object's values by majority
// vote as correct, after which CRH's weight assignment and truth
// computation iterate as usual:
//
//   - Loss of a source: the fraction of its claims outside the current
//     truth set (0/1 loss, the categorical case of CRH).
//   - Weight assignment: w_s = log(sum of all losses / loss of s),
//     the closed-form CRH weight for normalized losses.
//   - Truth computation: per object, values are scored by the sum of the
//     weights of their supporting sources, and the top half (by score) form
//     the next truth set.
//
// The confidence reported for a value is its normalized weighted support
// within its object, which is what CrowdFusion consumes as prior marginal.
type CRH struct {
	// MaxIter bounds the weight/truth iterations (default 20).
	MaxIter int
	// TruthFraction is the fraction of values per object marked true in
	// each truth-computation step (default 0.5, the paper's "top 50%").
	TruthFraction float64
	// Epsilon guards the loss denominator so perfect sources do not
	// produce infinite weights (default 1e-6).
	Epsilon float64
}

// NewCRH returns a CRH instance with the paper's defaults.
func NewCRH() *CRH { return &CRH{} }

// Name implements Method.
func (c *CRH) Name() string { return "CRH" }

func (c *CRH) params() (maxIter int, frac, eps float64) {
	maxIter = c.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	frac = c.TruthFraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	eps = c.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}
	return maxIter, frac, eps
}

// Fuse implements Method.
func (c *CRH) Fuse(claims []Claim) ([]Truth, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	maxIter, frac, eps := c.params()

	// Seed: mark the top fraction of values per object by raw vote count.
	truthSet := c.topValues(ix, frac, func(oi, vi int) float64 {
		return float64(len(ix.votes[oi][vi]))
	})

	weights := make([]float64, len(ix.sources))
	for iter := 0; iter < maxIter; iter++ {
		// Weight assignment from 0/1 losses against the truth set.
		losses := make([]float64, len(ix.sources))
		var totalLoss float64
		for si, cs := range ix.claimsBySource {
			if len(cs) == 0 {
				losses[si] = eps
				totalLoss += eps
				continue
			}
			wrong := 0
			for _, ov := range cs {
				if !truthSet[ov] {
					wrong++
				}
			}
			losses[si] = float64(wrong)/float64(len(cs)) + eps
			totalLoss += losses[si]
		}
		for si := range weights {
			weights[si] = math.Log(totalLoss / losses[si])
		}

		// Truth computation: weighted support, then re-mark top values.
		next := c.topValues(ix, frac, func(oi, vi int) float64 {
			var s float64
			for _, si := range ix.votes[oi][vi] {
				s += weights[si]
			}
			return s
		})
		if sameSet(truthSet, next) {
			truthSet = next
			break
		}
		truthSet = next
	}

	// Confidence: weighted support share within the object.
	objTotal := make([]float64, len(ix.objects))
	support := make([][]float64, len(ix.objects))
	for oi := range ix.votes {
		support[oi] = make([]float64, len(ix.values[oi]))
		for vi := range ix.votes[oi] {
			var s float64
			for _, si := range ix.votes[oi][vi] {
				s += weights[si]
			}
			support[oi][vi] = s
			objTotal[oi] += s
		}
	}
	// With degenerate inputs (e.g. a single source) every CRH weight is
	// log(1) = 0; fall back to raw vote shares there.
	voteTotal := make([]int, len(ix.objects))
	for oi := range ix.votes {
		for vi := range ix.votes[oi] {
			voteTotal[oi] += len(ix.votes[oi][vi])
		}
	}
	return ix.truths(func(oi, vi int) float64 {
		if objTotal[oi] <= 0 {
			if voteTotal[oi] == 0 {
				return 0
			}
			return float64(len(ix.votes[oi][vi])) / float64(voteTotal[oi])
		}
		return support[oi][vi] / objTotal[oi]
	}), nil
}

// topValues marks, for each object, the ceil(frac * #values) values with
// the highest scores (ties broken toward lower value index for
// determinism).
func (c *CRH) topValues(ix *index, frac float64, score func(oi, vi int) float64) map[[2]int]bool {
	truth := make(map[[2]int]bool)
	for oi := range ix.values {
		nv := len(ix.values[oi])
		if nv == 0 {
			continue
		}
		take := int(math.Ceil(frac * float64(nv)))
		if take < 1 {
			take = 1
		}
		if take > nv {
			take = nv
		}
		order := make([]int, nv)
		for vi := range order {
			order[vi] = vi
		}
		scores := make([]float64, nv)
		for vi := range scores {
			scores[vi] = score(oi, vi)
		}
		// Stable selection: sort by score descending, then index.
		sortByScore(order, scores)
		for _, vi := range order[:take] {
			truth[[2]int{oi, vi}] = true
		}
	}
	return truth
}

func sortByScore(order []int, scores []float64) {
	// Insertion sort keeps this dependency-free and stable; value counts
	// per object are small.
	for i := 1; i < len(order); i++ {
		for jj := i; jj > 0; jj-- {
			a, b := order[jj-1], order[jj]
			if scores[b] > scores[a] || (scores[b] == scores[a] && b < a) {
				order[jj-1], order[jj] = b, a
			} else {
				break
			}
		}
	}
}

func sameSet(a, b map[[2]int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
