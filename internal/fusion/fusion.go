// Package fusion implements the machine-only data-fusion substrate that
// initializes CrowdFusion (Section V-A of the paper and the truth-discovery
// methods surveyed in Section VI-B): a source/claim data model and four
// fusion methods producing per-value confidence scores —
//
//   - MajorityVote: the baseline weighted count.
//   - CRH: the Conflict Resolution on Heterogeneous data framework
//     (Li et al., SIGMOD 2014) with the CrowdFusion paper's modification
//     for multi-truth data (top-50% majority-vote seeding).
//   - TruthFinder: the iterative source-trustworthiness model of
//     Yin, Han and Yu (TKDE 2008).
//   - AccuVote: a Bayesian accuracy model in the spirit of Dong,
//     Berti-Equille and Srivastava (VLDB 2009), without copying detection.
//
// All methods consume claims — (source, object, value) triples — and emit
// confidences in [0, 1] per distinct (object, value) pair, the probability
// input the CrowdFusion engine expects.
package fusion

import (
	"errors"
	"fmt"
	"sort"
)

// Claim is one source's assertion that an object has a value: e.g. source
// "ecampus.com" claims book "0321304292" has author list "Adams, Tyrone;
// Scollard, Sharon".
type Claim struct {
	Source string
	Object string
	Value  string
}

// Truth is a fused confidence for one (object, value) pair.
type Truth struct {
	Object     string
	Value      string
	Confidence float64
}

// Method is a machine-only fusion algorithm.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Fuse scores every distinct (object, value) pair appearing in the
	// claims. The output is sorted by (Object, Value) for determinism.
	Fuse(claims []Claim) ([]Truth, error)
}

// ErrNoClaims is returned when Fuse is called with no claims.
var ErrNoClaims = errors.New("fusion: no claims")

// index is the grouped view of a claim set shared by all methods.
type index struct {
	sources []string         // sorted source names
	objects []string         // sorted object names
	sourceI map[string]int   // name -> index
	objectI map[string]int   // name -> index
	values  [][]string       // per object: sorted distinct values
	valueI  []map[string]int // per object: value -> index
	// votes[o][v] lists the source indices claiming value v for object o.
	votes [][][]int
	// claimsBySource[s] lists (object, valueIndex) pairs claimed by s.
	claimsBySource [][][2]int
}

func buildIndex(claims []Claim) (*index, error) {
	if len(claims) == 0 {
		return nil, ErrNoClaims
	}
	ix := &index{
		sourceI: make(map[string]int),
		objectI: make(map[string]int),
	}
	for _, c := range claims {
		if c.Source == "" || c.Object == "" {
			return nil, fmt.Errorf("fusion: claim with empty source or object: %+v", c)
		}
		if _, ok := ix.sourceI[c.Source]; !ok {
			ix.sourceI[c.Source] = -1
		}
		if _, ok := ix.objectI[c.Object]; !ok {
			ix.objectI[c.Object] = -1
		}
	}
	for s := range ix.sourceI {
		ix.sources = append(ix.sources, s)
	}
	sort.Strings(ix.sources)
	for i, s := range ix.sources {
		ix.sourceI[s] = i
	}
	for o := range ix.objectI {
		ix.objects = append(ix.objects, o)
	}
	sort.Strings(ix.objects)
	for i, o := range ix.objects {
		ix.objectI[o] = i
	}

	ix.values = make([][]string, len(ix.objects))
	ix.valueI = make([]map[string]int, len(ix.objects))
	seen := make(map[[2]string]bool)
	for _, c := range claims {
		key := [2]string{c.Object, c.Value}
		if !seen[key] {
			seen[key] = true
			oi := ix.objectI[c.Object]
			ix.values[oi] = append(ix.values[oi], c.Value)
		}
	}
	for oi := range ix.values {
		sort.Strings(ix.values[oi])
		ix.valueI[oi] = make(map[string]int, len(ix.values[oi]))
		for vi, v := range ix.values[oi] {
			ix.valueI[oi][v] = vi
		}
	}

	ix.votes = make([][][]int, len(ix.objects))
	for oi := range ix.votes {
		ix.votes[oi] = make([][]int, len(ix.values[oi]))
	}
	ix.claimsBySource = make([][][2]int, len(ix.sources))
	// Deduplicate repeated identical claims from the same source.
	claimSeen := make(map[[3]string]bool)
	for _, c := range claims {
		k := [3]string{c.Source, c.Object, c.Value}
		if claimSeen[k] {
			continue
		}
		claimSeen[k] = true
		si := ix.sourceI[c.Source]
		oi := ix.objectI[c.Object]
		vi := ix.valueI[oi][c.Value]
		ix.votes[oi][vi] = append(ix.votes[oi][vi], si)
		ix.claimsBySource[si] = append(ix.claimsBySource[si], [2]int{oi, vi})
	}
	return ix, nil
}

// truths converts per-object per-value scores into the sorted Truth slice.
func (ix *index) truths(score func(oi, vi int) float64) []Truth {
	var out []Truth
	for oi, obj := range ix.objects {
		for vi, val := range ix.values[oi] {
			c := score(oi, vi)
			if c < 0 {
				c = 0
			}
			if c > 1 {
				c = 1
			}
			out = append(out, Truth{Object: obj, Value: val, Confidence: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Object != out[b].Object {
			return out[a].Object < out[b].Object
		}
		return out[a].Value < out[b].Value
	})
	return out
}

// ByObject groups fused truths by object, preserving value order.
func ByObject(truths []Truth) map[string][]Truth {
	m := make(map[string][]Truth)
	for _, t := range truths {
		m[t.Object] = append(m[t.Object], t)
	}
	return m
}
