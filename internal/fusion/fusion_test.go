package fusion

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// scenario builds a claim set where good sources report the truth and bad
// sources report a fixed wrong value, over nObjects objects.
func scenario(nGood, nBad, nObjects int) ([]Claim, map[string]string) {
	var claims []Claim
	truth := make(map[string]string)
	for o := 0; o < nObjects; o++ {
		obj := fmt.Sprintf("book%02d", o)
		truth[obj] = fmt.Sprintf("true-list-%02d", o)
		for g := 0; g < nGood; g++ {
			claims = append(claims, Claim{
				Source: fmt.Sprintf("good%d", g),
				Object: obj,
				Value:  truth[obj],
			})
		}
		for b := 0; b < nBad; b++ {
			claims = append(claims, Claim{
				Source: fmt.Sprintf("bad%d", b),
				Object: obj,
				Value:  fmt.Sprintf("wrong-list-%02d", o),
			})
		}
	}
	return claims, truth
}

// topValue returns the highest-confidence value per object.
func topValue(truths []Truth) map[string]string {
	best := make(map[string]Truth)
	for _, t := range truths {
		if cur, ok := best[t.Object]; !ok || t.Confidence > cur.Confidence {
			best[t.Object] = t
		}
	}
	out := make(map[string]string, len(best))
	for o, t := range best {
		out[o] = t.Value
	}
	return out
}

func allMethods() []Method {
	return []Method{MajorityVote{}, NewCRH(), NewTruthFinder(), NewAccuVote()}
}

func TestMethodsRecoverMajorityTruth(t *testing.T) {
	claims, truth := scenario(5, 2, 10)
	for _, m := range allMethods() {
		t.Run(m.Name(), func(t *testing.T) {
			got, err := m.Fuse(claims)
			if err != nil {
				t.Fatal(err)
			}
			top := topValue(got)
			for obj, want := range truth {
				if top[obj] != want {
					t.Errorf("%s: object %s fused to %q, want %q",
						m.Name(), obj, top[obj], want)
				}
			}
		})
	}
}

func TestMethodsRejectEmptyAndMalformed(t *testing.T) {
	for _, m := range allMethods() {
		if _, err := m.Fuse(nil); err != ErrNoClaims {
			t.Errorf("%s: empty claims err = %v", m.Name(), err)
		}
		if _, err := m.Fuse([]Claim{{Source: "", Object: "o", Value: "v"}}); err == nil {
			t.Errorf("%s: empty source accepted", m.Name())
		}
	}
}

func TestConfidencesAreProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var claims []Claim
	for i := 0; i < 300; i++ {
		claims = append(claims, Claim{
			Source: fmt.Sprintf("s%d", rng.Intn(12)),
			Object: fmt.Sprintf("o%d", rng.Intn(15)),
			Value:  fmt.Sprintf("v%d", rng.Intn(4)),
		})
	}
	for _, m := range allMethods() {
		got, err := m.Fuse(claims)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, tr := range got {
			if tr.Confidence < 0 || tr.Confidence > 1 || math.IsNaN(tr.Confidence) {
				t.Fatalf("%s: confidence %v out of [0,1] for %s/%s",
					m.Name(), tr.Confidence, tr.Object, tr.Value)
			}
		}
	}
}

func TestFuseDeterministic(t *testing.T) {
	claims, _ := scenario(4, 3, 6)
	for _, m := range allMethods() {
		a, err := m.Fuse(claims)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Fuse(claims)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: result lengths differ", m.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic result at %d: %+v vs %+v",
					m.Name(), i, a[i], b[i])
			}
		}
	}
}

func TestMajorityVoteExactShares(t *testing.T) {
	claims := []Claim{
		{Source: "a", Object: "o", Value: "x"},
		{Source: "b", Object: "o", Value: "x"},
		{Source: "c", Object: "o", Value: "x"},
		{Source: "d", Object: "o", Value: "y"},
	}
	got, err := MajorityVote{}.Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"x": 0.75, "y": 0.25}
	for _, tr := range got {
		if math.Abs(tr.Confidence-want[tr.Value]) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", tr.Value, tr.Confidence, want[tr.Value])
		}
	}
}

func TestDuplicateClaimsIgnored(t *testing.T) {
	claims := []Claim{
		{Source: "a", Object: "o", Value: "x"},
		{Source: "a", Object: "o", Value: "x"}, // duplicate
		{Source: "b", Object: "o", Value: "y"},
	}
	got, err := MajorityVote{}.Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range got {
		if math.Abs(tr.Confidence-0.5) > 1e-12 {
			t.Errorf("duplicate claim double-counted: P(%s) = %v", tr.Value, tr.Confidence)
		}
	}
}

// TestCRHWeightsReliableSources: a source that agrees with the consensus on
// many objects must outweigh a contrarian source, letting CRH flip an
// object where raw counts are tied.
func TestCRHWeightsReliableSources(t *testing.T) {
	var claims []Claim
	// Sources r1, r2 are consistent with each other on 10 objects;
	// sources w1, w2 disagree with them and also with each other half the
	// time, making them lossy.
	for o := 0; o < 10; o++ {
		obj := fmt.Sprintf("o%d", o)
		claims = append(claims,
			Claim{Source: "r1", Object: obj, Value: "good"},
			Claim{Source: "r2", Object: obj, Value: "good"},
			Claim{Source: "w1", Object: obj, Value: fmt.Sprintf("bad%d", o%2)},
			Claim{Source: "w2", Object: obj, Value: fmt.Sprintf("bad%d", (o+1)%2)},
		)
	}
	// Tie-break object: r1 vs w1.
	claims = append(claims,
		Claim{Source: "r1", Object: "tie", Value: "right"},
		Claim{Source: "w1", Object: "tie", Value: "wrong"},
	)
	got, err := NewCRH().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	byObj := ByObject(got)
	var right, wrong float64
	for _, tr := range byObj["tie"] {
		switch tr.Value {
		case "right":
			right = tr.Confidence
		case "wrong":
			wrong = tr.Confidence
		}
	}
	if right <= wrong {
		t.Errorf("CRH did not favor the reliable source: right=%v wrong=%v", right, wrong)
	}
}

// TestCRHSupportsMultiTruth: the modified CRH marks the top 50% of values
// per object as true, so two format variants of the same list can both
// retain high confidence.
func TestCRHSupportsMultiTruth(t *testing.T) {
	var claims []Claim
	for s := 0; s < 4; s++ {
		claims = append(claims, Claim{Source: fmt.Sprintf("fmtA%d", s), Object: "b", Value: "A, B"})
	}
	for s := 0; s < 4; s++ {
		claims = append(claims, Claim{Source: fmt.Sprintf("fmtB%d", s), Object: "b", Value: "B; A"})
	}
	for s := 0; s < 2; s++ {
		claims = append(claims, Claim{Source: fmt.Sprintf("junk%d", s), Object: "b", Value: "X"})
	}
	got, err := NewCRH().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	conf := make(map[string]float64)
	for _, tr := range got {
		conf[tr.Value] = tr.Confidence
	}
	if conf["A, B"] <= conf["X"] || conf["B; A"] <= conf["X"] {
		t.Errorf("variants not both favored: %v", conf)
	}
}

func TestCRHParamDefaults(t *testing.T) {
	c := &CRH{MaxIter: -1, TruthFraction: 2, Epsilon: -3}
	maxIter, frac, eps := c.params()
	if maxIter != 20 || frac != 0.5 || eps != 1e-6 {
		t.Errorf("params() = %v %v %v, want defaults", maxIter, frac, eps)
	}
}

// TestTruthFinderTrustOrdering: sources that always assert consensus values
// converge to higher trustworthiness than sources asserting singletons.
func TestTruthFinderTrustOrdering(t *testing.T) {
	claims, _ := scenario(4, 1, 12)
	tf := NewTruthFinder()
	trust, err := tf.SourceTrust(claims)
	if err != nil {
		t.Fatal(err)
	}
	if trust["good0"] <= trust["bad0"] {
		t.Errorf("trust(good)=%v <= trust(bad)=%v", trust["good0"], trust["bad0"])
	}
}

func TestTruthFinderConfidenceOrdering(t *testing.T) {
	claims, truth := scenario(5, 2, 8)
	got, err := NewTruthFinder().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	byObj := ByObject(got)
	for obj, want := range truth {
		var trueConf, wrongConf float64
		for _, tr := range byObj[obj] {
			if tr.Value == want {
				trueConf = tr.Confidence
			} else {
				wrongConf = tr.Confidence
			}
		}
		if trueConf <= wrongConf {
			t.Errorf("%s: true value confidence %v <= wrong %v", obj, trueConf, wrongConf)
		}
	}
}

func TestTruthFinderParamDefaults(t *testing.T) {
	tf := &TruthFinder{InitialTrust: 5, Gamma: -1, MaxIter: 0, Tol: 0}
	init, gamma, tol, maxIter := tf.params()
	if init != 0.9 || gamma != 0.3 || tol != 1e-6 || maxIter != 50 {
		t.Errorf("params() = %v %v %v %v, want defaults", init, gamma, tol, maxIter)
	}
}

// TestAccuVotePosteriorsSumToOne: the Bayesian posterior over an object's
// values is a distribution.
func TestAccuVotePosteriorsSumToOne(t *testing.T) {
	claims, _ := scenario(3, 2, 6)
	got, err := NewAccuVote().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	for obj, trs := range ByObject(got) {
		var sum float64
		for _, tr := range trs {
			sum += tr.Confidence
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s: posteriors sum to %v", obj, sum)
		}
	}
}

// TestAccuVoteSharperThanMajority: with consistent good sources, the
// Bayesian posterior should be at least as confident in the truth as the
// raw vote share.
func TestAccuVoteSharperThanMajority(t *testing.T) {
	claims, truth := scenario(4, 2, 10)
	mv, err := MajorityVote{}.Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	av, err := NewAccuVote().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	mvByObj := ByObject(mv)
	avByObj := ByObject(av)
	for obj, want := range truth {
		var mvConf, avConf float64
		for _, tr := range mvByObj[obj] {
			if tr.Value == want {
				mvConf = tr.Confidence
			}
		}
		for _, tr := range avByObj[obj] {
			if tr.Value == want {
				avConf = tr.Confidence
			}
		}
		if avConf < mvConf-1e-9 {
			t.Errorf("%s: AccuVote %v less confident than majority %v", obj, avConf, mvConf)
		}
	}
}

func TestAccuVoteParamDefaults(t *testing.T) {
	a := &AccuVote{InitialAccuracy: 7, MaxIter: 0, Tol: -1, MinAccuracy: -2, MaxAccuracy: 3}
	init, tol, lo, hi, maxIter := a.params()
	if init != 0.8 || tol != 1e-6 || lo != 0.05 || hi != 0.99 || maxIter != 30 {
		t.Errorf("params() = %v %v %v %v %v, want defaults", init, tol, lo, hi, maxIter)
	}
}

func TestByObject(t *testing.T) {
	truths := []Truth{
		{Object: "a", Value: "x", Confidence: 1},
		{Object: "b", Value: "y", Confidence: 0.5},
		{Object: "a", Value: "z", Confidence: 0.2},
	}
	m := ByObject(truths)
	if len(m) != 2 || len(m["a"]) != 2 || len(m["b"]) != 1 {
		t.Errorf("ByObject grouping wrong: %v", m)
	}
}

// TestSingleSourceSingleClaim: degenerate inputs must not panic or divide
// by zero in any method.
func TestSingleSourceSingleClaim(t *testing.T) {
	claims := []Claim{{Source: "s", Object: "o", Value: "v"}}
	for _, m := range allMethods() {
		got, err := m.Fuse(claims)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(got) != 1 {
			t.Fatalf("%s: %d truths", m.Name(), len(got))
		}
		if got[0].Confidence <= 0 || got[0].Confidence > 1 || math.IsNaN(got[0].Confidence) {
			t.Errorf("%s: confidence %v", m.Name(), got[0].Confidence)
		}
	}
}
