package fusion

// MajorityVote scores each value by its share of the votes on its object:
// confidence = (sources claiming the value) / (claims on the object). It is
// the baseline every truth-discovery paper compares against and the seeding
// step of the modified CRH below.
type MajorityVote struct{}

// Name implements Method.
func (MajorityVote) Name() string { return "MajorityVote" }

// Fuse implements Method.
func (MajorityVote) Fuse(claims []Claim) ([]Truth, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	totals := make([]int, len(ix.objects))
	for oi := range ix.votes {
		for vi := range ix.votes[oi] {
			totals[oi] += len(ix.votes[oi][vi])
		}
	}
	return ix.truths(func(oi, vi int) float64 {
		if totals[oi] == 0 {
			return 0
		}
		return float64(len(ix.votes[oi][vi])) / float64(totals[oi])
	}), nil
}
