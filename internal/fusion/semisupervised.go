package fusion

import "math"

// SemiSupervised implements semi-supervised truth discovery in the spirit
// of Yin and Tan (WWW 2011), the approach the CrowdFusion paper positions
// itself against: a small set of expert-provided ground-truth labels
// anchors the TruthFinder-style iteration. Labeled values are pinned to
// (nearly) 0 or 1 confidence, and labeled claims count extra toward source
// trustworthiness, so a handful of labels can overturn a deceptive
// majority.
//
// The paper argues this needs continuous expert effort as the Web drifts,
// which is why CrowdFusion replaces the experts with a priced crowd; this
// implementation exists as the comparison baseline.
type SemiSupervised struct {
	// Labels maps (object, value) to the expert judgment.
	Labels map[[2]string]bool
	// LabelWeight multiplies labeled claims in the trust update
	// (default 3).
	LabelWeight float64
	// InitialTrust, Gamma, MaxIter, Tol as in TruthFinder.
	InitialTrust float64
	Gamma        float64
	MaxIter      int
	Tol          float64
}

// NewSemiSupervised returns a semi-supervised fuser with the given labels.
func NewSemiSupervised(labels map[[2]string]bool) *SemiSupervised {
	return &SemiSupervised{Labels: labels}
}

// Name implements Method.
func (s *SemiSupervised) Name() string { return "SemiSupervised" }

func (s *SemiSupervised) params() (labelW, init, gamma, tol float64, maxIter int) {
	labelW = s.LabelWeight
	if labelW <= 0 {
		labelW = 3
	}
	init = s.InitialTrust
	if init <= 0 || init >= 1 {
		init = 0.9
	}
	gamma = s.Gamma
	if gamma <= 0 {
		gamma = 0.3
	}
	maxIter = s.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	tol = s.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	return labelW, init, gamma, tol, maxIter
}

// Fuse implements Method.
func (s *SemiSupervised) Fuse(claims []Claim) ([]Truth, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	labelW, init, gamma, tol, maxIter := s.params()

	const pinTrue, pinFalse = 0.98, 0.02
	labeled := func(oi, vi int) (bool, bool) {
		v, ok := s.Labels[[2]string{ix.objects[oi], ix.values[oi][vi]}]
		return v, ok
	}

	trust := make([]float64, len(ix.sources))
	for si := range trust {
		trust[si] = init
	}
	conf := make([][]float64, len(ix.objects))
	for oi := range conf {
		conf[oi] = make([]float64, len(ix.values[oi]))
	}

	const maxTauTrust = 1 - 1e-9
	for iter := 0; iter < maxIter; iter++ {
		for oi := range ix.votes {
			for vi := range ix.votes[oi] {
				if gold, ok := labeled(oi, vi); ok {
					if gold {
						conf[oi][vi] = pinTrue
					} else {
						conf[oi][vi] = pinFalse
					}
					continue
				}
				var raw float64
				for _, si := range ix.votes[oi][vi] {
					ts := trust[si]
					if ts > maxTauTrust {
						ts = maxTauTrust
					}
					raw += -math.Log(1 - ts)
				}
				conf[oi][vi] = 1 / (1 + math.Exp(-gamma*raw))
			}
		}
		maxDelta := 0.0
		for si, cs := range ix.claimsBySource {
			if len(cs) == 0 {
				continue
			}
			var sum, weight float64
			for _, ov := range cs {
				w := 1.0
				if _, ok := labeled(ov[0], ov[1]); ok {
					w = labelW
				}
				sum += w * conf[ov[0]][ov[1]]
				weight += w
			}
			next := sum / weight
			if d := math.Abs(next - trust[si]); d > maxDelta {
				maxDelta = d
			}
			trust[si] = next
		}
		if maxDelta < tol {
			break
		}
	}
	return ix.truths(func(oi, vi int) float64 { return conf[oi][vi] }), nil
}
