package fusion

import (
	"fmt"
	"testing"
)

// deceptiveScenario builds claims where a coordinated majority of bad
// sources asserts the same wrong value, so unsupervised methods follow the
// majority.
func deceptiveScenario(nBad, nGood, nObjects int) ([]Claim, map[string]string) {
	var claims []Claim
	truth := make(map[string]string)
	for o := 0; o < nObjects; o++ {
		obj := fmt.Sprintf("obj%02d", o)
		truth[obj] = "right"
		for g := 0; g < nGood; g++ {
			claims = append(claims, Claim{
				Source: fmt.Sprintf("good%d", g), Object: obj, Value: "right"})
		}
		for b := 0; b < nBad; b++ {
			claims = append(claims, Claim{
				Source: fmt.Sprintf("bad%d", b), Object: obj, Value: "wrong"})
		}
	}
	return claims, truth
}

func TestSemiSupervisedName(t *testing.T) {
	if NewSemiSupervised(nil).Name() != "SemiSupervised" {
		t.Error("name")
	}
}

func TestSemiSupervisedPinsLabels(t *testing.T) {
	claims, _ := deceptiveScenario(4, 2, 6)
	labels := map[[2]string]bool{
		{"obj00", "right"}: true,
		{"obj00", "wrong"}: false,
	}
	got, err := NewSemiSupervised(labels).Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range got {
		if tr.Object != "obj00" {
			continue
		}
		if tr.Value == "right" && tr.Confidence < 0.9 {
			t.Errorf("labeled-true value confidence %v", tr.Confidence)
		}
		if tr.Value == "wrong" && tr.Confidence > 0.1 {
			t.Errorf("labeled-false value confidence %v", tr.Confidence)
		}
	}
}

// TestSemiSupervisedOverturnsDeceptiveMajority: with labels on a few
// objects, the learned source trust must flip the remaining (unlabeled)
// objects to the truth — the advantage supervision buys, which plain
// TruthFinder cannot achieve here.
func TestSemiSupervisedOverturnsDeceptiveMajority(t *testing.T) {
	claims, truth := deceptiveScenario(5, 2, 12)

	// Unsupervised: the 5-vs-2 majority wins everywhere.
	plain, err := NewTruthFinder().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	top := topValue(plain)
	plainWrong := 0
	for obj, want := range truth {
		if top[obj] != want {
			plainWrong++
		}
	}
	if plainWrong == 0 {
		t.Fatal("scenario is not deceptive; test setup broken")
	}

	// Label three objects and the trust structure flips the rest.
	labels := map[[2]string]bool{}
	for o := 0; o < 3; o++ {
		obj := fmt.Sprintf("obj%02d", o)
		labels[[2]string{obj, "right"}] = true
		labels[[2]string{obj, "wrong"}] = false
	}
	semi, err := NewSemiSupervised(labels).Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	top = topValue(semi)
	semiWrong := 0
	for obj, want := range truth {
		if top[obj] != want {
			semiWrong++
		}
	}
	if semiWrong >= plainWrong {
		t.Errorf("labels did not help: %d wrong with labels, %d without", semiWrong, plainWrong)
	}
	if semiWrong != 0 {
		t.Errorf("%d unlabeled objects still wrong after supervision", semiWrong)
	}
}

func TestSemiSupervisedNoLabelsMatchesTruthFinderShape(t *testing.T) {
	claims, _ := scenario(4, 2, 6)
	semi, err := NewSemiSupervised(nil).Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := NewTruthFinder().Fuse(claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(semi) != len(tf) {
		t.Fatalf("result sizes differ: %d vs %d", len(semi), len(tf))
	}
	// With no labels the two are the same algorithm.
	for i := range semi {
		if semi[i] != tf[i] {
			t.Fatalf("no-label semi-supervised diverges from TruthFinder at %d: %+v vs %+v",
				i, semi[i], tf[i])
		}
	}
}

func TestSemiSupervisedValidationAndDefaults(t *testing.T) {
	if _, err := NewSemiSupervised(nil).Fuse(nil); err != ErrNoClaims {
		t.Errorf("empty claims err = %v", err)
	}
	s := &SemiSupervised{LabelWeight: -1, InitialTrust: 2, Gamma: 0, MaxIter: -1, Tol: 0}
	labelW, init, gamma, tol, maxIter := s.params()
	if labelW != 3 || init != 0.9 || gamma != 0.3 || tol != 1e-6 || maxIter != 50 {
		t.Errorf("defaults: %v %v %v %v %v", labelW, init, gamma, tol, maxIter)
	}
}
