package fusion

import "math"

// TruthFinder implements the iterative trustworthiness model of Yin, Han
// and Yu (TKDE 2008), in its standard simplified form for categorical
// values: source trustworthiness and claim confidence reinforce each other
// until fixpoint.
//
//	τ(s)  = -ln(1 - t(s))                  (trustworthiness score)
//	σ*(v) = Σ_{s claims v} τ(s)            (raw claim score)
//	σ(v)  = 1 / (1 + exp(-γ σ*(v)))        (dampened confidence)
//	t(s)  = mean of σ(v) over s's claims   (updated trustworthiness)
type TruthFinder struct {
	// InitialTrust seeds every source's trustworthiness (default 0.9,
	// the value used in the original paper).
	InitialTrust float64
	// Gamma is the dampening factor (default 0.3, per the original).
	Gamma float64
	// MaxIter bounds the iterations (default 50).
	MaxIter int
	// Tol stops iteration when no trustworthiness moves more than this
	// (default 1e-6).
	Tol float64
}

// NewTruthFinder returns a TruthFinder with the original paper's defaults.
func NewTruthFinder() *TruthFinder { return &TruthFinder{} }

// Name implements Method.
func (t *TruthFinder) Name() string { return "TruthFinder" }

func (t *TruthFinder) params() (init, gamma, tol float64, maxIter int) {
	init = t.InitialTrust
	if init <= 0 || init >= 1 {
		init = 0.9
	}
	gamma = t.Gamma
	if gamma <= 0 {
		gamma = 0.3
	}
	maxIter = t.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	tol = t.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	return init, gamma, tol, maxIter
}

// Fuse implements Method.
func (t *TruthFinder) Fuse(claims []Claim) ([]Truth, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	init, gamma, tol, maxIter := t.params()

	trust := make([]float64, len(ix.sources))
	for si := range trust {
		trust[si] = init
	}
	conf := make([][]float64, len(ix.objects))
	for oi := range conf {
		conf[oi] = make([]float64, len(ix.values[oi]))
	}

	const maxTauTrust = 1 - 1e-9 // cap so -ln(1-t) stays finite
	for iter := 0; iter < maxIter; iter++ {
		// Claim confidences from source scores.
		for oi := range ix.votes {
			for vi := range ix.votes[oi] {
				var raw float64
				for _, si := range ix.votes[oi][vi] {
					ts := trust[si]
					if ts > maxTauTrust {
						ts = maxTauTrust
					}
					raw += -math.Log(1 - ts)
				}
				conf[oi][vi] = 1 / (1 + math.Exp(-gamma*raw))
			}
		}
		// Source trustworthiness from claim confidences.
		maxDelta := 0.0
		for si, cs := range ix.claimsBySource {
			if len(cs) == 0 {
				continue
			}
			var sum float64
			for _, ov := range cs {
				sum += conf[ov[0]][ov[1]]
			}
			next := sum / float64(len(cs))
			if d := math.Abs(next - trust[si]); d > maxDelta {
				maxDelta = d
			}
			trust[si] = next
		}
		if maxDelta < tol {
			break
		}
	}
	return ix.truths(func(oi, vi int) float64 { return conf[oi][vi] }), nil
}

// SourceTrust exposes the converged per-source trustworthiness, recomputed
// from scratch; used by reports and by tests validating that reliable
// sources earn higher trust.
func (t *TruthFinder) SourceTrust(claims []Claim) (map[string]float64, error) {
	ix, err := buildIndex(claims)
	if err != nil {
		return nil, err
	}
	truths, err := t.Fuse(claims)
	if err != nil {
		return nil, err
	}
	confByKey := make(map[[2]string]float64, len(truths))
	for _, tr := range truths {
		confByKey[[2]string{tr.Object, tr.Value}] = tr.Confidence
	}
	out := make(map[string]float64, len(ix.sources))
	for si, name := range ix.sources {
		cs := ix.claimsBySource[si]
		if len(cs) == 0 {
			continue
		}
		var sum float64
		for _, ov := range cs {
			sum += confByKey[[2]string{ix.objects[ov[0]], ix.values[ov[0]][ov[1]]}]
		}
		out[name] = sum / float64(len(cs))
	}
	return out, nil
}
