// Package info implements the information-theoretic kernel used throughout
// CrowdFusion: Shannon entropy, binary entropy, conditional entropy and
// mutual information over discrete distributions, plus numerically careful
// accumulation helpers.
//
// All entropies are measured in bits (log base 2), matching the numbers
// reported in the CrowdFusion paper (Tables III and IV and the utility plots
// of Section V).
package info

import (
	"errors"
	"math"
)

// ErrNotNormalized is returned by validation helpers when a probability
// vector does not sum to 1 within tolerance.
var ErrNotNormalized = errors.New("info: distribution does not sum to 1")

// ErrNegativeProb is returned when a probability entry is negative beyond
// tolerance.
var ErrNegativeProb = errors.New("info: negative probability")

// NormTolerance is the tolerance used by Validate when checking that a
// distribution sums to one. Distributions assembled from many floating-point
// updates accumulate error, so the tolerance is deliberately loose.
const NormTolerance = 1e-6

// PLogP returns p*log2(p) with the information-theoretic convention
// 0*log(0) = 0. Negative inputs (which can arise from floating-point
// cancellation) are clamped to zero.
func PLogP(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return p * math.Log2(p)
}

// Entropy returns the Shannon entropy, in bits, of the probability vector p.
// The vector is assumed to be normalized; callers that cannot guarantee this
// should call Validate first or use EntropyNormalized.
//
// Kahan compensated summation is used so that supports with many small
// entries (e.g. 2^n possible worlds) do not lose precision.
func Entropy(p []float64) float64 {
	var sum, comp float64
	for _, pi := range p {
		term := -PLogP(pi)
		y := term - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	if sum < 0 {
		// Tiny negative values can arise when all mass is on one outcome.
		return 0
	}
	return sum
}

// EntropyNormalized normalizes p (treating it as an unnormalized measure)
// and returns the entropy of the normalized distribution. The input slice is
// not modified. It returns 0 for an empty or all-zero measure.
func EntropyNormalized(p []float64) float64 {
	total := Sum(p)
	if total <= 0 {
		return 0
	}
	// H(p/Z) = -sum (p_i/Z) log(p_i/Z) = log Z - (1/Z) sum p_i log p_i.
	var s, comp float64
	for _, pi := range p {
		term := PLogP(pi)
		y := term - comp
		t := s + y
		comp = (t - s) - y
		s = t
	}
	h := math.Log2(total) - s/total
	if h < 0 {
		return 0
	}
	return h
}

// Binary returns the binary entropy function Hb(p) in bits: the entropy of a
// Bernoulli(p) random variable. It is symmetric around p = 0.5, where it
// attains its maximum of 1 bit.
func Binary(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// CrowdEntropy returns H(Crowd) as defined in Definition 2 of the paper:
// the entropy of a single crowd answer given the ground truth, for a crowd
// with per-task accuracy pc. It equals the binary entropy of pc.
func CrowdEntropy(pc float64) float64 {
	return Binary(pc)
}

// Sum returns the compensated (Kahan) sum of xs.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Validate checks that p is a probability distribution: entries are
// non-negative (within tolerance) and sum to 1 within NormTolerance.
func Validate(p []float64) error {
	for _, pi := range p {
		if pi < -NormTolerance {
			return ErrNegativeProb
		}
	}
	if math.Abs(Sum(p)-1) > NormTolerance*float64(max(1, len(p))) {
		return ErrNotNormalized
	}
	return nil
}

// Normalize scales p in place so it sums to 1 and returns the original sum.
// If the sum is zero or negative the slice is left unchanged and 0 is
// returned. Small negative entries (floating-point dust) are clamped to 0
// before normalizing.
func Normalize(p []float64) float64 {
	for i, pi := range p {
		if pi < 0 {
			p[i] = 0
		}
	}
	total := Sum(p)
	if total <= 0 {
		return 0
	}
	inv := 1 / total
	for i := range p {
		p[i] *= inv
	}
	return total
}

// JointEntropy returns the entropy of a joint distribution given as a matrix
// of probabilities (rows × cols), in bits.
func JointEntropy(joint [][]float64) float64 {
	var sum, comp float64
	for _, row := range joint {
		for _, p := range row {
			term := -PLogP(p)
			y := term - comp
			t := sum + y
			comp = (t - sum) - y
			sum = t
		}
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// MutualInformation returns I(X;Y) in bits for the joint distribution
// joint[x][y]. Marginals are computed internally. Values are clamped at 0 to
// absorb floating-point noise.
func MutualInformation(joint [][]float64) float64 {
	if len(joint) == 0 {
		return 0
	}
	px := make([]float64, len(joint))
	py := make([]float64, len(joint[0]))
	for x, row := range joint {
		for y, p := range row {
			px[x] += p
			py[y] += p
		}
	}
	mi := Entropy(px) + Entropy(py) - JointEntropy(joint)
	if mi < 0 {
		return 0
	}
	return mi
}

// ConditionalEntropy returns H(Y|X) in bits for the joint distribution
// joint[x][y]: H(Y|X) = H(X,Y) - H(X).
func ConditionalEntropy(joint [][]float64) float64 {
	if len(joint) == 0 {
		return 0
	}
	px := make([]float64, len(joint))
	for x, row := range joint {
		for _, p := range row {
			px[x] += p
		}
	}
	h := JointEntropy(joint) - Entropy(px)
	if h < 0 {
		return 0
	}
	return h
}

// KL returns the Kullback-Leibler divergence D(p||q) in bits. It returns
// +Inf if p places mass where q does not. Both inputs are assumed
// normalized.
func KL(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("info: KL requires equal-length distributions")
	}
	var d float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1)
		}
		d += pi * math.Log2(pi/q[i])
	}
	if d < 0 {
		return 0
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
