package info

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPLogP(t *testing.T) {
	tests := []struct {
		name string
		p    float64
		want float64
	}{
		{"zero", 0, 0},
		{"negative clamped", -0.1, 0},
		{"one", 1, 0},
		{"half", 0.5, -0.5},
		{"quarter", 0.25, -0.5},
		{"eighth", 0.125, -0.375},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PLogP(tt.p); !almostEqual(got, tt.want, eps) {
				t.Errorf("PLogP(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestEntropyKnownValues(t *testing.T) {
	tests := []struct {
		name string
		p    []float64
		want float64
	}{
		{"empty", nil, 0},
		{"point mass", []float64{1}, 0},
		{"point mass with zeros", []float64{0, 1, 0}, 0},
		{"fair coin", []float64{0.5, 0.5}, 1},
		{"uniform 4", []float64{0.25, 0.25, 0.25, 0.25}, 2},
		{"uniform 8", []float64{.125, .125, .125, .125, .125, .125, .125, .125}, 3},
		{"biased coin 0.9", []float64{0.9, 0.1}, 0.4689955935892812},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Entropy(tt.p); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Entropy(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

// TestEntropyPaperJoint pins the entropy of the paper's Table II joint
// distribution (16 possible outputs over 4 facts).
func TestEntropyPaperJoint(t *testing.T) {
	p := []float64{0.03, 0.06, 0.07, 0.04, 0.09, 0.01, 0.11, 0.09,
		0.04, 0.04, 0.04, 0.05, 0.06, 0.09, 0.07, 0.11}
	if err := Validate(p); err != nil {
		t.Fatalf("paper joint distribution invalid: %v", err)
	}
	h := Entropy(p)
	// Independently computed: -sum p log2 p = 3.840031...
	if h < 3.5 || h > 4.0 {
		t.Errorf("entropy of paper joint = %v, want within (3.5, 4.0)", h)
	}
	if !almostEqual(h, 3.8400310143, 1e-9) {
		t.Errorf("entropy of paper joint = %v, want 3.8400310143", h)
	}
}

func TestEntropyBounds(t *testing.T) {
	// Property: 0 <= H(p) <= log2(n) for any normalized distribution.
	f := func(raw []float64) bool {
		p := makeDist(raw)
		if p == nil {
			return true
		}
		h := Entropy(p)
		return h >= 0 && h <= math.Log2(float64(len(p)))+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEntropyMaximizedByUniform(t *testing.T) {
	// Property: uniform distribution has maximal entropy among same-size
	// supports.
	f := func(raw []float64) bool {
		p := makeDist(raw)
		if p == nil || len(p) < 2 {
			return true
		}
		return Entropy(p) <= math.Log2(float64(len(p)))+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEntropyNormalized(t *testing.T) {
	// EntropyNormalized(c*p) == Entropy(p) for any positive scale c.
	p := []float64{0.1, 0.2, 0.3, 0.4}
	want := Entropy(p)
	for _, c := range []float64{0.001, 0.5, 1, 2, 1000} {
		scaled := make([]float64, len(p))
		for i := range p {
			scaled[i] = p[i] * c
		}
		if got := EntropyNormalized(scaled); !almostEqual(got, want, 1e-9) {
			t.Errorf("EntropyNormalized(scale %v) = %v, want %v", c, got, want)
		}
	}
	if got := EntropyNormalized(nil); got != 0 {
		t.Errorf("EntropyNormalized(nil) = %v, want 0", got)
	}
	if got := EntropyNormalized([]float64{0, 0}); got != 0 {
		t.Errorf("EntropyNormalized(zeros) = %v, want 0", got)
	}
}

func TestBinary(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0, 0}, {1, 0}, {0.5, 1},
		{0.8, 0.7219280948873623},
		{0.2, 0.7219280948873623},
		{0.7, 0.8812908992306927},
		{0.9, 0.4689955935892812},
	}
	for _, tt := range tests {
		if got := Binary(tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Binary(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestBinarySymmetry(t *testing.T) {
	f := func(x float64) bool {
		p := math.Mod(math.Abs(x), 1)
		return almostEqual(Binary(p), Binary(1-p), 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestCrowdEntropy(t *testing.T) {
	// Definition 2: H(Crowd) = -Pc log Pc - (1-Pc) log (1-Pc).
	if got := CrowdEntropy(0.8); !almostEqual(got, 0.7219280948873623, 1e-12) {
		t.Errorf("CrowdEntropy(0.8) = %v", got)
	}
	// Perfect crowd carries no noise entropy.
	if got := CrowdEntropy(1.0); got != 0 {
		t.Errorf("CrowdEntropy(1.0) = %v, want 0", got)
	}
	// Maximally unreliable crowd has a full bit of noise.
	if got := CrowdEntropy(0.5); !almostEqual(got, 1, 1e-12) {
		t.Errorf("CrowdEntropy(0.5) = %v, want 1", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	// Kahan summation should handle catastrophic-cancellation-prone input.
	many := make([]float64, 1000000)
	for i := range many {
		many[i] = 0.1
	}
	if got := Sum(many); !almostEqual(got, 100000, 1e-6) {
		t.Errorf("Sum(1e6 * 0.1) = %v, want 100000", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]float64{0.5, 0.5}); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	if err := Validate([]float64{0.5, 0.4}); err != ErrNotNormalized {
		t.Errorf("unnormalized distribution accepted, err=%v", err)
	}
	if err := Validate([]float64{1.5, -0.5}); err != ErrNegativeProb {
		t.Errorf("negative probability accepted, err=%v", err)
	}
}

func TestNormalize(t *testing.T) {
	p := []float64{1, 2, 1}
	total := Normalize(p)
	if total != 4 {
		t.Errorf("Normalize returned %v, want 4", total)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i := range p {
		if !almostEqual(p[i], want[i], eps) {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	// Zero measure left unchanged.
	z := []float64{0, 0}
	if total := Normalize(z); total != 0 {
		t.Errorf("Normalize(zeros) = %v, want 0", total)
	}
	// Negative dust clamped.
	d := []float64{-1e-18, 1}
	Normalize(d)
	if d[0] != 0 {
		t.Errorf("negative dust not clamped: %v", d[0])
	}
}

func TestNormalizeThenValidate(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		anyPos := false
		for i, x := range raw {
			p[i] = math.Abs(math.Mod(x, 100))
			if p[i] > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		Normalize(p)
		return Validate(p) == nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJointEntropyAndMutualInformation(t *testing.T) {
	// Independent joint: I(X;Y) = 0, H(X,Y) = H(X) + H(Y).
	indep := [][]float64{
		{0.25, 0.25},
		{0.25, 0.25},
	}
	if got := MutualInformation(indep); !almostEqual(got, 0, 1e-12) {
		t.Errorf("MI(independent) = %v, want 0", got)
	}
	if got := JointEntropy(indep); !almostEqual(got, 2, 1e-12) {
		t.Errorf("H(independent joint) = %v, want 2", got)
	}

	// Perfectly correlated: I(X;Y) = H(X) = 1 bit.
	corr := [][]float64{
		{0.5, 0},
		{0, 0.5},
	}
	if got := MutualInformation(corr); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MI(correlated) = %v, want 1", got)
	}
	if got := ConditionalEntropy(corr); !almostEqual(got, 0, 1e-12) {
		t.Errorf("H(Y|X) correlated = %v, want 0", got)
	}
}

func TestConditionalEntropyChainRule(t *testing.T) {
	// H(X,Y) = H(X) + H(Y|X) on random joints.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		rows := 2 + rng.Intn(4)
		cols := 2 + rng.Intn(4)
		joint := make([][]float64, rows)
		var total float64
		for i := range joint {
			joint[i] = make([]float64, cols)
			for j := range joint[i] {
				joint[i][j] = rng.Float64()
				total += joint[i][j]
			}
		}
		px := make([]float64, rows)
		for i := range joint {
			for j := range joint[i] {
				joint[i][j] /= total
				px[i] += joint[i][j]
			}
		}
		lhs := JointEntropy(joint)
		rhs := Entropy(px) + ConditionalEntropy(joint)
		if !almostEqual(lhs, rhs, 1e-9) {
			t.Fatalf("chain rule violated: H(X,Y)=%v, H(X)+H(Y|X)=%v", lhs, rhs)
		}
	}
}

func TestMutualInformationNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		rows := 2 + rng.Intn(3)
		cols := 2 + rng.Intn(3)
		joint := make([][]float64, rows)
		var total float64
		for i := range joint {
			joint[i] = make([]float64, cols)
			for j := range joint[i] {
				joint[i][j] = rng.Float64()
				total += joint[i][j]
			}
		}
		for i := range joint {
			for j := range joint[i] {
				joint[i][j] /= total
			}
		}
		if mi := MutualInformation(joint); mi < 0 {
			t.Fatalf("negative mutual information: %v", mi)
		}
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	if got := KL(p, p); !almostEqual(got, 0, 1e-12) {
		t.Errorf("KL(p||p) = %v, want 0", got)
	}
	if got := KL(p, q); got <= 0 {
		t.Errorf("KL(p||q) = %v, want > 0", got)
	}
	// Support mismatch gives +Inf.
	if got := KL([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("KL with support mismatch = %v, want +Inf", got)
	}
}

func TestKLPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KL did not panic on length mismatch")
		}
	}()
	KL([]float64{1}, []float64{0.5, 0.5})
}

func TestKLNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(8)
		p := randomDist(rng, n)
		q := randomDist(rng, n)
		if d := KL(p, q); d < 0 {
			t.Fatalf("negative KL divergence: %v (p=%v q=%v)", d, p, q)
		}
	}
}

// makeDist converts arbitrary quick-generated floats into a normalized
// distribution, or nil when impossible.
func makeDist(raw []float64) []float64 {
	if len(raw) == 0 {
		return nil
	}
	p := make([]float64, len(raw))
	anyPos := false
	for i, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
		p[i] = math.Abs(math.Mod(x, 1000))
		if p[i] > 0 {
			anyPos = true
		}
	}
	if !anyPos {
		return nil
	}
	Normalize(p)
	return p
}

func randomDist(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64() + 1e-9
	}
	Normalize(p)
	return p
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
}
