// Package parallel provides the bounded worker pool used by CrowdFusion's
// hot paths: the O(|O|²) preprocessing loop and the per-instance evaluation
// sweeps. The pool is deliberately minimal — static block partitioning with
// one goroutine per worker — so that work assignment is deterministic and
// results land at fixed indices, keeping parallel runs bit-identical to
// sequential ones.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count request against the available hardware:
// requested <= 0 means "use GOMAXPROCS", and the result is clamped to the
// number of items so no goroutine starts with an empty range. The result is
// always at least 1.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (resolved via Workers). Indices are partitioned into contiguous blocks, so
// each index is processed by exactly one worker and writes to per-index
// result slots never contend. With one worker the loop runs inline on the
// calling goroutine — zero overhead for the sequential case.
//
// fn must not panic across items it does not own; any error reporting is the
// caller's responsibility (write errors to a per-index slot and inspect them
// after For returns).
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	Blocks(w, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// workerTokens is the global budget of extra compute goroutines, shared by
// every Blocks call in the process. A top-level fan-out claims the whole
// budget; a nested fan-out (e.g. Preprocess called from a selector that is
// itself running inside a parallel sweep) finds the budget drained and
// degrades to an inline loop instead of oversubscribing the CPUs
// quadratically. Capacity is fixed at startup from GOMAXPROCS, with a
// floor of 1 so the concurrent path stays exercisable (and race-checkable)
// even on a single-CPU machine.
var workerTokens = make(chan struct{}, max(runtime.GOMAXPROCS(0)-1, 1))

// Blocks partitions [0, n) into up to w contiguous near-equal blocks and
// runs fn(lo, hi) for each block, returning when all blocks are done. The
// first block runs inline on the caller; the rest run on goroutines
// claimed from the global worker budget, so the effective width shrinks —
// down to a plain inline loop — when callers are already nested inside a
// parallel region. Block boundaries depend only on (effective w, n) and
// every index is processed exactly once, so any computation that is
// deterministic per index stays deterministic whatever width is granted.
// w must already be resolved (>= 1); n may be 0.
func Blocks(w, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	extra := 0
	for extra < w-1 {
		select {
		case workerTokens <- struct{}{}:
			extra++
			continue
		default:
		}
		break
	}
	w = extra + 1
	if extra > 0 {
		// Deferred so a panic in the caller's inline block cannot leak
		// the budget and silently serialize the rest of the process.
		defer func() {
			for i := 0; i < extra; i++ {
				<-workerTokens
			}
		}()
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	base, rem := n/w, n%w
	lo := 0
	var lo0, hi0 int
	for b := 0; b < w; b++ {
		size := base
		if b < rem {
			size++
		}
		hi := lo + size
		if b == 0 {
			lo0, hi0 = lo, hi
		} else {
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		lo = hi
	}
	fn(lo0, hi0)
	wg.Wait()
}
