package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(4, 2); got != 2 {
		t.Errorf("Workers(4, 2) = %d, want 2 (clamped to items)", got)
	}
	if got := Workers(-3, 0); got != 1 {
		t.Errorf("Workers(-3, 0) = %d, want 1", got)
	}
	if got := Workers(7, 100); got != 7 {
		t.Errorf("Workers(7, 100) = %d, want 7", got)
	}
}

// TestForCoversEveryIndexOnce uses an explicit worker count above
// GOMAXPROCS so the concurrent path is exercised even on one CPU.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestBlocksPartition checks the block decomposition is a disjoint
// exactly-once cover. The granted width may be below the request when the
// global worker budget is smaller, but never above it.
func TestBlocksPartition(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7} {
		for _, n := range []int{1, 2, 7, 100} {
			covered := make([]int32, n)
			var blocks int32
			Blocks(w, n, func(lo, hi int) {
				atomic.AddInt32(&blocks, 1)
				if lo >= hi {
					t.Errorf("w=%d n=%d: empty block [%d, %d)", w, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("w=%d n=%d: index %d covered %d times", w, n, i, c)
				}
			}
			cap := w
			if cap > n {
				cap = n
			}
			if int(blocks) < 1 || int(blocks) > cap {
				t.Errorf("w=%d n=%d: %d blocks, want between 1 and %d", w, n, blocks, cap)
			}
		}
	}
}

// TestBlocksDegradesWhenBudgetDrained: with every worker token held, a
// nested-style Blocks call must run inline as a single block — the guard
// against quadratic oversubscription when parallel regions nest.
func TestBlocksDegradesWhenBudgetDrained(t *testing.T) {
	held := 0
	for {
		select {
		case workerTokens <- struct{}{}:
			held++
			continue
		default:
		}
		break
	}
	defer func() {
		for i := 0; i < held; i++ {
			<-workerTokens
		}
	}()
	var calls int32
	Blocks(8, 100, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 100 {
			t.Errorf("degraded block is [%d, %d), want [0, 100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("drained budget produced %d blocks, want 1 inline block", calls)
	}
}

// TestBlocksReleasesTokensOnPanic: a panic in the caller's inline block
// must not leak the acquired worker tokens, or every later Blocks call in
// the process would silently run single-threaded.
func TestBlocksReleasesTokensOnPanic(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the inline block's panic to propagate")
			}
		}()
		Blocks(2, 10, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
	}()
	if got := len(workerTokens); got != 0 {
		t.Fatalf("%d worker tokens leaked after panic", got)
	}
}

// TestForDeterministicPartition verifies that the same (workers, n) always
// yields the same index→block assignment, the property the deterministic
// parallel sweeps rely on.
func TestForDeterministicPartition(t *testing.T) {
	const w, n = 5, 123
	assign := func() []int64 {
		owner := make([]int64, n)
		var next int64
		Blocks(w, n, func(lo, hi int) {
			id := atomic.AddInt64(&next, 1)
			for i := lo; i < hi; i++ {
				atomic.StoreInt64(&owner[i], int64(hi-lo)<<32|int64(lo))
			}
			_ = id
		})
		return owner
	}
	a, b := assign(), assign()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d assigned to different blocks across runs", i)
		}
	}
}
