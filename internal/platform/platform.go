// Package platform simulates a crowdsourcing platform in the style of
// gMission (Chen et al., VLDB 2014), which the paper uses for its
// empirical study: tasks are posted in rounds, pushed to a pool of
// anonymous workers, answered independently — optionally by several workers
// whose votes are aggregated by majority — and collected asynchronously.
//
// The simulation is concurrent (each task is answered by its own goroutine,
// bounded by a configurable parallelism) yet fully deterministic: every
// posted task derives its own RNG from the platform seed and the task's
// global sequence number, so results are independent of goroutine
// scheduling.
package platform

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/service"
)

// Source is the source string stamped on judgments emitted by the
// simulated platform.
const Source = "sim"

// Config describes the simulated platform.
type Config struct {
	// Truth is the hidden ground-truth judgment of every fact.
	Truth dist.World
	// Pool supplies the workers. Required.
	Pool *crowd.Pool
	// Redundancy is how many distinct workers answer each task; their
	// majority vote becomes the task's answer. Rounded up to odd,
	// capped at the pool size. Default 1.
	Redundancy int
	// Seed drives all randomness.
	Seed int64
	// PerTaskAccuracy overrides the workers' accuracy on specific facts
	// (hard statements per Section V-D). Optional.
	PerTaskAccuracy map[int]float64
	// Parallelism bounds concurrent task processing. Default 8.
	Parallelism int
	// Latency, when positive, is slept by each simulated worker before
	// answering, for end-to-end pacing demos. Keep zero in tests.
	Latency time.Duration
}

// Platform is a running simulated crowdsourcing platform. It satisfies the
// engine's AnswerProvider interface. Safe for use from one engine at a
// time; internal state is mutex-protected.
type Platform struct {
	cfg    Config
	mu     sync.Mutex
	seq    int            // global task sequence number
	posted int            // tasks posted
	log    []crowd.Answer // every individual worker answer
}

// New validates the configuration and builds a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Pool == nil || cfg.Pool.Size() == 0 {
		return nil, errors.New("platform: worker pool required")
	}
	if cfg.Redundancy < 1 {
		cfg.Redundancy = 1
	}
	if cfg.Redundancy > cfg.Pool.Size() {
		cfg.Redundancy = cfg.Pool.Size()
	}
	if cfg.Redundancy%2 == 0 {
		cfg.Redundancy--
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	for f, pc := range cfg.PerTaskAccuracy {
		if pc < 0 || pc > 1 {
			return nil, fmt.Errorf("platform: per-task accuracy %v for fact %d out of [0,1]", pc, f)
		}
	}
	return &Platform{cfg: cfg}, nil
}

// Answers posts one round of tasks and blocks until every task has been
// answered, returning the (majority-aggregated) judgment per task. It
// implements the CrowdFusion engine's AnswerProvider.
func (p *Platform) Answers(tasks []int) []bool {
	p.mu.Lock()
	baseSeq := p.seq
	p.seq += len(tasks)
	p.posted += len(tasks)
	p.mu.Unlock()

	out := make([]bool, len(tasks))
	logs := make([][]crowd.Answer, len(tasks))
	sem := make(chan struct{}, p.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, fact := range tasks {
		wg.Add(1)
		go func(slot, fact, seq int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if p.cfg.Latency > 0 {
				time.Sleep(p.cfg.Latency)
			}
			out[slot], logs[slot] = p.answerOne(fact, seq)
		}(i, fact, baseSeq+i)
	}
	wg.Wait()

	p.mu.Lock()
	for _, l := range logs {
		p.log = append(p.log, l...)
	}
	p.mu.Unlock()
	return out
}

// Attributed returns a view of the platform that answers with attributed
// per-worker judgments instead of majority-aggregated booleans. The view
// implements the client's JudgmentProvider, so handing it to a Refine loop
// submits per-worker answers and lets sessions running an em or
// dawid-skene worker model learn each worker's accuracy from the loop's
// own traffic. It is a distinct type — not a method on Platform — so that
// existing majority-vote callers keep their AnswerProvider semantics;
// attribution is an explicit opt-in.
func (p *Platform) Attributed() *Attributed { return &Attributed{p: p} }

// Attributed is the judgment-emitting view of a Platform; see
// Platform.Attributed.
type Attributed struct{ p *Platform }

// Answers satisfies the plain AnswerProvider contract (which the client's
// Refine requires statically) with the same single-worker draws the
// judgments carry, minus the attribution. Consumers that detect
// JudgmentsContext never call it.
func (a *Attributed) Answers(tasks []int) []bool {
	js, err := a.JudgmentsContext(context.Background(), tasks)
	if err != nil { // unreachable: the background context never cancels
		panic(err)
	}
	out := make([]bool, len(js))
	for i, j := range js {
		out[i] = j.Answer
	}
	return out
}

// JudgmentsContext posts one round of tasks, each answered by a single
// worker drawn deterministically from the pool, and returns the attributed
// judgments.
//
// Unlike Answers, Redundancy does not apply here: the judgments form
// rejects duplicate tasks within one submission, and aggregating
// heterogeneous workers is the session's job (the weighted merge) rather
// than the platform's (majority vote). Every judgment is also recorded in
// the answer log, so Stats covers both modes.
func (a *Attributed) JudgmentsContext(ctx context.Context, tasks []int) ([]service.Judgment, error) {
	p := a.p
	p.mu.Lock()
	baseSeq := p.seq
	p.seq += len(tasks)
	p.posted += len(tasks)
	p.mu.Unlock()

	out := make([]service.Judgment, len(tasks))
	sem := make(chan struct{}, p.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, fact := range tasks {
		wg.Add(1)
		go func(slot, fact, seq int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			if p.cfg.Latency > 0 {
				select {
				case <-time.After(p.cfg.Latency):
				case <-ctx.Done():
					return
				}
			}
			out[slot] = p.judgeOne(fact, seq)
		}(i, fact, baseSeq+i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	p.mu.Lock()
	for _, j := range out {
		p.log = append(p.log, crowd.Answer{Fact: j.Task, Value: j.Answer, Worker: j.Worker})
	}
	p.mu.Unlock()
	return out, nil
}

// judgeOne simulates one attributed task: a single worker, chosen by the
// task's own RNG, answers with their configured accuracy. Like answerOne,
// the result depends only on the seed and the sequence number.
func (p *Platform) judgeOne(fact, seq int) service.Judgment {
	rng := rand.New(rand.NewSource(mix(p.cfg.Seed, int64(seq))))
	truth := p.cfg.Truth.Has(fact)

	w := p.cfg.Pool.Workers()[rng.Intn(p.cfg.Pool.Size())]
	acc := w.Accuracy
	if override, ok := p.cfg.PerTaskAccuracy[fact]; ok {
		acc = override
	}
	v := truth
	if rng.Float64() >= acc {
		v = !truth
	}
	return service.Judgment{Task: fact, Answer: v, Worker: w.ID, Source: Source}
}

// answerOne simulates one task: Redundancy distinct workers answer, the
// majority wins. The RNG is derived from the seed and the task's sequence
// number only, so the result does not depend on scheduling.
func (p *Platform) answerOne(fact, seq int) (bool, []crowd.Answer) {
	rng := rand.New(rand.NewSource(mix(p.cfg.Seed, int64(seq))))
	truth := p.cfg.Truth.Has(fact)
	override, hasOverride := p.cfg.PerTaskAccuracy[fact]

	workers := p.cfg.Pool.Workers()
	perm := rng.Perm(len(workers))[:p.cfg.Redundancy]
	answers := make([]crowd.Answer, 0, p.cfg.Redundancy)
	votesTrue := 0
	for _, wi := range perm {
		w := workers[wi]
		acc := w.Accuracy
		if hasOverride {
			acc = override
		}
		v := truth
		if rng.Float64() >= acc {
			v = !truth
		}
		if v {
			votesTrue++
		}
		answers = append(answers, crowd.Answer{Fact: fact, Value: v, Worker: w.ID})
	}
	return votesTrue*2 > p.cfg.Redundancy, answers
}

// mix combines the platform seed and a sequence number into an RNG seed
// (splitmix64-style finalizer).
func mix(seed, seq int64) int64 {
	z := uint64(seed) ^ (uint64(seq)+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// Posted returns the number of tasks posted so far — the platform-side
// budget counter.
func (p *Platform) Posted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.posted
}

// Log returns a copy of every individual worker answer recorded so far.
func (p *Platform) Log() []crowd.Answer {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]crowd.Answer(nil), p.log...)
}

// WorkerStats summarizes one worker's recorded performance.
type WorkerStats struct {
	Worker   string
	Answered int
	Correct  int
}

// Accuracy returns the worker's empirical accuracy (0 if unobserved).
func (s WorkerStats) Accuracy() float64 {
	if s.Answered == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Answered)
}

// Stats aggregates the answer log per worker, sorted by worker ID. Gold
// truth comes from the platform's configured truth world.
func (p *Platform) Stats() []WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	byWorker := make(map[string]*WorkerStats)
	for _, a := range p.log {
		st, ok := byWorker[a.Worker]
		if !ok {
			st = &WorkerStats{Worker: a.Worker}
			byWorker[a.Worker] = st
		}
		st.Answered++
		if a.Value == p.cfg.Truth.Has(a.Fact) {
			st.Correct++
		}
	}
	out := make([]WorkerStats, 0, len(byWorker))
	for _, st := range byWorker {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// EstimatePc runs the paper's recommended pre-test (Section V-C3): post
// the given gold tasks to the platform and estimate the effective crowd
// accuracy from the answers.
func (p *Platform) EstimatePc(goldFacts []int) (float64, error) {
	if len(goldFacts) == 0 {
		return 0, errors.New("platform: no gold tasks")
	}
	answers := p.Answers(goldFacts)
	gold := make([]bool, len(goldFacts))
	for i, f := range goldFacts {
		gold[i] = p.cfg.Truth.Has(f)
	}
	return crowd.EstimatePc(gold, answers)
}
