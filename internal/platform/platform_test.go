package platform

import (
	"math"
	"sync"
	"testing"

	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
)

func testPool(tb testing.TB, accuracy float64) *crowd.Pool {
	tb.Helper()
	p, err := crowd.RandomPool(20, accuracy, accuracy, 5)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing pool accepted")
	}
	pool := testPool(t, 0.8)
	if _, err := New(Config{Pool: pool, PerTaskAccuracy: map[int]float64{0: 2}}); err == nil {
		t.Error("bad per-task accuracy accepted")
	}
	p, err := New(Config{Pool: pool, Redundancy: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Redundancy != 3 {
		t.Errorf("even redundancy not rounded down to odd: %d", p.cfg.Redundancy)
	}
	p, err = New(Config{Pool: pool, Redundancy: 99})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Redundancy > pool.Size() {
		t.Errorf("redundancy %d exceeds pool %d", p.cfg.Redundancy, pool.Size())
	}
}

func TestAnswersDeterministic(t *testing.T) {
	truth := dist.World(0b1010101)
	mk := func() *Platform {
		p, err := New(Config{Truth: truth, Pool: testPool(t, 0.8), Seed: 11, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	tasks := []int{0, 1, 2, 3, 4, 5, 6, 0, 1, 2}
	a := mk().Answers(tasks)
	b := mk().Answers(tasks)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed platforms diverged at task %d", i)
		}
	}
}

func TestAnswersAccuracy(t *testing.T) {
	truth := dist.World(0b0101)
	p, err := New(Config{Truth: truth, Pool: testPool(t, 0.8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4000
	correct, total := 0, 0
	for r := 0; r < rounds; r++ {
		tasks := []int{0, 1, 2, 3}
		ans := p.Answers(tasks)
		for i, f := range tasks {
			if ans[i] == truth.Has(f) {
				correct++
			}
			total++
		}
	}
	rate := float64(correct) / float64(total)
	if math.Abs(rate-0.8) > 0.01 {
		t.Errorf("platform accuracy = %v, want ~0.8", rate)
	}
	if p.Posted() != total {
		t.Errorf("Posted = %d, want %d", p.Posted(), total)
	}
}

// TestRedundancyBoostsAccuracy: majority aggregation over 5 workers at 0.8
// should approach the analytic 0.942.
func TestRedundancyBoostsAccuracy(t *testing.T) {
	truth := dist.World(0b1)
	p, err := New(Config{Truth: truth, Pool: testPool(t, 0.8), Seed: 7, Redundancy: 5})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20000
	correct := 0
	for r := 0; r < rounds; r++ {
		if p.Answers([]int{0})[0] == true {
			correct++
		}
	}
	rate := float64(correct) / rounds
	want := crowd.MajorityAccuracy(0.8, 5)
	if math.Abs(rate-want) > 0.01 {
		t.Errorf("redundant accuracy = %v, want ~%v", rate, want)
	}
	// The log holds every individual answer: 5 per task.
	if got := len(p.Log()); got != rounds*5 {
		t.Errorf("log has %d answers, want %d", got, rounds*5)
	}
}

func TestPerTaskOverride(t *testing.T) {
	truth := dist.World(0b1)
	p, err := New(Config{
		Truth: truth, Pool: testPool(t, 0.95), Seed: 13,
		PerTaskAccuracy: map[int]float64{0: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20000
	correct := 0
	for r := 0; r < rounds; r++ {
		if p.Answers([]int{0})[0] == true {
			correct++
		}
	}
	rate := float64(correct) / rounds
	if math.Abs(rate-0.4) > 0.01 {
		t.Errorf("hard-task accuracy = %v, want ~0.4", rate)
	}
}

func TestConcurrentSafety(t *testing.T) {
	truth := dist.World(0b11110000)
	p, err := New(Config{Truth: truth, Pool: testPool(t, 0.9), Seed: 17, Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				p.Answers([]int{0, 1, 2, 3, 4, 5, 6, 7})
			}
		}()
	}
	wg.Wait()
	if p.Posted() != 8*50*8 {
		t.Errorf("Posted = %d, want %d", p.Posted(), 8*50*8)
	}
	if len(p.Log()) != p.Posted() {
		t.Errorf("log %d != posted %d at redundancy 1", len(p.Log()), p.Posted())
	}
}

func TestStats(t *testing.T) {
	truth := dist.World(0b1)
	p, err := New(Config{Truth: truth, Pool: testPool(t, 0.85), Seed: 19, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 500; r++ {
		p.Answers([]int{0})
	}
	stats := p.Stats()
	if len(stats) == 0 {
		t.Fatal("no worker stats")
	}
	var answered int
	for _, s := range stats {
		answered += s.Answered
		if s.Answered > 0 {
			acc := s.Accuracy()
			if acc < 0.6 || acc > 1 {
				t.Errorf("worker %s empirical accuracy %v far from 0.85", s.Worker, acc)
			}
		}
	}
	if answered != 1500 {
		t.Errorf("stats cover %d answers, want 1500", answered)
	}
	if (WorkerStats{}).Accuracy() != 0 {
		t.Error("empty stats accuracy should be 0")
	}
}

// TestEstimatePc: the pre-test recovers the pool's effective accuracy.
func TestEstimatePc(t *testing.T) {
	truth := dist.World(0b110011)
	p, err := New(Config{Truth: truth, Pool: testPool(t, 0.86), Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	gold := make([]int, 3000)
	for i := range gold {
		gold[i] = i % 6
	}
	est, err := p.EstimatePc(gold)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-0.86) > 0.02 {
		t.Errorf("estimated Pc = %v, want ~0.86", est)
	}
	if _, err := p.EstimatePc(nil); err == nil {
		t.Error("empty gold set accepted")
	}
}

// TestPlatformDrivesEngine: the platform satisfies core.AnswerProvider and
// runs a full CrowdFusion loop.
func TestPlatformDrivesEngine(t *testing.T) {
	probs := []float64{0.05, 0.1, 0.1, 0.15, 0.1, 0.1, 0.2, 0.2}
	j, err := dist.Dense(3, probs)
	if err != nil {
		t.Fatal(err)
	}
	truth := dist.World(0b110)
	p, err := New(Config{Truth: truth, Pool: testPool(t, 0.9), Seed: 29, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	var _ core.AnswerProvider = p
	eng := core.Engine{
		Prior:    j,
		Selector: core.NewGreedy(),
		Crowd:    p,
		Pc:       crowd.MajorityAccuracy(0.9, 3),
		K:        2,
		Budget:   10,
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Prob(truth) <= j.Prob(truth) {
		t.Errorf("truth world did not gain mass: %v -> %v",
			j.Prob(truth), res.Final.Prob(truth))
	}
}

func TestMixSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		v := mix(42, i)
		if v < 0 {
			t.Fatalf("mix produced negative seed %d", v)
		}
		if seen[v] {
			t.Fatalf("mix collision at %d", i)
		}
		seen[v] = true
	}
}
