package service

import (
	"sync"

	"crowdfusion/internal/core"
)

// selectBatcher coalesces concurrent greedy sweeps from different sessions
// into core.BatchSelector calls, so a burst of POST …/select requests pays
// the per-(pc, k) channel setup once and the per-session sweeps fan out
// over the parallel pool together instead of contending for it separately.
//
// The protocol is leader-promotion, not a background worker: the first
// arrival becomes the dispatcher and runs the batch on its own goroutine
// (so the server's drain guarantee covers the compute); jobs arriving
// while a batch runs queue up, and when the batch finishes the dispatcher
// promotes the oldest waiter to dispatch the accumulated queue. Under
// light load every batch has width 1 and the path is the plain
// single-session sweep — bit-identical by the BatchSelector contract.
type selectBatcher struct {
	bs *core.BatchSelector

	// onBatch, when set, observes each dispatched batch's width (the
	// metrics hook). Called off-lock, once per kernel invocation.
	onBatch func(width int)

	mu      sync.Mutex
	pending []*selectJob
	running bool
}

// selectJob is one queued sweep. Exactly one of the channels fires: result
// when a dispatcher ran the job inside its batch, lead when the job is
// promoted to dispatch the next batch itself.
type selectJob struct {
	item   core.BatchItem
	result chan core.BatchResult // buffered 1: dispatcher never blocks
	lead   chan struct{}
}

func newSelectBatcher(onBatch func(width int)) *selectBatcher {
	return &selectBatcher{bs: core.NewBatchSelector(), onBatch: onBatch}
}

// do runs one sweep through the batcher and blocks until its result is
// available. Safe for concurrent use; every call runs on the caller's own
// goroutine (as a dispatcher or a waiter), never on a detached one.
func (b *selectBatcher) do(item core.BatchItem) core.BatchResult {
	j := &selectJob{
		item:   item,
		result: make(chan core.BatchResult, 1),
		lead:   make(chan struct{}),
	}
	b.mu.Lock()
	b.pending = append(b.pending, j)
	if b.running {
		b.mu.Unlock()
		select {
		case r := <-j.result:
			return r
		case <-j.lead:
			// Promoted: the previous dispatcher handed this job the queue.
		}
	} else {
		b.running = true
		b.mu.Unlock()
	}
	return b.dispatch(j)
}

// dispatch runs the accumulated queue (which always contains j: it was
// enqueued before j became dispatcher and only dispatchers dequeue),
// delivers every other job's result, and either promotes the oldest job
// that arrived mid-batch or marks the batcher idle.
func (b *selectBatcher) dispatch(j *selectJob) core.BatchResult {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()

	items := make([]core.BatchItem, len(batch))
	for i, job := range batch {
		items[i] = job.item
	}
	if b.onBatch != nil {
		b.onBatch(len(batch))
	}
	results := b.bs.SelectBatch(items)

	var mine core.BatchResult
	for i, job := range batch {
		if job == j {
			mine = results[i]
			continue
		}
		job.result <- results[i]
	}

	b.mu.Lock()
	if len(b.pending) > 0 {
		next := b.pending[0]
		b.mu.Unlock()
		close(next.lead)
	} else {
		b.running = false
		b.mu.Unlock()
	}
	return mine
}
