package service

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
)

// batchBenchSessions builds n standalone sessions over distinct product
// priors, mixing pc and k so the batcher has several channel-plan groups.
func batchTestSessions(t *testing.T, n int) []*Session {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pcs := []float64{0.7, 0.8, 0.9}
	ks := []int{2, 3, 4}
	sessions := make([]*Session, n)
	for i := range sessions {
		m := make([]float64, 10)
		for f := range m {
			m[f] = 0.2 + 0.6*rng.Float64()
		}
		j, err := dist.Independent(m)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = newSession(fmt.Sprintf("s%d", i), j, core.NewGreedyPrunePre(),
			"Approx+Prune+Pre", pcs[i%len(pcs)], ks[i%len(ks)], 1<<30, time.Unix(0, 0))
	}
	return sessions
}

// TestCoalescedSelectBitIdentical proves the server's batched select path
// returns, for every session, exactly the batch the session's own selector
// computes sequentially — the differential contract that lets the
// coalescer replace the inline sweep. Run under -race this also exercises
// the leader-promotion protocol with real concurrency.
func TestCoalescedSelectBitIdentical(t *testing.T) {
	svc := NewServer(Config{})
	defer svc.Close()

	sessions := batchTestSessions(t, 12)
	want := make([][]int, len(sessions))
	for i, s := range sessions {
		tasks, err := s.selector.Select(s.Posterior(), s.k, s.pc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = tasks
	}

	for rep := 0; rep < 3; rep++ {
		for _, s := range sessions {
			s.mu.Lock()
			s.sel = nil // defeat the cache so every rep recomputes
			s.mu.Unlock()
		}
		var wg sync.WaitGroup
		got := make([][]int, len(sessions))
		errs := make([]error, len(sessions))
		for i, s := range sessions {
			wg.Add(1)
			go func(i int, s *Session) {
				defer wg.Done()
				resp, _, err := svc.coalescedSelect(context.Background(), s, 0)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = resp.Tasks
			}(i, s)
		}
		wg.Wait()
		for i := range sessions {
			if errs[i] != nil {
				t.Fatalf("rep %d session %d: %v", rep, i, errs[i])
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("rep %d session %d: batched select %v != sequential %v",
					rep, i, got[i], want[i])
			}
		}
	}

	if n := svc.metrics.BatchedSelects.Load(); n != int64(3*len(sessions)) {
		t.Fatalf("BatchedSelects = %d, want %d", n, 3*len(sessions))
	}
}

// TestCoalescedSelectSameSession checks concurrent selects against ONE
// session: every caller gets the same batch at the same version, whether
// it computed the sweep itself or was served the cache a concurrent
// request committed.
func TestCoalescedSelectSameSession(t *testing.T) {
	svc := NewServer(Config{})
	defer svc.Close()

	s := batchTestSessions(t, 1)[0]
	want, err := s.selector.Select(s.Posterior(), s.k, s.pc)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	resps := make([]*SelectResponse, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, err := svc.coalescedSelect(context.Background(), s, 0)
			if err != nil {
				t.Error(err)
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	for i, resp := range resps {
		if resp == nil {
			t.Fatalf("caller %d: no response", i)
		}
		if !reflect.DeepEqual(resp.Tasks, want) || resp.Version != 0 {
			t.Fatalf("caller %d: got %v at v%d, want %v at v0", i, resp.Tasks, resp.Version, want)
		}
	}
}

// TestSelectBatcherDispatch hammers the batcher directly: every job's
// result must match a direct sequential Select on the same inputs, and the
// observed batch widths must account for every job exactly once.
func TestSelectBatcherDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sel := core.NewGreedyPrunePre()
	type job struct {
		item core.BatchItem
		want []int
	}
	jobs := make([]job, 32)
	for i := range jobs {
		m := make([]float64, 9)
		for f := range m {
			m[f] = 0.25 + 0.5*rng.Float64()
		}
		j, err := dist.Independent(m)
		if err != nil {
			t.Fatal(err)
		}
		pc := []float64{0.75, 0.85}[i%2]
		k := 2 + i%3
		want, err := sel.Select(j, k, pc)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{item: core.BatchItem{Selector: sel, Joint: j, K: k, Pc: pc}, want: want}
	}

	var widthMu sync.Mutex
	totalWidth := 0
	b := newSelectBatcher(func(w int) {
		widthMu.Lock()
		totalWidth += w
		widthMu.Unlock()
	})

	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := b.do(jobs[i].item)
			if r.Err != nil {
				t.Errorf("job %d: %v", i, r.Err)
				return
			}
			if !reflect.DeepEqual(r.Tasks, jobs[i].want) {
				t.Errorf("job %d: got %v, want %v", i, r.Tasks, jobs[i].want)
			}
		}(i)
	}
	wg.Wait()
	if totalWidth != len(jobs) {
		t.Fatalf("batch widths sum to %d, want %d (every job in exactly one batch)", totalWidth, len(jobs))
	}
}
