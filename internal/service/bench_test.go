package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
)

// benchJoint builds a 12-fact product prior with spread-out marginals —
// 4096 support worlds, the scale of a real per-book instance after fusion.
func benchJoint(b *testing.B) *dist.Joint {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	m := make([]float64, 12)
	for i := range m {
		m[i] = 0.3 + 0.4*rng.Float64()
	}
	j, err := dist.Independent(m)
	if err != nil {
		b.Fatal(err)
	}
	return j
}

// BenchmarkServiceSelect measures the service-layer selection hot path —
// per-session lock, budget clamp, greedy sweep, H(T) — with the
// posterior-version cache defeated, so every iteration pays for a real
// selection. This is the per-request compute cost a saturated daemon sees.
func BenchmarkServiceSelect(b *testing.B) {
	s := newSession("bench", benchJoint(b), core.NewGreedyPrunePre(),
		"Approx+Prune+Pre", 0.8, 3, 1<<30, time.Unix(0, 0))
	now := time.Unix(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.sel = nil // defeat the cache: measure real selections
		if _, _, err := s.Select(context.Background(), now, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSelectCached measures the cache-hit path: what repeated
// polls of the same posterior cost once the batch is computed.
func BenchmarkServiceSelectCached(b *testing.B) {
	s := newSession("bench", benchJoint(b), core.NewGreedyPrunePre(),
		"Approx+Prune+Pre", 0.8, 3, 1<<30, time.Unix(0, 0))
	now := time.Unix(1, 0)
	if _, _, err := s.Select(context.Background(), now, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Select(context.Background(), now, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSelectHTTP measures the full serving stack for a select:
// routing, backpressure gate, JSON encode/decode, and the (cached)
// selection — the end-to-end request throughput ceiling of one session.
func BenchmarkServiceSelectHTTP(b *testing.B) {
	svc := NewServer(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	joint := benchJoint(b)
	body, err := json.Marshal(CreateSessionRequest{
		Joint: func() *WireJoint { w := NewWireJoint(joint); return &w }(),
		Pc:    0.8, K: 3, Budget: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	url := ts.URL + "/v1/sessions/" + info.ID + "/select"
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url, "application/json", nil)
		if err != nil {
			b.Fatal(err)
		}
		var sel SelectResponse
		if err := json.NewDecoder(resp.Body).Decode(&sel); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if len(sel.Tasks) == 0 {
			b.Fatal("empty batch")
		}
	}
}

// BenchmarkServiceMerge measures the scalar conditioning path — the
// fixed-pc Bayesian update every merge on a fixed-model session pays —
// against the same 4096-world posterior the selection benchmarks use.
// Workers are nil, so this is exactly conditionLocked's fast path.
func BenchmarkServiceMerge(b *testing.B) {
	s := newSession("bench", benchJoint(b), core.NewGreedyPrunePre(),
		"Approx+Prune+Pre", 0.8, 3, 1<<30, time.Unix(0, 0))
	tasks := []int{0, 2, 4, 6, 8, 10}
	answers := []bool{true, false, true, true, false, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.conditionLocked(tasks, answers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedMerge measures the weighted conditioning path — the
// per-judgment channel build plus the heterogeneous-likelihood kernel —
// against the same 4096-world posterior the selection benchmarks use.
// Three distinct worker channels defeat the uniform-case delegation, so
// this is the genuinely weighted arithmetic an em/dawid-skene session pays
// on every post-refit merge.
func BenchmarkWeightedMerge(b *testing.B) {
	s := newSession("bench", benchJoint(b), core.NewGreedyPrunePre(),
		"Approx+Prune+Pre", 0.8, 3, 1<<30, time.Unix(0, 0))
	s.workerModel = WorkerModelEM
	s.refits = 1
	s.workerSens = map[string]float64{"w1": 0.91, "w2": 0.78, "w3": 0.64}
	s.workerSpec = map[string]float64{"w1": 0.89, "w2": 0.81, "w3": 0.58}
	tasks := []int{0, 2, 4, 6, 8, 10}
	answers := []bool{true, false, true, true, false, true}
	workers := []string{"w1", "w2", "w3", "w1", "w2", "w3"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.conditionLocked(tasks, answers, workers); err != nil {
			b.Fatal(err)
		}
	}
}
