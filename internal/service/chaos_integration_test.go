package service

import (
	"context"
	"errors"
	"testing"

	"crowdfusion/internal/chaos"
	"crowdfusion/internal/store"
)

// TestInjectedPersistFailureIsAtomic drives the manager through the chaos
// store: an injected append failure (the fsync-died simulation) must
// surface as ErrStore with the merge NOT applied, the client's retry must
// then commit exactly once, and a crash-restart over the same dir must
// replay to the identical posterior — the acknowledged-implies-durable
// contract under injected faults.
func TestInjectedPersistFailureIsAtomic(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := chaos.Wrap(fs)
	m := NewManager(ManagerConfig{Store: cs})

	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	runRounds(t, s, m.Now(), 1)
	beforeInfo := s.Info(m.Now(), false)

	sel, _, err := s.Select(context.Background(), m.Now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	req := &AnswersRequest{
		Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version,
	}
	cs.FailAppends(1)
	if _, err := s.Merge(context.Background(), m.Now(), req); !errors.Is(err, ErrStore) {
		t.Fatalf("merge under injected fault = %v, want ErrStore", err)
	}
	if got := s.Info(m.Now(), false); got.Version != beforeInfo.Version || got.Spent != beforeInfo.Spent {
		t.Fatalf("refused merge mutated state: %+v vs %+v", got, beforeInfo)
	}
	// The fault budget is spent: the retry commits exactly once.
	resp, err := s.Merge(context.Background(), m.Now(), req)
	if err != nil || !resp.Merged {
		t.Fatalf("retry = %+v, %v", resp, err)
	}
	after := fingerprint(s, m.Now())

	// Crash (no Close — nothing flushed) and restart over the same dir.
	m2 := newFileManager(t, dir, ManagerConfig{})
	defer m2.Close()
	restored, err := m2.Get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fingerprint(restored, m2.Now()), after)
}
