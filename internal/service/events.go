package service

// events.go — the session event hub: per-session fan-out of state
// transitions to SSE subscribers.
//
// Design constraints, in order of importance:
//
//   - The merge path can NEVER block on a subscriber. Sessions publish
//     under their own mutex (that is what makes the event order exactly
//     the commit order), so delivery is a bounded non-blocking channel
//     send per subscriber: a subscriber whose buffer is full is dropped
//     and marked (drop-and-mark, surfaced in /metrics), never waited on.
//   - Subscription is gapless. Manager.Subscribe registers the subscriber
//     while holding the session mutex, so no transition can be published
//     between the snapshot the subscriber starts from and its
//     registration.
//   - Feeds are keyed by session ID, not session instance, so the
//     registry survives TTL unload and lazy reload: the reloaded
//     instance's emit hook publishes into the same feed. Ownership moves
//     and deletes terminate feeds explicitly with a final event.
//   - Resume is bounded. Each feed keeps a ring of the last eventRingSize
//     events; a reconnect with Last-Event-ID inside the window replays
//     exactly the missed tail, anything older falls back to a fresh
//     snapshot.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

const (
	// eventRingSize bounds the per-session replay window for
	// Last-Event-ID resume.
	eventRingSize = 256
	// defaultSubscriberBuffer is the per-subscriber channel depth: how
	// far a consumer may fall behind before it is dropped.
	defaultSubscriberBuffer = 64
	// DefaultMaxSubscribers caps concurrent subscribers per session.
	DefaultMaxSubscribers = 32
)

// ErrTooManySubscribers rejects a subscription beyond the per-session cap.
var ErrTooManySubscribers = errors.New("service: too many subscribers for this session")

// subscription is one attached event-stream consumer. The SSE handler
// first drains backlog (snapshot or resume replay), then receives from ch
// until done closes — on terminate (session deleted/expired/redirected),
// on drop (the consumer fell behind), or on hub shutdown. dropped is
// written before done is closed and read only after done is observed
// closed, so the close is its happens-before edge.
type subscription struct {
	feed    *sessionFeed
	hub     *eventHub
	backlog []SessionEvent
	ch      chan SessionEvent
	done    chan struct{}
	closed  bool // guarded by feed.mu
	dropped bool
}

// cancel detaches the subscription; safe to call more than once and
// concurrently with publish/terminate.
func (sub *subscription) cancel() {
	f := sub.feed
	f.mu.Lock()
	if _, ok := f.subs[sub]; ok {
		delete(f.subs, sub)
		sub.hub.subscriberGone()
	}
	if !sub.closed {
		sub.closed = true
		close(sub.done)
	}
	f.mu.Unlock()
}

// sessionFeed is one session's event stream: a monotonic sequence, a
// bounded replay ring, and the attached subscribers.
type sessionFeed struct {
	mu   sync.Mutex
	seq  uint64
	ring []SessionEvent
	subs map[*subscription]struct{}
	// idle is the last publish/subscribe time; subscriber-less feeds idle
	// past the session TTL are pruned by the janitor sweep.
	idle time.Time
}

// eventHub owns every session feed. Lock order: hub.mu before feed.mu;
// callers publishing under a session mutex add s.mu in front, never the
// reverse.
type eventHub struct {
	mu      sync.RWMutex
	feeds   map[string]*sessionFeed
	maxSubs int
	subBuf  int
	// metrics is set once by NewServer before any traffic; nil for bare
	// managers.
	metrics *Metrics
}

func newEventHub(maxSubs int) *eventHub {
	if maxSubs <= 0 {
		maxSubs = DefaultMaxSubscribers
	}
	return &eventHub{
		feeds:   make(map[string]*sessionFeed),
		maxSubs: maxSubs,
		subBuf:  defaultSubscriberBuffer,
	}
}

func (h *eventHub) subscriberGone() {
	if h.metrics != nil {
		h.metrics.SubscribersLive.Add(-1)
	}
}

// publish appends one event to the session's feed and fans it out. A
// session with no feed (nobody ever subscribed) pays one map read and
// returns — transitions are free until someone watches. Called under the
// publishing session's mutex; must never block.
func (h *eventHub) publish(id string, ev SessionEvent, now time.Time) {
	h.mu.RLock()
	f := h.feeds[id]
	h.mu.RUnlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	ev.Seq = f.seq
	f.ring = append(f.ring, ev)
	if len(f.ring) > eventRingSize {
		f.ring = f.ring[len(f.ring)-eventRingSize:]
	}
	f.idle = now
	if h.metrics != nil {
		h.metrics.EventsPublished.Add(1)
	}
	for sub := range f.subs {
		select {
		case sub.ch <- ev:
		default:
			// Drop-and-mark: the subscriber's buffer is full, so it is
			// detached rather than waited on. Its handler sees done close,
			// drains what is buffered, sends a reset event, and ends the
			// stream; the client reconnects with Last-Event-ID and resumes
			// from the ring (or a fresh snapshot).
			sub.dropped = true
			sub.closed = true
			close(sub.done)
			delete(f.subs, sub)
			if h.metrics != nil {
				h.metrics.EventsDropped.Add(1)
				h.metrics.SubscribersDropped.Add(1)
			}
			h.subscriberGone()
		}
	}
	f.mu.Unlock()
}

// subscribe attaches a consumer to the session's feed, creating the feed
// on first use. The caller runs it while holding the session mutex (see
// Manager.Subscribe), which is what makes the snapshot-or-resume backlog
// gapless with respect to concurrent publishes. hasLast distinguishes a
// reconnect (Last-Event-ID supplied) from a fresh subscriber. traceID, when
// non-empty, stamps the opening snapshot event so a watcher can tie its
// stream start to the subscribing request's trace.
func (h *eventHub) subscribe(id string, lastID uint64, hasLast bool, snapshot SessionInfo, traceID string, now time.Time) (*subscription, error) {
	h.mu.Lock()
	f := h.feeds[id]
	if f == nil {
		f = &sessionFeed{subs: make(map[*subscription]struct{}), idle: now}
		h.feeds[id] = f
	}
	h.mu.Unlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.subs) >= h.maxSubs {
		return nil, fmt.Errorf("%w (cap %d)", ErrTooManySubscribers, h.maxSubs)
	}
	sub := &subscription{
		feed: f,
		hub:  h,
		ch:   make(chan SessionEvent, h.subBuf),
		done: make(chan struct{}),
	}
	if hasLast && lastID <= f.seq && f.seq-lastID <= uint64(len(f.ring)) {
		// Resume inside the replay window: exactly the missed tail, no
		// duplicates, no gaps. Empty when the subscriber is caught up.
		missed := f.ring[len(f.ring)-int(f.seq-lastID):]
		sub.backlog = append(sub.backlog, missed...)
	} else {
		// Fresh subscriber, or a resume point outside the window: open
		// with a full snapshot stamped with the current sequence, so the
		// next reconnect resumes from here.
		sub.backlog = append(sub.backlog, SessionEvent{
			Seq:         f.seq,
			Type:        EventSnapshot,
			SessionInfo: snapshot,
			TraceID:     traceID,
		})
	}
	f.subs[sub] = struct{}{}
	f.idle = now
	if h.metrics != nil {
		h.metrics.SubscribersLive.Add(1)
	}
	return sub, nil
}

// terminate removes the session's feed, delivering final (when non-nil)
// to every subscriber before closing them — the deleted/expire/redirect
// goodbye. Best-effort delivery: a subscriber too far behind to take one
// more event just closes.
func (h *eventHub) terminate(id string, final *SessionEvent, now time.Time) {
	h.mu.Lock()
	f := h.feeds[id]
	delete(h.feeds, id)
	h.mu.Unlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	if final != nil && len(f.subs) > 0 {
		f.seq++
		ev := *final
		ev.Seq = f.seq
		for sub := range f.subs {
			select {
			case sub.ch <- ev:
			default:
			}
		}
	}
	f.idle = now
	for sub := range f.subs {
		delete(f.subs, sub)
		if !sub.closed {
			sub.closed = true
			close(sub.done)
		}
		h.subscriberGone()
	}
	f.mu.Unlock()
}

// closeAll detaches every subscriber on every feed — service shutdown.
// Streams end without a terminal event; clients reconnect elsewhere.
func (h *eventHub) closeAll() {
	h.mu.Lock()
	feeds := h.feeds
	h.feeds = make(map[string]*sessionFeed)
	h.mu.Unlock()
	for _, f := range feeds {
		f.mu.Lock()
		for sub := range f.subs {
			delete(f.subs, sub)
			if !sub.closed {
				sub.closed = true
				close(sub.done)
			}
			h.subscriberGone()
		}
		f.mu.Unlock()
	}
}

// prune drops subscriber-less feeds idle since before cutoff, bounding
// hub memory the same way the TTL janitor bounds the resident set. Feeds
// with live subscribers are kept regardless — they survive their
// session's unload by design.
func (h *eventHub) prune(cutoff time.Time) {
	h.mu.Lock()
	for id, f := range h.feeds {
		f.mu.Lock()
		if len(f.subs) == 0 && f.idle.Before(cutoff) {
			delete(h.feeds, id)
		}
		f.mu.Unlock()
	}
	h.mu.Unlock()
}
