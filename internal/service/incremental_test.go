package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// answersFor fabricates a deterministic judgment per task (true for even
// task indices) so incremental and batched twins see identical inputs.
func answersFor(tasks []int) []bool {
	out := make([]bool, len(tasks))
	for i, task := range tasks {
		out[i] = task%2 == 0
	}
	return out
}

// submitOne posts a single-task partial answer in-process.
func submitOne(t *testing.T, s *Session, now time.Time, task int, answer bool, version int) *AnswersResponse {
	t.Helper()
	resp, err := s.Merge(context.Background(), now, &AnswersRequest{
		Tasks: []int{task}, Answers: []bool{answer}, Version: &version, Partial: true,
	})
	if err != nil {
		t.Fatalf("partial answer task %d: %v", task, err)
	}
	return resp
}

// TestPartialSequenceMatchesBatchedMerge is the in-process differential
// test: a session answered one judgment at a time — with a retried prefix
// in the middle — must land on a posterior bit-identical to a twin session
// that merged the same batch at once, with budget spent exactly once.
func TestPartialSequenceMatchesBatchedMerge(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	now := m.Now()

	inc, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	selInc, _, err := inc.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	selBatch, _, err := batch.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(selInc.Tasks, selBatch.Tasks) {
		t.Fatalf("twin sessions selected different batches: %v vs %v", selInc.Tasks, selBatch.Tasks)
	}
	tasks := selInc.Tasks
	if len(tasks) < 2 {
		t.Fatalf("need a multi-task batch, got %v", tasks)
	}
	answers := answersFor(tasks)

	// Incremental: first judgment, then a verbatim retry of it (a client
	// resending after a lost response), then the rest one at a time.
	r := submitOne(t, inc, now, tasks[0], answers[0], 0)
	if r.Merged || !r.Partial {
		t.Fatalf("first partial: merged=%v partial=%v", r.Merged, r.Partial)
	}
	if r.Spent != 0 || r.Version != 0 {
		t.Fatalf("partial moved committed state: spent=%d version=%d", r.Spent, r.Version)
	}
	if r.Pending == nil || len(r.Pending.Answered) != 1 || len(r.Pending.Remaining) != len(tasks)-1 {
		t.Fatalf("pending after first partial: %+v", r.Pending)
	}
	retry := submitOne(t, inc, now, tasks[0], answers[0], 0)
	if retry.Merged || !retry.Partial {
		t.Fatalf("retried prefix: merged=%v partial=%v", retry.Merged, retry.Partial)
	}
	if len(retry.Pending.Answered) != 1 {
		t.Fatalf("retry double-recorded the judgment: %+v", retry.Pending)
	}
	var last *AnswersResponse
	for i := 1; i < len(tasks); i++ {
		last = submitOne(t, inc, now, tasks[i], answers[i], 0)
	}
	if !last.Merged || !last.Partial {
		t.Fatalf("completing judgment should commit: merged=%v partial=%v", last.Merged, last.Partial)
	}
	if last.Pending != nil {
		t.Fatalf("pending survived the commit: %+v", last.Pending)
	}

	// Batched twin.
	ver := 0
	bresp, err := batch.Merge(context.Background(), now, &AnswersRequest{Tasks: tasks, Answers: answers, Version: &ver})
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical, not approximately equal.
	ib, bb := fingerprint(inc, now), fingerprint(batch, now)
	ib.info.ID, bb.info.ID = "", ""
	requireIdentical(t, ib, bb)
	if last.Spent != len(tasks) || bresp.Spent != len(tasks) {
		t.Fatalf("budget spent inc=%d batch=%d, want %d once", last.Spent, bresp.Spent, len(tasks))
	}
	if last.Version != 1 {
		t.Fatalf("commit version %d, want 1", last.Version)
	}

	// A replay of the completing judgment after commit must be the round
	// replay, not a new ledger.
	post := submitOne(t, inc, now, tasks[len(tasks)-1], answers[len(tasks)-1], 0)
	if post.Merged || !post.Partial || post.Spent != len(tasks) {
		t.Fatalf("post-commit replay: %+v", post)
	}
}

// TestPartialValidation covers the new failure modes: no pending batch,
// foreign task, contradictory judgment.
func TestPartialValidation(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	now := m.Now()
	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	ver := 0
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{0}, Answers: []bool{true}, Version: &ver, Partial: true}); !errorsIs(err, ErrNoPendingBatch) {
		t.Fatalf("partial without a selection: %v", err)
	}
	sel, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	outside := -1
	for _, cand := range []int{0, 1, 2, 3} {
		seen := false
		for _, task := range sel.Tasks {
			if task == cand {
				seen = true
			}
		}
		if !seen {
			outside = cand
			break
		}
	}
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{outside}, Answers: []bool{true}, Version: &ver, Partial: true}); !errorsIs(err, ErrNotInBatch) {
		t.Fatalf("foreign task: %v", err)
	}
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{sel.Tasks[0], sel.Tasks[0]}, Answers: []bool{true, false}, Version: &ver, Partial: true}); !errorsIs(err, ErrAnswerConflict) {
		t.Fatalf("contradiction within request: %v", err)
	}
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{sel.Tasks[0]}, Answers: []bool{true}, Version: &ver, Partial: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{sel.Tasks[0]}, Answers: []bool{false}, Version: &ver, Partial: true}); !errorsIs(err, ErrAnswerConflict) {
		t.Fatalf("contradiction with ledger: %v", err)
	}
	// While a ledger is active, select returns the pinned batch.
	again, cached, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || !reflect.DeepEqual(again.Tasks, sel.Tasks) {
		t.Fatalf("select during ledger: cached=%v tasks=%v want %v", cached, again.Tasks, sel.Tasks)
	}
	future := 5
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{sel.Tasks[0]}, Answers: []bool{true}, Version: &future, Partial: true}); !errorsIs(err, ErrVersionConflict) {
		t.Fatalf("future version: %v", err)
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// TestPartialSequenceSurvivesCrashMidLedger drives the differential test
// across a simulated SIGKILL: judgments land one at a time, the process
// dies with the ledger half full (nothing flushed — the manager is
// abandoned, not closed), and a fresh manager over the same directory must
// replay to the same provisional state, accept the remaining judgments,
// and commit bit-identically to a batched twin.
func TestPartialSequenceSurvivesCrashMidLedger(t *testing.T) {
	dir := t.TempDir()
	m1 := newFileManager(t, dir, ManagerConfig{})
	now := m1.Now()
	s1, err := m1.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	id := s1.ID()
	sel, _, err := s1.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	tasks := sel.Tasks
	answers := answersFor(tasks)
	half := len(tasks) / 2
	if half == 0 {
		half = 1
	}
	for i := 0; i < half; i++ {
		submitOne(t, s1, now, tasks[i], answers[i], 0)
	}
	mid := fingerprint(s1, now)
	// SIGKILL analogue: abandon m1 without Close. Acknowledged partials
	// were fsynced before their responses, so nothing else may be needed.

	m2 := newFileManager(t, dir, ManagerConfig{})
	defer m2.Close()
	s2, err := m2.Get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fingerprint(s2, m2.Now()), mid)
	info := s2.Info(m2.Now(), false)
	if info.Pending == nil || len(info.Pending.Answered) != half {
		t.Fatalf("recovered pending %+v, want %d answered", info.Pending, half)
	}
	// Retry an already-journaled judgment across the crash, then finish.
	submitOne(t, s2, m2.Now(), tasks[0], answers[0], 0)
	var last *AnswersResponse
	for i := half; i < len(tasks); i++ {
		last = submitOne(t, s2, m2.Now(), tasks[i], answers[i], 0)
	}
	if !last.Merged {
		t.Fatalf("completing judgment after recovery did not commit: %+v", last)
	}
	if last.Spent != len(tasks) {
		t.Fatalf("budget after crash-recovery commit: %d, want %d", last.Spent, len(tasks))
	}

	// Batched twin in a separate directory.
	m3 := newFileManager(t, t.TempDir(), ManagerConfig{})
	defer m3.Close()
	s3, err := m3.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	sel3, _, err := s3.Select(context.Background(), m3.Now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel3.Tasks, tasks) {
		t.Fatalf("twin selected %v, want %v", sel3.Tasks, tasks)
	}
	ver := 0
	if _, err := s3.Merge(context.Background(), m3.Now(), &AnswersRequest{Tasks: tasks, Answers: answers, Version: &ver}); err != nil {
		t.Fatal(err)
	}
	got, want := fingerprint(s2, now), fingerprint(s3, now)
	got.info.ID, want.info.ID = "", ""
	requireIdentical(t, got, want)

	// And the committed state must itself survive another restart.
	m4 := newFileManager(t, dir, ManagerConfig{})
	defer m4.Close()
	s4, err := m4.Get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	got4 := fingerprint(s4, now)
	got4.info.ID = ""
	requireIdentical(t, got4, want)
}

// TestPartialSequenceOverHTTP runs the differential flow through the full
// handler stack: partials with a retried prefix over HTTP must match a
// batched twin bit-for-bit (JSON round-trips float64 exactly).
func TestPartialSequenceOverHTTP(t *testing.T) {
	svc, ts := newTestServer(t, Config{})

	var inc, batch SessionInfo
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &inc); s != http.StatusCreated {
		t.Fatalf("create status %d", s)
	}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &batch); s != http.StatusCreated {
		t.Fatalf("create status %d", s)
	}
	var selInc, selBatch SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+inc.ID+"/select", nil, &selInc)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+batch.ID+"/select", nil, &selBatch)
	if !reflect.DeepEqual(selInc.Tasks, selBatch.Tasks) {
		t.Fatalf("twins selected %v vs %v", selInc.Tasks, selBatch.Tasks)
	}
	tasks := selInc.Tasks
	answers := answersFor(tasks)
	ver := 0

	post := func(id string, req AnswersRequest) (AnswersResponse, int) {
		var resp AnswersResponse
		status := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+id+"/answers", &req, &resp)
		return resp, status
	}
	single := func(i int) AnswersRequest {
		return AnswersRequest{Tasks: []int{tasks[i]}, Answers: []bool{answers[i]}, Version: &ver, Partial: true}
	}
	if resp, status := post(inc.ID, single(0)); status != http.StatusOK || resp.Merged || !resp.Partial {
		t.Fatalf("first partial: status %d resp %+v", status, resp)
	}
	if resp, status := post(inc.ID, single(0)); status != http.StatusOK || resp.Merged || len(resp.Pending.Answered) != 1 {
		t.Fatalf("retried prefix: status %d resp %+v", status, resp)
	}
	var last AnswersResponse
	for i := 1; i < len(tasks); i++ {
		var status int
		if last, status = post(inc.ID, single(i)); status != http.StatusOK {
			t.Fatalf("partial %d status %d", i, status)
		}
	}
	if !last.Merged || last.Spent != len(tasks) || last.Version != 1 {
		t.Fatalf("commit over HTTP: %+v", last)
	}
	bresp, status := post(batch.ID, AnswersRequest{Tasks: tasks, Answers: answers, Version: &ver})
	if status != http.StatusOK || !bresp.Merged {
		t.Fatalf("batched merge: status %d resp %+v", status, bresp)
	}
	if !reflect.DeepEqual(last.Marginals, bresp.Marginals) || last.Entropy != bresp.Entropy ||
		last.SupportSize != bresp.SupportSize || last.Spent != bresp.Spent {
		t.Fatalf("incremental and batched posteriors diverged over HTTP:\n inc  %+v\n batch %+v", last.SessionInfo, bresp.SessionInfo)
	}
	// One commit, len(tasks) accepted partials (retry replays don't count).
	if got := svc.Metrics().MergesApplied.Load(); got != 2 {
		t.Fatalf("merges applied %d, want 2", got)
	}
	if got := svc.Metrics().PartialAnswers.Load(); got != int64(len(tasks)+1) {
		t.Fatalf("partial answers %d, want %d", got, len(tasks)+1)
	}
}

// sseConn is a hand-rolled SSE consumer over the httptest server.
type sseConn struct {
	resp   *http.Response
	rd     *bufio.Reader
	cancel context.CancelFunc
}

func dialSSE(t *testing.T, url, lastID string) *sseConn {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	return &sseConn{resp: resp, rd: bufio.NewReader(resp.Body), cancel: cancel}
}

func (c *sseConn) close() {
	c.cancel()
	c.resp.Body.Close()
}

type sseFrame struct {
	id    string
	event string
	data  string
}

// next reads one SSE frame, skipping keepalive comments.
func (c *sseConn) next(t *testing.T) sseFrame {
	t.Helper()
	deadline := time.After(5 * time.Second)
	frames := make(chan any, 1)
	go func() {
		var f sseFrame
		for {
			line, err := c.rd.ReadString('\n')
			if err != nil {
				frames <- err
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if f.event == "" && f.data == "" {
					continue
				}
				frames <- f
				return
			case strings.HasPrefix(line, ":"):
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data += strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	select {
	case v := <-frames:
		if err, ok := v.(error); ok {
			t.Fatalf("reading event stream: %v", err)
		}
		return v.(sseFrame)
	case <-deadline:
		t.Fatal("timed out waiting for an event frame")
	}
	panic("unreachable")
}

// TestEventStreamDeliversEveryTransitionInOrder subscribes before any
// activity and asserts the stream carries snapshot → select → partial* →
// merge → … → done, each exactly once, with contiguous sequence numbers.
func TestEventStreamDeliversEveryTransitionInOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)

	conn := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "")
	defer conn.close()
	snap := conn.next(t)
	if snap.event != EventSnapshot {
		t.Fatalf("first frame %q, want snapshot", snap.event)
	}

	ver := 0
	var sel SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
	tasks := sel.Tasks
	answers := answersFor(tasks)
	for i := range tasks {
		var resp AnswersResponse
		req := AnswersRequest{Tasks: []int{tasks[i]}, Answers: []bool{answers[i]}, Version: &ver, Partial: true}
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers", &req, &resp)
	}

	want := []string{EventSelect}
	for i := 0; i < len(tasks)-1; i++ {
		want = append(want, EventPartial)
	}
	want = append(want, EventMerge)
	lastSeq := uint64(0)
	for i, wantType := range want {
		f := conn.next(t)
		if f.event != wantType {
			t.Fatalf("frame %d: event %q, want %q", i, f.event, wantType)
		}
		var seq uint64
		if _, err := fmt.Sscanf(f.id, "%d", &seq); err != nil {
			t.Fatalf("frame %d id %q: %v", i, f.id, err)
		}
		if seq != lastSeq+1 {
			t.Fatalf("frame %d: seq %d after %d — gap or duplicate", i, seq, lastSeq)
		}
		lastSeq = seq
		var ev SessionEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data %q: %v", i, f.data, err)
		}
		switch wantType {
		case EventSelect:
			if !reflect.DeepEqual(ev.Tasks, tasks) || ev.Version != 0 {
				t.Fatalf("select event %+v, want tasks %v", ev, tasks)
			}
		case EventPartial:
			if ev.Version != 0 || ev.Pending == nil {
				t.Fatalf("partial event carries no pending state: %+v", ev)
			}
		case EventMerge:
			if ev.Version != 1 || ev.Spent != len(tasks) || ev.Pending != nil {
				t.Fatalf("merge event %+v, want version 1 spent %d", ev, len(tasks))
			}
		}
	}
}

// TestEventStreamResumesWithLastEventID kills a subscriber mid-round,
// advances the session, reconnects with Last-Event-ID, and requires
// exactly the missed transitions — no duplicates, no gaps.
func TestEventStreamResumesWithLastEventID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)

	conn := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "")
	if f := conn.next(t); f.event != EventSnapshot {
		t.Fatalf("first frame %q", f.event)
	}
	ver := 0
	var sel SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
	tasks := sel.Tasks
	answers := answersFor(tasks)
	selFrame := conn.next(t)
	if selFrame.event != EventSelect {
		t.Fatalf("frame %q, want select", selFrame.event)
	}
	// Kill the stream, then advance the session while nobody watches.
	conn.close()
	for i := range tasks {
		var resp AnswersResponse
		req := AnswersRequest{Tasks: []int{tasks[i]}, Answers: []bool{answers[i]}, Version: &ver, Partial: true}
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers", &req, &resp)
	}

	// Reconnect from the select frame: expect the partials and the merge,
	// nothing else, in order.
	conn2 := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", selFrame.id)
	defer conn2.close()
	want := make([]string, 0, len(tasks))
	for i := 0; i < len(tasks)-1; i++ {
		want = append(want, EventPartial)
	}
	want = append(want, EventMerge)
	var prev uint64
	fmt.Sscanf(selFrame.id, "%d", &prev)
	for i, wantType := range want {
		f := conn2.next(t)
		if f.event != wantType {
			t.Fatalf("resumed frame %d: %q, want %q", i, f.event, wantType)
		}
		var seq uint64
		fmt.Sscanf(f.id, "%d", &seq)
		if seq != prev+1 {
			t.Fatalf("resumed frame %d: seq %d after %d", i, seq, prev)
		}
		prev = seq
	}

	// A resume point outside the ring (or unknown) degrades to a snapshot.
	conn3 := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "999999")
	defer conn3.close()
	if f := conn3.next(t); f.event != EventSnapshot {
		t.Fatalf("out-of-window resume opened with %q, want snapshot", f.event)
	}
}

// smallBufListener shrinks each accepted connection's kernel send buffer
// so a stalled reader back-pressures the SSE handler after a few KB
// instead of a few MB.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(512)
	}
	return c, nil
}

// TestSlowSubscriberIsDroppedNotWaitedOn wedges a subscriber (tiny socket
// buffers on both ends, reader stalled after the snapshot) while a
// long-budget session streams hundreds of transitions, and requires
// (a) merges keep acking promptly, (b) the subscriber is dropped and the
// drop is visible in metrics, (c) the stream ends with a reset frame once
// the reader resumes.
func TestSlowSubscriberIsDroppedNotWaitedOn(t *testing.T) {
	svc := NewServer(Config{})
	ts := httptest.NewUnstartedServer(svc.Handler())
	ts.Listener = smallBufListener{ts.Listener}
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	svc.Manager().events.subBuf = 2

	// One fact stays maximally uncertain when its answers flip-flop, so a
	// k=1 big-budget session yields ~2 events per round indefinitely.
	var info SessionInfo
	create := &CreateSessionRequest{Marginals: []float64{0.5, 0.6, 0.55, 0.52}, Pc: 0.8, K: 1, Budget: 400}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", create, &info); s != http.StatusCreated {
		t.Fatalf("create status %d", s)
	}

	// Raw TCP subscriber with a tiny receive buffer that stops reading
	// after the headers: in-flight capacity is a few KB total.
	raw, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(512)
	}
	fmt.Fprintf(raw, "GET /v1/sessions/%s/events HTTP/1.1\r\nHost: test\r\nAccept: text/event-stream\r\n\r\n", info.ID)
	br := bufio.NewReaderSize(raw, 256)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	// Stall: no reads from resp.Body until after the drop.

	ver := 0
	dropped := false
	for round := 0; round < 200 && !dropped; round++ {
		var sel SelectResponse
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
		if sel.Done || len(sel.Tasks) == 0 {
			break
		}
		answers := make([]bool, len(sel.Tasks))
		for i := range answers {
			answers[i] = round%2 == 0 // flip-flop keeps entropy high
		}
		var mresp AnswersResponse
		req := AnswersRequest{Tasks: sel.Tasks, Answers: answers, Version: &ver}
		start := time.Now()
		if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers", &req, &mresp); s != http.StatusOK {
			t.Fatalf("round %d merge status %d", round, s)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("merge ack took %v with a wedged subscriber", d)
		}
		ver = mresp.Version
		dropped = svc.Metrics().SubscribersDropped.Load() > 0
	}
	if !dropped {
		t.Fatal("wedged subscriber was never dropped")
	}
	if svc.Metrics().EventsDropped.Load() == 0 {
		t.Fatal("drop left no event-loss mark in metrics")
	}
	// Resume reading: buffered frames drain, then the reset goodbye, then
	// the stream ends.
	sse := &sseConn{resp: resp, rd: bufio.NewReader(resp.Body), cancel: func() { raw.Close() }}
	for {
		f := sse.next(t)
		if f.event == EventReset {
			break
		}
	}
}

// TestConcurrentPartialsAndSubscribers races single-judgment submitters
// against churning subscribers under -race: every round's judgments arrive
// concurrently from separate goroutines while watchers attach and drain.
func TestConcurrentPartialsAndSubscribers(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)

	stop := make(chan struct{})
	var watchers sync.WaitGroup
	for w := 0; w < 4; w++ {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := svc.Manager().Subscribe(context.Background(), info.ID, 0, false)
				if err != nil {
					continue
				}
				for drained := false; !drained; {
					select {
					case <-sub.ch:
					case <-sub.done:
						drained = true
					case <-stop:
						drained = true
					case <-time.After(20 * time.Millisecond):
						drained = true
					}
				}
				sub.cancel()
			}
		}()
	}

	ver := 0
	for round := 0; round < 6; round++ {
		var sel SelectResponse
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
		if sel.Done || len(sel.Tasks) == 0 {
			break
		}
		answers := answersFor(sel.Tasks)
		var wg sync.WaitGroup
		for i := range sel.Tasks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v := ver
				req := AnswersRequest{Tasks: []int{sel.Tasks[i]}, Answers: []bool{answers[i]}, Version: &v, Partial: true}
				var resp AnswersResponse
				doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers", &req, &resp)
			}(i)
		}
		wg.Wait()
		var after SessionInfo
		doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, &after)
		if after.Version != ver+1 {
			t.Fatalf("round %d: version %d after all judgments, want %d", round, after.Version, ver+1)
		}
		if after.Pending != nil {
			t.Fatalf("round %d left a dangling ledger: %+v", round, after.Pending)
		}
		ver = after.Version
	}
	close(stop)
	watchers.Wait()
}

// TestErrorEnvelopeOn404And405 checks the uniform machine-readable error
// envelope on routing misses.
func TestErrorEnvelopeOn404And405(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var er ErrorResponse
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/nope", nil, &er); s != http.StatusNotFound {
		t.Fatalf("unknown route status %d", s)
	}
	if er.Code != CodeNotFound || er.Error == "" {
		t.Fatalf("404 envelope %+v", er)
	}

	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/sessions/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT session status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") || !strings.Contains(allow, "DELETE") {
		t.Fatalf("405 Allow %q", allow)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("405 content type %q", ct)
	}
	er = ErrorResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Code != CodeMethodNotAllowed {
		t.Fatalf("405 envelope %+v (%v)", er, err)
	}

	// The events path bypasses the timeout handler for GET; other methods
	// must still get a JSON 405 naming GET.
	er = ErrorResponse{}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/events", nil, &er); s != http.StatusMethodNotAllowed {
		t.Fatalf("POST events status %d", s)
	}
	if er.Code != CodeMethodNotAllowed {
		t.Fatalf("POST events envelope %+v", er)
	}
}

// TestListSessionsEndpoint covers pagination order, the cursor, and limit
// validation.
func TestListSessionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		var info SessionInfo
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
		ids = append(ids, info.ID)
	}
	var page ListSessionsResponse
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions?limit=3", nil, &page); s != http.StatusOK {
		t.Fatalf("list status %d", s)
	}
	if len(page.Sessions) != 3 || page.NextAfter == "" {
		t.Fatalf("first page %+v", page)
	}
	for i := 1; i < len(page.Sessions); i++ {
		if page.Sessions[i].ID <= page.Sessions[i-1].ID {
			t.Fatalf("listing not ID-sorted: %+v", page.Sessions)
		}
	}
	var rest ListSessionsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions?limit=3&after="+page.NextAfter, nil, &rest)
	if len(rest.Sessions) != 2 || rest.NextAfter != "" {
		t.Fatalf("second page %+v", rest)
	}
	seen := map[string]bool{}
	for _, row := range append(page.Sessions, rest.Sessions...) {
		if seen[row.ID] {
			t.Fatalf("duplicate row %s across pages", row.ID)
		}
		seen[row.ID] = true
		if row.Budget != 6 || row.Done {
			t.Fatalf("summary %+v", row)
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("session %s missing from listing", id)
		}
	}
	var er ErrorResponse
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions?limit=0", nil, &er); s != http.StatusBadRequest {
		t.Fatalf("limit=0 status %d", s)
	}
}

// TestStreamsEndOnStopStreams covers the daemon's shutdown path: an open
// stream must end promptly when StopStreams fires, and new subscribers are
// refused.
func TestStreamsEndOnStopStreams(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	conn := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "")
	defer conn.close()
	if f := conn.next(t); f.event != EventSnapshot {
		t.Fatalf("first frame %q", f.event)
	}
	done := make(chan struct{})
	go func() {
		// The stream must end (EOF) rather than hang.
		for {
			if _, err := conn.rd.ReadByte(); err != nil {
				close(done)
				return
			}
		}
	}()
	svc.StopStreams()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after StopStreams")
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("subscribe after StopStreams: %d", resp.StatusCode)
	}
}

// TestDeleteTerminatesStreamWithGoodbye: deleting a watched session must
// push a final deleted event before the stream closes.
func TestDeleteTerminatesStreamWithGoodbye(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	conn := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "")
	defer conn.close()
	if f := conn.next(t); f.event != EventSnapshot {
		t.Fatalf("first frame %q", f.event)
	}
	if s := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil, nil); s != http.StatusNoContent {
		t.Fatalf("delete status %d", s)
	}
	if f := conn.next(t); f.event != EventDeleted {
		t.Fatalf("goodbye frame %q, want deleted", f.event)
	}
}

// TestSubscriberCap: the per-session subscriber cap answers 429 with the
// too_many_subscribers code.
func TestSubscriberCap(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxSubscribers: 2})
	_ = svc
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	a := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "")
	defer a.close()
	b := dialSSE(t, ts.URL+"/v1/sessions/"+info.ID+"/events", "")
	defer b.close()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third subscriber status %d, want 429", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Code != CodeTooManySubscribers {
		t.Fatalf("cap envelope %+v (%v)", er, err)
	}
}
