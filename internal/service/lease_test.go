package service

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"crowdfusion/internal/store"
)

// newFakeClock builds the shared test clock (fakeClock lives in
// manager_test.go) at a fixed epoch, shared between managers simulating
// nodes with a common view of time.
func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(9000, 0).UTC()} }

// leaseRing is an Ownership stub with a liveness view, standing in for
// cluster.Ring in the steal-policy tests: this node owns everything, and
// alive says which peers it can still see.
type leaseRing struct {
	self  string
	mu    sync.Mutex
	alive map[string]bool
}

func (o *leaseRing) Owns(string) bool    { return true }
func (o *leaseRing) Owner(string) string { return o.self }

func (o *leaseRing) PeerAlive(addr string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.alive[addr]
}

func (o *leaseRing) setAlive(addr string, up bool) {
	o.mu.Lock()
	o.alive[addr] = up
	o.mu.Unlock()
}

// TestLeaseFencesDualWriter is the tentpole scenario at the manager level:
// node B adopts a session from a node A it believes dead (stealing the
// lease at a higher epoch), and A — still running, merely partitioned —
// has its in-flight merge refused with FencedError instead of forking the
// history. The adopted state is bit-identical, and A converges to a
// redirect.
func TestLeaseFencesDualWriter(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	const selfA, selfB = "http://a:1", "http://b:2"

	ringA := &leaseRing{self: selfA, alive: map[string]bool{selfB: true}}
	mA := newFileManager(t, dir, ManagerConfig{
		Ownership: ringA,
		Self:      selfA,
		LeaseTTL:  time.Minute,
		// A huge heartbeat keeps the background loop out of the test;
		// renewal is driven explicitly.
		LeaseRenew: time.Hour,
		now:        clk.now,
	})
	defer mA.Close()

	sA, err := mA.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	id := sA.ID()
	runRounds(t, sA, clk.now(), 1)
	before := fingerprint(sA, clk.now())
	if mA.LeasesHeld() != 1 {
		t.Fatalf("A holds %d leases, want 1", mA.LeasesHeld())
	}

	// B cannot see A (netsplit view) and the ring has re-homed the
	// session to B: adoption steals the unexpired lease at a higher epoch.
	ringB := &leaseRing{self: selfB, alive: map[string]bool{selfA: false}}
	mB := newFileManager(t, dir, ManagerConfig{
		Ownership:  ringB,
		Self:       selfB,
		LeaseTTL:   time.Minute,
		LeaseRenew: time.Hour,
		now:        clk.now,
	})
	defer mB.Close()

	sB, err := mB.Get(context.Background(), id)
	if err != nil {
		t.Fatalf("B adoption: %v", err)
	}
	requireIdentical(t, fingerprint(sB, clk.now()), before)
	lease, err := mB.Store().GetLease(id)
	if err != nil || lease == nil {
		t.Fatalf("lease after steal: %v %v", lease, err)
	}
	if lease.Owner != selfB || lease.Epoch != 2 {
		t.Fatalf("lease after steal: %+v", lease)
	}

	// A's revived in-flight merge — the dual-writer moment — must be
	// refused fenced, with the envelope pointing at B.
	sel, _, err := sA.Select(context.Background(), clk.now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sA.Merge(context.Background(), clk.now(), &AnswersRequest{
		Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version,
	})
	var fenced *FencedError
	if !errors.As(err, &fenced) {
		t.Fatalf("deposed merge = %v, want FencedError", err)
	}
	if fenced.Owner != selfB {
		t.Fatalf("fenced owner = %q, want %q", fenced.Owner, selfB)
	}

	// B's history is untouched by the refused write, and B keeps serving.
	requireIdentical(t, fingerprint(sB, clk.now()), before)
	runRounds(t, sB, clk.now(), 1)

	// A's next heartbeat notices the deposition and retires the instance;
	// re-resolving on A bounces to B because A can still see B alive.
	if _, lost := mA.RenewHeldLeases(clk.now()); lost != 1 {
		t.Fatalf("A renewal lost %d leases, want 1", lost)
	}
	if mA.Len() != 0 || mA.LeasesHeld() != 0 {
		t.Fatalf("A still resident after deposition: len=%d held=%d", mA.Len(), mA.LeasesHeld())
	}
	_, err = mA.Get(context.Background(), id)
	if !errors.As(err, &fenced) || fenced.Owner != selfB {
		t.Fatalf("A re-resolve = %v, want FencedError{Owner: b}", err)
	}

	// Once A also sees B dead (B really gone, not just partitioned), A may
	// steal back — at a yet higher epoch, so B's stranded writes fence too.
	ringA.setAlive(selfB, false)
	sA2, err := mA.Get(context.Background(), id)
	if err != nil {
		t.Fatalf("A steal-back: %v", err)
	}
	if sA2.leaseEpoch != 3 {
		t.Fatalf("steal-back epoch = %d, want 3", sA2.leaseEpoch)
	}
}

// TestLeaseExpiryAllowsTakeoverWithoutSteal: a holder that stops renewing
// (crashed, or its clock runs slow) is adopted after TTL by plain
// acquisition — and its stale writes still fence.
func TestLeaseExpiryAllowsTakeoverWithoutSteal(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	mA := newFileManager(t, dir, ManagerConfig{
		Self: "http://a:1", LeaseTTL: time.Minute, LeaseRenew: time.Hour, now: clk.now,
	})
	defer mA.Close()
	sA, err := mA.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	id := sA.ID()

	// B considers A alive — so it would NOT steal — but the lease has
	// expired: takeover needs no steal and no liveness opinion.
	clk.advance(2 * time.Minute)
	ringB := &leaseRing{self: "http://b:2", alive: map[string]bool{"http://a:1": true}}
	mB := newFileManager(t, dir, ManagerConfig{
		Ownership: ringB, Self: "http://b:2", LeaseTTL: time.Minute, LeaseRenew: time.Hour, now: clk.now,
	})
	defer mB.Close()
	if _, err := mB.Get(context.Background(), id); err != nil {
		t.Fatalf("adoption after expiry: %v", err)
	}

	sel, _, err := sA.Select(context.Background(), clk.now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sA.Merge(context.Background(), clk.now(), &AnswersRequest{
		Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version,
	})
	var fenced *FencedError
	if !errors.As(err, &fenced) {
		t.Fatalf("expired holder's merge = %v, want FencedError", err)
	}
}

// TestServerFencedEnvelope covers the wire mapping: a fenced write surfaces
// as HTTP 421 with code "fenced" and the lease holder's address in the
// envelope, bumps the fenced metric, and retires the local instance.
func TestServerFencedEnvelope(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{
		Store: fs, LeaseTTL: time.Minute, LeaseRenew: time.Hour, TTL: -1,
	})

	var info SessionInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", testCreateReq(), &info); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	var sel SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel); code != http.StatusOK {
		t.Fatalf("select: HTTP %d", code)
	}

	// Another process steals the lease out from under the server.
	fs2, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, err := fs2.StealLease(info.ID, "http://other:9", time.Minute, time.Now()); err != nil {
		t.Fatal(err)
	}

	var errResp ErrorResponse
	code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/answers", &AnswersRequest{
		Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version,
	}, &errResp)
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("fenced merge: HTTP %d (%+v)", code, errResp)
	}
	if errResp.Code != CodeFenced || errResp.Owner != "http://other:9" {
		t.Fatalf("fenced envelope: %+v", errResp)
	}
	if got := svc.Metrics().FencedWritesRefused.Load(); got < 1 {
		t.Fatalf("fenced_writes_refused = %d, want >= 1", got)
	}
	// The stale instance was retired, not left serving from memory.
	if svc.Manager().Len() != 0 {
		t.Fatalf("fenced session still resident: %d", svc.Manager().Len())
	}
}

// TestLeaseRenewalRacesEvictionAndPartials exercises the lease bookkeeping
// under -race: heartbeat renewals, TTL sweeps (unload + lazy reload), and
// concurrent partial answers all hammer one session. The assertions are
// weak on purpose — the race detector and the absence of deadlock are the
// test.
func TestLeaseRenewalRacesEvictionAndPartials(t *testing.T) {
	m := newFileManager(t, t.TempDir(), ManagerConfig{
		TTL: 50 * time.Millisecond, Self: "http://self:1",
		LeaseTTL: time.Minute, LeaseRenew: time.Hour,
	})
	defer m.Close()
	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	hammer(func() { m.RenewHeldLeases(m.Now()) })
	// Sweeping far in the future evicts (unloads) whatever is resident;
	// the workers' next touch reloads it and re-acquires the lease.
	hammer(func() { m.Sweep(m.Now().Add(time.Hour)) })
	for range 3 {
		hammer(func() {
			sess, err := m.Get(context.Background(), id)
			if err != nil {
				return
			}
			sel, _, err := sess.Select(context.Background(), m.Now(), 0)
			if err != nil || len(sel.Tasks) == 0 {
				return
			}
			// Submit the batch one judgment at a time: partial journaling
			// races the renewal and the sweep on the store.
			for i, task := range sel.Tasks {
				_, _ = sess.Merge(context.Background(), m.Now(), &AnswersRequest{
					Tasks: []int{task}, Answers: []bool{i%2 == 0},
					Version: &sel.Version, Partial: true,
				})
			}
		})
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The session must still be adoptable and internally consistent.
	if _, err := m.Get(context.Background(), id); err != nil {
		t.Fatalf("session unusable after hammering: %v", err)
	}
	if held := m.LeasesHeld(); held != 1 {
		t.Fatalf("leases held = %d, want 1", held)
	}
}
