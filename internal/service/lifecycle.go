package service

// lifecycle.go is the residency core of the Manager: which sessions are
// live in this process, how they get in (single-flight lazy loads from the
// store), and how they get out (TTL eviction, relinquishment to a new
// owner). manager.go layers the public API and the ownership gate on top;
// this file owns every transition of the resident set.
//
// The file exists because residency transitions all share one delicate
// invariant: the store side effect (flush or delete) and the map removal
// must happen in ONE shard-lock critical section, or a concurrent lazy
// load slips into the gap, publishes a second live instance, and the two
// instances fork the session's history. Eviction, deletion, and
// relinquishment are the same dance with different store side effects —
// keeping them side by side keeps them honest.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crowdfusion/internal/store"
	"crowdfusion/internal/trace"
)

// sessionShards is the number of mutex stripes in the resident set.
// Requests for different sessions contend only within their stripe, so the
// manager itself never serializes the (already per-session serialized) hot
// path. Power of two so shard selection is a mask.
const sessionShards = 16

// shard is one stripe: a mutex, its slice of the session map, and the
// in-flight lazy loads (single-flight: concurrent Gets for one unloaded
// session share one store read + replay).
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	loading  map[string]*loadOp
}

// loadOp is one in-flight lazy load. done is closed when the load settles;
// s/err hold the outcome. deleted is set (under the shard mutex) by a
// concurrent Delete so the loader discards its result instead of
// resurrecting a session whose record was just removed.
type loadOp struct {
	done    chan struct{}
	s       *Session
	err     error
	deleted bool
}

// tombstoneTTLs is how many TTL periods an expiry tombstone outlives its
// session, bounding tombstone memory in long-lived daemons.
const tombstoneTTLs = 8

// shardFor picks the stripe for an ID by FNV-1a of its bytes.
func (m *Manager) shardFor(id string) *shard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &m.shards[h&(sessionShards-1)]
}

func (m *Manager) janitor(interval time.Duration) {
	defer close(m.janitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.Sweep(m.cfg.now())
		}
	}
}

// Sweep evicts every session idle since before now-TTL and returns how
// many were evicted. Over a durable store eviction is an unload: the
// session is flushed (final access time, done latch — its merges are
// already durable) and drops out of memory, to be reloaded lazily on the
// next touch. Over a volatile store it is a true expiry: the record is
// deleted and a tombstone makes later requests fail with ErrExpired
// instead of a generic not-found. Exposed for tests and for deployments
// that prefer an external eviction cadence.
func (m *Manager) Sweep(now time.Time) int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.TTL)
	durable := m.store.Durable()
	evicted := 0
	for i := range m.shards {
		sh := &m.shards[i]
		// Collect candidates under the read lock, then re-check under
		// the write lock so a session touched in between survives.
		sh.mu.RLock()
		var stale []string
		for id, s := range sh.sessions {
			if s.idleSince().Before(cutoff) {
				stale = append(stale, id)
			}
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		// The store side effect (flush or delete) MUST happen before the
		// session leaves the map, under the shard write lock. Otherwise a
		// lazy reload could slip into the gap, publish a second live
		// instance, and acknowledge merges that the victim's stale flush
		// would then truncate out of the log (or whose record the volatile
		// delete would pull out from under it).
		sh.mu.Lock()
		for _, id := range stale {
			s, ok := sh.sessions[id]
			if !ok || !s.idleSince().Before(cutoff) {
				continue
			}
			if durable {
				// Flush and retire in one critical section: no merge can
				// land on this instance after the snapshot it flushed, so
				// a handler still holding the pointer is bounced to the
				// manager (and the reloaded successor) instead of
				// committing to an orphan.
				if err := s.retireAndFlush(m.store); err != nil {
					// The merges themselves are already in the op log;
					// only the final access time is at risk.
					m.log.Error("eviction flush failed", "session", id, "err", err)
				}
			} else {
				info := s.Info(now, false)
				s.retire()
				if _, err := m.store.Delete(id); err != nil {
					m.log.Error("eviction delete failed", "session", id, "err", err)
				}
				m.tombMu.Lock()
				m.tombs[id] = now
				m.tombMu.Unlock()
				m.log.Info("session expired after idle TTL", "session", id,
					"ttl", m.cfg.TTL, "version", info.Version,
					"spent", info.Spent, "budget", info.Budget)
				// Volatile expiry is terminal: say goodbye to watchers.
				m.events.terminate(id, &SessionEvent{
					Type:        EventExpire,
					SessionInfo: SessionInfo{ID: id},
				}, now)
			}
			delete(sh.sessions, id)
			// An evicted session's lease goes with it: release (keeping
			// the epoch as the fence) so a future owner adopts without
			// waiting out the TTL. On the volatile path the store delete
			// already removed the lease record; releaseLease then only
			// clears the bookkeeping entry.
			m.releaseLease(id)
			evicted++
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		m.countMu.Lock()
		m.count -= evicted
		m.countMu.Unlock()
		if durable {
			m.log.Info("unloaded idle sessions to the store", "count", evicted)
		}
		if m.evicted != nil {
			m.evicted(evicted, !durable)
		}
	}
	m.pruneTombs(now)
	// Subscriber-less feeds idle past the TTL go too; feeds with live
	// subscribers survive their session's unload by design (the reloaded
	// instance publishes into the same feed).
	m.events.prune(cutoff)
	return evicted
}

// pruneTombs drops expiry tombstones older than tombstoneTTLs idle
// lifetimes: after that horizon an expired session answers 404 like any
// unknown ID, which bounds tombstone memory.
func (m *Manager) pruneTombs(now time.Time) {
	horizon := now.Add(-time.Duration(tombstoneTTLs) * m.cfg.TTL)
	m.tombMu.Lock()
	for id, t := range m.tombs {
		if t.Before(horizon) {
			delete(m.tombs, id)
		}
	}
	m.tombMu.Unlock()
}

// wasExpired reports whether the janitor dropped this session from a
// volatile store recently enough that its tombstone survives.
func (m *Manager) wasExpired(id string) bool {
	m.tombMu.Lock()
	_, ok := m.tombs[id]
	m.tombMu.Unlock()
	return ok
}

// relinquish hands a resident session over to whichever node now owns it:
// flush-and-retire under the shard write lock (the same critical section
// discipline as eviction — no merge can land between the flushed snapshot
// and the map removal), then drop it from memory. The new owner rebuilds
// the session from the shared store by record replay, bit-identically,
// exactly as crash recovery would. Reports whether an instance was
// resident.
//
// Relinquishing is idempotent and safe to race with itself; a session
// relinquished by mistake (ownership flapped back) just reloads from the
// store on its next touch.
func (m *Manager) relinquish(ctx context.Context, id string) bool {
	sh := m.shardFor(id)
	// Fast path under the read lock: the common misrouted request is for a
	// session that was never resident here, and taking the write lock for
	// every such 421 would serialize redirect storms against the stripe's
	// owned-session traffic. A load that publishes between this check and
	// the caller's redirect is a pre-ownership-change straggler; the next
	// touch relinquishes it, which is the documented convergence path.
	sh.mu.RLock()
	_, resident := sh.sessions[id]
	sh.mu.RUnlock()
	if !resident {
		return false
	}
	var sp *trace.Span
	if m.tracer != nil {
		ctx, sp = m.tracer.Start(ctx, "session.relinquish")
		sp.SetAttr("session", id)
		defer sp.End()
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		if err := s.retireAndFlush(m.store); err != nil {
			// The merges are already in the op log; only the final access
			// time and done latch are at risk.
			m.log.Error("relinquish flush failed", "session", id,
				"trace_id", trace.TraceIDFromContext(ctx), "err", err)
			sp.SetError(err)
		}
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		// Hand the lease over with the session: release AFTER the flush
		// (release keeps our epoch, so the flush was not fenced by it) and
		// the new owner's acquisition bumps past it immediately.
		m.releaseLease(id)
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
		if m.relinquished != nil {
			m.relinquished(1)
		}
		// Terminate streams with a redirect event carrying the new
		// owner's address: subscribers re-subscribe there and resume.
		owner := ""
		if m.cfg.Ownership != nil {
			owner = m.cfg.Ownership.Owner(id)
		}
		m.events.terminate(id, &SessionEvent{
			Type:        EventRedirect,
			SessionInfo: SessionInfo{ID: id},
			Owner:       owner,
			TraceID:     trace.TraceIDFromContext(ctx),
		}, m.cfg.now())
		sp.SetAttr("new_owner", owner)
		m.log.Info("session relinquished to new owner", "session", id,
			"owner", owner, "trace_id", trace.TraceIDFromContext(ctx))
	}
	return ok
}

// RelinquishNotOwned scans the resident set and relinquishes every session
// this node no longer owns, returning how many moved. The server calls it
// on ring topology changes; rebalance cost is bounded by the rendezvous
// minimal-disruption property — only the ~K/N sessions the change actually
// re-homed are touched, everything else stays resident and hot.
func (m *Manager) RelinquishNotOwned() int {
	if m.cfg.Ownership == nil {
		return 0
	}
	moved := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		var stale []string
		for id := range sh.sessions {
			if !m.owns(id) {
				stale = append(stale, id)
			}
		}
		sh.mu.RUnlock()
		for _, id := range stale {
			// Re-check under current ownership: the ring may have flapped
			// back between the scan and the handoff.
			if !m.owns(id) && m.relinquish(context.Background(), id) {
				moved++
			}
		}
	}
	if moved > 0 {
		m.log.Info("topology change: relinquished sessions to new owners", "count", moved)
	}
	return moved
}

// load lazily restores a session from the store — the recovery path after
// a daemon restart or TTL unload, and equally the adoption path when this
// node becomes a session's owner after a topology change. Loads are
// single-flight per session: concurrent Gets share one store read +
// replay, and a Delete racing the load invalidates it (via loadOp.deleted)
// instead of letting a restored instance outlive its just-removed record.
func (m *Manager) load(ctx context.Context, id string, sh *shard) (*Session, error) {
	sh.mu.Lock()
	if s, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		return s, nil
	}
	if op, ok := sh.loading[id]; ok {
		sh.mu.Unlock()
		<-op.done
		if op.err != nil {
			return nil, op.err
		}
		if op.s == nil {
			return nil, ErrNotFound // deleted while loading
		}
		return op.s, nil
	}
	op := &loadOp{done: make(chan struct{})}
	sh.loading[id] = op
	sh.mu.Unlock()

	s, release, err := m.loadFromStore(ctx, id)

	sh.mu.Lock()
	delete(sh.loading, id)
	if err == nil && op.deleted {
		err = ErrNotFound
		s.retire()
		release()
		s = nil
	}
	if err == nil {
		sh.sessions[id] = s
		op.s = s
	}
	op.err = err
	sh.mu.Unlock()
	close(op.done)
	if err != nil {
		return nil, err
	}
	info := s.Info(m.cfg.now(), false)
	m.log.Info("session recovered from store", "session", id,
		"version", info.Version, "spent", info.Spent, "budget", info.Budget,
		"trace_id", trace.TraceIDFromContext(ctx))
	if m.recovered != nil {
		m.recovered()
	}
	return s, nil
}

// loadFromStore reads and replays one record, reserving a live-session
// slot. On success the caller owns the slot and must call release if it
// discards the session instead of publishing it.
func (m *Manager) loadFromStore(ctx context.Context, id string) (s *Session, release func(), err error) {
	rec, err := m.store.Get(id)
	if err != nil {
		if errors.Is(err, store.ErrNotExist) || errors.Is(err, store.ErrBadID) {
			if m.wasExpired(id) {
				return nil, nil, ErrExpired
			}
			return nil, nil, ErrNotFound
		}
		return nil, nil, fmt.Errorf("%w: %v", ErrStore, err)
	}

	// The adoption span covers the fence takeover and the full record
	// replay — the most expensive miss path a request can hit.
	if m.tracer != nil {
		var sp *trace.Span
		ctx, sp = m.tracer.Start(ctx, "session.adopt")
		sp.SetAttr("session", id)
		sp.SetAttr("ops", len(rec.Ops))
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
	}

	// Take the write lease before replaying: adoption must fence the old
	// owner BEFORE this node starts serving, or both could acknowledge
	// merges for one session. Acquisition runs after the existence check so
	// probes for unknown IDs never mint lease records.
	epoch, err := m.acquireLease(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	if epoch > 0 {
		// Re-read under our fence: anything the deposed owner flushed
		// before our acquisition landed is visible now, and nothing more
		// can land after it.
		rec, err = m.store.Get(id)
		if err != nil {
			m.releaseLease(id)
			if errors.Is(err, store.ErrNotExist) {
				return nil, nil, ErrNotFound
			}
			return nil, nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
	}

	// A reloaded session occupies the same memory as a created one, so it
	// takes a slot under the same cap.
	m.countMu.Lock()
	if m.cfg.MaxSessions > 0 && m.count >= m.cfg.MaxSessions {
		m.countMu.Unlock()
		m.releaseLease(id)
		return nil, nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	m.count++
	m.countMu.Unlock()
	release = func() {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
		m.releaseLease(id)
	}

	s, err = restoreSession(rec, m.cfg.AnonWorker, m.cfg.now())
	if err != nil {
		release()
		return nil, nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.sessionHooks(s)
	s.leaseEpoch = epoch
	s.tracer = m.tracer
	s.persist = func(op store.Op) error { return m.store.Append(id, op) }
	// The emit hook is attached only after replay: recovery transitions
	// are not republished (subscribers already saw them or will re-sync
	// from their snapshot), and the reloaded instance feeds the same
	// ID-keyed stream its predecessor did.
	s.emit = m.eventSink(id)
	return s, release, nil
}
