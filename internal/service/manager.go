package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/store"
	"crowdfusion/internal/trace"
)

// Manager errors, mapped to HTTP statuses by the server layer.
var (
	// ErrNotFound is returned for unknown session IDs.
	ErrNotFound = errors.New("service: session not found")
	// ErrExpired is returned for a session the TTL janitor evicted from a
	// volatile store: the ID was valid but its state is gone for good.
	// Durable stores never produce it — eviction there only unloads, and
	// the session reloads lazily on the next touch.
	ErrExpired = errors.New("service: session expired (evicted after idle TTL; state was not persisted)")
	// ErrTooManySessions is returned when creating (or lazily reloading)
	// a session would exceed the configured cap — the store-level
	// backpressure signal.
	ErrTooManySessions = errors.New("service: session limit reached")
)

// Ownership is the manager's view of session placement: which sessions
// this node serves, and where the others live. A nil Ownership means this
// node owns everything — the single-node deployment. cluster.Ring is the
// production implementation; tests substitute arbitrary partitions.
//
// Ownership answers are allowed to change over time (nodes die, rings
// heal). The manager re-checks on every touch and relinquishes resident
// sessions it no longer owns, so placement changes move sessions with at
// most one flush-and-reload — never a fork.
type Ownership interface {
	// Owns reports whether this node currently serves id.
	Owns(id string) bool
	// Owner returns the address of the node that currently serves id.
	Owner(id string) string
}

// NotOwnerError reports that this node does not serve the session; the
// request must be retried against Owner. The server layer maps it to
// HTTP 421 with the machine-readable not_owner code, which is what lets
// clients re-route instead of parsing prose.
type NotOwnerError struct {
	ID    string
	Owner string
}

// Error implements error.
func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("service: session %s is owned by %s, not this node", e.ID, e.Owner)
}

// FencedError reports that this node's write lease for the session was
// superseded (or could not be acquired because a live holder has it):
// another node serves the session now. The difference from NotOwnerError
// is the evidence — not_owner comes from placement (the ring says the ID
// hashes elsewhere), fenced comes from the lease fence in the store (a
// write or takeover was actually refused). Both are mapped to HTTP 421 so
// clients handle them identically: re-resolve the owner and retry there.
type FencedError struct {
	ID    string
	Owner string // current lease holder, "" when unknown
}

// Error implements error.
func (e *FencedError) Error() string {
	if e.Owner == "" {
		return fmt.Sprintf("service: session %s write fenced: lease superseded", e.ID)
	}
	return fmt.Sprintf("service: session %s write fenced: lease held by %s", e.ID, e.Owner)
}

// ManagerConfig tunes the session manager.
type ManagerConfig struct {
	// TTL is the idle lifetime of a session: sessions untouched for TTL
	// are evicted by the janitor. Zero means no eviction. What eviction
	// means depends on the store: durable stores flush-and-unload (the
	// session reloads lazily on next touch), volatile stores drop the
	// session for good (later requests get ErrExpired).
	TTL time.Duration
	// MaxSessions caps live (in-memory) sessions (0 = unlimited). Create
	// and lazy reload fail with ErrTooManySessions at the cap.
	MaxSessions int
	// Seed seeds Random selectors; each session derives its own stream
	// from it and a per-session counter.
	Seed int64
	// Store persists sessions. Nil means a fresh volatile store
	// (store.NewMemory) — PR 3's in-memory-only behavior. The manager
	// takes ownership: Manager.Close closes the store.
	Store store.SessionStore
	// Ownership partitions the session space across nodes. Nil means this
	// node owns every session. When set, Create only mints IDs this node
	// owns, and every touch of a non-owned ID fails with *NotOwnerError
	// (after relinquishing any resident instance).
	Ownership Ownership
	// MaxSubscribers caps concurrent event-stream subscribers per session
	// (0 = DefaultMaxSubscribers). The cap bounds fan-out work on the
	// merge path, which does one non-blocking channel send per subscriber.
	MaxSubscribers int
	// LeaseTTL enables write-lease fencing: the manager acquires a lease
	// (TTL-long, renewed on a heartbeat) for every session it serves, and
	// the store refuses writes stamped with a superseded lease epoch. Zero
	// disables leasing — writes carry epoch 0 and the store lets them
	// through as long as no lease was ever taken.
	LeaseTTL time.Duration
	// LeaseRenew is the heartbeat interval for lease renewal. Zero defaults
	// to LeaseTTL/3. Must be well under LeaseTTL: a node that misses
	// renewals for a full TTL can have its sessions stolen.
	LeaseRenew time.Duration
	// Self is this node's advertised address, recorded as the lease owner
	// so peers (and operators reading lease files) can see who holds a
	// session. Defaults to "local" for single-node deployments.
	Self string
	// Logger, when set, receives structured operational log records
	// (evictions, recoveries, relinquishments, store failures) with
	// session/trace attrs. Nil discards them.
	Logger *slog.Logger
	// Tracer, when set, records spans around session compute, persistence,
	// lease transitions, relinquishment, and adoption replay. Nil disables
	// span recording (ids still flow through contexts untouched).
	Tracer *trace.Tracer
	// AnonWorker is the worker identity unattributed (legacy parallel-array)
	// judgments are recorded under on sessions whose worker model tracks
	// observations. Empty defaults to DefaultAnonWorker.
	AnonWorker string
	// now overrides the clock in tests.
	now func() time.Time
}

// Manager is the ownership-aware session cache in front of the
// SessionStore. All methods are safe for concurrent use.
//
// It layers three concerns, outermost first:
//
//   - ownership (this file): every entry point resolves "does this node
//     serve this ID?" before touching state, minting only owned IDs at
//     create time and redirecting the rest with *NotOwnerError;
//   - residency (lifecycle.go): live sessions are in-memory (selection
//     caches, mutexes, idempotency log hot), with single-flight lazy
//     loads, TTL eviction, and relinquishment on ownership change;
//   - durability (store.SessionStore): every state transition is
//     persisted before it is acknowledged, so any node can rebuild any
//     session by record replay — the property that makes both crash
//     recovery and cross-node migration the same code path.
type Manager struct {
	cfg    ManagerConfig
	store  store.SessionStore
	log    *slog.Logger
	tracer *trace.Tracer

	shards [sessionShards]shard

	countMu sync.Mutex
	count   int   // live sessions across shards
	created int64 // sessions ever created (seeds Random selector streams)

	// tombs records sessions the janitor dropped from a volatile store,
	// so later requests can be answered with ErrExpired rather than a
	// generic not-found. Pruned on a horizon of tombstoneTTLs·TTL.
	tombMu sync.Mutex
	tombs  map[string]time.Time

	// events fans state transitions out to SSE subscribers. Feeds are
	// keyed by session ID, so the registry survives unload/reload; the
	// terminate paths (delete, volatile expiry, relinquish) close streams
	// with a final event.
	events *eventHub

	janitorStop chan struct{}
	janitorDone chan struct{}

	// held tracks the lease epochs this node holds, keyed by session ID —
	// the renewal loop's work list and the leases_held gauge. An entry
	// exists iff this node believes it holds the session's lease; the
	// store's lease record is the ground truth the renewal loop checks
	// against.
	leaseMu   sync.Mutex
	held      map[string]uint64
	leaseStop chan struct{}
	leaseDone chan struct{}

	// Metrics hooks, set by the server. evicted reports janitor activity
	// (dropped=true when the state was discarded, false when it was
	// flushed to a durable store); recovered reports one lazy reload;
	// relinquished reports sessions handed to another owner; fencedBounced
	// reports an acquisition bounced off a live holder's lease (store-level
	// fenced writes are counted by the instrumented store instead).
	evicted       func(n int, dropped bool)
	recovered     func()
	relinquished  func(n int)
	fencedBounced func()
	// refitObserved reports one worker-accuracy refit and its latency;
	// weightedMerged reports one posterior conditioning that used
	// per-worker accuracy estimates instead of the scalar pc.
	refitObserved  func(d time.Duration)
	weightedMerged func()
}

// sessionHooks wires the manager's metric hooks and identity config into a
// session instance — the same wiring for created and reloaded sessions.
func (m *Manager) sessionHooks(s *Session) {
	if m.cfg.AnonWorker != "" {
		s.anonWorker = m.cfg.AnonWorker
	}
	s.onRefit = m.refitObserved
	s.onWeightedMerge = m.weightedMerged
}

// NewManager builds a manager over cfg.Store and starts its TTL janitor
// (when TTL > 0).
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	m := &Manager{cfg: cfg, store: cfg.Store, log: cfg.Logger, tracer: cfg.Tracer}
	if m.store == nil {
		m.store = store.NewMemory()
	}
	if m.log == nil {
		m.log = slog.New(slog.DiscardHandler)
	}
	m.tombs = make(map[string]time.Time)
	m.held = make(map[string]uint64)
	m.events = newEventHub(cfg.MaxSubscribers)
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
		m.shards[i].loading = make(map[string]*loadOp)
	}
	if cfg.LeaseTTL > 0 {
		interval := cfg.LeaseRenew
		if interval <= 0 {
			interval = cfg.LeaseTTL / 3
		}
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		m.cfg.LeaseRenew = interval
		m.leaseStop = make(chan struct{})
		m.leaseDone = make(chan struct{})
		go m.leaseLoop(interval)
	}
	if cfg.TTL > 0 {
		m.janitorStop = make(chan struct{})
		m.janitorDone = make(chan struct{})
		interval := cfg.TTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		go m.janitor(interval)
	}
	return m
}

// Store exposes the underlying session store (for tests and embedders).
func (m *Manager) Store() store.SessionStore { return m.store }

// owns reports whether this node serves id (nil Ownership owns all).
func (m *Manager) owns(id string) bool {
	return m.cfg.Ownership == nil || m.cfg.Ownership.Owns(id)
}

// checkOwnership gates every session-addressed entry point. For an ID this
// node does not serve it relinquishes any resident instance (the bounded
// part of rebalancing: a topology change moves only the sessions it
// re-homed, each with one flush) and returns the redirect.
func (m *Manager) checkOwnership(ctx context.Context, id string) error {
	if m.owns(id) {
		return nil
	}
	m.relinquish(ctx, id)
	return &NotOwnerError{ID: id, Owner: m.cfg.Ownership.Owner(id)}
}

// Close stops the janitor, flushes every live session to a durable store
// (merges are already durable — this captures final access times and done
// latches), and closes the store. Sessions remain readable in memory
// (tests inspect them); the process is expected to exit shortly after.
func (m *Manager) Close() {
	if m.janitorStop != nil {
		close(m.janitorStop)
		<-m.janitorDone
		m.janitorStop = nil
	}
	if m.leaseStop != nil {
		close(m.leaseStop)
		<-m.leaseDone
		m.leaseStop = nil
	}
	m.events.closeAll()
	if m.store.Durable() {
		for i := range m.shards {
			sh := &m.shards[i]
			sh.mu.RLock()
			resident := make([]*Session, 0, len(sh.sessions))
			for _, s := range sh.sessions {
				resident = append(resident, s)
			}
			sh.mu.RUnlock()
			for _, s := range resident {
				if err := s.flush(m.store); err != nil {
					m.log.Error("final flush failed", "session", s.ID(), "err", err)
				}
			}
		}
	}
	// Release held leases after the final flush (release keeps the epoch,
	// so our own flush is never fenced by it) — a clean shutdown lets the
	// next owner adopt immediately instead of waiting out the TTL.
	m.leaseMu.Lock()
	held := m.held
	m.held = make(map[string]uint64)
	m.leaseMu.Unlock()
	for id, epoch := range held {
		if err := m.store.ReleaseLease(id, m.leaseSelf(), epoch); err != nil {
			m.log.Warn("lease release failed", "session", id, "err", err)
		}
	}
	if err := m.store.Close(); err != nil {
		m.log.Error("closing store failed", "err", err)
	}
}

// newID returns a 128-bit random hex session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// placementTries bounds the owned-ID rejection sampling in Create. IDs are
// uniform, so each draw lands on this node with probability ~1/N; even a
// 256-node ring fails 1024 draws with probability (1-1/256)^1024 ≈ 2%,
// and any realistic ring effectively never does.
const placementTries = 1024

// placeID mints a session ID this node owns. Placement is a pure function
// of the ID, so making the creating node the owner is just rejection
// sampling over fresh random IDs — no coordination, and the client's
// create lands on a node that can serve the whole session lifecycle.
func (m *Manager) placeID() (string, error) {
	for range placementTries {
		id, err := newID()
		if err != nil {
			return "", err
		}
		if m.owns(id) {
			return id, nil
		}
	}
	return "", fmt.Errorf("service: no self-owned session id in %d draws; is this node part of its own ring?",
		placementTries)
}

// Create validates the request, builds the prior and selector, and stores
// a fresh session owned by this node.
func (m *Manager) Create(ctx context.Context, req *CreateSessionRequest) (*Session, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}

	// Reserve a slot before building the prior: constructing a dense
	// product distribution can materialize 2^n worlds, and that work
	// must not be burned for a request the cap is about to reject (nor
	// can the cap be raced past by concurrent creates).
	m.countMu.Lock()
	if m.cfg.MaxSessions > 0 && m.count >= m.cfg.MaxSessions {
		m.countMu.Unlock()
		return nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	m.count++
	m.created++
	seq := m.created
	m.countMu.Unlock()
	release := func() {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}

	var prior *dist.Joint
	var err error
	if req.Joint != nil {
		prior, err = req.Joint.Joint()
	} else {
		prior, err = dist.Independent(req.Marginals)
	}
	if err != nil {
		release()
		return nil, err
	}

	selName := req.Selector
	if selName == "" {
		selName = string(eval.SelApproxFull)
	}

	// Random selectors get a per-session stream derived from the store
	// seed and the creation sequence number, so sessions never share a
	// random state (and a fixed store seed still reproduces a scripted
	// test exactly).
	seed := req.Seed
	if seed == 0 {
		seed = m.cfg.Seed + seq
	}
	selector, err := eval.NewSelector(eval.SelectorKind(selName), seed)
	if err != nil {
		release()
		return nil, err
	}
	id, err := m.placeID()
	if err != nil {
		release()
		return nil, err
	}

	s := newSession(id, prior, selector, selName, req.Pc, req.K, req.Budget, m.cfg.now())
	s.seed = seed
	if req.WorkerModel != "" {
		s.workerModel = req.WorkerModel
	}
	m.sessionHooks(s)
	// The prior is stored exactly as the client sent it — raw weights, not
	// the normalized posterior — so recovery rebuilds it through the same
	// constructor with the same inputs and gets the same bits.
	if req.Joint != nil {
		s.priorRec = store.Prior{
			N:      req.Joint.N,
			Worlds: append([]uint64(nil), req.Joint.Worlds...),
			Probs:  append([]float64(nil), req.Joint.Probs...),
		}
	} else {
		s.priorRec = store.Prior{Marginals: append([]float64(nil), req.Marginals...)}
	}
	// Take the write lease before the first Put so the record (and every
	// later op) is stamped with our epoch. A fresh random ID cannot have a
	// live holder, so this only ever fails on store trouble.
	epoch, err := m.acquireLease(ctx, id)
	if err != nil {
		release()
		return nil, err
	}
	s.leaseEpoch = epoch
	s.tracer = m.tracer
	s.persist = func(op store.Op) error { return m.store.Append(id, op) }
	s.emit = m.eventSink(id)

	// The session must be durable before it is acknowledged: a created
	// session that vanished in a crash would strand the client's ID.
	_, psp := m.tracer.Start(ctx, "persist.put")
	psp.SetAttr("session", id)
	perr := m.store.Put(s.record())
	psp.SetError(perr)
	psp.End()
	if perr != nil {
		m.releaseLease(id)
		release()
		return nil, fmt.Errorf("%w: %v", ErrStore, perr)
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = s
	sh.mu.Unlock()
	return s, nil
}

// Get returns the session with the given ID, reloading it from the store
// when it is not resident (a restart, a TTL unload, or an ownership
// migration dropped it from memory). For a session another node serves it
// returns *NotOwnerError carrying the owner's address.
func (m *Manager) Get(ctx context.Context, id string) (*Session, error) {
	if err := m.checkOwnership(ctx, id); err != nil {
		return nil, err
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if ok {
		return s, nil
	}
	return m.load(ctx, id, sh)
}

// Delete removes a session from memory and the store, reporting whether it
// existed in either. The store delete runs under the shard lock so it
// serializes with lazy loads: any load that could still observe the record
// registered its loadOp before this lock and gets invalidated here — a
// deleted session can never be resurrected by a racing reload.
func (m *Manager) Delete(ctx context.Context, id string) (bool, error) {
	if err := m.checkOwnership(ctx, id); err != nil {
		return false, err
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		s.retire()
	}
	if op, loading := sh.loading[id]; loading {
		op.deleted = true
	}
	stored, err := m.store.Delete(id)
	sh.mu.Unlock()
	// The store delete removed the lease record with the session; only the
	// local bookkeeping entry is left to drop.
	m.leaseMu.Lock()
	delete(m.held, id)
	m.leaseMu.Unlock()
	if ok {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}
	if err != nil && !errors.Is(err, store.ErrBadID) {
		m.log.Error("store delete failed", "session", id,
			"trace_id", trace.TraceIDFromContext(ctx), "err", err)
	}
	// A session unloaded by the janitor exists only in the store.
	existed := ok || stored
	if existed {
		m.events.terminate(id, &SessionEvent{
			Type:        EventDeleted,
			SessionInfo: SessionInfo{ID: id},
			TraceID:     trace.TraceIDFromContext(ctx),
		}, m.cfg.now())
	}
	return existed, nil
}

// eventSink returns a session's emit hook: publish into the hub, keyed by
// ID so the feed survives unload/reload. The hook runs under the session
// mutex; the hub is non-blocking by construction.
func (m *Manager) eventSink(id string) func(SessionEvent) {
	return func(ev SessionEvent) { m.events.publish(id, ev, m.cfg.now()) }
}

// Subscribe attaches an event-stream subscriber to the session, loading
// it if needed. The snapshot-or-resume backlog is computed while holding
// the session mutex — the same mutex transitions publish under — so the
// stream a subscriber observes has no gap and no duplicate relative to
// its starting state. hasLast marks a reconnect carrying Last-Event-ID.
func (m *Manager) Subscribe(ctx context.Context, id string, lastID uint64, hasLast bool) (*subscription, error) {
	s, err := m.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	var sub *subscription
	var serr error
	now := m.cfg.now()
	traceID := trace.TraceIDFromContext(ctx)
	if err := s.withSnapshot(now, func(info SessionInfo) {
		sub, serr = m.events.subscribe(id, lastID, hasLast, info, traceID, now)
	}); err != nil {
		return nil, err // instance retired under us; caller re-resolves
	}
	return sub, serr
}

// ListSessions pages through the sessions this node serves, in ID order,
// starting after the `after` cursor (exclusive). Resident sessions report
// live state including entropy; unloaded ones are summarized from their
// store record without forcing a replay.
func (m *Manager) ListSessions(after string, limit int) (*ListSessionsResponse, error) {
	ids, err := m.store.List()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	resp := &ListSessionsResponse{Sessions: []SessionSummary{}}
	for _, id := range ids {
		if id <= after || !m.owns(id) {
			continue
		}
		if len(resp.Sessions) >= limit {
			resp.NextAfter = resp.Sessions[len(resp.Sessions)-1].ID
			break
		}
		if sum, ok := m.summarize(id); ok {
			resp.Sessions = append(resp.Sessions, sum)
		}
	}
	return resp, nil
}

// summarize builds one listing row. ok=false when the session vanished
// between List and here (a concurrent delete) — the row is skipped.
func (m *Manager) summarize(id string) (SessionSummary, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, resident := sh.sessions[id]
	sh.mu.RUnlock()
	if resident {
		// peekInfo deliberately skips the TTL touch: listing a node must
		// not keep every session resident forever.
		info := s.peekInfo()
		e := info.Entropy
		return SessionSummary{
			ID:       id,
			Version:  info.Version,
			Spent:    info.Spent,
			Budget:   info.Budget,
			Done:     info.Done,
			Resident: true,
			Entropy:  &e,
		}, true
	}
	rec, err := m.store.Get(id)
	if err != nil {
		return SessionSummary{}, false
	}
	spent := 0
	for _, op := range rec.Ops {
		spent += len(op.Tasks)
	}
	return SessionSummary{
		ID:      id,
		Version: len(rec.Ops),
		Spent:   spent,
		Budget:  rec.Budget,
		Done:    rec.Done || spent >= rec.Budget,
	}, true
}

// Len returns the number of live sessions — the sessions_live gauge.
func (m *Manager) Len() int {
	m.countMu.Lock()
	defer m.countMu.Unlock()
	return m.count
}

// Workers aggregates per-worker accuracy across every RESIDENT session on
// this node — the fleet view behind GET /v1/workers. Unloaded sessions are
// deliberately not replayed for it: the endpoint is an operator dashboard,
// and forcing a full-store replay per scrape would turn a read into a
// recovery storm. Accuracy is the support-weighted mean of each session's
// smoothed estimate; the Wilson interval pools agreement counts across
// sessions.
func (m *Manager) Workers() *WorkersResponse {
	type agg struct {
		sessions, support, correct int
		weighted                   float64 // sum of support·accuracy
	}
	aggs := make(map[string]*agg)
	sessions := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		resident := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			resident = append(resident, s)
		}
		sh.mu.RUnlock()
		for _, s := range resident {
			infos := s.WorkerStats()
			if len(infos) == 0 {
				continue
			}
			sessions++
			for _, wi := range infos {
				a := aggs[wi.Worker]
				if a == nil {
					a = &agg{}
					aggs[wi.Worker] = a
				}
				a.sessions++
				a.support += wi.Support
				a.correct += wi.Correct
				a.weighted += float64(wi.Support) * wi.Accuracy
			}
		}
	}
	resp := &WorkersResponse{Workers: make([]WorkerFleetInfo, 0, len(aggs)), Sessions: sessions}
	for w, a := range aggs {
		fi := WorkerFleetInfo{
			Worker:   w,
			Sessions: a.sessions,
			Support:  a.support,
			Correct:  a.correct,
		}
		if a.support > 0 {
			fi.Accuracy = a.weighted / float64(a.support)
		}
		fi.WilsonLo, fi.WilsonHi = crowd.WilsonInterval(a.correct, a.support)
		resp.Workers = append(resp.Workers, fi)
	}
	sort.Slice(resp.Workers, func(i, j int) bool { return resp.Workers[i].Worker < resp.Workers[j].Worker })
	return resp
}

// WorkersTracked returns the number of distinct workers observed across
// resident sessions — the workers_tracked gauge.
func (m *Manager) WorkersTracked() int {
	seen := make(map[string]struct{})
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		resident := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			resident = append(resident, s)
		}
		sh.mu.RUnlock()
		for _, s := range resident {
			for _, wi := range s.WorkerStats() {
				seen[wi.Worker] = struct{}{}
			}
		}
	}
	return len(seen)
}

// leaseSelf is the owner identity recorded in lease records.
func (m *Manager) leaseSelf() string {
	if m.cfg.Self != "" {
		return m.cfg.Self
	}
	return "local"
}

// LeasesHeld returns the number of session write leases this node holds —
// the leases_held gauge, also reported by /healthz.
func (m *Manager) LeasesHeld() int {
	m.leaseMu.Lock()
	defer m.leaseMu.Unlock()
	return len(m.held)
}

// holderGone reports whether the node blocking a lease acquisition can be
// presumed dead. The ring's liveness view is authoritative when the
// Ownership implementation exposes one (cluster.Ring does); without
// liveness information, placement already routed this ID here, so the
// blocker is presumed a dead or deposed predecessor and the steal
// proceeds — the fence, not the guess, is what protects the history.
func (m *Manager) holderGone(owner string) bool {
	if owner == "" || owner == m.leaseSelf() {
		return true
	}
	if pa, ok := m.cfg.Ownership.(interface{ PeerAlive(string) bool }); ok {
		return !pa.PeerAlive(owner)
	}
	return true
}

// acquireLease takes (or steals) the write lease for id and records it in
// the held map, returning the fencing epoch to stamp on the session's
// writes. Returns epoch 0 with no store traffic when leasing is disabled.
//
// Steal policy: a held, unexpired lease is taken over only when the ring
// considers the holder dead. If the holder still looks alive — the
// asymmetric-partition case, where placement moved the session here but
// the old owner is still breathing — the acquisition bounces with
// *FencedError instead, pointing the client at the holder. This keeps two
// nodes with disagreeing ring views from stealing the lease back and
// forth; whichever side the client can actually reach wins, and the loser
// fences on its next write.
func (m *Manager) acquireLease(ctx context.Context, id string) (epoch uint64, err error) {
	if m.cfg.LeaseTTL <= 0 {
		return 0, nil
	}
	var sp *trace.Span
	if m.tracer != nil {
		ctx, sp = m.tracer.Start(ctx, "lease.acquire")
		sp.SetAttr("session", id)
		defer func() {
			sp.SetAttr("epoch", epoch)
			sp.SetError(err)
			sp.End()
		}()
	}
	now := m.cfg.now()
	l, aerr := m.store.AcquireLease(id, m.leaseSelf(), m.cfg.LeaseTTL, now)
	var held *store.LeaseHeldError
	if errors.As(aerr, &held) {
		if !m.holderGone(held.Lease.Owner) {
			if m.fencedBounced != nil {
				m.fencedBounced()
			}
			return 0, &FencedError{ID: id, Owner: held.Lease.Owner}
		}
		m.log.Info("stealing lease: holder presumed dead", "session", id,
			"holder", held.Lease.Owner, "epoch", held.Lease.Epoch,
			"trace_id", trace.TraceIDFromContext(ctx))
		sp.SetAttr("stolen_from", held.Lease.Owner)
		l, aerr = m.store.StealLease(id, m.leaseSelf(), m.cfg.LeaseTTL, now)
	}
	if aerr != nil {
		return 0, fmt.Errorf("%w: %v", ErrStore, aerr)
	}
	m.leaseMu.Lock()
	m.held[id] = l.Epoch
	m.leaseMu.Unlock()
	return l.Epoch, nil
}

// releaseLease gives up the lease for id. Release keeps the epoch in the
// store as a permanent fence, so this node's already-stamped writes stay
// valid while the next owner's acquisition outranks them.
func (m *Manager) releaseLease(id string) {
	m.leaseMu.Lock()
	epoch, ok := m.held[id]
	delete(m.held, id)
	m.leaseMu.Unlock()
	if !ok {
		return
	}
	if err := m.store.ReleaseLease(id, m.leaseSelf(), epoch); err != nil {
		// Losing the release race just means someone already superseded
		// us — exactly the state release was trying to reach.
		m.log.Warn("lease release failed", "session", id, "epoch", epoch, "err", err)
	}
}

// leaseLoop renews held leases on the heartbeat interval until Close.
func (m *Manager) leaseLoop(interval time.Duration) {
	defer close(m.leaseDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.leaseStop:
			return
		case <-t.C:
			m.RenewHeldLeases(m.cfg.now())
		}
	}
}

// RenewHeldLeases renews every lease this node holds against the store,
// retiring any session whose lease another node took. Returns the renewed
// and lost counts. The lease loop calls it on the heartbeat; it is
// exported so tests (and deployments with an external cadence) can drive
// renewal with an explicit clock.
func (m *Manager) RenewHeldLeases(now time.Time) (renewed, lost int) {
	if m.cfg.LeaseTTL <= 0 {
		return 0, 0
	}
	m.leaseMu.Lock()
	snap := make(map[string]uint64, len(m.held))
	for id, epoch := range m.held {
		snap[id] = epoch
	}
	m.leaseMu.Unlock()
	// The sweep span is opened only when there is work: an idle node's
	// heartbeat must not flood the trace recorder with empty traces.
	var sp *trace.Span
	if m.tracer != nil && len(snap) > 0 {
		_, sp = m.tracer.Start(context.Background(), "lease.renew_sweep")
		sp.SetAttr("held", len(snap))
		defer func() {
			sp.SetAttr("renewed", renewed)
			sp.SetAttr("lost", lost)
			sp.End()
		}()
	}
	for id, epoch := range snap {
		_, err := m.store.RenewLease(id, m.leaseSelf(), epoch, m.cfg.LeaseTTL, now)
		switch {
		case err == nil:
			renewed++
		case errors.Is(err, store.ErrFenced):
			m.log.Warn("lease superseded; retiring local instance",
				"session", id, "epoch", epoch)
			m.RetireFenced(id)
			lost++
		default:
			// A store hiccup is not a deposition: keep serving — the epoch
			// fence still protects every write — and retry next tick.
			m.log.Warn("lease renewal failed", "session", id, "err", err)
		}
	}
	return renewed, lost
}

// RetireFenced drops a resident session whose write lease another node
// superseded. The instance must not serve another request from memory —
// its state may already trail the new owner's — so it is retired without
// a flush (a flush would fence anyway) and its event streams are closed
// with a redirect pointing at the new holder. Reports whether an instance
// was resident.
func (m *Manager) RetireFenced(id string) bool {
	m.leaseMu.Lock()
	delete(m.held, id)
	m.leaseMu.Unlock()
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		s.retire()
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	m.countMu.Lock()
	m.count--
	m.countMu.Unlock()
	owner := ""
	if l, err := m.store.GetLease(id); err == nil && l != nil {
		owner = l.Owner
	}
	if owner == "" && m.cfg.Ownership != nil {
		owner = m.cfg.Ownership.Owner(id)
	}
	m.events.terminate(id, &SessionEvent{
		Type:        EventRedirect,
		SessionInfo: SessionInfo{ID: id},
		Owner:       owner,
	}, m.cfg.now())
	return true
}

// Now returns the manager's clock reading (test-overridable).
func (m *Manager) Now() time.Time { return m.cfg.now() }
