package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/store"
)

// Manager errors, mapped to HTTP statuses by the server layer.
var (
	// ErrNotFound is returned for unknown session IDs.
	ErrNotFound = errors.New("service: session not found")
	// ErrExpired is returned for a session the TTL janitor evicted from a
	// volatile store: the ID was valid but its state is gone for good.
	// Durable stores never produce it — eviction there only unloads, and
	// the session reloads lazily on the next touch.
	ErrExpired = errors.New("service: session expired (evicted after idle TTL; state was not persisted)")
	// ErrTooManySessions is returned when creating (or lazily reloading)
	// a session would exceed the configured cap — the store-level
	// backpressure signal.
	ErrTooManySessions = errors.New("service: session limit reached")
)

// sessionShards is the number of mutex stripes in the store. Requests for
// different sessions contend only within their stripe, so the store itself
// never serializes the (already per-session serialized) hot path. Power of
// two so shard selection is a mask.
const sessionShards = 16

// shard is one stripe: a mutex, its slice of the session map, and the
// in-flight lazy loads (single-flight: concurrent Gets for one unloaded
// session share one store read + replay).
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	loading  map[string]*loadOp
}

// loadOp is one in-flight lazy load. done is closed when the load settles;
// s/err hold the outcome. deleted is set (under the shard mutex) by a
// concurrent Delete so the loader discards its result instead of
// resurrecting a session whose record was just removed.
type loadOp struct {
	done    chan struct{}
	s       *Session
	err     error
	deleted bool
}

// ManagerConfig tunes the session manager.
type ManagerConfig struct {
	// TTL is the idle lifetime of a session: sessions untouched for TTL
	// are evicted by the janitor. Zero means no eviction. What eviction
	// means depends on the store: durable stores flush-and-unload (the
	// session reloads lazily on next touch), volatile stores drop the
	// session for good (later requests get ErrExpired).
	TTL time.Duration
	// MaxSessions caps live (in-memory) sessions (0 = unlimited). Create
	// and lazy reload fail with ErrTooManySessions at the cap.
	MaxSessions int
	// Seed seeds Random selectors; each session derives its own stream
	// from it and a per-session counter.
	Seed int64
	// Store persists sessions. Nil means a fresh volatile store
	// (store.NewMemory) — PR 3's in-memory-only behavior. The manager
	// takes ownership: Manager.Close closes the store.
	Store store.SessionStore
	// Logf, when set, receives operational log lines (evictions,
	// recoveries, store failures). Nil discards them.
	Logf func(format string, args ...any)
	// now overrides the clock in tests.
	now func() time.Time
}

// Manager is the sharded session cache in front of the SessionStore. All
// methods are safe for concurrent use. Live sessions are in-memory
// (selection caches, mutexes, idempotency log hot); every state transition
// is persisted through the store before it is acknowledged, and sessions
// not resident are reloaded from the store lazily on first touch.
type Manager struct {
	cfg   ManagerConfig
	store store.SessionStore
	logf  func(format string, args ...any)

	shards [sessionShards]shard

	countMu sync.Mutex
	count   int   // live sessions across shards
	created int64 // sessions ever created (seeds Random selector streams)

	// tombs records sessions the janitor dropped from a volatile store,
	// so later requests can be answered with ErrExpired rather than a
	// generic not-found. Pruned on a horizon of tombstoneTTLs·TTL.
	tombMu sync.Mutex
	tombs  map[string]time.Time

	janitorStop chan struct{}
	janitorDone chan struct{}

	// Metrics hooks, set by the server. evicted reports janitor activity
	// (dropped=true when the state was discarded, false when it was
	// flushed to a durable store); recovered reports one lazy reload.
	evicted   func(n int, dropped bool)
	recovered func()
}

// tombstoneTTLs is how many TTL periods an expiry tombstone outlives its
// session, bounding tombstone memory in long-lived daemons.
const tombstoneTTLs = 8

// NewManager builds a manager over cfg.Store and starts its TTL janitor
// (when TTL > 0).
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	m := &Manager{cfg: cfg, store: cfg.Store, logf: cfg.Logf}
	if m.store == nil {
		m.store = store.NewMemory()
	}
	if m.logf == nil {
		m.logf = func(string, ...any) {}
	}
	m.tombs = make(map[string]time.Time)
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
		m.shards[i].loading = make(map[string]*loadOp)
	}
	if cfg.TTL > 0 {
		m.janitorStop = make(chan struct{})
		m.janitorDone = make(chan struct{})
		interval := cfg.TTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		go m.janitor(interval)
	}
	return m
}

// Store exposes the underlying session store (for tests and embedders).
func (m *Manager) Store() store.SessionStore { return m.store }

// Close stops the janitor, flushes every live session to a durable store
// (merges are already durable — this captures final access times and done
// latches), and closes the store. Sessions remain readable in memory
// (tests inspect them); the process is expected to exit shortly after.
func (m *Manager) Close() {
	if m.janitorStop != nil {
		close(m.janitorStop)
		<-m.janitorDone
		m.janitorStop = nil
	}
	if m.store.Durable() {
		for i := range m.shards {
			sh := &m.shards[i]
			sh.mu.RLock()
			resident := make([]*Session, 0, len(sh.sessions))
			for _, s := range sh.sessions {
				resident = append(resident, s)
			}
			sh.mu.RUnlock()
			for _, s := range resident {
				if err := s.flush(m.store); err != nil {
					m.logf("session %s: final flush failed: %v", s.ID(), err)
				}
			}
		}
	}
	if err := m.store.Close(); err != nil {
		m.logf("closing store: %v", err)
	}
}

func (m *Manager) janitor(interval time.Duration) {
	defer close(m.janitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.Sweep(m.cfg.now())
		}
	}
}

// Sweep evicts every session idle since before now-TTL and returns how
// many were evicted. Over a durable store eviction is an unload: the
// session is flushed (final access time, done latch — its merges are
// already durable) and drops out of memory, to be reloaded lazily on the
// next touch. Over a volatile store it is a true expiry: the record is
// deleted and a tombstone makes later requests fail with ErrExpired
// instead of a generic not-found. Exposed for tests and for deployments
// that prefer an external eviction cadence.
func (m *Manager) Sweep(now time.Time) int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.TTL)
	durable := m.store.Durable()
	evicted := 0
	for i := range m.shards {
		sh := &m.shards[i]
		// Collect candidates under the read lock, then re-check under
		// the write lock so a session touched in between survives.
		sh.mu.RLock()
		var stale []string
		for id, s := range sh.sessions {
			if s.idleSince().Before(cutoff) {
				stale = append(stale, id)
			}
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		// The store side effect (flush or delete) MUST happen before the
		// session leaves the map, under the shard write lock. Otherwise a
		// lazy reload could slip into the gap, publish a second live
		// instance, and acknowledge merges that the victim's stale flush
		// would then truncate out of the log (or whose record the volatile
		// delete would pull out from under it).
		sh.mu.Lock()
		for _, id := range stale {
			s, ok := sh.sessions[id]
			if !ok || !s.idleSince().Before(cutoff) {
				continue
			}
			if durable {
				// Flush and retire in one critical section: no merge can
				// land on this instance after the snapshot it flushed, so
				// a handler still holding the pointer is bounced to the
				// manager (and the reloaded successor) instead of
				// committing to an orphan.
				if err := s.retireAndFlush(m.store); err != nil {
					// The merges themselves are already in the op log;
					// only the final access time is at risk.
					m.logf("session %s: eviction flush failed: %v", id, err)
				}
			} else {
				info := s.Info(now, false)
				s.retire()
				if _, err := m.store.Delete(id); err != nil {
					m.logf("session %s: eviction delete failed: %v", id, err)
				}
				m.tombMu.Lock()
				m.tombs[id] = now
				m.tombMu.Unlock()
				m.logf("session %s: expired after idle TTL %v (version %d, spent %d/%d)",
					id, m.cfg.TTL, info.Version, info.Spent, info.Budget)
			}
			delete(sh.sessions, id)
			evicted++
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		m.countMu.Lock()
		m.count -= evicted
		m.countMu.Unlock()
		if durable {
			m.logf("unloaded %d idle session(s) to the store", evicted)
		}
		if m.evicted != nil {
			m.evicted(evicted, !durable)
		}
	}
	m.pruneTombs(now)
	return evicted
}

// pruneTombs drops expiry tombstones older than tombstoneTTLs idle
// lifetimes: after that horizon an expired session answers 404 like any
// unknown ID, which bounds tombstone memory.
func (m *Manager) pruneTombs(now time.Time) {
	horizon := now.Add(-time.Duration(tombstoneTTLs) * m.cfg.TTL)
	m.tombMu.Lock()
	for id, t := range m.tombs {
		if t.Before(horizon) {
			delete(m.tombs, id)
		}
	}
	m.tombMu.Unlock()
}

// wasExpired reports whether the janitor dropped this session from a
// volatile store recently enough that its tombstone survives.
func (m *Manager) wasExpired(id string) bool {
	m.tombMu.Lock()
	_, ok := m.tombs[id]
	m.tombMu.Unlock()
	return ok
}

// shardFor picks the stripe for an ID by FNV-1a of its bytes.
func (m *Manager) shardFor(id string) *shard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &m.shards[h&(sessionShards-1)]
}

// newID returns a 128-bit random hex session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create validates the request, builds the prior and selector, and stores
// a fresh session.
func (m *Manager) Create(req *CreateSessionRequest) (*Session, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}

	// Reserve a slot before building the prior: constructing a dense
	// product distribution can materialize 2^n worlds, and that work
	// must not be burned for a request the cap is about to reject (nor
	// can the cap be raced past by concurrent creates).
	m.countMu.Lock()
	if m.cfg.MaxSessions > 0 && m.count >= m.cfg.MaxSessions {
		m.countMu.Unlock()
		return nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	m.count++
	m.created++
	seq := m.created
	m.countMu.Unlock()
	release := func() {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}

	var prior *dist.Joint
	var err error
	if req.Joint != nil {
		prior, err = req.Joint.Joint()
	} else {
		prior, err = dist.Independent(req.Marginals)
	}
	if err != nil {
		release()
		return nil, err
	}

	selName := req.Selector
	if selName == "" {
		selName = string(eval.SelApproxFull)
	}

	// Random selectors get a per-session stream derived from the store
	// seed and the creation sequence number, so sessions never share a
	// random state (and a fixed store seed still reproduces a scripted
	// test exactly).
	seed := req.Seed
	if seed == 0 {
		seed = m.cfg.Seed + seq
	}
	selector, err := eval.NewSelector(eval.SelectorKind(selName), seed)
	if err != nil {
		release()
		return nil, err
	}
	id, err := newID()
	if err != nil {
		release()
		return nil, err
	}

	s := newSession(id, prior, selector, selName, req.Pc, req.K, req.Budget, m.cfg.now())
	s.seed = seed
	// The prior is stored exactly as the client sent it — raw weights, not
	// the normalized posterior — so recovery rebuilds it through the same
	// constructor with the same inputs and gets the same bits.
	if req.Joint != nil {
		s.priorRec = store.Prior{
			N:      req.Joint.N,
			Worlds: append([]uint64(nil), req.Joint.Worlds...),
			Probs:  append([]float64(nil), req.Joint.Probs...),
		}
	} else {
		s.priorRec = store.Prior{Marginals: append([]float64(nil), req.Marginals...)}
	}
	s.persist = func(op store.Op) error { return m.store.Append(id, op) }

	// The session must be durable before it is acknowledged: a created
	// session that vanished in a crash would strand the client's ID.
	if err := m.store.Put(s.record()); err != nil {
		release()
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = s
	sh.mu.Unlock()
	return s, nil
}

// Get returns the session with the given ID, reloading it from the store
// when it is not resident (a restart or a TTL unload dropped it from
// memory).
func (m *Manager) Get(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if ok {
		return s, nil
	}
	return m.load(id, sh)
}

// load lazily restores a session from the store — the recovery path after
// a daemon restart or TTL unload. Loads are single-flight per session:
// concurrent Gets share one store read + replay, and a Delete racing the
// load invalidates it (via loadOp.deleted) instead of letting a restored
// instance outlive its just-removed record.
func (m *Manager) load(id string, sh *shard) (*Session, error) {
	sh.mu.Lock()
	if s, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		return s, nil
	}
	if op, ok := sh.loading[id]; ok {
		sh.mu.Unlock()
		<-op.done
		if op.err != nil {
			return nil, op.err
		}
		if op.s == nil {
			return nil, ErrNotFound // deleted while loading
		}
		return op.s, nil
	}
	op := &loadOp{done: make(chan struct{})}
	sh.loading[id] = op
	sh.mu.Unlock()

	s, release, err := m.loadFromStore(id)

	sh.mu.Lock()
	delete(sh.loading, id)
	if err == nil && op.deleted {
		err = ErrNotFound
		s.retire()
		release()
		s = nil
	}
	if err == nil {
		sh.sessions[id] = s
		op.s = s
	}
	op.err = err
	sh.mu.Unlock()
	close(op.done)
	if err != nil {
		return nil, err
	}
	info := s.Info(m.cfg.now(), false)
	m.logf("session %s: recovered from store (version %d, spent %d/%d)",
		id, info.Version, info.Spent, info.Budget)
	if m.recovered != nil {
		m.recovered()
	}
	return s, nil
}

// loadFromStore reads and replays one record, reserving a live-session
// slot. On success the caller owns the slot and must call release if it
// discards the session instead of publishing it.
func (m *Manager) loadFromStore(id string) (s *Session, release func(), err error) {
	rec, err := m.store.Get(id)
	if err != nil {
		if errors.Is(err, store.ErrNotExist) || errors.Is(err, store.ErrBadID) {
			if m.wasExpired(id) {
				return nil, nil, ErrExpired
			}
			return nil, nil, ErrNotFound
		}
		return nil, nil, fmt.Errorf("%w: %v", ErrStore, err)
	}

	// A reloaded session occupies the same memory as a created one, so it
	// takes a slot under the same cap.
	m.countMu.Lock()
	if m.cfg.MaxSessions > 0 && m.count >= m.cfg.MaxSessions {
		m.countMu.Unlock()
		return nil, nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	m.count++
	m.countMu.Unlock()
	release = func() {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}

	s, err = restoreSession(rec, m.cfg.now())
	if err != nil {
		release()
		return nil, nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	s.persist = func(op store.Op) error { return m.store.Append(id, op) }
	return s, release, nil
}

// Delete removes a session from memory and the store, reporting whether it
// existed in either. The store delete runs under the shard lock so it
// serializes with lazy loads: any load that could still observe the record
// registered its loadOp before this lock and gets invalidated here — a
// deleted session can never be resurrected by a racing reload.
func (m *Manager) Delete(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		s.retire()
	}
	if op, loading := sh.loading[id]; loading {
		op.deleted = true
	}
	stored, err := m.store.Delete(id)
	sh.mu.Unlock()
	if ok {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}
	if err != nil && !errors.Is(err, store.ErrBadID) {
		m.logf("session %s: store delete failed: %v", id, err)
	}
	// A session unloaded by the janitor exists only in the store.
	return ok || stored
}

// Len returns the number of live sessions — the sessions_live gauge.
func (m *Manager) Len() int {
	m.countMu.Lock()
	defer m.countMu.Unlock()
	return m.count
}

// Now returns the manager's clock reading (test-overridable).
func (m *Manager) Now() time.Time { return m.cfg.now() }
