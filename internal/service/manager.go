package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
)

// Manager errors, mapped to HTTP statuses by the server layer.
var (
	// ErrNotFound is returned for unknown (or already evicted) session IDs.
	ErrNotFound = errors.New("service: session not found")
	// ErrTooManySessions is returned when creating a session would exceed
	// the configured cap — the store-level backpressure signal.
	ErrTooManySessions = errors.New("service: session limit reached")
)

// sessionShards is the number of mutex stripes in the store. Requests for
// different sessions contend only within their stripe, so the store itself
// never serializes the (already per-session serialized) hot path. Power of
// two so shard selection is a mask.
const sessionShards = 16

// shard is one stripe: a mutex and its slice of the session map.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// ManagerConfig tunes the session store.
type ManagerConfig struct {
	// TTL is the idle lifetime of a session: sessions untouched for TTL
	// are evicted by the janitor. Zero means no eviction.
	TTL time.Duration
	// MaxSessions caps live sessions (0 = unlimited). Create fails with
	// ErrTooManySessions at the cap.
	MaxSessions int
	// Seed seeds Random selectors; each session derives its own stream
	// from it and a per-session counter.
	Seed int64
	// now overrides the clock in tests.
	now func() time.Time
}

// Manager is the sharded in-memory session store. All methods are safe for
// concurrent use.
type Manager struct {
	cfg    ManagerConfig
	shards [sessionShards]shard

	countMu sync.Mutex
	count   int   // live sessions across shards
	created int64 // sessions ever created (seeds Random selector streams)

	janitorStop chan struct{}
	janitorDone chan struct{}

	evicted func(n int) // metrics hook, set by the server
}

// NewManager builds a store and starts its TTL janitor (when TTL > 0).
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	m := &Manager{cfg: cfg}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	if cfg.TTL > 0 {
		m.janitorStop = make(chan struct{})
		m.janitorDone = make(chan struct{})
		interval := cfg.TTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		go m.janitor(interval)
	}
	return m
}

// Close stops the janitor. Sessions remain readable (tests inspect them);
// the process is expected to exit shortly after.
func (m *Manager) Close() {
	if m.janitorStop != nil {
		close(m.janitorStop)
		<-m.janitorDone
		m.janitorStop = nil
	}
}

func (m *Manager) janitor(interval time.Duration) {
	defer close(m.janitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.Sweep(m.cfg.now())
		}
	}
}

// Sweep evicts every session idle since before now-TTL and returns how
// many were evicted. Exposed for tests and for deployments that prefer an
// external eviction cadence.
func (m *Manager) Sweep(now time.Time) int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	cutoff := now.Add(-m.cfg.TTL)
	evicted := 0
	for i := range m.shards {
		sh := &m.shards[i]
		// Collect candidates under the read lock, then re-check under
		// the write lock so a session touched in between survives.
		sh.mu.RLock()
		var stale []string
		for id, s := range sh.sessions {
			if s.idleSince().Before(cutoff) {
				stale = append(stale, id)
			}
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		sh.mu.Lock()
		for _, id := range stale {
			s, ok := sh.sessions[id]
			if !ok || !s.idleSince().Before(cutoff) {
				continue
			}
			delete(sh.sessions, id)
			evicted++
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		m.countMu.Lock()
		m.count -= evicted
		m.countMu.Unlock()
		if m.evicted != nil {
			m.evicted(evicted)
		}
	}
	return evicted
}

// shardFor picks the stripe for an ID by FNV-1a of its bytes.
func (m *Manager) shardFor(id string) *shard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &m.shards[h&(sessionShards-1)]
}

// newID returns a 128-bit random hex session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create validates the request, builds the prior and selector, and stores
// a fresh session.
func (m *Manager) Create(req *CreateSessionRequest) (*Session, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}

	// Reserve a slot before building the prior: constructing a dense
	// product distribution can materialize 2^n worlds, and that work
	// must not be burned for a request the cap is about to reject (nor
	// can the cap be raced past by concurrent creates).
	m.countMu.Lock()
	if m.cfg.MaxSessions > 0 && m.count >= m.cfg.MaxSessions {
		m.countMu.Unlock()
		return nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	m.count++
	m.created++
	seq := m.created
	m.countMu.Unlock()
	release := func() {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}

	var prior *dist.Joint
	var err error
	if req.Joint != nil {
		prior, err = req.Joint.Joint()
	} else {
		prior, err = dist.Independent(req.Marginals)
	}
	if err != nil {
		release()
		return nil, err
	}

	selName := req.Selector
	if selName == "" {
		selName = string(eval.SelApproxFull)
	}

	// Random selectors get a per-session stream derived from the store
	// seed and the creation sequence number, so sessions never share a
	// random state (and a fixed store seed still reproduces a scripted
	// test exactly).
	seed := req.Seed
	if seed == 0 {
		seed = m.cfg.Seed + seq
	}
	selector, err := eval.NewSelector(eval.SelectorKind(selName), seed)
	if err != nil {
		release()
		return nil, err
	}
	id, err := newID()
	if err != nil {
		release()
		return nil, err
	}

	s := newSession(id, prior, selector, selName, req.Pc, req.K, req.Budget, m.cfg.now())
	sh := m.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = s
	sh.mu.Unlock()
	return s, nil
}

// Get returns the session with the given ID.
func (m *Manager) Get(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete removes a session, reporting whether it existed.
func (m *Manager) Delete(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		m.countMu.Lock()
		m.count--
		m.countMu.Unlock()
	}
	return ok
}

// Len returns the number of live sessions — the sessions_live gauge.
func (m *Manager) Len() int {
	m.countMu.Lock()
	defer m.countMu.Unlock()
	return m.count
}

// Now returns the manager's clock reading (test-overridable).
func (m *Manager) Now() time.Time { return m.cfg.now() }
