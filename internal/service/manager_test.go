package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testCreateReq() *CreateSessionRequest {
	return &CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49},
		Pc:        0.8,
		K:         2,
		Budget:    6,
	}
}

func TestManagerCreateGetDelete(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()

	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ID()) != 32 {
		t.Fatalf("session id %q not 128-bit hex", s.ID())
	}
	got, err := m.Get(context.Background(), s.ID())
	if err != nil || got != s {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if ok, err := m.Delete(context.Background(), s.ID()); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, err := m.Delete(context.Background(), s.ID()); err != nil || ok {
		t.Fatalf("double Delete = %v, %v", ok, err)
	}
	if _, err := m.Get(context.Background(), s.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestManagerRejectsInvalidCreate(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	bad := testCreateReq()
	bad.Pc = 0.3
	if _, err := m.Create(context.Background(), bad); err == nil {
		t.Fatal("invalid pc accepted")
	}
	unknown := testCreateReq()
	unknown.Selector = "Oracle"
	if _, err := m.Create(context.Background(), unknown); err == nil {
		t.Fatal("unknown selector accepted")
	}
	if m.Len() != 0 {
		t.Fatalf("failed creates leaked slots: Len = %d", m.Len())
	}
}

func TestManagerSessionCap(t *testing.T) {
	m := NewManager(ManagerConfig{MaxSessions: 2})
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Create(context.Background(), testCreateReq()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(context.Background(), testCreateReq()); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("create beyond cap = %v, want ErrTooManySessions", err)
	}
	// Deleting one frees a slot.
	var anyID string
	for i := range m.shards {
		for id := range m.shards[i].sessions {
			anyID = id
		}
	}
	if _, err := m.Delete(context.Background(), anyID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), testCreateReq()); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

func TestManagerTTLEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewManager(ManagerConfig{TTL: time.Minute, now: clk.now})
	defer m.Close()

	idle, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	busy, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}

	// Touch only the busy session past the idle cutoff.
	clk.advance(50 * time.Second)
	busy.Info(clk.now(), false)
	clk.advance(30 * time.Second) // idle is now 80s stale, busy 30s

	if n := m.Sweep(clk.now()); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	// Over the default volatile store, eviction is expiry: the distinct
	// ErrExpired (not a generic not-found) tells clients their state is
	// gone for good.
	if _, err := m.Get(context.Background(), idle.ID()); !errors.Is(err, ErrExpired) {
		t.Fatalf("idle session survived: %v", err)
	}
	if _, err := m.Get(context.Background(), "0123456789abcdef0123456789abcdef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id after eviction = %v, want ErrNotFound", err)
	}
	if _, err := m.Get(context.Background(), busy.ID()); err != nil {
		t.Fatalf("busy session evicted: %v", err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}

	// A session touched between candidate collection and eviction
	// survives: Sweep re-checks under the write lock, so a fresh access
	// always wins. (Directly exercised by touching after the cutoff.)
	clk.advance(2 * time.Minute)
	busy.Info(clk.now(), false)
	if n := m.Sweep(clk.now()); n != 0 {
		t.Fatalf("Sweep evicted %d just-touched sessions", n)
	}
}

func TestManagerConcurrentCreates(t *testing.T) {
	const cap = 32
	m := NewManager(ManagerConfig{MaxSessions: cap})
	defer m.Close()
	var wg sync.WaitGroup
	var created, rejected sync.Map
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s, err := m.Create(context.Background(), testCreateReq())
				key := fmt.Sprintf("%d-%d", g, i)
				if err != nil {
					rejected.Store(key, true)
				} else {
					created.Store(key, s.ID())
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	created.Range(func(_, _ any) bool { n++; return true })
	if n != cap {
		t.Fatalf("created %d sessions under cap %d", n, cap)
	}
	if m.Len() != cap {
		t.Fatalf("Len = %d, want %d", m.Len(), cap)
	}
}

func TestManagerShardDistribution(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	for i := 0; i < 200; i++ {
		if _, err := m.Create(context.Background(), testCreateReq()); err != nil {
			t.Fatal(err)
		}
	}
	used := 0
	for i := range m.shards {
		m.shards[i].mu.RLock()
		if len(m.shards[i].sessions) > 0 {
			used++
		}
		m.shards[i].mu.RUnlock()
	}
	// 200 random IDs across 16 shards: every shard empty-free with
	// overwhelming probability; require most to be in use.
	if used < sessionShards/2 {
		t.Fatalf("only %d of %d shards used — shard hash is degenerate", used, sessionShards)
	}
}
