package service

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crowdfusion/internal/store"
)

// latencyWindow is how many recent observations each latency tracker keeps
// for quantile estimation. A fixed ring keeps the tracker O(1) per request
// and allocation-free in steady state; quantiles are over the trailing
// window, which is what an operator watching a live service wants anyway.
const latencyWindow = 1024

// latencyTracker records request durations and reports count, p50 and p99
// over the trailing window.
//
// DEPRECATED: the summary lines rendered from these trackers cannot be
// aggregated across nodes; the fixed-bucket histograms below replace them.
// The summaries are kept for one release so existing dashboards migrate,
// and their # HELP text says so.
type latencyTracker struct {
	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	n     int   // filled entries, up to latencyWindow
	next  int   // next write position
	total int64 // observations ever

	// scratch is the reusable sort buffer for quantiles: scrapes are
	// frequent (Prometheus default 15s, tests tighter) and allocating plus
	// sorting a fresh 1024-entry slice per scrape per tracker was measurable
	// garbage. snapMu serializes scrapers over the scratch without making
	// them block observers: the copy out of the ring holds mu only as long
	// as a memcpy, and the sort runs outside it.
	snapMu  sync.Mutex
	scratch []time.Duration
}

// observe records one duration.
func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.next] = d
	l.next = (l.next + 1) % latencyWindow
	if l.n < latencyWindow {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// quantiles returns the observation count and (p50, p99) over the window.
// Allocation-free after the first call: the window snapshot lands in a
// retained scratch buffer guarded by snapMu.
func (l *latencyTracker) quantiles() (total int64, p50, p99 time.Duration) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if l.scratch == nil {
		l.scratch = make([]time.Duration, 0, latencyWindow)
	}
	l.mu.Lock()
	n := l.n
	buf := l.scratch[:n]
	copy(buf, l.ring[:n])
	total = l.total
	l.mu.Unlock()
	if n == 0 {
		return total, 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	// Nearest-rank on the sorted window; index clamped so p99 of a small
	// window degrades to the max.
	idx := func(q float64) int {
		i := int(q * float64(n))
		if i >= n {
			i = n - 1
		}
		return i
	}
	return total, buf[idx(0.50)], buf[idx(0.99)]
}

// latencyBuckets are the shared fixed histogram bounds, in seconds:
// exponential-ish from 50µs (a cached select is well under the first
// bucket) to 5s (the slowest fsync or greedy sweep anyone should see).
// Fixed bounds are the point — every node exposes the same buckets, so
// fleet-wide latency is a straight sum of _bucket series.
var latencyBuckets = [...]float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5, 5,
}

// histogram is a fixed-bucket Prometheus histogram: lock-free observes
// (one atomic add on the bucket, one on the sum), cumulative rendering at
// scrape time. counts[i] holds observations ≤ latencyBuckets[i]
// NON-cumulatively; counts[len] is the +Inf overflow. sumNanos accumulates
// in integer nanoseconds so the adds stay atomic.
type histogram struct {
	counts   [len(latencyBuckets) + 1]atomic.Int64
	sumNanos atomic.Int64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], s)
	// SearchFloat64s finds the first bound >= s, which is exactly the
	// le-bucket; i == len means +Inf.
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// write renders the histogram in Prometheus text exposition format:
// cumulative _bucket lines ending in le="+Inf", then _sum and _count.
func (h *histogram) write(w io.Writer, name, help string) error {
	var cum int64
	var b []byte
	b = fmt.Appendf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, le := range latencyBuckets {
		cum += h.counts[i].Load()
		b = fmt.Appendf(b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	b = fmt.Appendf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	b = fmt.Appendf(b, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	b = fmt.Appendf(b, "%s_count %d\n", name, cum)
	_, err := w.Write(b)
	return err
}

// widthBuckets are the fixed bounds of the batch-width histogram: exact
// low counts (1–4, where width 1 means no coalescing happened) then
// coarser steps up to the compute-slot ceiling any realistic burst hits.
var widthBuckets = [...]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// countHistogram is a fixed-bucket histogram over small integer counts —
// the batch-width companion of the duration histogram above, with the
// same lock-free observe and cumulative render.
type countHistogram struct {
	counts [len(widthBuckets) + 1]atomic.Int64
	sum    atomic.Int64
}

// observe records one count.
func (h *countHistogram) observe(v int) {
	i := sort.SearchFloat64s(widthBuckets[:], float64(v))
	h.counts[i].Add(1)
	h.sum.Add(int64(v))
}

// write renders the histogram in Prometheus text exposition format.
func (h *countHistogram) write(w io.Writer, name, help string) error {
	var cum int64
	var b []byte
	b = fmt.Appendf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, le := range widthBuckets {
		cum += h.counts[i].Load()
		b = fmt.Appendf(b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += h.counts[len(widthBuckets)].Load()
	b = fmt.Appendf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	b = fmt.Appendf(b, "%s_sum %d\n", name, h.sum.Load())
	b = fmt.Appendf(b, "%s_count %d\n", name, cum)
	_, err := w.Write(b)
	return err
}

// Metrics aggregates the service's operational counters. All fields are
// safe for concurrent update; the /metrics endpoint renders a snapshot in
// Prometheus text exposition format.
type Metrics struct {
	SessionsCreated   atomic.Int64
	SessionsEvicted   atomic.Int64 // TTL drops from a volatile store (state lost)
	SessionsUnloaded  atomic.Int64 // TTL flushes to a durable store (state kept)
	SessionsRecovered atomic.Int64 // lazy reloads from the store
	SessionsDeleted   atomic.Int64
	// Cluster traffic: sessions handed to a new owner on topology change
	// or misrouted touch, and requests bounced with code not_owner.
	SessionsRelinquished atomic.Int64
	NotOwnerRejects      atomic.Int64

	// Lease fencing. LeasesRenewed counts successful heartbeat renewals,
	// LeasesStolen the takeovers of an unexpired lease this node performed,
	// FencedWritesRefused every write or takeover attempt the lease fence
	// bounced (the deposed-owner signal: a nonzero value during an
	// ownership flap is the fence doing its job).
	LeasesRenewed       atomic.Int64
	LeasesStolen        atomic.Int64
	FencedWritesRefused atomic.Int64
	SelectsServed       atomic.Int64
	SelectCacheHits     atomic.Int64
	// BatchedSelects counts greedy sweeps that went through the
	// cross-session batcher (every member of every dispatched batch,
	// including width-1 batches under light load). SelectBatchWidth is the
	// per-dispatch width distribution: mass above le="1" is coalescing
	// actually happening.
	BatchedSelects   atomic.Int64
	MergesApplied    atomic.Int64
	MergeReplays     atomic.Int64
	PartialAnswers   atomic.Int64 // partial judgment sets journaled (not yet committed)
	RequestsRejected atomic.Int64 // backpressure 503s

	// Worker-model traffic. WorkerRefits counts worker-accuracy
	// re-estimations (one per commit on an em/dawid-skene session with
	// observations); WeightedMerges counts posterior conditionings that
	// used per-worker accuracy estimates instead of the scalar pc
	// (partial submissions recompute the provisional posterior, so a
	// batch answered one judgment at a time contributes one count per
	// recomputation, not one per batch).
	WorkerRefits   atomic.Int64
	WeightedMerges atomic.Int64

	// Event streaming. SubscribersLive is a gauge (subscribes minus
	// detaches); EventsDropped counts events a slow subscriber missed at
	// its drop point, SubscribersDropped the drop-and-mark detachments.
	SubscribersLive    atomic.Int64
	StreamsServed      atomic.Int64
	EventsPublished    atomic.Int64
	EventsDropped      atomic.Int64
	SubscribersDropped atomic.Int64

	// Store traffic, counted by the instrumented store wrapper.
	StorePuts    atomic.Int64
	StoreAppends atomic.Int64
	StoreDeletes atomic.Int64
	StoreErrors  atomic.Int64

	// Deprecated per-node quantile summaries (see latencyTracker).
	SelectLatency latencyTracker
	MergeLatency  latencyTracker

	// Fixed-bucket histograms, aggregatable across the fleet. Select and
	// merge are observed at the handler (whole compute path including the
	// session mutex); store-append is observed inside the instrumented
	// store and is dominated by the fsync on durable stores; lease-renew
	// is one heartbeat renewal round-trip.
	SelectDuration      histogram
	MergeDuration       histogram
	StoreAppendDuration histogram
	LeaseRenewDuration  histogram
	// RefitDuration is one worker-accuracy re-estimation (EM or
	// Dawid–Skene over the session's full observation log), observed
	// inside the merge critical section — its tail is merge latency.
	RefitDuration histogram

	// SelectBatchWidth is the width of each batch the cross-session
	// select coalescer dispatched.
	SelectBatchWidth countHistogram
}

// WritePrometheus renders the snapshot. sessionsLive, leasesHeld, and
// workersTracked are passed in because the gauges belong to the Manager,
// not the counter set.
func (m *Metrics) WritePrometheus(w io.Writer, sessionsLive, leasesHeld, workersTracked int) error {
	counter := func(name, help string, v int64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	out := gauge("crowdfusion_sessions_live", "Sessions currently resident in memory.", float64(sessionsLive)) +
		counter("crowdfusion_sessions_created_total", "Sessions ever created.", m.SessionsCreated.Load()) +
		counter("crowdfusion_sessions_evicted_total", "Sessions dropped by TTL from a volatile store (state lost).", m.SessionsEvicted.Load()) +
		counter("crowdfusion_sessions_unloaded_total", "Sessions flushed to a durable store by TTL (state kept).", m.SessionsUnloaded.Load()) +
		counter("crowdfusion_sessions_recovered_total", "Sessions lazily reloaded from the store after a restart or unload.", m.SessionsRecovered.Load()) +
		counter("crowdfusion_sessions_deleted_total", "Sessions deleted by clients.", m.SessionsDeleted.Load()) +
		counter("crowdfusion_sessions_relinquished_total", "Sessions flushed and handed to a new owner.", m.SessionsRelinquished.Load()) +
		counter("crowdfusion_not_owner_rejects_total", "Requests bounced with code not_owner.", m.NotOwnerRejects.Load()) +
		gauge("crowdfusion_leases_held", "Session write leases this node currently holds.", float64(leasesHeld)) +
		counter("crowdfusion_leases_renewed_total", "Successful lease heartbeat renewals.", m.LeasesRenewed.Load()) +
		counter("crowdfusion_leases_stolen_total", "Unexpired leases this node took over from a deposed owner.", m.LeasesStolen.Load()) +
		counter("crowdfusion_fenced_writes_refused_total", "Writes and takeover attempts refused by the lease fence.", m.FencedWritesRefused.Load()) +
		counter("crowdfusion_store_puts_total", "Session snapshots written to the store.", m.StorePuts.Load()) +
		counter("crowdfusion_store_appends_total", "Ops appended to session logs.", m.StoreAppends.Load()) +
		counter("crowdfusion_store_deletes_total", "Session records deleted from the store.", m.StoreDeletes.Load()) +
		counter("crowdfusion_store_errors_total", "Session store operations that failed.", m.StoreErrors.Load()) +
		counter("crowdfusion_selects_served_total", "Select batches served (including cache hits).", m.SelectsServed.Load()) +
		counter("crowdfusion_select_cache_hits_total", "Selects served from the posterior-version cache.", m.SelectCacheHits.Load()) +
		counter("crowdfusion_batched_selects_total", "Greedy sweeps routed through the cross-session select batcher.", m.BatchedSelects.Load()) +
		counter("crowdfusion_merges_applied_total", "Answer sets merged into posteriors.", m.MergesApplied.Load()) +
		counter("crowdfusion_merge_replays_total", "Idempotent replays of already-applied answer sets.", m.MergeReplays.Load()) +
		counter("crowdfusion_partial_answers_total", "Partial judgment sets journaled against pending batches.", m.PartialAnswers.Load()) +
		gauge("crowdfusion_workers_tracked", "Distinct workers observed across resident sessions.", float64(workersTracked)) +
		counter("crowdfusion_worker_refits_total", "Worker-accuracy re-estimations (EM/Dawid-Skene refits).", m.WorkerRefits.Load()) +
		counter("crowdfusion_weighted_merges_total", "Posterior conditionings using per-worker accuracy estimates.", m.WeightedMerges.Load()) +
		counter("crowdfusion_requests_rejected_total", "Requests rejected by backpressure.", m.RequestsRejected.Load()) +
		gauge("crowdfusion_subscribers_live", "Event-stream subscribers currently attached.", float64(m.SubscribersLive.Load())) +
		counter("crowdfusion_streams_served_total", "Event streams accepted.", m.StreamsServed.Load()) +
		counter("crowdfusion_events_published_total", "Session events published to feeds.", m.EventsPublished.Load()) +
		counter("crowdfusion_events_dropped_total", "Events lost to slow subscribers at their drop point.", m.EventsDropped.Load()) +
		counter("crowdfusion_subscribers_dropped_total", "Subscribers detached for falling behind (drop-and-mark).", m.SubscribersDropped.Load())
	if _, err := io.WriteString(w, out); err != nil {
		return err
	}
	for _, h := range []struct {
		name, help string
		h          *histogram
	}{
		{"crowdfusion_select_duration_seconds", "Select handling time (fixed buckets, fleet-aggregatable).", &m.SelectDuration},
		{"crowdfusion_merge_duration_seconds", "Answer-merge handling time (fixed buckets, fleet-aggregatable).", &m.MergeDuration},
		{"crowdfusion_store_append_duration_seconds", "Op-log append time including fsync on durable stores.", &m.StoreAppendDuration},
		{"crowdfusion_lease_renew_duration_seconds", "Lease heartbeat renewal time against the store.", &m.LeaseRenewDuration},
		{"crowdfusion_refit_duration_seconds", "Worker-accuracy refit time (EM/Dawid-Skene over the observation log).", &m.RefitDuration},
	} {
		if err := h.h.write(w, h.name, h.help); err != nil {
			return err
		}
	}
	if err := m.SelectBatchWidth.write(w, "crowdfusion_select_batch_width",
		"Width of each batch the cross-session select coalescer dispatched."); err != nil {
		return err
	}
	sums := ""
	for _, lt := range []struct {
		name string
		t    *latencyTracker
	}{
		{"crowdfusion_select", &m.SelectLatency},
		{"crowdfusion_merge", &m.MergeLatency},
	} {
		total, p50, p99 := lt.t.quantiles()
		sums += fmt.Sprintf("# HELP %s_latency_seconds (DEPRECATED: use %s_duration_seconds histogram; removed next release) Request latency quantiles over the trailing window.\n", lt.name, lt.name)
		sums += fmt.Sprintf("# TYPE %s_latency_seconds summary\n", lt.name)
		sums += fmt.Sprintf("%s_latency_seconds{quantile=\"0.5\"} %g\n", lt.name, p50.Seconds())
		sums += fmt.Sprintf("%s_latency_seconds{quantile=\"0.99\"} %g\n", lt.name, p99.Seconds())
		sums += fmt.Sprintf("%s_latency_seconds_count %d\n", lt.name, total)
	}
	_, err := io.WriteString(w, sums)
	return err
}

// instrumentedStore decorates a SessionStore with the service's store-op
// counters, so the manager and sessions stay metrics-free.
type instrumentedStore struct {
	inner store.SessionStore
	m     *Metrics
}

func (s instrumentedStore) count(c *atomic.Int64, err error) error {
	c.Add(1)
	s.countErr(err)
	return err
}

// countErr classifies a store failure: a fenced write is the lease gate
// working, not a store failure; everything else lands in StoreErrors.
func (s instrumentedStore) countErr(err error) {
	switch {
	case err == nil:
	case errors.Is(err, store.ErrFenced):
		s.m.FencedWritesRefused.Add(1)
	default:
		s.m.StoreErrors.Add(1)
	}
}

func (s instrumentedStore) Durable() bool { return s.inner.Durable() }

func (s instrumentedStore) Put(rec *store.Record) error {
	return s.count(&s.m.StorePuts, s.inner.Put(rec))
}

func (s instrumentedStore) Append(id string, op store.Op) error {
	start := time.Now()
	err := s.inner.Append(id, op)
	s.m.StoreAppendDuration.observe(time.Since(start))
	return s.count(&s.m.StoreAppends, err)
}

func (s instrumentedStore) Get(id string) (*store.Record, error) {
	rec, err := s.inner.Get(id)
	// Get misses are routine (unknown IDs probe the store); only count
	// real failures.
	if err != nil && !errors.Is(err, store.ErrNotExist) && !errors.Is(err, store.ErrBadID) {
		s.m.StoreErrors.Add(1)
	}
	return rec, err
}

func (s instrumentedStore) Delete(id string) (bool, error) {
	ok, err := s.inner.Delete(id)
	if err == nil {
		// Only a delete that actually ran counts as store traffic; a failed
		// one would otherwise inflate the deletes counter while its error
		// vanished.
		s.m.StoreDeletes.Add(1)
	} else if !errors.Is(err, store.ErrBadID) {
		s.countErr(err)
	}
	return ok, err
}

func (s instrumentedStore) List() ([]string, error) {
	ids, err := s.inner.List()
	if err != nil {
		s.m.StoreErrors.Add(1)
	}
	return ids, err
}

func (s instrumentedStore) Close() error { return s.inner.Close() }

func (s instrumentedStore) AcquireLease(id, owner string, ttl time.Duration, now time.Time) (store.Lease, error) {
	l, err := s.inner.AcquireLease(id, owner, ttl, now)
	var held *store.LeaseHeldError
	if err != nil && !errors.As(err, &held) {
		// A live holder is the fence negotiating ownership, not a failure;
		// anything else (I/O, corruption) is.
		s.countErr(err)
	}
	return l, err
}

func (s instrumentedStore) StealLease(id, owner string, ttl time.Duration, now time.Time) (store.Lease, error) {
	l, err := s.inner.StealLease(id, owner, ttl, now)
	if err == nil {
		s.m.LeasesStolen.Add(1)
	} else {
		s.countErr(err)
	}
	return l, err
}

func (s instrumentedStore) RenewLease(id, owner string, epoch uint64, ttl time.Duration, now time.Time) (store.Lease, error) {
	start := time.Now()
	l, err := s.inner.RenewLease(id, owner, epoch, ttl, now)
	s.m.LeaseRenewDuration.observe(time.Since(start))
	if err == nil {
		s.m.LeasesRenewed.Add(1)
	} else {
		// ErrFenced (lease superseded) feeds FencedWritesRefused via
		// countErr; real store trouble feeds StoreErrors.
		s.countErr(err)
	}
	return l, err
}

func (s instrumentedStore) ReleaseLease(id, owner string, epoch uint64) error {
	err := s.inner.ReleaseLease(id, owner, epoch)
	// Losing the release race (superseded by a higher epoch) is routine
	// handoff traffic; count everything else.
	if err != nil && !errors.Is(err, store.ErrFenced) {
		s.m.StoreErrors.Add(1)
	}
	return err
}

func (s instrumentedStore) GetLease(id string) (*store.Lease, error) {
	l, err := s.inner.GetLease(id)
	if err != nil {
		s.m.StoreErrors.Add(1)
	}
	return l, err
}
