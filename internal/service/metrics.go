package service

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdfusion/internal/store"
)

// latencyWindow is how many recent observations each latency tracker keeps
// for quantile estimation. A fixed ring keeps the tracker O(1) per request
// and allocation-free in steady state; quantiles are over the trailing
// window, which is what an operator watching a live service wants anyway.
const latencyWindow = 1024

// latencyTracker records request durations and reports count, p50 and p99
// over the trailing window.
type latencyTracker struct {
	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	n     int   // filled entries, up to latencyWindow
	next  int   // next write position
	total int64 // observations ever
}

// observe records one duration.
func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.next] = d
	l.next = (l.next + 1) % latencyWindow
	if l.n < latencyWindow {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// quantiles returns the observation count and (p50, p99) over the window.
func (l *latencyTracker) quantiles() (total int64, p50, p99 time.Duration) {
	l.mu.Lock()
	n := l.n
	buf := make([]time.Duration, n)
	copy(buf, l.ring[:n])
	total = l.total
	l.mu.Unlock()
	if n == 0 {
		return total, 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	// Nearest-rank on the sorted window; index clamped so p99 of a small
	// window degrades to the max.
	idx := func(q float64) int {
		i := int(q * float64(n))
		if i >= n {
			i = n - 1
		}
		return i
	}
	return total, buf[idx(0.50)], buf[idx(0.99)]
}

// Metrics aggregates the service's operational counters. All fields are
// safe for concurrent update; the /metrics endpoint renders a snapshot in
// Prometheus text exposition format.
type Metrics struct {
	SessionsCreated   atomic.Int64
	SessionsEvicted   atomic.Int64 // TTL drops from a volatile store (state lost)
	SessionsUnloaded  atomic.Int64 // TTL flushes to a durable store (state kept)
	SessionsRecovered atomic.Int64 // lazy reloads from the store
	SessionsDeleted   atomic.Int64
	// Cluster traffic: sessions handed to a new owner on topology change
	// or misrouted touch, and requests bounced with code not_owner.
	SessionsRelinquished atomic.Int64
	NotOwnerRejects      atomic.Int64

	// Lease fencing. LeasesRenewed counts successful heartbeat renewals,
	// LeasesStolen the takeovers of an unexpired lease this node performed,
	// FencedWritesRefused every write or takeover attempt the lease fence
	// bounced (the deposed-owner signal: a nonzero value during an
	// ownership flap is the fence doing its job).
	LeasesRenewed       atomic.Int64
	LeasesStolen        atomic.Int64
	FencedWritesRefused atomic.Int64
	SelectsServed       atomic.Int64
	SelectCacheHits     atomic.Int64
	MergesApplied       atomic.Int64
	MergeReplays        atomic.Int64
	PartialAnswers      atomic.Int64 // partial judgment sets journaled (not yet committed)
	RequestsRejected    atomic.Int64 // backpressure 503s

	// Event streaming. SubscribersLive is a gauge (subscribes minus
	// detaches); EventsDropped counts events a slow subscriber missed at
	// its drop point, SubscribersDropped the drop-and-mark detachments.
	SubscribersLive    atomic.Int64
	StreamsServed      atomic.Int64
	EventsPublished    atomic.Int64
	EventsDropped      atomic.Int64
	SubscribersDropped atomic.Int64

	// Store traffic, counted by the instrumented store wrapper.
	StorePuts    atomic.Int64
	StoreAppends atomic.Int64
	StoreDeletes atomic.Int64
	StoreErrors  atomic.Int64

	SelectLatency latencyTracker
	MergeLatency  latencyTracker
}

// WritePrometheus renders the snapshot. sessionsLive and leasesHeld are
// passed in because the gauges belong to the Manager, not the counter set.
func (m *Metrics) WritePrometheus(w io.Writer, sessionsLive, leasesHeld int) error {
	counter := func(name, help string, v int64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	out := gauge("crowdfusion_sessions_live", "Sessions currently resident in memory.", float64(sessionsLive)) +
		counter("crowdfusion_sessions_created_total", "Sessions ever created.", m.SessionsCreated.Load()) +
		counter("crowdfusion_sessions_evicted_total", "Sessions dropped by TTL from a volatile store (state lost).", m.SessionsEvicted.Load()) +
		counter("crowdfusion_sessions_unloaded_total", "Sessions flushed to a durable store by TTL (state kept).", m.SessionsUnloaded.Load()) +
		counter("crowdfusion_sessions_recovered_total", "Sessions lazily reloaded from the store after a restart or unload.", m.SessionsRecovered.Load()) +
		counter("crowdfusion_sessions_deleted_total", "Sessions deleted by clients.", m.SessionsDeleted.Load()) +
		counter("crowdfusion_sessions_relinquished_total", "Sessions flushed and handed to a new owner.", m.SessionsRelinquished.Load()) +
		counter("crowdfusion_not_owner_rejects_total", "Requests bounced with code not_owner.", m.NotOwnerRejects.Load()) +
		gauge("crowdfusion_leases_held", "Session write leases this node currently holds.", float64(leasesHeld)) +
		counter("crowdfusion_leases_renewed_total", "Successful lease heartbeat renewals.", m.LeasesRenewed.Load()) +
		counter("crowdfusion_leases_stolen_total", "Unexpired leases this node took over from a deposed owner.", m.LeasesStolen.Load()) +
		counter("crowdfusion_fenced_writes_refused_total", "Writes and takeover attempts refused by the lease fence.", m.FencedWritesRefused.Load()) +
		counter("crowdfusion_store_puts_total", "Session snapshots written to the store.", m.StorePuts.Load()) +
		counter("crowdfusion_store_appends_total", "Ops appended to session logs.", m.StoreAppends.Load()) +
		counter("crowdfusion_store_deletes_total", "Session records deleted from the store.", m.StoreDeletes.Load()) +
		counter("crowdfusion_store_errors_total", "Session store operations that failed.", m.StoreErrors.Load()) +
		counter("crowdfusion_selects_served_total", "Select batches served (including cache hits).", m.SelectsServed.Load()) +
		counter("crowdfusion_select_cache_hits_total", "Selects served from the posterior-version cache.", m.SelectCacheHits.Load()) +
		counter("crowdfusion_merges_applied_total", "Answer sets merged into posteriors.", m.MergesApplied.Load()) +
		counter("crowdfusion_merge_replays_total", "Idempotent replays of already-applied answer sets.", m.MergeReplays.Load()) +
		counter("crowdfusion_partial_answers_total", "Partial judgment sets journaled against pending batches.", m.PartialAnswers.Load()) +
		counter("crowdfusion_requests_rejected_total", "Requests rejected by backpressure.", m.RequestsRejected.Load()) +
		gauge("crowdfusion_subscribers_live", "Event-stream subscribers currently attached.", float64(m.SubscribersLive.Load())) +
		counter("crowdfusion_streams_served_total", "Event streams accepted.", m.StreamsServed.Load()) +
		counter("crowdfusion_events_published_total", "Session events published to feeds.", m.EventsPublished.Load()) +
		counter("crowdfusion_events_dropped_total", "Events lost to slow subscribers at their drop point.", m.EventsDropped.Load()) +
		counter("crowdfusion_subscribers_dropped_total", "Subscribers detached for falling behind (drop-and-mark).", m.SubscribersDropped.Load())
	for _, lt := range []struct {
		name string
		t    *latencyTracker
	}{
		{"crowdfusion_select", &m.SelectLatency},
		{"crowdfusion_merge", &m.MergeLatency},
	} {
		total, p50, p99 := lt.t.quantiles()
		out += fmt.Sprintf("# HELP %s_latency_seconds Request latency quantiles over the trailing window.\n", lt.name)
		out += fmt.Sprintf("# TYPE %s_latency_seconds summary\n", lt.name)
		out += fmt.Sprintf("%s_latency_seconds{quantile=\"0.5\"} %g\n", lt.name, p50.Seconds())
		out += fmt.Sprintf("%s_latency_seconds{quantile=\"0.99\"} %g\n", lt.name, p99.Seconds())
		out += fmt.Sprintf("%s_latency_seconds_count %d\n", lt.name, total)
	}
	_, err := io.WriteString(w, out)
	return err
}

// instrumentedStore decorates a SessionStore with the service's store-op
// counters, so the manager and sessions stay metrics-free.
type instrumentedStore struct {
	inner store.SessionStore
	m     *Metrics
}

func (s instrumentedStore) count(c *atomic.Int64, err error) error {
	c.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrFenced):
		// A fenced write is the lease gate working, not a store failure.
		s.m.FencedWritesRefused.Add(1)
	default:
		s.m.StoreErrors.Add(1)
	}
	return err
}

func (s instrumentedStore) Durable() bool { return s.inner.Durable() }

func (s instrumentedStore) Put(rec *store.Record) error {
	return s.count(&s.m.StorePuts, s.inner.Put(rec))
}

func (s instrumentedStore) Append(id string, op store.Op) error {
	return s.count(&s.m.StoreAppends, s.inner.Append(id, op))
}

func (s instrumentedStore) Get(id string) (*store.Record, error) {
	rec, err := s.inner.Get(id)
	// Get misses are routine (unknown IDs probe the store); only count
	// real failures.
	if err != nil && !errors.Is(err, store.ErrNotExist) && !errors.Is(err, store.ErrBadID) {
		s.m.StoreErrors.Add(1)
	}
	return rec, err
}

func (s instrumentedStore) Delete(id string) (bool, error) {
	ok, err := s.inner.Delete(id)
	_ = s.count(&s.m.StoreDeletes, err)
	return ok, err
}

func (s instrumentedStore) List() ([]string, error) { return s.inner.List() }

func (s instrumentedStore) Close() error { return s.inner.Close() }

// Lease operations pass through uncounted except for the renewal and
// fence signals the manager cares about operationally.
func (s instrumentedStore) AcquireLease(id, owner string, ttl time.Duration, now time.Time) (store.Lease, error) {
	return s.inner.AcquireLease(id, owner, ttl, now)
}

func (s instrumentedStore) StealLease(id, owner string, ttl time.Duration, now time.Time) (store.Lease, error) {
	l, err := s.inner.StealLease(id, owner, ttl, now)
	if err == nil {
		s.m.LeasesStolen.Add(1)
	}
	return l, err
}

func (s instrumentedStore) RenewLease(id, owner string, epoch uint64, ttl time.Duration, now time.Time) (store.Lease, error) {
	l, err := s.inner.RenewLease(id, owner, epoch, ttl, now)
	if err == nil {
		s.m.LeasesRenewed.Add(1)
	}
	return l, err
}

func (s instrumentedStore) ReleaseLease(id, owner string, epoch uint64) error {
	return s.inner.ReleaseLease(id, owner, epoch)
}

func (s instrumentedStore) GetLease(id string) (*store.Lease, error) {
	return s.inner.GetLease(id)
}
