package service

// metrics_test.go — the /metrics exposition contract, checked by parsing
// the output the way a Prometheus scraper would: every sample belongs to a
// family that declared # HELP and # TYPE first, every name is legal, every
// histogram's buckets are cumulative and end at le="+Inf" with
// _count == the +Inf bucket, and a scrape racing live traffic stays
// well-formed (run under -race).

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string // full sample name including _bucket/_sum/_count suffix
	labels string // raw label block, "" when absent
	value  float64
}

// parsePrometheus parses text exposition format strictly: unknown lines,
// samples before their family's HELP/TYPE, or malformed values fail the
// test immediately.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := make(map[string]*promFamily)
	var current *promFamily
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if families[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			current = &promFamily{name: name, help: help}
			families[name] = current
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if current == nil || current.name != name {
				t.Fatalf("line %d: TYPE for %s does not follow its HELP", ln+1, name)
			}
			if current.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary":
				current.typ = typ
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, typ)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unrecognized comment line %q", ln+1, line)
		default:
			nameAndLabels, valueStr, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("line %d: sample without value: %q", ln+1, line)
			}
			value, err := strconv.ParseFloat(valueStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valueStr, err)
			}
			name, labels := nameAndLabels, ""
			if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
				name = nameAndLabels[:i]
				labels = nameAndLabels[i:]
				if !strings.HasSuffix(labels, "}") {
					t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
				}
			}
			if current == nil {
				t.Fatalf("line %d: sample %s before any HELP/TYPE", ln+1, name)
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if base != current.name && name != current.name {
				t.Fatalf("line %d: sample %s inside family %s", ln+1, name, current.name)
			}
			current.samples = append(current.samples, promSample{name: name, labels: labels, value: value})
		}
	}
	return families
}

// validMetricName is the Prometheus data-model name rule:
// [a-zA-Z_:][a-zA-Z0-9_:]*
func validMetricName(name string) bool {
	for i, r := range name {
		letter := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return len(name) > 0
}

// TestMetricsExpositionRoundtrip drives real traffic through a server,
// scrapes /metrics, and holds the output to the exposition contract.
func TestMetricsExpositionRoundtrip(t *testing.T) {
	svc := NewServer(Config{})
	defer svc.Close()
	m := svc.Metrics()

	// Traffic so the histograms and counters are non-zero.
	ctx := context.Background()
	created, err := svc.Manager().Create(ctx, &CreateSessionRequest{
		Marginals: []float64{0.5, 0.63, 0.58, 0.49},
		Pc:        0.8, K: 2, Budget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Manager().Get(ctx, created.ID())
	if err != nil {
		t.Fatal(err)
	}
	sel, _, err := sess.Select(ctx, svc.Manager().Now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SelectDuration.observe(3 * time.Millisecond)
	m.MergeDuration.observe(40 * time.Millisecond)
	m.MergeDuration.observe(10 * time.Second) // lands in +Inf
	_ = sel

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf, svc.Manager().Len(), svc.Manager().LeasesHeld(), svc.Manager().WorkersTracked()); err != nil {
		t.Fatal(err)
	}
	families := parsePrometheus(t, buf.String())
	if len(families) == 0 {
		t.Fatal("no metric families exposed")
	}

	for name, fam := range families {
		if !validMetricName(name) {
			t.Errorf("illegal metric name %q", name)
		}
		if fam.typ == "" {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
		if len(fam.samples) == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
		for _, s := range fam.samples {
			if !validMetricName(s.name) {
				t.Errorf("illegal sample name %q in family %s", s.name, name)
			}
		}
		if strings.HasSuffix(name, "_total") && fam.typ != "counter" {
			t.Errorf("family %s ends in _total but has TYPE %s", name, fam.typ)
		}
		if fam.typ == "histogram" {
			checkHistogramFamily(t, fam)
		}
		if fam.typ == "summary" && !strings.Contains(fam.help, "DEPRECATED") {
			t.Errorf("summary %s is not marked DEPRECATED in HELP", name)
		}
	}

	// The four duration histograms must all be present.
	for _, want := range []string{
		"crowdfusion_select_duration_seconds",
		"crowdfusion_merge_duration_seconds",
		"crowdfusion_store_append_duration_seconds",
		"crowdfusion_lease_renew_duration_seconds",
	} {
		fam := families[want]
		if fam == nil {
			t.Fatalf("histogram family %s missing from exposition", want)
		}
		if fam.typ != "histogram" {
			t.Fatalf("family %s has TYPE %s, want histogram", want, fam.typ)
		}
	}

	// The observation past the last bound is only in +Inf and _count.
	merge := families["crowdfusion_merge_duration_seconds"]
	var lastFinite, inf, count float64
	for _, s := range merge.samples {
		switch {
		case s.name == "crowdfusion_merge_duration_seconds_bucket" && s.labels == `{le="+Inf"}`:
			inf = s.value
		case s.name == "crowdfusion_merge_duration_seconds_bucket":
			lastFinite = s.value
		case s.name == "crowdfusion_merge_duration_seconds_count":
			count = s.value
		}
	}
	if inf != 2 || count != 2 || lastFinite != 1 {
		t.Fatalf("merge histogram: last finite %g, +Inf %g, count %g; want 1, 2, 2",
			lastFinite, inf, count)
	}
}

// checkHistogramFamily asserts cumulative buckets ending at +Inf with
// _count equal to the +Inf bucket and a _sum sample present.
func checkHistogramFamily(t *testing.T, fam *promFamily) {
	t.Helper()
	var buckets []promSample
	var count, sum *promSample
	for i, s := range fam.samples {
		switch s.name {
		case fam.name + "_bucket":
			buckets = append(buckets, s)
		case fam.name + "_count":
			count = &fam.samples[i]
		case fam.name + "_sum":
			sum = &fam.samples[i]
		default:
			t.Errorf("histogram %s has stray sample %s", fam.name, s.name)
		}
	}
	if len(buckets) == 0 || count == nil || sum == nil {
		t.Errorf("histogram %s incomplete: %d buckets, count %v, sum %v",
			fam.name, len(buckets), count != nil, sum != nil)
		return
	}
	prev := -1.0
	prevLe := ""
	for _, b := range buckets {
		if b.value < prev {
			t.Errorf("histogram %s not cumulative: %s=%g after %s=%g",
				fam.name, b.labels, b.value, prevLe, prev)
		}
		prev, prevLe = b.value, b.labels
	}
	last := buckets[len(buckets)-1]
	if last.labels != `{le="+Inf"}` {
		t.Errorf("histogram %s buckets end at %s, want le=\"+Inf\"", fam.name, last.labels)
	}
	if count.value != last.value {
		t.Errorf("histogram %s _count %g != +Inf bucket %g", fam.name, count.value, last.value)
	}
}

// TestMetricsScrapeRaceClean scrapes continuously while observers hammer
// every histogram and tracker; under -race this proves the exposition path
// is safe against live traffic, and every scrape must still parse.
func TestMetricsScrapeRaceClean(t *testing.T) {
	var m Metrics
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * 37 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.SelectDuration.observe(d)
				m.MergeDuration.observe(d * 2)
				m.StoreAppendDuration.observe(d * 3)
				m.LeaseRenewDuration.observe(d * 5)
				m.SelectLatency.observe(d)
				m.MergeLatency.observe(d)
				m.SelectsServed.Add(1)
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := m.WritePrometheus(&buf, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		families := parsePrometheus(t, buf.String())
		for _, fam := range families {
			if fam.typ == "histogram" {
				checkHistogramFamily(t, fam)
			}
		}
	}
	close(stop)
	wg.Wait()
}
