package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"crowdfusion/internal/cluster"
	"crowdfusion/internal/store"
)

// switchOwnership is a mutable Ownership for tests: sessions are owned by
// whichever node the switch currently names, computed per ID by a pluggable
// partition function.
type switchOwnership struct {
	mu    sync.Mutex
	self  string
	owner func(id string) string
}

func (o *switchOwnership) Owns(id string) bool { return o.Owner(id) == o.self }

func (o *switchOwnership) Owner(id string) string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.owner(id)
}

func (o *switchOwnership) setOwner(f func(id string) string) {
	o.mu.Lock()
	o.owner = f
	o.mu.Unlock()
}

func ownAll(string) string { return "http://self:1" }

// TestCreateMintsOwnedIDs: under a partition that rejects most of the ID
// space, Create must still return IDs this node owns — placement is
// rejection sampling over the uniform ID space.
func TestCreateMintsOwnedIDs(t *testing.T) {
	// Own only IDs whose first hex digit is 0..3 (a quarter of the space).
	own := &switchOwnership{self: "http://self:1", owner: func(id string) string {
		if id[0] <= '3' {
			return "http://self:1"
		}
		return "http://other:2"
	}}
	m := NewManager(ManagerConfig{Ownership: own})
	defer m.Close()
	for i := 0; i < 8; i++ {
		s, err := m.Create(context.Background(), testCreateReq())
		if err != nil {
			t.Fatal(err)
		}
		if !own.Owns(s.ID()) {
			t.Fatalf("Create minted non-owned id %s", s.ID())
		}
	}
}

// TestGetRedirectsAndRelinquishes: losing ownership of a resident session
// must flush it, drop it from memory, and answer with *NotOwnerError;
// regaining ownership must reload the identical state from the store.
func TestGetRedirectsAndRelinquishes(t *testing.T) {
	own := &switchOwnership{self: "http://self:1", owner: ownAll}
	dir := t.TempDir()
	m := newFileManager(t, dir, ManagerConfig{Ownership: own})
	defer m.Close()

	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	sel, _, err := s.Select(context.Background(), m.Now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(context.Background(), m.Now(), &AnswersRequest{
		Tasks: sel.Tasks, Answers: []bool{true, false}, Version: &sel.Version,
	}); err != nil {
		t.Fatal(err)
	}
	before := fingerprint(s, m.Now())

	// Ownership moves away: the next touch redirects and relinquishes.
	own.setOwner(func(string) string { return "http://other:2" })
	_, err = m.Get(context.Background(), id)
	var notOwner *NotOwnerError
	if !errors.As(err, &notOwner) || notOwner.Owner != "http://other:2" {
		t.Fatalf("Get after ownership change = %v, want NotOwnerError{Owner: other}", err)
	}
	if m.Len() != 0 {
		t.Fatalf("relinquished session still counted: Len = %d", m.Len())
	}
	// The relinquished instance is retired: a stale handler pointer cannot
	// commit to it anymore.
	if _, _, err := s.Select(context.Background(), m.Now(), 0); !errors.Is(err, errSessionRetired) {
		t.Fatalf("stale instance Select = %v, want errSessionRetired", err)
	}
	// Delete is gated the same way.
	if _, err := m.Delete(context.Background(), id); !errors.As(err, &notOwner) {
		t.Fatalf("Delete on non-owned = %v, want NotOwnerError", err)
	}

	// Ownership returns: the session reloads from the store bit-identically
	// — the same record-replay path a crash recovery takes.
	own.setOwner(ownAll)
	restored, err := m.Get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if restored == s {
		t.Fatal("Get returned the retired instance instead of a reload")
	}
	requireIdentical(t, fingerprint(restored, m.Now()), before)
}

// TestRelinquishNotOwned: a topology change hands off exactly the re-homed
// resident sessions.
func TestRelinquishNotOwned(t *testing.T) {
	own := &switchOwnership{self: "http://self:1", owner: ownAll}
	m := newFileManager(t, t.TempDir(), ManagerConfig{Ownership: own})
	defer m.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		s, err := m.Create(context.Background(), testCreateReq())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	// Re-home the sessions whose first hex digit is even.
	moved := 0
	for _, id := range ids {
		if id[0]%2 == 0 {
			moved++
		}
	}
	own.setOwner(func(id string) string {
		if id[0]%2 == 0 {
			return "http://other:2"
		}
		return "http://self:1"
	})
	if got := m.RelinquishNotOwned(); got != moved {
		t.Fatalf("RelinquishNotOwned = %d, want %d", got, moved)
	}
	if m.Len() != len(ids)-moved {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ids)-moved)
	}
	// Still-owned sessions stayed resident and serve without a reload.
	for _, id := range ids {
		if id[0]%2 != 0 {
			if _, err := m.Get(context.Background(), id); err != nil {
				t.Fatalf("owned session %s unavailable after rebalance: %v", id, err)
			}
		}
	}
}

// TestRingIsManagerOwnership wires a real cluster.Ring as the manager's
// Ownership and checks the interfaces actually meet: created sessions land
// on self, foreign IDs redirect to the ring's owner.
func TestRingIsManagerOwnership(t *testing.T) {
	ring, err := cluster.New(cluster.Config{
		Self:  "http://a:1",
		Peers: []string{"http://a:1", "http://b:2", "http://c:3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{Ownership: ring, Store: store.NewMemory()})
	defer m.Close()

	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Owns(s.ID()) {
		t.Fatalf("created session %s not owned by self per ring", s.ID())
	}
	// Find an ID the ring places elsewhere and probe it.
	for i := 0; ; i++ {
		id, err := newID()
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owns(id) {
			continue
		}
		_, err = m.Get(context.Background(), id)
		var notOwner *NotOwnerError
		if !errors.As(err, &notOwner) || notOwner.Owner != ring.Owner(id) {
			t.Fatalf("Get(foreign id) = %v, want NotOwnerError{%s}", err, ring.Owner(id))
		}
		break
	}
}
