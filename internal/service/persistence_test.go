package service

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdfusion/internal/dist"
	"crowdfusion/internal/store"
)

// newFileManager builds a manager over a file store in dir. Closing is the
// caller's choice: crash tests deliberately abandon the manager without
// Close, because an acknowledged merge must not depend on a clean exit.
func newFileManager(t *testing.T, dir string, cfg ManagerConfig) *Manager {
	t.Helper()
	fs, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = fs
	return NewManager(cfg)
}

// sessionFingerprint captures everything the acceptance criteria require
// to survive a crash bit-for-bit.
type sessionFingerprint struct {
	info    SessionInfo
	worlds  []dist.World
	probs   []float64
	entropy float64
}

func fingerprint(s *Session, now time.Time) sessionFingerprint {
	p := s.Posterior()
	return sessionFingerprint{
		info:    s.Info(now, true),
		worlds:  append([]dist.World(nil), p.Worlds()...),
		probs:   append([]float64(nil), p.Probs()...),
		entropy: p.Entropy(),
	}
}

// requireIdentical asserts two fingerprints match exactly — float equality,
// not tolerance: recovery replays the same arithmetic, so the bits agree.
func requireIdentical(t *testing.T, got, want sessionFingerprint) {
	t.Helper()
	if !reflect.DeepEqual(got.info, want.info) {
		t.Fatalf("session info diverged after recovery:\n got %+v\nwant %+v", got.info, want.info)
	}
	if !reflect.DeepEqual(got.worlds, want.worlds) {
		t.Fatalf("posterior support diverged after recovery")
	}
	if !reflect.DeepEqual(got.probs, want.probs) {
		t.Fatalf("posterior probabilities diverged after recovery:\n got %v\nwant %v", got.probs, want.probs)
	}
	if got.entropy != want.entropy {
		t.Fatalf("entropy diverged after recovery: %v != %v", got.entropy, want.entropy)
	}
}

// runRounds drives n select→merge rounds against a session, answering
// deterministically, and returns the last answer set submitted.
func runRounds(t *testing.T, s *Session, now time.Time, n int) *AnswersRequest {
	t.Helper()
	var last *AnswersRequest
	for i := 0; i < n; i++ {
		sel, _, err := s.Select(context.Background(), now, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Done || len(sel.Tasks) == 0 {
			t.Fatalf("round %d: selection done early", i)
		}
		answers := make([]bool, len(sel.Tasks))
		for j, f := range sel.Tasks {
			answers[j] = f%2 == 0
		}
		v := sel.Version
		last = &AnswersRequest{Tasks: sel.Tasks, Answers: answers, Version: &v}
		if resp, err := s.Merge(context.Background(), now, last); err != nil || !resp.Merged {
			t.Fatalf("round %d: merge = %+v, %v", i, resp, err)
		}
	}
	return last
}

// TestManagerCrashRecoveryBitIdentical is the acceptance kill-and-restart
// test at the manager level: merges acknowledged by one manager, abandoned
// without any shutdown (the SIGKILL analogue — nothing was flushed), must
// be served bit-identically by a second manager over the same directory,
// and an idempotent replay of the last answer set must not double-spend.
func TestManagerCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)

	m1 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	s1, err := m1.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	last := runRounds(t, s1, now, 2)
	want := fingerprint(s1, now)
	// No m1.Close(): the process just died.

	m2 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	defer m2.Close()
	s2, err := m2.Get(context.Background(), s1.ID())
	if err != nil {
		t.Fatalf("recovery Get: %v", err)
	}
	if s2 == s1 {
		t.Fatal("second manager returned the first manager's session object")
	}
	requireIdentical(t, fingerprint(s2, now), want)

	// Idempotent replay of the last acknowledged answer set: recognized
	// from the recovered merge log, not re-applied.
	resp, err := s2.Merge(context.Background(), now, last)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Merged {
		t.Fatal("replayed answer set was re-applied after recovery")
	}
	if resp.Spent != want.info.Spent || resp.Version != want.info.Version {
		t.Fatalf("replay double-spent: %+v vs %+v", resp.SessionInfo, want.info)
	}

	// The loop continues where it left off: the next round merges cleanly.
	runRounds(t, s2, now, 1)
}

// TestManagerCrashRecoveryExplicitJoint covers the other prior path: a
// correlated prior sent as an explicit wire joint (raw, unnormalized
// weights) must round-trip through the store and replay bit-identically.
func TestManagerCrashRecoveryExplicitJoint(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	_, prior := dist.RunningExample()
	jw := NewWireJoint(prior)
	// Unnormalized weights exercise the raw-prior storage: the store must
	// keep what the client sent, not a renormalization of it.
	for i := range jw.Probs {
		jw.Probs[i] *= 3
	}
	req := &CreateSessionRequest{Joint: &jw, Pc: 0.8, K: 2, Budget: 8}

	m1 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	s1, err := m1.Create(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, s1, now, 2)
	want := fingerprint(s1, now)

	m2 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	defer m2.Close()
	s2, err := m2.Get(context.Background(), s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fingerprint(s2, now), want)
}

// TestManagerCrashRecoveryFreshSession: a session with zero merges (only
// the creation snapshot) recovers too — creation itself is durable.
func TestManagerCrashRecoveryFreshSession(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	m1 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	s1, err := m1.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(s1, now)

	m2 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	defer m2.Close()
	s2, err := m2.Get(context.Background(), s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fingerprint(s2, now), want)
}

// TestManagerDoneLatchSurvivesRestart: a session whose last selection
// proved nothing uncertain remains (the done latch) reports Done after
// recovery without re-running the selection sweep.
func TestManagerDoneLatchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	m1 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	// A certain prior: one world. The first selection finds no task with
	// positive utility and latches done.
	s1, err := m1.Create(context.Background(), &CreateSessionRequest{
		Marginals: []float64{1, 1, 1}, Pc: 0.8, K: 2, Budget: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, _, err := s1.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Done {
		t.Fatalf("certain prior selected tasks: %+v", sel)
	}

	m2 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	defer m2.Close()
	s2, err := m2.Get(context.Background(), s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if info := s2.Info(now, false); !info.Done {
		t.Fatalf("done latch lost across restart: %+v", info)
	}
}

// TestManagerTTLUnloadReloadsExactly is the eviction round-trip edge case:
// over a durable store the janitor unloads (flushes) instead of dropping,
// and the next touch reloads the identical session.
func TestManagerTTLUnloadReloadsExactly(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := newFileManager(t, dir, ManagerConfig{TTL: time.Minute, now: clk.now})
	defer m.Close()
	var unloads, drops int
	m.evicted = func(n int, dropped bool) {
		if dropped {
			drops += n
		} else {
			unloads += n
		}
	}

	s, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, s, clk.now(), 1)
	want := fingerprint(s, clk.now())

	clk.advance(2 * time.Minute)
	if n := m.Sweep(clk.now()); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if unloads != 1 || drops != 0 {
		t.Fatalf("eviction hooks: unloads=%d drops=%d", unloads, drops)
	}
	if m.Len() != 0 {
		t.Fatalf("Len after unload = %d", m.Len())
	}

	// The next touch reloads lazily — same state, not an expired error.
	got, err := m.Get(context.Background(), s.ID())
	if err != nil {
		t.Fatalf("Get after unload: %v", err)
	}
	if got == s {
		t.Fatal("unloaded session object was cached")
	}
	// LastAccess moved (the reload is an access), so compare it apart.
	now := clk.now()
	requireIdentical(t, fingerprint(got, now), sessionFingerprint{
		info:    want.info,
		worlds:  want.worlds,
		probs:   want.probs,
		entropy: want.entropy,
	})
	if m.Len() != 1 {
		t.Fatalf("Len after reload = %d", m.Len())
	}
}

// TestManagerUnloadRetiresStalePointers: a handler that obtained a session
// pointer before the janitor unloaded it must not be able to commit a
// merge to the orphan instance (which the manager's map no longer serves).
// The orphan refuses with a retired error, and re-resolving through the
// manager lands on the reloaded successor with the full history.
func TestManagerUnloadRetiresStalePointers(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := newFileManager(t, dir, ManagerConfig{TTL: time.Minute, now: clk.now})
	defer m.Close()

	s1, err := m.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	last := runRounds(t, s1, clk.now(), 1)

	clk.advance(2 * time.Minute)
	if n := m.Sweep(clk.now()); n != 1 {
		t.Fatalf("Sweep evicted %d", n)
	}

	// The stale pointer refuses mutations…
	if _, err := s1.Merge(context.Background(), clk.now(), last); !errors.Is(err, errSessionRetired) {
		t.Fatalf("merge on retired instance = %v, want errSessionRetired", err)
	}
	if _, _, err := s1.Select(context.Background(), clk.now(), 0); !errors.Is(err, errSessionRetired) {
		t.Fatalf("select on retired instance = %v, want errSessionRetired", err)
	}
	// …and the re-resolved instance serves the full history: the replayed
	// answer set is recognized as already applied.
	s2, err := m.Get(context.Background(), s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s2.Merge(context.Background(), clk.now(), last)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Merged {
		t.Fatal("successor re-applied the already-merged answer set")
	}
}

// TestManagerConcurrentMergesFileStore races merges over many sessions
// against one file store under -race: per-session serialization plus
// per-stripe store locking must keep every log consistent, and a restart
// must recover exactly what the live managers acknowledged.
func TestManagerConcurrentMergesFileStore(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	m := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})

	const sessions = 6
	ids := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := testCreateReq()
			req.Budget = 6
			s, err := m.Create(context.Background(), req)
			if err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			ids[i] = s.ID()
			// Two goroutines hammer the same session; version conflicts
			// are expected, lost or doubled merges are not.
			var inner sync.WaitGroup
			for w := 0; w < 2; w++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for r := 0; r < 6; r++ {
						sel, _, err := s.Select(context.Background(), now, 0)
						if err != nil || sel.Done || len(sel.Tasks) == 0 {
							return
						}
						answers := make([]bool, len(sel.Tasks))
						v := sel.Version
						_, err = s.Merge(context.Background(), now, &AnswersRequest{Tasks: sel.Tasks, Answers: answers, Version: &v})
						if err != nil && !errors.Is(err, ErrVersionConflict) && !errors.Is(err, ErrBudgetExhausted) {
							t.Errorf("merge: %v", err)
							return
						}
					}
				}()
			}
			inner.Wait()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	fresh := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	defer fresh.Close()
	for _, id := range ids {
		live, err := m.Get(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := fresh.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("recovering %s: %v", id, err)
		}
		requireIdentical(t, fingerprint(rec, now), fingerprint(live, now))
	}
}

// TestServerExpiredSessionOverTheWire: over a volatile store, a TTL-evicted
// session answers 410 Gone with the machine-readable "expired" code — not
// a generic 404 — all the way through the HTTP layer.
func TestServerExpiredSessionOverTheWire(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	logBuf := &lockedBuffer{}
	svc, ts := newTestServer(t, Config{
		TTL:    time.Minute,
		Logger: slog.New(slog.NewTextHandler(logBuf, nil)),
		now:    clk.now,
	})

	var info SessionInfo
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info); s != http.StatusCreated {
		t.Fatalf("create status %d", s)
	}
	clk.advance(2 * time.Minute)
	if n := svc.Manager().Sweep(clk.now()); n != 1 {
		t.Fatalf("Sweep evicted %d", n)
	}

	var errResp ErrorResponse
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, &errResp); s != http.StatusGone {
		t.Fatalf("expired get status %d (%+v)", s, errResp)
	}
	if errResp.Code != CodeExpired {
		t.Fatalf("expired code %q, want %q", errResp.Code, CodeExpired)
	}
	if svc.Metrics().SessionsEvicted.Load() != 1 {
		t.Fatalf("evicted counter %d", svc.Metrics().SessionsEvicted.Load())
	}
	// The eviction satellite: a log line names the expired session.
	logged := logBuf.String()
	found := false
	for _, line := range strings.Split(logged, "\n") {
		if strings.Contains(line, info.ID) && strings.Contains(line, "expired") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no eviction log line for %s in %q", info.ID, logged)
	}
}

// lockedBuffer is a concurrency-safe log sink for slog handlers in tests.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerRecoveryOverTheWire: the HTTP layer serves a recovered session
// transparently — same ID, same posterior — after the whole server stack is
// rebuilt over the same data directory, and the recovery counter ticks.
func TestServerRecoveryOverTheWire(t *testing.T) {
	dir := t.TempDir()
	fs1, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: fs1})

	var info SessionInfo
	doJSON(t, http.MethodPost, ts1.URL+"/v1/sessions", testCreateReq(), &info)
	var sel SelectResponse
	doJSON(t, http.MethodPost, ts1.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
	answers := make([]bool, len(sel.Tasks))
	var merged AnswersResponse
	doJSON(t, http.MethodPost, ts1.URL+"/v1/sessions/"+info.ID+"/answers",
		AnswersRequest{Tasks: sel.Tasks, Answers: answers, Version: &sel.Version}, &merged)
	var before SessionInfo
	doJSON(t, http.MethodGet, ts1.URL+"/v1/sessions/"+info.ID+"?rounds=true", nil, &before)
	ts1.Close() // the listener dies; the first stack is abandoned un-drained

	fs2, err := store.NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc2, ts2 := newTestServer(t, Config{Store: fs2})
	var after SessionInfo
	if s := doJSON(t, http.MethodGet, ts2.URL+"/v1/sessions/"+info.ID+"?rounds=true", nil, &after); s != http.StatusOK {
		t.Fatalf("recovered get status %d", s)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("recovered session diverged over the wire:\n got %+v\nwant %+v", after, before)
	}
	if svc2.Metrics().SessionsRecovered.Load() != 1 {
		t.Fatalf("recovered counter %d", svc2.Metrics().SessionsRecovered.Load())
	}
}
