package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdfusion/internal/cluster"
	"crowdfusion/internal/core"
	"crowdfusion/internal/parallel"
	"crowdfusion/internal/store"
	"crowdfusion/internal/trace"
)

// Config tunes the HTTP service.
type Config struct {
	// TTL is the idle session lifetime (default 30m; negative disables
	// eviction).
	TTL time.Duration
	// MaxSessions caps live sessions (default 100_000; negative means
	// unlimited).
	MaxSessions int
	// MaxConcurrent bounds compute-heavy requests (select/answers) in
	// flight; further requests wait up to QueueTimeout for a slot and
	// are then rejected with 503. Zero resolves to the machine width via
	// the internal/parallel pool, matching the compute the selection
	// kernel can actually use.
	MaxConcurrent int
	// QueueTimeout is how long a request waits for a compute slot before
	// the server sheds it (default 5s).
	QueueTimeout time.Duration
	// RequestTimeout bounds whole-request handling (default 60s).
	RequestTimeout time.Duration
	// Seed seeds Random selectors (sessions derive per-session streams).
	Seed int64
	// Store persists sessions across restarts. Nil means a fresh volatile
	// store (PR 3's in-memory-only behavior). The server takes ownership
	// and closes it on Close.
	Store store.SessionStore
	// MaxSubscribers caps concurrent event-stream (SSE) subscribers per
	// session (0 = DefaultMaxSubscribers; negative = the default too).
	// The cap bounds the fan-out work a merge performs: one non-blocking
	// channel send per subscriber.
	MaxSubscribers int
	// Cluster, when set, makes serving shard-aware: this node only serves
	// sessions the ring places on it, answers misrouted requests with
	// HTTP 421 code "not_owner" + the owner's address, and relinquishes
	// resident sessions on topology changes so the new owner can adopt
	// them from the shared Store by record replay. The caller keeps ring
	// lifecycle (Start/Stop); the server registers its rebalance hook via
	// the ring's OnChange. Clustered deployments must share a durable
	// Store across nodes, or migrated sessions come up empty.
	Cluster *cluster.Ring
	// Logger receives structured operational and access-log records
	// (evictions, recoveries, store failures, one line per request with
	// trace/request ids). Nil discards them.
	Logger *slog.Logger
	// Tracer records spans for every request hop. Nil gets a recorder-less
	// tracer minted internally, so request and trace IDs are always
	// stamped on responses even when nothing retains the spans; pass a
	// tracer built over a trace.Recorder to serve /debug/traces.
	Tracer *trace.Tracer

	// LeaseTTL enables per-session write leases with fencing epochs: the
	// node acquires a lease for every session it serves, stamps the epoch
	// on every write, and the store refuses writes from a deposed owner
	// with ErrFenced (HTTP 421, code "fenced"). Zero disables leasing.
	LeaseTTL time.Duration
	// LeaseRenew is the lease heartbeat interval (0 = LeaseTTL/3).
	LeaseRenew time.Duration
	// AnonWorker is the worker identity that unattributed (legacy
	// parallel-array) judgments are recorded under on sessions tracking
	// per-worker accuracy. Empty means DefaultAnonWorker ("anon").
	AnonWorker string
	// Clock overrides the wall clock (the daemon's -clock-skew flag uses
	// it to simulate a node whose lease arithmetic runs ahead or behind).
	// Nil means time.Now.
	Clock func() time.Time

	// now overrides the clock in tests (takes precedence over Clock).
	now func() time.Time
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 30 * time.Minute
	}
	if c.TTL < 0 {
		c.TTL = 0
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 100_000
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0
	}
	if c.MaxConcurrent <= 0 {
		// One slot per hardware thread the selection kernel could use;
		// parallel.Workers also floors the result at 1.
		c.MaxConcurrent = parallel.Workers(0, 1<<30)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.now == nil {
		c.now = c.Clock
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the crowdfusiond HTTP service: routing, encode/decode at the
// trust boundary, backpressure, and operational endpoints over a Manager.
type Server struct {
	cfg     Config
	mgr     *Manager
	metrics *Metrics
	tracer  *trace.Tracer
	log     *slog.Logger
	gate    chan struct{} // compute-slot semaphore
	batcher *selectBatcher

	// inflight counts compute work (selects and merges) so Close can
	// drain them even if the HTTP listener has already stopped accepting.
	inflight sync.WaitGroup

	// streamStop ends every live SSE stream. Streams deliberately do NOT
	// register with the drain group — an idle subscriber would park Close
	// forever — so the daemon calls StopStreams from the HTTP server's
	// shutdown hook instead, and handlers also select on this channel.
	streamStop chan struct{}
	streamOnce sync.Once

	mu     sync.Mutex
	closed bool
}

// NewServer builds the service.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		metrics:    &Metrics{},
		tracer:     cfg.Tracer,
		log:        cfg.Logger,
		gate:       make(chan struct{}, cfg.MaxConcurrent),
		streamStop: make(chan struct{}),
	}
	if s.tracer == nil {
		// Recorder-less: spans are minted (request/trace ids flow) but
		// dropped on End. Keeps the id contract independent of ops wiring.
		s.tracer = trace.New("", nil)
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.batcher = newSelectBatcher(func(width int) {
		s.metrics.BatchedSelects.Add(int64(width))
		s.metrics.SelectBatchWidth.observe(width)
	})
	sessionStore := cfg.Store
	if sessionStore == nil {
		sessionStore = store.NewMemory()
	}
	mgrCfg := ManagerConfig{
		TTL:            cfg.TTL,
		MaxSessions:    cfg.MaxSessions,
		Seed:           cfg.Seed,
		MaxSubscribers: cfg.MaxSubscribers,
		Store:          instrumentedStore{inner: sessionStore, m: s.metrics},
		Logger:         cfg.Logger,
		Tracer:         s.tracer,
		LeaseTTL:       cfg.LeaseTTL,
		LeaseRenew:     cfg.LeaseRenew,
		AnonWorker:     cfg.AnonWorker,
		now:            cfg.now,
	}
	if cfg.Cluster != nil {
		mgrCfg.Ownership = cfg.Cluster
		mgrCfg.Self = cfg.Cluster.Self()
	}
	s.mgr = NewManager(mgrCfg)
	s.mgr.fencedBounced = func() { s.metrics.FencedWritesRefused.Add(1) }
	// Give the hub its counters before any traffic exists.
	s.mgr.events.metrics = s.metrics
	s.mgr.evicted = func(n int, dropped bool) {
		if dropped {
			s.metrics.SessionsEvicted.Add(int64(n))
		} else {
			s.metrics.SessionsUnloaded.Add(int64(n))
		}
	}
	s.mgr.recovered = func() { s.metrics.SessionsRecovered.Add(1) }
	s.mgr.relinquished = func(n int) { s.metrics.SessionsRelinquished.Add(int64(n)) }
	s.mgr.refitObserved = func(d time.Duration) {
		s.metrics.WorkerRefits.Add(1)
		s.metrics.RefitDuration.observe(d)
	}
	s.mgr.weightedMerged = func() { s.metrics.WeightedMerges.Add(1) }
	if cfg.Cluster != nil {
		// Eager rebalance: a topology change immediately hands off every
		// resident session the ring re-homed (at most ~K/N of them), so
		// the new owner adopts from a fresh flush instead of waiting for
		// this node's next misrouted touch.
		cfg.Cluster.SetOnChange(func() { s.mgr.RelinquishNotOwned() })
	}
	return s
}

// Metrics exposes the counter set (for tests and embedding processes).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Manager exposes the session store (for tests and embedding processes).
func (s *Server) Manager() *Manager { return s.mgr }

// Close drains in-flight compute and stops the TTL janitor. Call after the
// HTTP server has stopped accepting connections (http.Server.Shutdown):
// together they guarantee every accepted merge either completed or was
// never applied when the process exits.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.StopStreams()
	s.inflight.Wait()
	s.mgr.Close()
}

// StopStreams ends every live event stream (idempotent). The daemon
// registers it with http.Server.RegisterOnShutdown so Shutdown's graceful
// drain isn't parked behind open SSE connections; Close also calls it for
// embedded servers that never ran an http.Server.
func (s *Server) StopStreams() {
	s.streamOnce.Do(func() { close(s.streamStop) })
}

// beginWork registers a unit of compute with the drain group, refusing
// once Close has started. The closed check and the Add happen under one
// lock — and Close flips closed under the same lock before calling Wait —
// so Add can never race a Wait that has already observed zero. This is
// what keeps a handler goroutine that http.TimeoutHandler detached (its
// response written, its work still pending) inside the drain guarantee:
// either it registered before Close and Close waits for it, or it finds
// closed set and never starts.
func (s *Server) beginWork() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Handler returns the service's HTTP handler. Request-response routes sit
// behind the request timeout and the error-envelope middleware; the event
// stream is routed on an outer mux because http.TimeoutHandler's response
// writer hides http.Flusher (and a timeout makes no sense for a stream).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/select", s.handleSelect)
	mux.HandleFunc("POST /v1/sessions/{id}/answers", s.handleAnswers)
	mux.HandleFunc("GET /v1/sessions/{id}/calibration", s.handleCalibration)
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	// Non-GET hits on the events path fall through the outer mux's "/"
	// route to here; register the path methodless so they get a proper 405
	// with Allow instead of a 404.
	mux.HandleFunc("/v1/sessions/{id}/events", s.handleEventsBadMethod)
	timed := http.TimeoutHandler(mux, s.cfg.RequestTimeout,
		`{"error":"request timed out"}`)
	outer := http.NewServeMux()
	outer.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	outer.Handle("/", envelopeErrors(timed))
	return s.observe(outer)
}

// requestIDKey carries the per-request ID (this hop's root span ID) through
// handler contexts, so error envelopes can echo it without re-deriving.
type requestIDKey struct{}

// requestIDFrom returns the request ID stamped by the observe middleware,
// or "" outside a traced request (direct handler tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the access log. It must
// keep http.Flusher visible — the SSE handler type-asserts for it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// observe is the per-request observability middleware: it continues the
// caller's W3C trace (or starts a fresh one), stamps X-Request-Id and
// traceparent on the response before the handler runs, and emits one
// structured access-log line per request. The request ID is this hop's
// root span ID — short enough for support tickets, and it joins the
// access log, the error envelope, and /debug/traces on one key.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		var sp *trace.Span
		name := r.Method + " " + r.URL.Path
		if remote, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx, sp = s.tracer.StartRemote(ctx, remote, name)
		} else {
			ctx, sp = s.tracer.Start(ctx, name)
		}
		reqID := sp.SpanID()
		ctx = context.WithValue(ctx, requestIDKey{}, reqID)
		// Stamped before the handler writes: headers after WriteHeader are
		// lost, and redirects/errors need the ids most.
		w.Header().Set("X-Request-Id", reqID)
		w.Header().Set("traceparent", sp.Context().Traceparent())
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		sp.SetAttr("status", sw.status)
		sp.End()
		s.log.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(dur.Microseconds())/1000,
			"trace_id", sp.TraceID(),
			"request_id", reqID,
		)
	})
}

// envelopeErrors rewrites the plain-text 404/405 defaults that ServeMux
// (and http.Error) produce into the service's JSON ErrorResponse envelope,
// so every error a client can provoke is machine-readable. Responses that
// already declare a JSON body — everything the handlers write — pass
// through untouched, as does the Allow header ServeMux sets on 405.
func envelopeErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w, req: r}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	req         *http.Request
	wroteHeader bool
	intercepted bool // swallowing a plain-text default body
}

func (w *envelopeWriter) WriteHeader(status int) {
	if w.wroteHeader {
		w.ResponseWriter.WriteHeader(status)
		return
	}
	w.wroteHeader = true
	replaceable := (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json")
	if !replaceable {
		w.ResponseWriter.WriteHeader(status)
		return
	}
	w.intercepted = true
	code := CodeNotFound
	msg := fmt.Sprintf("service: no route for %s %s", w.req.Method, w.req.URL.Path)
	if status == http.StatusMethodNotAllowed {
		code = CodeMethodNotAllowed
		msg = fmt.Sprintf("service: method %s not allowed for %s", w.req.Method, w.req.URL.Path)
	}
	w.Header().Set("Content-Type", "application/json")
	w.ResponseWriter.WriteHeader(status)
	data, _ := json.MarshalIndent(ErrorResponse{
		Error: msg, Code: code, RequestID: requestIDFrom(w.req.Context()),
	}, "", "  ")
	_, _ = w.ResponseWriter.Write(append(data, '\n'))
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercepted {
		// The plain-text default body was replaced by the envelope; report
		// it written so http.Error's caller sees no failure.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// writeJSON encodes v with the status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// writeError maps service errors to HTTP statuses and machine-readable
// codes inside the uniform envelope, echoing the request ID so a client
// report joins straight to this hop's access log and trace.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	reqID := requestIDFrom(r.Context())
	var notOwner *NotOwnerError
	if errors.As(err, &notOwner) {
		// 421 Misdirected Request: the session lives on another node. The
		// envelope carries the owner's address so ring-aware clients hop
		// straight there instead of probing the peer list.
		writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
			Error: err.Error(), Code: CodeNotOwner, Owner: notOwner.Owner, RequestID: reqID})
		return
	}
	var fenced *FencedError
	if errors.As(err, &fenced) {
		// Also 421, but with code "fenced": the lease fence — not ring
		// placement — refused this node. Same client response either way:
		// re-resolve the owner (the envelope names the lease holder when
		// known) and retry there; the refused write was never applied.
		writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
			Error: err.Error(), Code: CodeFenced, Owner: fenced.Owner, RequestID: reqID})
		return
	}
	status := http.StatusBadRequest
	code := ""
	switch {
	case errors.Is(err, ErrNotFound):
		status, code = http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrExpired):
		// 410 Gone, not 404: the ID was real, its state aged out. Clients
		// distinguish "retry with the right ID" from "start a new session".
		status, code = http.StatusGone, CodeExpired
	case errors.Is(err, ErrVersionConflict):
		status, code = http.StatusConflict, CodeVersionConflict
	case errors.Is(err, ErrBudgetExhausted):
		status, code = http.StatusConflict, CodeBudgetExhausted
	case errors.Is(err, ErrTooManySessions):
		status, code = http.StatusServiceUnavailable, CodeTooManySessions
	case errors.Is(err, ErrNoPendingBatch):
		status, code = http.StatusConflict, CodeNoPendingBatch
	case errors.Is(err, ErrNotInBatch):
		status, code = http.StatusBadRequest, CodeNotInBatch
	case errors.Is(err, ErrAnswerConflict):
		status, code = http.StatusConflict, CodeAnswerConflict
	case errors.Is(err, ErrUnknownWorkerModel):
		status, code = http.StatusBadRequest, CodeUnknownWorkerModel
	case errors.Is(err, ErrDuplicateTask):
		status, code = http.StatusBadRequest, CodeDuplicateTask
	case errors.Is(err, ErrAttributionConflict):
		status, code = http.StatusConflict, CodeAttributionConflict
	case errors.Is(err, ErrTooManySubscribers):
		status, code = http.StatusTooManyRequests, CodeTooManySubscribers
	case errors.Is(err, ErrStore):
		status, code = http.StatusInternalServerError, CodeStoreFailure
	case errors.Is(err, errSessionRetired):
		// Only reachable when the session retires twice in a row (the
		// handler already re-resolved once): retryable.
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrTooManyTasks), errors.Is(err, core.ErrBadAccuracy),
		errors.Is(err, core.ErrNoTasks):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code, RequestID: reqID})
}

// decodeJSON strictly decodes a request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: decoding request: %w", err)
	}
	return nil
}

// acquire claims a compute slot, waiting up to QueueTimeout. It returns
// false (after writing the 503) when the server is saturated — the
// backpressure path that keeps heavy selection traffic from piling up
// unboundedly behind the per-session locks.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.gate <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.gate <- struct{}{}:
		return true
	case <-r.Context().Done():
	case <-t.C:
	}
	s.metrics.RequestsRejected.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error: "service: saturated, retry later", RequestID: requestIDFrom(r.Context())})
	return false
}

func (s *Server) release() { <-s.gate }

// writeShuttingDown is the refusal for work arriving after Close began.
func writeShuttingDown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error: "service: shutting down", RequestID: requestIDFrom(r.Context())})
}

// noteRedirect does the bookkeeping for 421 outcomes: bump the misroute
// counter for not_owner, and retire the local instance on fenced — a
// session whose lease another node took must not serve another request
// from memory. (The fenced metric is counted where the refusal happened:
// the instrumented store for fenced writes, the acquire bounce hook for
// fenced adoptions.)
func (s *Server) noteRedirect(id string, err error) {
	var notOwner *NotOwnerError
	if errors.As(err, &notOwner) {
		s.metrics.NotOwnerRejects.Add(1)
		return
	}
	var fenced *FencedError
	if errors.As(err, &fenced) {
		s.mgr.RetireFenced(id)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{
		"status":        "ok",
		"sessions_live": s.mgr.Len(),
	}
	if s.cfg.LeaseTTL > 0 {
		resp["leases"] = map[string]any{
			"held":  s.mgr.LeasesHeld(),
			"owner": s.mgr.leaseSelf(),
			"ttl":   s.cfg.LeaseTTL.String(),
			"renew": s.mgr.cfg.LeaseRenew.String(),
		}
	}
	if s.cfg.Cluster != nil {
		resp["cluster"] = map[string]any{
			"self":        s.cfg.Cluster.Self(),
			"peers":       s.cfg.Cluster.Peers(),
			"peers_alive": len(s.cfg.Cluster.Alive()),
			"epoch":       s.cfg.Cluster.Epoch(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.metrics.WritePrometheus(w, s.mgr.Len(), s.mgr.LeasesHeld(), s.mgr.WorkersTracked()); err != nil {
		return
	}
	if ring := s.cfg.Cluster; ring != nil {
		fmt.Fprintf(w, "# HELP crowdfusion_cluster_peers Static cluster size.\n"+
			"# TYPE crowdfusion_cluster_peers gauge\ncrowdfusion_cluster_peers %d\n", ring.Size())
		fmt.Fprintf(w, "# HELP crowdfusion_cluster_peers_alive Peers currently considered alive.\n"+
			"# TYPE crowdfusion_cluster_peers_alive gauge\ncrowdfusion_cluster_peers_alive %d\n", len(ring.Alive()))
		fmt.Fprintf(w, "# HELP crowdfusion_cluster_epoch Topology epoch (advances on peer death/revival).\n"+
			"# TYPE crowdfusion_cluster_epoch gauge\ncrowdfusion_cluster_epoch %d\n", ring.Epoch())
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	// Prior construction can materialize a 2^n-world product
	// distribution, so creation is compute like select/merge: it takes a
	// slot and registers with the drain group.
	if !s.beginWork() {
		writeShuttingDown(w, r)
		return
	}
	defer s.inflight.Done()
	if !s.acquire(w, r) {
		return
	}
	defer s.release()

	sess, err := s.mgr.Create(r.Context(), &req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	s.metrics.SessionsCreated.Add(1)
	writeJSON(w, http.StatusCreated, sess.Info(s.mgr.Now(), false))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	withRounds := strings.EqualFold(r.URL.Query().Get("rounds"), "true") ||
		r.URL.Query().Get("rounds") == "1"
	writeJSON(w, http.StatusOK, sess.Info(s.mgr.Now(), withRounds))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := s.mgr.Delete(r.Context(), r.PathValue("id"))
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	if !ok {
		writeError(w, r, ErrNotFound)
		return
	}
	s.metrics.SessionsDeleted.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	var req SelectRequest
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, r, err)
			return
		}
	}
	if err := req.Validate(); err != nil {
		writeError(w, r, err)
		return
	}
	if !s.beginWork() {
		writeShuttingDown(w, r)
		return
	}
	defer s.inflight.Done()
	if !s.acquire(w, r) {
		return
	}
	defer s.release()

	start := time.Now()
	resp, cached, err := s.coalescedSelect(r.Context(), sess, req.K)
	if errors.Is(err, errSessionRetired) {
		// The instance was unloaded/evicted between Get and Select;
		// re-resolve once (reloading from the store if durable).
		if sess, err = s.mgr.Get(r.Context(), r.PathValue("id")); err == nil {
			resp, cached, err = s.coalescedSelect(r.Context(), sess, req.K)
		}
	}
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	s.metrics.SelectLatency.observe(time.Since(start))
	s.metrics.SelectDuration.observe(time.Since(start))
	s.metrics.SelectsServed.Add(1)
	if cached {
		s.metrics.SelectCacheHits.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// coalescedSelect is Session.Select with the greedy sweep routed through
// the cross-session batcher: the intent is frozen under the session lock,
// the sweep coalesces with any other sessions' concurrent sweeps sharing a
// (pc, k) channel configuration, and the result commits back under the
// lock. Fast paths (pinned batch, done, cache hit) never touch the
// batcher, and non-greedy selectors (random, opt) sweep inline — only
// greedy sweeps have a shared channel plan to amortize. The batched sweep
// is bit-identical to the inline one (the BatchSelector contract), so the
// two paths are interchangeable per session.
func (s *Server) coalescedSelect(ctx context.Context, sess *Session, kOverride int) (resp *SelectResponse, cached bool, err error) {
	var sp *trace.Span
	if s.tracer != nil {
		ctx, sp = s.tracer.Start(ctx, "session.select")
		sp.SetAttr("session", sess.ID())
		defer func() {
			if resp != nil {
				sp.SetAttr("version", resp.Version)
				sp.SetAttr("tasks", len(resp.Tasks))
			}
			sp.SetAttr("cached", cached)
			sp.SetError(err)
			sp.End()
		}()
	}
	for {
		resp, cached, intent, err := sess.selectPrepare(s.mgr.Now(), kOverride)
		if resp != nil || err != nil {
			return resp, cached, err
		}
		var tasks []int
		var selErr error
		if g, ok := intent.selector.(*core.GreedySelector); ok {
			r := s.batcher.do(core.BatchItem{Selector: g, Joint: intent.joint, K: intent.k, Pc: intent.pc})
			tasks, selErr = r.Tasks, r.Err
		} else {
			tasks, selErr = intent.selector.Select(intent.joint, intent.k, intent.pc)
		}
		done, hit, stale, err := sess.selectComplete(ctx, s.mgr.Now(), intent, tasks, selErr)
		if stale {
			continue
		}
		return done, hit, err
	}
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	var req AnswersRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if !s.beginWork() {
		writeShuttingDown(w, r)
		return
	}
	defer s.inflight.Done()
	if !s.acquire(w, r) {
		return
	}
	defer s.release()

	start := time.Now()
	resp, err := sess.Merge(r.Context(), s.mgr.Now(), &req)
	if errors.Is(err, errSessionRetired) {
		// The instance was unloaded/evicted between Get and Merge;
		// re-resolve once. The reloaded instance has the full durable
		// history, so idempotency and version checks behave as if the
		// eviction never happened.
		if sess, err = s.mgr.Get(r.Context(), r.PathValue("id")); err == nil {
			resp, err = sess.Merge(r.Context(), s.mgr.Now(), &req)
		}
	}
	if err != nil {
		// A fenced merge means another node took the session mid-flight:
		// retire the stale instance so the next request here redirects
		// cleanly instead of replaying from trailing memory.
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	s.metrics.MergeLatency.observe(time.Since(start))
	s.metrics.MergeDuration.observe(time.Since(start))
	switch {
	case resp.Merged:
		s.metrics.MergesApplied.Add(1)
		if resp.Partial {
			// The partial that completed its batch and committed it.
			s.metrics.PartialAnswers.Add(1)
		}
	case resp.Partial:
		s.metrics.PartialAnswers.Add(1)
	default:
		s.metrics.MergeReplays.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCalibration serves GET /v1/sessions/{id}/calibration: the session's
// posterior calibration bins (against its own pseudo-gold labeling) plus
// per-worker accuracy, bias, support, and Wilson bounds. ?bins= overrides
// the bin count (default 10).
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	bins := 10
	if v := r.URL.Query().Get("bins"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 || n > 100 {
			writeError(w, r, fmt.Errorf("service: bins %q outside 2..100", v))
			return
		}
		bins = n
	}
	resp, err := sess.Calibration(s.mgr.Now(), bins)
	if errors.Is(err, errSessionRetired) {
		if sess, err = s.mgr.Get(r.Context(), r.PathValue("id")); err == nil {
			resp, err = sess.Calibration(s.mgr.Now(), bins)
		}
	}
	if err != nil {
		s.noteRedirect(r.PathValue("id"), err)
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkers serves GET /v1/workers: the per-node fleet view of every
// worker observed across resident sessions. Deliberately node-local — it
// aggregates what this node is serving, not the whole ring; operators
// scrape each node and join on worker ID.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Workers())
}

// handleList serves the paginated session listing: IDs ascending, owned
// sessions only, resuming after the `after` cursor.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			writeError(w, r, fmt.Errorf("service: limit %q outside 1..1000", v))
			return
		}
		limit = n
	}
	resp, err := s.mgr.ListSessions(q.Get("after"), limit)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEventsBadMethod answers non-GET methods on the events path. The
// outer mux routes only "GET …/events"; everything else falls through to
// the inner mux, which would otherwise 404 this perfectly real path.
func (s *Server) handleEventsBadMethod(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Allow", "GET")
	writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{
		Error:     fmt.Sprintf("service: method %s not allowed for %s", r.Method, r.URL.Path),
		Code:      CodeMethodNotAllowed,
		RequestID: requestIDFrom(r.Context()),
	})
}

// streamKeepalive is the SSE comment-ping cadence; it keeps idle streams
// alive through proxies and lets the handler notice dead peers.
const streamKeepalive = 15 * time.Second

// handleEvents serves GET /v1/sessions/{id}/events: a Server-Sent Events
// stream of session state transitions. Routed outside the timeout handler
// (it needs http.Flusher and has no natural deadline) and outside the
// compute slot gate (it does no posterior math — fan-out cost was already
// bounded by the hub's non-blocking sends).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.streamStop:
		writeShuttingDown(w, r)
		return
	default:
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			ErrorResponse{Error: "service: connection does not support streaming"})
		return
	}
	var lastID uint64
	hasLast := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, r, fmt.Errorf("service: Last-Event-ID %q is not an event sequence", v))
			return
		}
		lastID, hasLast = n, true
	}
	id := r.PathValue("id")
	sub, err := s.mgr.Subscribe(r.Context(), id, lastID, hasLast)
	if errors.Is(err, errSessionRetired) {
		// Unloaded between resolve and snapshot; re-resolve once.
		sub, err = s.mgr.Subscribe(r.Context(), id, lastID, hasLast)
	}
	if err != nil {
		s.noteRedirect(id, err)
		writeError(w, r, err)
		return
	}
	defer sub.cancel()
	s.metrics.StreamsServed.Add(1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// lastSeq tracks the newest delivered event so a synthesized reset
	// frame can carry a resumable id.
	var lastSeq uint64
	write := func(ev SessionEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		lastSeq = ev.Seq
		fl.Flush()
		return true
	}
	for _, ev := range sub.backlog {
		if !write(ev) {
			return
		}
	}
	keepalive := time.NewTicker(streamKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev := <-sub.ch:
			if !write(ev) {
				return
			}
		case <-sub.done:
			// Detached: session deleted/expired/redirected, hub shutdown, or
			// this subscriber fell behind. Drain what was buffered before the
			// detach (terminal goodbyes arrive this way), then tell a dropped
			// consumer to reconnect and resume.
			for {
				select {
				case ev := <-sub.ch:
					if !write(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			if sub.dropped {
				write(SessionEvent{
					Seq:         lastSeq,
					Type:        EventReset,
					SessionInfo: SessionInfo{ID: id},
					Error:       "subscriber fell behind; reconnect with Last-Event-ID to resume",
				})
			}
			return
		case <-r.Context().Done():
			return
		case <-s.streamStop:
			return
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
