package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer spins up the full handler stack on httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewServer(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// doJSON issues a request and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatalf("decoding %s %s response %q: %v", method, url, data, err)
			}
		}
	}
	return resp.StatusCode
}

func TestServerSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var info SessionInfo
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	if status != http.StatusCreated {
		t.Fatalf("create status %d", status)
	}
	if info.ID == "" || info.N != 4 || info.Done {
		t.Fatalf("create info %+v", info)
	}

	var sel SelectResponse
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel); s != http.StatusOK {
		t.Fatalf("select status %d", s)
	}
	if len(sel.Tasks) != 2 || sel.Version != 0 {
		t.Fatalf("select %+v", sel)
	}

	// Repeat select: same batch from cache.
	var sel2 SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel2)
	if !sel2.Cached || fmt.Sprint(sel2.Tasks) != fmt.Sprint(sel.Tasks) {
		t.Fatalf("repeat select not cached: %+v vs %+v", sel2, sel)
	}

	answers := make([]bool, len(sel.Tasks))
	for i := range answers {
		answers[i] = true
	}
	var merged AnswersResponse
	req := AnswersRequest{Tasks: sel.Tasks, Answers: answers, Version: &sel.Version}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers", req, &merged); s != http.StatusOK {
		t.Fatalf("answers status %d", s)
	}
	if !merged.Merged || merged.Version != 1 || merged.Spent != 2 {
		t.Fatalf("merge %+v", merged.SessionInfo)
	}

	// Idempotent retry over HTTP.
	var replay AnswersResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers", req, &replay)
	if replay.Merged || replay.Spent != 2 {
		t.Fatalf("replay %+v", replay.SessionInfo)
	}

	// GET with trace.
	var got SessionInfo
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID+"?rounds=true", nil, &got); s != http.StatusOK {
		t.Fatalf("get status %d", s)
	}
	if got.Version != 1 || len(got.Rounds) != 1 || got.Rounds[0].CumCost != 2 {
		t.Fatalf("get %+v", got)
	}
	if got.Entropy >= info.Entropy {
		t.Fatalf("entropy did not drop after consistent answers: %v -> %v", info.Entropy, got.Entropy)
	}

	// DELETE, then 404.
	if s := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil, nil); s != http.StatusNoContent {
		t.Fatalf("delete status %d", s)
	}
	var errResp ErrorResponse
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, &errResp); s != http.StatusNotFound {
		t.Fatalf("get after delete status %d", s)
	}
	if errResp.Error == "" {
		t.Fatal("404 without error envelope")
	}
}

func TestServerErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var errResp ErrorResponse
	// Invalid create: 400.
	bad := testCreateReq()
	bad.Pc = 0.2
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", bad, &errResp); s != http.StatusBadRequest {
		t.Fatalf("invalid create status %d", s)
	}
	// Unknown fields: 400 (strict decoding at the trust boundary).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions",
		strings.NewReader(`{"marginals":[0.5],"pc":0.8,"k":1,"budget":2,"bogus":1}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field create status %d", resp.StatusCode)
	}
	// Unknown session: 404 on every per-session route.
	for _, r := range []struct{ method, path string }{
		{http.MethodGet, "/v1/sessions/deadbeef"},
		{http.MethodPost, "/v1/sessions/deadbeef/select"},
		{http.MethodDelete, "/v1/sessions/deadbeef"},
	} {
		if s := doJSON(t, r.method, ts.URL+r.path, nil, nil); s != http.StatusNotFound {
			t.Fatalf("%s %s status %d, want 404", r.method, r.path, s)
		}
	}
	var m AnswersResponse
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/deadbeef/answers",
		AnswersRequest{Tasks: []int{0}, Answers: []bool{true}}, &m); s != http.StatusNotFound {
		t.Fatalf("answers on unknown session status %d", s)
	}

	// Stale version: 409.
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	var sel SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers",
		AnswersRequest{Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version}, nil)
	stale := 0
	ans := make([]bool, len(sel.Tasks))
	ans[0] = true
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers",
		AnswersRequest{Tasks: sel.Tasks, Answers: ans, Version: &stale}, &errResp); s != http.StatusConflict {
		t.Fatalf("stale merge status %d (%s)", s, errResp.Error)
	}
}

func TestServerHealthzAndMetrics(t *testing.T) {
	svc, ts := newTestServer(t, Config{})

	var health struct {
		Status       string `json:"status"`
		SessionsLive int    `json:"sessions_live"`
	}
	if s := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); s != http.StatusOK {
		t.Fatalf("healthz status %d", s)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz %+v", health)
	}

	// Generate some traffic, then scrape.
	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	var sel SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, nil) // cache hit
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers",
		AnswersRequest{Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"crowdfusion_sessions_live 1",
		"crowdfusion_sessions_created_total 1",
		"crowdfusion_selects_served_total 2",
		"crowdfusion_select_cache_hits_total 1",
		"crowdfusion_merges_applied_total 1",
		"crowdfusion_select_latency_seconds{quantile=\"0.5\"}",
		"crowdfusion_select_latency_seconds{quantile=\"0.99\"}",
		"crowdfusion_merge_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	if svc.Metrics().SelectsServed.Load() != 2 {
		t.Fatalf("selects served counter %d", svc.Metrics().SelectsServed.Load())
	}
}

func TestServerBackpressure(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueTimeout: time.Millisecond})

	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)

	// Hold the single compute slot, then watch a select get shed.
	svc.gate <- struct{}{}
	var errResp ErrorResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &errResp)
	<-svc.gate
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated select status %d", status)
	}
	if svc.Metrics().RequestsRejected.Load() != 1 {
		t.Fatalf("rejected counter %d", svc.Metrics().RequestsRejected.Load())
	}
	// Slot released: the same request now succeeds.
	var sel SelectResponse
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel); s != http.StatusOK {
		t.Fatalf("post-release select status %d", s)
	}
}

// TestServerConcurrentSessionNeverInterleavesMerges is the acceptance
// concurrency test: many goroutines race select/answers/get against ONE
// session. The per-session state machine must serialize merges — no lost
// updates, no double-spent budget, version == applied merges — and the
// race detector must stay quiet.
func TestServerConcurrentSessionNeverInterleavesMerges(t *testing.T) {
	svc, ts := newTestServer(t, Config{})

	req := testCreateReq()
	req.Budget = 20
	req.K = 2
	var info SessionInfo
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", req, &info); s != http.StatusCreated {
		t.Fatalf("create status %d", s)
	}

	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	applied := 0 // answer sets this test saw merge (Merged=true)
	spentByUs := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var sel SelectResponse
				s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)
				if s != http.StatusOK {
					t.Errorf("worker %d: select status %d", w, s)
					return
				}
				if sel.Done || len(sel.Tasks) == 0 {
					return
				}
				answers := make([]bool, len(sel.Tasks))
				for j, f := range sel.Tasks {
					answers[j] = f%2 == 0
				}
				var merged AnswersResponse
				s = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers",
					AnswersRequest{Tasks: sel.Tasks, Answers: answers, Version: &sel.Version}, &merged)
				switch s {
				case http.StatusOK:
					if merged.Merged {
						mu.Lock()
						applied++
						spentByUs += len(sel.Tasks)
						mu.Unlock()
					}
				case http.StatusConflict:
					// Lost the race to another worker's merge: re-select.
				default:
					t.Errorf("worker %d: answers status %d", w, s)
					return
				}
				// Interleave reads with the writes.
				doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, nil)
			}
		}(w)
	}
	wg.Wait()

	var final SessionInfo
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID+"?rounds=1", nil, &final); s != http.StatusOK {
		t.Fatalf("final get status %d", s)
	}
	if final.Spent > final.Budget {
		t.Fatalf("budget overspent: %d > %d", final.Spent, final.Budget)
	}
	if final.Version != len(final.Rounds) {
		t.Fatalf("version %d != %d recorded rounds", final.Version, len(final.Rounds))
	}
	if final.Version != applied {
		t.Fatalf("service applied %d merges, test observed %d", final.Version, applied)
	}
	if final.Spent != spentByUs {
		t.Fatalf("spent %d != %d tasks in observed merges", final.Spent, spentByUs)
	}
	sum := 0
	for i, r := range final.Rounds {
		sum += len(r.Tasks)
		if r.CumCost != sum {
			t.Fatalf("round %d cum_cost %d != running sum %d — merges interleaved", i, r.CumCost, sum)
		}
	}
	if sum != final.Spent {
		t.Fatalf("rounds account %d tasks, spent %d", sum, final.Spent)
	}
	if int64(applied) != svc.Metrics().MergesApplied.Load() {
		t.Fatalf("metrics merges %d != observed %d", svc.Metrics().MergesApplied.Load(), applied)
	}
	// The posterior must still be a valid distribution after the storm.
	sess, err := svc.Manager().Get(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Posterior().Validate(); err != nil {
		t.Fatalf("posterior corrupted: %v", err)
	}
}

func TestServerGracefulCloseDrains(t *testing.T) {
	svc := NewServer(Config{})
	ts := httptest.NewServer(svc.Handler())

	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	var sel SelectResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &sel)

	// Start a merge and close concurrently: Close must wait for it.
	done := make(chan AnswersResponse, 1)
	go func() {
		var m AnswersResponse
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers",
			AnswersRequest{Tasks: sel.Tasks, Answers: make([]bool, len(sel.Tasks)), Version: &sel.Version}, &m)
		done <- m
	}()
	m := <-done
	ts.Close()
	svc.Close()
	if !m.Merged {
		t.Fatalf("merge lost across shutdown: %+v", m.SessionInfo)
	}
	// Close is idempotent.
	svc.Close()
}

// TestServerRefusesWorkAfterClose: compute endpoints arriving once Close
// has begun are refused with 503 instead of registering new work behind
// the drain.
func TestServerRefusesWorkAfterClose(t *testing.T) {
	svc := NewServer(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var info SessionInfo
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &info)
	svc.Close()

	var errResp ErrorResponse
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", testCreateReq(), &errResp); s != http.StatusServiceUnavailable {
		t.Fatalf("create after close status %d", s)
	}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/select", nil, &errResp); s != http.StatusServiceUnavailable {
		t.Fatalf("select after close status %d", s)
	}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/answers",
		AnswersRequest{Tasks: []int{0}, Answers: []bool{true}}, &errResp); s != http.StatusServiceUnavailable {
		t.Fatalf("answers after close status %d", s)
	}
	if !strings.Contains(errResp.Error, "shutting down") {
		t.Fatalf("refusal message %q", errResp.Error)
	}
	// Reads still work during drain (operators polling state).
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, nil); s != http.StatusOK {
		t.Fatalf("get after close status %d", s)
	}
}
